"""Energy model: accounting and the paper's efficiency prediction."""

from __future__ import annotations

import pytest

from repro.core import BenchmarkRunner, TuningParameters, optimal_loop_for
from repro.devices.energy import ENERGY_SPECS, EnergySpec, energy_report
from repro.errors import InvalidValueError
from repro.units import MIB


def run(target: str, **changes):
    params = TuningParameters(array_bytes=4 * MIB, loop=optimal_loop_for(target))
    return BenchmarkRunner(target, ntimes=2).run(params.with_(**changes))


class TestAccounting:
    def test_components_sum(self):
        result = run("gpu")
        rep = energy_report(result, alu_ops=100)
        assert rep.total_j == pytest.approx(
            rep.static_j + rep.transfer_j + rep.compute_j
        )
        assert rep.static_j > 0 and rep.transfer_j > 0 and rep.compute_j > 0

    def test_average_power_bounded(self):
        rep = energy_report(run("cpu"))
        spec = ENERGY_SPECS["cpu"]
        assert rep.average_power_w >= spec.static_w

    def test_gb_per_joule_positive(self):
        rep = energy_report(run("aocl"))
        assert rep.gb_per_joule > 0
        assert "GB/J" in rep.summary()

    def test_failed_result_rejected(self):
        # int16 ADD overflows the Virtex-7
        from repro.core import KernelName, LoopManagement

        failed = BenchmarkRunner("sdaccel", ntimes=1).run(
            TuningParameters(
                array_bytes=64 * 1024,
                kernel=KernelName.ADD,
                vector_width=16,
                loop=LoopManagement.NESTED,
            )
        )
        assert not failed.ok
        with pytest.raises(InvalidValueError):
            energy_report(failed)

    def test_unknown_target_needs_explicit_spec(self):
        result = run("gpu")
        object.__setattr__(result, "target", "mystery")
        with pytest.raises(InvalidValueError):
            energy_report(result)
        rep = energy_report(
            result, EnergySpec("mystery", static_w=10, transfer_j_per_byte=1e-12,
                               alu_j_per_op=0)
        )
        assert rep.total_j > 0

    def test_negative_constants_rejected(self):
        with pytest.raises(InvalidValueError):
            EnergySpec("x", static_w=-1, transfer_j_per_byte=0, alu_j_per_op=0)


class TestPaperPrediction:
    def test_fpga_wins_efficiency_when_vectorized(self):
        """§IV: energy efficiency 'is one area where FPGAs can still win'.

        A vectorized AOCL kernel should beat the GPU in GB per joule
        even though the GPU moves bytes an order of magnitude faster.
        """
        gpu = energy_report(run("gpu"))
        aocl = energy_report(run("aocl", vector_width=16))
        assert gpu.seconds < aocl.seconds  # GPU is faster...
        assert aocl.gb_per_joule > gpu.gb_per_joule  # ...FPGA is greener

    def test_unvectorized_fpga_loses_efficiency(self):
        """Static power dominates a slow scalar pipeline: the efficiency
        win requires getting the bandwidth up first."""
        scalar = energy_report(run("aocl", vector_width=1))
        vectorized = energy_report(run("aocl", vector_width=16))
        assert vectorized.gb_per_joule > 2 * scalar.gb_per_joule
