"""Foundations: error hierarchy, rng helpers, spec invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro import errors
from repro.devices.future import STRATIX_HMC, VIRTEX7_MATURE
from repro.devices.specs import PAPER_TARGETS
from repro.rng import DEFAULT_SEED, make_rng


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            if isinstance(exc, type) and issubclass(exc, Exception):
                assert issubclass(exc, errors.ReproError), name

    def test_value_errors_are_value_errors(self):
        assert issubclass(errors.InvalidValueError, ValueError)
        assert issubclass(errors.UnitParseError, ValueError)

    def test_build_error_log_formatting(self):
        err = errors.BuildError("failed", device="aocl", log="details here")
        text = str(err)
        assert "aocl" in text and "details here" in text
        bare = errors.BuildError("failed", device="aocl")
        assert "aocl" in str(bare)

    def test_oclc_errors_carry_position(self):
        err = errors.ParseError("bad token", line=3, col=7)
        assert str(err).startswith("3:7:")
        assert errors.ParseError("no position").line == 0

    def test_resource_error_fields(self):
        err = errors.ResourceError("too big", resource="logic", used=2.0, available=1.0)
        assert err.resource == "logic"
        assert err.used > err.available


class TestRng:
    def test_deterministic_default(self):
        a = make_rng().integers(0, 1000, 8)
        b = make_rng().integers(0, 1000, 8)
        assert np.array_equal(a, b)

    def test_explicit_seed(self):
        a = make_rng(7).random(4)
        b = make_rng(7).random(4)
        c = make_rng(8).random(4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_default_seed_constant(self):
        assert isinstance(DEFAULT_SEED, int)


class TestSpecInvariants:
    @pytest.mark.parametrize(
        "spec", list(PAPER_TARGETS) + [STRATIX_HMC, VIRTEX7_MATURE],
        ids=lambda s: s.short_name,
    )
    def test_dram_peak_matches_headline(self, spec):
        assert spec.dram.peak_bandwidth == pytest.approx(
            spec.peak_bandwidth_gbs * 1e9, rel=0.01
        )

    @pytest.mark.parametrize(
        "spec", list(PAPER_TARGETS), ids=lambda s: s.short_name
    )
    def test_paper_specs_have_positive_overheads(self, spec):
        assert spec.launch_overhead_s > 0
        assert spec.pcie.peak_bandwidth > 0
        assert spec.global_mem_bytes > 0

    def test_paper_order(self):
        assert [s.short_name for s in PAPER_TARGETS] == [
            "aocl", "sdaccel", "cpu", "gpu",
        ]
