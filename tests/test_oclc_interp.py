"""Sequential interpreter: work-item semantics and C arithmetic rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InterpError
from repro.oclc import BufferArg, compile_source, run_kernel


def run(src, global_size, local_size=None, defines=None, **arrays):
    p = compile_source(src, defines)
    args = {
        k: BufferArg(v) if isinstance(v, np.ndarray) else v for k, v in arrays.items()
    }
    run_kernel(p, p.kernel().name, global_size, args, local_size)


class TestBasicExecution:
    def test_ndrange_copy(self):
        a = np.arange(32, dtype=np.int32)
        c = np.zeros(32, dtype=np.int32)
        run(
            "__kernel void k(__global const int *a, __global int *c)"
            "{ size_t i = get_global_id(0); c[i] = a[i]; }",
            (32,),
            a=a,
            c=c,
        )
        assert np.array_equal(c, a)

    def test_flat_loop_triad(self):
        b = np.arange(16, dtype=np.float64)
        c = np.ones(16, dtype=np.float64)
        a = np.zeros(16, dtype=np.float64)
        run(
            "__kernel void k(__global const double *b, __global const double *c,"
            " __global double *a, const double q)"
            "{ for (int i = 0; i < 16; i++) a[i] = b[i] + q * c[i]; }",
            (1,),
            a=a,
            b=b,
            c=c,
            q=3.0,
        )
        assert np.allclose(a, b + 3.0)

    def test_defines_set_bounds(self):
        a = np.zeros(8, dtype=np.int32)
        run(
            "__kernel void k(__global int *a) { for (int i = 0; i < N; i++) a[i] = i; }",
            (1,),
            defines={"N": "8"},
            a=a,
        )
        assert np.array_equal(a, np.arange(8))

    def test_if_else(self):
        a = np.array([-3, 5, -1, 2], dtype=np.int32)
        run(
            "__kernel void k(__global int *a) {"
            " size_t i = get_global_id(0);"
            " if (a[i] < 0) a[i] = -a[i]; else a[i] = a[i] * 10; }",
            (4,),
            a=a,
        )
        assert np.array_equal(a, [3, 50, 1, 20])

    def test_while_and_break(self):
        a = np.zeros(1, dtype=np.int32)
        run(
            "__kernel void k(__global int *a) {"
            " int i = 0; while (1) { i++; if (i >= 10) break; } a[0] = i; }",
            (1,),
            a=a,
        )
        assert a[0] == 10

    def test_continue(self):
        a = np.zeros(8, dtype=np.int32)
        run(
            "__kernel void k(__global int *a) {"
            " for (int i = 0; i < 8; i++) { if (i % 2) continue; a[i] = 1; } }",
            (1,),
            a=a,
        )
        assert np.array_equal(a, [1, 0, 1, 0, 1, 0, 1, 0])

    def test_early_return(self):
        a = np.zeros(4, dtype=np.int32)
        run(
            "__kernel void k(__global int *a) {"
            " size_t i = get_global_id(0); if (i > 1) return; a[i] = 7; }",
            (4,),
            a=a,
        )
        assert np.array_equal(a, [7, 7, 0, 0])


class TestWorkItemFunctions:
    def test_local_and_group_ids(self):
        lid = np.zeros(8, dtype=np.int32)
        gid = np.zeros(8, dtype=np.int32)
        run(
            "__kernel void k(__global int *lid, __global int *gid) {"
            " size_t i = get_global_id(0);"
            " lid[i] = get_local_id(0); gid[i] = get_group_id(0); }",
            (8,),
            (4,),
            lid=lid,
            gid=gid,
        )
        assert np.array_equal(lid, [0, 1, 2, 3, 0, 1, 2, 3])
        assert np.array_equal(gid, [0, 0, 0, 0, 1, 1, 1, 1])

    def test_sizes(self):
        out = np.zeros(3, dtype=np.int32)
        run(
            "__kernel void k(__global int *out) {"
            " out[0] = get_global_size(0);"
            " out[1] = get_local_size(0);"
            " out[2] = get_num_groups(0); }",
            (6,),
            (2,),
            out=out,
        )
        assert np.array_equal(out, [6, 2, 3])

    def test_out_of_range_dim(self):
        out = np.zeros(2, dtype=np.int32)
        run(
            "__kernel void k(__global int *out) {"
            " out[0] = get_global_id(2); out[1] = get_global_size(2); }",
            (2,),
            out=out,
        )
        assert np.array_equal(out, [0, 1])


class TestArithmeticSemantics:
    def test_int32_wraparound(self):
        a = np.array([2**31 - 1], dtype=np.int32)
        run(
            "__kernel void k(__global int *a) { a[0] = a[0] + 1; }",
            (1,),
            a=a,
        )
        assert a[0] == -(2**31)

    def test_truncating_division(self):
        a = np.array([-7, 7], dtype=np.int32)
        run(
            "__kernel void k(__global int *a) { a[0] = a[0] / 2; a[1] = a[1] / 2; }",
            (1,),
            a=a,
        )
        assert np.array_equal(a, [-3, 3])  # C truncates toward zero

    def test_c_modulo_sign(self):
        a = np.array([-7], dtype=np.int32)
        run("__kernel void k(__global int *a) { a[0] = a[0] % 3; }", (1,), a=a)
        assert a[0] == -1  # C: sign follows dividend

    def test_division_by_zero(self):
        a = np.array([1], dtype=np.int32)
        with pytest.raises(InterpError):
            run("__kernel void k(__global int *a) { a[0] = a[0] / 0; }", (1,), a=a)

    def test_increment_semantics(self):
        a = np.zeros(2, dtype=np.int32)
        run(
            "__kernel void k(__global int *a) {"
            " int i = 5; a[0] = i++; a[1] = ++i; }",
            (1,),
            a=a,
        )
        assert np.array_equal(a, [5, 7])

    def test_compound_assign_to_memory(self):
        a = np.array([10], dtype=np.int32)
        run("__kernel void k(__global int *a) { a[0] += 5; }", (1,), a=a)
        assert a[0] == 15

    def test_shift_and_bitops(self):
        a = np.array([0b1010], dtype=np.int32)
        run(
            "__kernel void k(__global int *a) { a[0] = (a[0] << 2) | 1; }",
            (1,),
            a=a,
        )
        assert a[0] == 0b101001

    def test_ternary(self):
        a = np.array([4, -4], dtype=np.int32)
        run(
            "__kernel void k(__global int *a) {"
            " size_t i = get_global_id(0); a[i] = a[i] > 0 ? 1 : -1; }",
            (2,),
            a=a,
        )
        assert np.array_equal(a, [1, -1])

    def test_float_cast(self):
        a = np.array([0], dtype=np.int32)
        run("__kernel void k(__global int *a) { a[0] = (int)2.9; }", (1,), a=a)
        assert a[0] == 2


class TestVectors:
    def test_vector_copy_and_arith(self):
        a = np.arange(16, dtype=np.int32)
        c = np.zeros(16, dtype=np.int32)
        run(
            "__kernel void k(__global const int4 *a, __global int4 *c) {"
            " size_t i = get_global_id(0); c[i] = a[i] + a[i]; }",
            (4,),
            a=a,
            c=c,
        )
        assert np.array_equal(c, 2 * a)

    def test_vector_literal_and_swizzle(self):
        out = np.zeros(4, dtype=np.int32)
        run(
            "__kernel void k(__global int *out) {"
            " int4 v = (int4)(10, 20, 30, 40);"
            " out[0] = v.x; out[1] = v.s3; out[2] = v.lo.y; out[3] = v.hi.x; }",
            (1,),
            out=out,
        )
        assert np.array_equal(out, [10, 40, 20, 30])

    def test_swizzle_store(self):
        out = np.zeros(4, dtype=np.int32)
        run(
            "__kernel void k(__global int4 *out) {"
            " int4 v = (int4)(0); v.s1 = 9; out[0] = v; }",
            (1,),
            out=out,
        )
        assert np.array_equal(out, [0, 9, 0, 0])

    def test_scalar_broadcast(self):
        out = np.zeros(4, dtype=np.int32)
        run(
            "__kernel void k(__global int4 *out, const int q) {"
            " out[0] = (int4)(1, 2, 3, 4) * q; }",
            (1,),
            out=out,
            q=3,
        )
        assert np.array_equal(out, [3, 6, 9, 12])


class TestGuards:
    def test_missing_argument(self):
        p = compile_source("__kernel void k(__global int *a) { a[0] = 1; }")
        with pytest.raises(InterpError):
            run_kernel(p, "k", (1,), {})

    def test_unknown_argument(self):
        p = compile_source("__kernel void k(__global int *a) { a[0] = 1; }")
        with pytest.raises(InterpError):
            run_kernel(
                p, "k", (1,), {"a": BufferArg(np.zeros(1, np.int32)), "zz": 1}
            )

    def test_wrong_dtype(self):
        a = np.zeros(4, dtype=np.float32)
        with pytest.raises(InterpError):
            run("__kernel void k(__global int *a) { a[0] = 1; }", (1,), a=a)

    def test_out_of_bounds(self):
        a = np.zeros(4, dtype=np.int32)
        with pytest.raises(InterpError):
            run("__kernel void k(__global int *a) { a[9] = 1; }", (1,), a=a)

    def test_bad_local_size(self):
        a = np.zeros(4, dtype=np.int32)
        with pytest.raises(InterpError):
            run(
                "__kernel void k(__global int *a) { a[0] = 1; }",
                (4,),
                (3,),
                a=a,
            )

    def test_barrier_rejected(self):
        a = np.zeros(4, dtype=np.int32)
        with pytest.raises(InterpError):
            run(
                "__kernel void k(__global int *a) { barrier(1); a[0] = 1; }",
                (2,),
                a=a,
            )

    def test_buffer_must_be_1d(self):
        with pytest.raises(InterpError):
            BufferArg(np.zeros((2, 2), dtype=np.int32))


class TestUserFunctions:
    def test_scalar_helper(self):
        src = """
int twice(const int x) { return x + x; }
__kernel void k(__global int *a) {
    size_t i = get_global_id(0);
    a[i] = twice(a[i]);
}
"""
        a = np.arange(8, dtype=np.int32)
        run(src, (8,), a=a)
        assert np.array_equal(a, 2 * np.arange(8))

    def test_nested_helpers(self):
        src = """
double sq(const double x) { return x * x; }
double poly(const double x) { return sq(x) + 2.0 * x + 1.0; }
__kernel void k(__global const double *a, __global double *c) {
    size_t i = get_global_id(0);
    c[i] = poly(a[i]);
}
"""
        a = np.linspace(-2, 2, 8)
        c = np.zeros(8)
        run(src, (8,), a=a, c=c)
        assert np.allclose(c, (a + 1) ** 2)

    def test_helper_with_buffer_argument(self):
        src = """
int head(__global const int *p) { return p[0]; }
__kernel void k(__global const int *a, __global int *c) {
    size_t i = get_global_id(0);
    c[i] = head(a) + (int)i;
}
"""
        a = np.full(4, 10, dtype=np.int32)
        c = np.zeros(4, dtype=np.int32)
        run(src, (4,), a=a, c=c)
        assert np.array_equal(c, [10, 11, 12, 13])

    def test_helper_with_control_flow(self):
        src = """
int clampi(const int x, const int lo, const int hi) {
    if (x < lo) return lo;
    if (x > hi) return hi;
    return x;
}
__kernel void k(__global int *a) {
    size_t i = get_global_id(0);
    a[i] = clampi(a[i], 0, 5);
}
"""
        a = np.array([-3, 2, 9, 5], dtype=np.int32)
        run(src, (4,), a=a)
        assert np.array_equal(a, [0, 2, 5, 5])

    def test_recursion_depth_guard(self):
        src = """
int boom(const int x) { return boom(x) + 1; }
__kernel void k(__global int *a) { a[0] = boom(1); }
"""
        a = np.zeros(1, dtype=np.int32)
        with pytest.raises(InterpError):
            run(src, (1,), a=a)
