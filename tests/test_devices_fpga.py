"""FPGA models: resources, fmax, pipeline synthesis, vendor quirks."""

from __future__ import annotations

import pytest

from repro.devices import BuildOptions, Launch
from repro.devices.fpga import (
    AoclModel,
    SdaccelModel,
    estimate_fmax,
    estimate_resources,
    synthesize,
)
from repro.devices.specs import STRATIX_V_AOCL, VIRTEX7_SDACCEL
from repro.errors import ResourceError
from repro.oclc import analyze, compile_source
from repro.units import GB, MIB

FLAT_COPY = (
    "__kernel void k(__global const int *a, __global int *c)"
    "{ for (int i = 0; i < N; i++) c[i] = a[i]; }"
)
NESTED_COPY = (
    "__kernel void k(__global const int *a, __global int *c)"
    "{ for (int i = 0; i < NI; i++) for (int j = 0; j < NJ; j++)"
    "  { int idx = i * NJ + j; c[idx] = a[idx]; } }"
)
NDRANGE_COPY = (
    "__kernel void k(__global const int *a, __global int *c)"
    "{ size_t i = get_global_id(0); c[i] = a[i]; }"
)


def ir_of(src, defines=None):
    return analyze(compile_source(src, defines))


def bw(model, src, n_bytes, defines=None, n_items=1):
    checked = compile_source(src, defines)
    plan = model.build(checked, BuildOptions())
    launch = Launch(
        global_size=(n_items,), buffer_bytes={"a": n_bytes, "c": n_bytes}
    )
    t = model.kernel_timing(plan, launch)
    return 2 * n_bytes / t.execution_s


class TestResources:
    def test_wider_lanes_cost_more_logic(self):
        ir = ir_of(FLAT_COPY, {"N": "1024"})
        r1 = estimate_resources(ir, STRATIX_V_AOCL, vector_width=1)
        r16 = estimate_resources(ir, STRATIX_V_AOCL, vector_width=16)
        assert r16.logic_cells > 4 * r1.logic_cells
        assert r16.bram_kbits > r1.bram_kbits

    def test_compute_units_cost_most(self):
        ir = ir_of(FLAT_COPY, {"N": "1024"})
        vec = estimate_resources(ir, STRATIX_V_AOCL, vector_width=8)
        cu = estimate_resources(ir, STRATIX_V_AOCL, compute_units=8)
        assert cu.logic_cells > vec.logic_cells

    def test_simd_costs_more_than_vec(self):
        ir = ir_of(NDRANGE_COPY)
        vec = estimate_resources(ir, STRATIX_V_AOCL, vector_width=8)
        simd = estimate_resources(ir, STRATIX_V_AOCL, simd=8)
        assert simd.logic_cells > vec.logic_cells

    def test_multipliers_use_dsp(self):
        triad = ir_of(
            "__kernel void k(__global const double *b, __global const double *c,"
            " __global double *a, const double q)"
            "{ for (int i = 0; i < 64; i++) a[i] = b[i] + q * c[i]; }"
        )
        r = estimate_resources(triad, STRATIX_V_AOCL, vector_width=4)
        assert r.dsp_blocks > 0

    def test_copy_uses_no_dsp(self):
        r = estimate_resources(ir_of(FLAT_COPY, {"N": "64"}), STRATIX_V_AOCL)
        assert r.dsp_blocks == 0

    def test_overflow_raises(self):
        ir = ir_of(FLAT_COPY, {"N": "64"})
        big = estimate_resources(ir, VIRTEX7_SDACCEL, vector_width=16, compute_units=4)
        with pytest.raises(ResourceError) as err:
            big.check("test design")
        assert err.value.used > err.value.available

    def test_report_summary(self):
        r = estimate_resources(ir_of(FLAT_COPY, {"N": "64"}), STRATIX_V_AOCL)
        assert "logic" in r.summary() and "%" in r.summary()
        assert r.fits


class TestFmax:
    def test_base_clock_for_minimal_kernel(self):
        ir = ir_of(FLAT_COPY, {"N": "64"})
        r = estimate_resources(ir, STRATIX_V_AOCL)
        f = estimate_fmax(STRATIX_V_AOCL, r)
        assert 0.9 * STRATIX_V_AOCL.base_fmax_hz < f <= STRATIX_V_AOCL.base_fmax_hz

    def test_fmax_falls_with_utilization(self):
        ir = ir_of(FLAT_COPY, {"N": "64"})
        f1 = estimate_fmax(
            STRATIX_V_AOCL, estimate_resources(ir, STRATIX_V_AOCL, vector_width=1)
        )
        f16 = estimate_fmax(
            STRATIX_V_AOCL, estimate_resources(ir, STRATIX_V_AOCL, vector_width=16)
        )
        assert f16 < 0.8 * f1


class TestPipelineSynthesis:
    def test_flat_loop_ii1_with_bursts_on_aocl(self):
        plan = synthesize(ir_of(FLAT_COPY, {"N": "1024"}), STRATIX_V_AOCL)
        assert plan.ii_cycles == 1.0
        assert plan.bursts

    def test_flat_loop_no_bursts_on_sdaccel(self):
        plan = synthesize(ir_of(FLAT_COPY, {"N": "1024"}), VIRTEX7_SDACCEL)
        assert not plan.bursts
        assert plan.ii_cycles > 1.0

    def test_nested_loop_restores_bursts_on_sdaccel(self):
        plan = synthesize(
            ir_of(NESTED_COPY, {"NI": "32", "NJ": "32"}), VIRTEX7_SDACCEL
        )
        assert plan.bursts
        assert plan.ii_cycles == 1.0

    def test_xcl_pipeline_loop_restores_bursts_on_flat(self):
        src = (
            "__kernel __attribute__((xcl_pipeline_loop)) void k"
            "(__global const int *a, __global int *c)"
            "{ for (int i = 0; i < 1024; i++) c[i] = a[i]; }"
        )
        plan = synthesize(ir_of(src), VIRTEX7_SDACCEL)
        assert plan.bursts

    def test_ndrange_ii_depends_on_reqd_wg(self):
        no_attr = synthesize(ir_of(NDRANGE_COPY), STRATIX_V_AOCL)
        with_attr = synthesize(
            ir_of(
                "__kernel __attribute__((reqd_work_group_size(256, 1, 1))) void k"
                "(__global const int *a, __global int *c)"
                "{ size_t i = get_global_id(0); c[i] = a[i]; }"
            ),
            STRATIX_V_AOCL,
        )
        assert with_attr.ii_cycles < no_attr.ii_cycles

    def test_simd_requires_reqd_wg(self):
        src = (
            "__kernel __attribute__((num_simd_work_items(4))) void k"
            "(__global const int *a, __global int *c)"
            "{ size_t i = get_global_id(0); c[i] = a[i]; }"
        )
        plan = synthesize(ir_of(src), STRATIX_V_AOCL)
        assert plan.simd == 1  # silently degraded, like aoc

    def test_strided_breaks_bursts(self):
        src = (
            "__kernel void k(__global const int *a, __global int *c)"
            "{ for (int j = 0; j < 32; j++) for (int i = 0; i < 32; i++)"
            "  { int idx = i * 32 + j; c[idx] = a[idx]; } }"
        )
        plan = synthesize(ir_of(src), STRATIX_V_AOCL)
        assert not plan.bursts


class TestVendorModels:
    def test_aocl_flat_copy_near_paper(self):
        model = AoclModel()
        n = 4 * MIB
        got = bw(model, FLAT_COPY, n, defines={"N": str(n // 4)})
        assert got == pytest.approx(2.45 * GB, rel=0.25)

    def test_sdaccel_nested_copy_near_paper(self):
        model = SdaccelModel()
        n = 4 * MIB
        got = bw(model, NESTED_COPY, n, defines={"NI": "1024", "NJ": "1024"})
        assert got == pytest.approx(0.76 * GB, rel=0.25)

    def test_sdaccel_nested_beats_flat(self):
        model = SdaccelModel()
        n = 4 * MIB
        nested = bw(model, NESTED_COPY, n, defines={"NI": "1024", "NJ": "1024"})
        flat = bw(model, FLAT_COPY, n, defines={"N": str(n // 4)})
        assert nested > 3 * flat

    def test_aocl_flat_beats_ndrange(self):
        model = AoclModel()
        n = 4 * MIB
        flat = bw(model, FLAT_COPY, n, defines={"N": str(n // 4)})
        nd = bw(model, NDRANGE_COPY, n, n_items=n // 4)
        assert flat > 3 * nd

    def test_vectorization_approaches_dram_limit(self):
        model = AoclModel()
        n = 4 * MIB
        src16 = (
            "__kernel void k(__global const int16 *a, __global int16 *c)"
            "{ for (int i = 0; i < N; i++) c[i] = a[i]; }"
        )
        w16 = bw(model, src16, n, defines={"N": str(n // 64)})
        w1 = bw(model, FLAT_COPY, n, defines={"N": str(n // 4)})
        assert 4 * w1 < w16 < 25.6 * GB

    def test_sdaccel_strided_collapse(self):
        model = SdaccelModel()
        n = 4 * MIB
        src = (
            "__kernel void k(__global const int *a, __global int *c)"
            "{ for (int j = 0; j < NJ; j++) for (int i = 0; i < NI; i++)"
            "  { int idx = i * NJ + j; c[idx] = a[idx]; } }"
        )
        strided = bw(model, src, n, defines={"NI": "1024", "NJ": "1024"})
        assert strided < 0.05 * GB  # the paper's 0.01 GB/s flat line

    def test_resource_overflow_fails_build(self):
        model = SdaccelModel()
        src = (
            "__kernel void k(__global const int16 *a, __global const int16 *b,"
            " __global int16 *c)"
            "{ for (int i = 0; i < 64; i++) c[i] = a[i] + b[i]; }"
        )
        checked = compile_source(src)
        with pytest.raises(ResourceError):
            model.build(checked, BuildOptions())

    def test_build_logs_explain_quirks(self):
        sd = SdaccelModel()
        plan = sd.build(compile_source(FLAT_COPY, {"N": "64"}), BuildOptions())
        assert "burst" in plan.build_log.lower()
        ao = AoclModel()
        plan = ao.build(compile_source(NDRANGE_COPY), BuildOptions())
        assert "reqd_work_group_size" in plan.build_log

    def test_compute_units_replicate(self):
        model = AoclModel()
        src = (
            "__kernel __attribute__((reqd_work_group_size(256, 1, 1)))"
            "__attribute__((num_compute_units(4))) void k"
            "(__global const int *a, __global int *c)"
            "{ size_t i = get_global_id(0); c[i] = a[i]; }"
        )
        plan = model.build(compile_source(src), BuildOptions())
        assert plan.payload.compute_units == 4
        n = 4 * MIB
        launch = Launch(global_size=(n // 4,), buffer_bytes={"a": n, "c": n})
        t = model.kernel_timing(plan, launch)
        assert t.execution_s > 0
