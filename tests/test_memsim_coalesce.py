"""Coalescing: warp grouping and FPGA burst inference."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidValueError
from repro.memsim.access import contiguous_stream, strided_stream, to_byte_addresses
from repro.memsim.coalesce import coalesce_fixed_groups, coalesce_sequential


class TestWarpCoalescing:
    def test_unit_stride_int32_minimal_transactions(self):
        addrs = to_byte_addresses(contiguous_stream(128), 4)
        res = coalesce_fixed_groups(addrs, 4, group_size=32, segment_bytes=128)
        # 32 lanes x 4B = 128B = exactly one segment per warp
        assert res.transactions == 4
        assert res.efficiency == pytest.approx(1.0)

    def test_column_walk_one_transaction_per_lane(self):
        addrs = to_byte_addresses(strided_stream(32, 1024), 4)
        res = coalesce_fixed_groups(addrs, 4, group_size=32, segment_bytes=128)
        assert res.transactions == 32
        assert res.efficiency == pytest.approx(4 / 128)

    def test_stride_two_doubles_transactions(self):
        addrs = to_byte_addresses(strided_stream(64, 2), 4)
        res = coalesce_fixed_groups(addrs, 4, group_size=32, segment_bytes=128)
        # each warp covers 32*8B = 256B -> 2 segments
        assert res.transactions == 4
        assert res.efficiency == pytest.approx(0.5)

    def test_partial_trailing_group(self):
        addrs = to_byte_addresses(contiguous_stream(40), 4)
        res = coalesce_fixed_groups(addrs, 4, group_size=32, segment_bytes=128)
        assert res.accesses == 40
        assert res.transactions == 2  # one full warp + one partial

    def test_empty(self):
        res = coalesce_fixed_groups(np.array([], dtype=np.int64), 4)
        assert res.transactions == 0 and res.efficiency == 0.0

    def test_invalid_sizes(self):
        with pytest.raises(InvalidValueError):
            coalesce_fixed_groups(np.zeros(1, np.int64), 0)


class TestBurstInference:
    def test_contiguous_merges_to_max_burst(self):
        addrs = to_byte_addresses(contiguous_stream(512), 4)
        res = coalesce_sequential(addrs, 4, max_burst_bytes=512)
        # 2048 sequential bytes / 512B bursts = 4 transactions
        assert res.transactions == 4
        assert res.efficiency == pytest.approx(1.0)

    def test_strided_breaks_every_burst(self):
        addrs = to_byte_addresses(strided_stream(100, 256), 4)
        res = coalesce_sequential(addrs, 4, max_burst_bytes=512)
        assert res.transactions == 100

    def test_mixed_runs(self):
        a = to_byte_addresses(contiguous_stream(16), 4)
        b = to_byte_addresses(contiguous_stream(16, start=1000), 4)
        res = coalesce_sequential(np.concatenate([a, b]), 4, max_burst_bytes=4096)
        assert res.transactions == 2

    def test_burst_cap_respected(self):
        addrs = to_byte_addresses(contiguous_stream(64), 4)  # 256 bytes
        res = coalesce_sequential(addrs, 4, max_burst_bytes=64)
        assert res.transactions == 4

    def test_invalid_burst_smaller_than_element(self):
        with pytest.raises(InvalidValueError):
            coalesce_sequential(np.zeros(1, np.int64), 8, max_burst_bytes=4)


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(1, 300),
    stride=st.integers(1, 64),
    element=st.sampled_from([4, 8, 16]),
)
def test_warp_coalescing_invariants(n, stride, element):
    """Properties: every access is covered exactly once; transaction count
    is bounded by accesses and by the minimal segment count."""
    addrs = to_byte_addresses(strided_stream(n, stride), element)
    res = coalesce_fixed_groups(addrs, element, group_size=32, segment_bytes=128)
    assert res.accesses == n
    assert 1 <= res.transactions <= n
    assert res.bytes_useful == n * element
    assert res.bytes_fetched == res.transactions * 128
    assert 0.0 < res.efficiency <= 1.0


@settings(max_examples=50, deadline=None)
@given(
    runs=st.lists(st.integers(1, 50), min_size=1, max_size=8),
    element=st.sampled_from([4, 8]),
    max_burst=st.sampled_from([64, 256, 1024]),
)
def test_burst_inference_invariants(runs, element, max_burst):
    """Properties: bursts never span run boundaries, never exceed the cap,
    and cover all bytes exactly once."""
    pieces = []
    base = 0
    for run in runs:
        pieces.append(to_byte_addresses(contiguous_stream(run, start=base), element))
        base += run + 100  # gap breaks the run
    addrs = np.concatenate(pieces)
    res = coalesce_sequential(addrs, element, max_burst_bytes=max_burst)
    assert res.bytes_useful == res.bytes_fetched == addrs.size * element
    expected_min = len(runs)  # at least one burst per run
    cap = max(1, max_burst // element)
    expected_exact = sum(-(-r // cap) for r in runs)
    assert res.transactions == expected_exact >= expected_min
