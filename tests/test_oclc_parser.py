"""Parser: grammar coverage and diagnostics."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.oclc import cast
from repro.oclc.parser import parse

COPY = """
__kernel void copy_k(__global const int *a, __global int *c) {
    size_t i = get_global_id(0);
    c[i] = a[i];
}
"""


class TestFunctions:
    def test_kernel_flag_and_name(self):
        unit = parse(COPY)
        k = unit.kernel()
        assert k.is_kernel and k.name == "copy_k"
        assert k.return_type == "void"

    def test_params(self):
        k = parse(COPY).kernel()
        assert [p.name for p in k.params] == ["a", "c"]
        assert all(p.is_pointer for p in k.params)
        assert k.params[0].address_space == "__global"
        assert "const" in k.params[0].qualifiers

    def test_scalar_param(self):
        src = "__kernel void f(__global int *a, const double q) { a[0] = q; }"
        k = parse(src).kernel()
        assert not k.params[1].is_pointer
        assert k.params[1].type_name == "double"

    def test_default_pointer_address_space_is_global(self):
        src = "__kernel void f(int *a) { a[0] = 1; }"
        assert parse(src).kernel().params[0].address_space == "__global"

    def test_multiple_functions_and_kernel_lookup(self):
        src = COPY + "\n__kernel void other(__global int *c) { c[0] = 1; }"
        unit = parse(src)
        assert unit.kernel("other").name == "other"
        with pytest.raises(ValueError):
            unit.kernel()  # ambiguous
        with pytest.raises(KeyError):
            unit.kernel("missing")

    def test_attributes(self):
        src = """
__kernel __attribute__((reqd_work_group_size(64, 1, 1)))
__attribute__((num_simd_work_items(4)))
void f(__global int *a) { a[0] = 1; }
"""
        k = parse(src).kernel()
        names = {a.name: a.args for a in k.attributes}
        assert names["reqd_work_group_size"] == (64, 1, 1)
        assert names["num_simd_work_items"] == (4,)

    def test_attribute_without_args(self):
        src = "__kernel __attribute__((xcl_pipeline_loop)) void f(__global int *a) { a[0]=1; }"
        k = parse(src).kernel()
        assert k.attributes[0].name == "xcl_pipeline_loop"
        assert k.attributes[0].args == ()


class TestStatements:
    def _body(self, code: str) -> cast.Block:
        return parse(f"__kernel void f(__global int *a) {{\n{code}\n}}").kernel().body

    def test_declarations(self):
        body = self._body("int x = 3; const int y = x;")
        decls = [s for s in body.body if isinstance(s, cast.DeclStmt)]
        assert [d.name for d in decls] == ["x", "y"]
        assert "const" in decls[1].qualifiers

    def test_if_else(self):
        body = self._body("if (a[0] > 0) a[0] = 1; else a[0] = 2;")
        stmt = body.body[0]
        assert isinstance(stmt, cast.If)
        assert stmt.other is not None

    def test_for_loop_decl_init(self):
        body = self._body("for (int i = 0; i < 8; i++) a[i] = i;")
        loop = body.body[0]
        assert isinstance(loop, cast.For)
        assert isinstance(loop.init, cast.DeclStmt)
        assert loop.unroll == 1

    def test_for_loop_expr_init(self):
        body = self._body("int i = 0; for (i = 0; i < 8; i++) a[i] = i;")
        loop = body.body[1]
        assert isinstance(loop.init, cast.ExprStmt)

    def test_pragma_unroll_attaches(self):
        body = self._body("#pragma unroll 4\nfor (int i = 0; i < 8; i++) a[i] = i;")
        loop = body.body[0]
        assert isinstance(loop, cast.For) and loop.unroll == 4

    def test_pragma_unroll_full(self):
        body = self._body("#pragma unroll\nfor (int i = 0; i < 8; i++) a[i] = i;")
        assert body.body[0].unroll == 0  # 0 = full unroll

    def test_pragma_unroll_requires_for(self):
        with pytest.raises(ParseError):
            self._body("#pragma unroll 4\nint x = 1;")

    def test_while_break_continue_return(self):
        body = self._body("while (1) { if (a[0]) break; continue; } return;")
        loop = body.body[0]
        assert isinstance(loop, cast.While)
        assert isinstance(body.body[1], cast.Return)

    def test_empty_statement(self):
        body = self._body(";")
        assert isinstance(body.body[0], cast.Block) and body.body[0].body == ()

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("__kernel void f(__global int *a) { a[0] = 1;")


class TestExpressions:
    def _expr(self, code: str) -> cast.Expr:
        body = parse(
            f"__kernel void f(__global int *a, __global int *b) {{ a[0] = {code}; }}"
        ).kernel().body
        stmt = body.body[0]
        assert isinstance(stmt, cast.ExprStmt)
        assert isinstance(stmt.expr, cast.Assign)
        return stmt.expr.value

    def test_precedence_mul_over_add(self):
        e = self._expr("1 + 2 * 3")
        assert isinstance(e, cast.Binary) and e.op == "+"
        assert isinstance(e.right, cast.Binary) and e.right.op == "*"

    def test_precedence_shift_vs_compare(self):
        e = self._expr("1 << 2 < 3")
        assert e.op == "<" and e.left.op == "<<"

    def test_parentheses(self):
        e = self._expr("(1 + 2) * 3")
        assert e.op == "*" and isinstance(e.left, cast.Binary) and e.left.op == "+"

    def test_left_associativity(self):
        e = self._expr("8 - 4 - 2")
        assert e.op == "-" and isinstance(e.left, cast.Binary)

    def test_ternary(self):
        e = self._expr("b[0] ? 1 : 2")
        assert isinstance(e, cast.Conditional)

    def test_unary_and_postfix(self):
        e = self._expr("-b[0]")
        assert isinstance(e, cast.Unary) and e.op == "-"

    def test_call(self):
        e = self._expr("max(b[0], 3)")
        assert isinstance(e, cast.Call) and e.func == "max" and len(e.args) == 2

    def test_cast_expression(self):
        e = self._expr("(double)b[0]")
        assert isinstance(e, cast.Cast) and e.type_name == "double"

    def test_vector_literal(self):
        src = """
__kernel void f(__global int4 *a) {
    int4 v = (int4)(1, 2, 3, 4);
    a[0] = v;
}
"""
        body = parse(src).kernel().body
        decl = body.body[0]
        assert isinstance(decl.init, cast.VectorLiteral)
        assert len(decl.init.elements) == 4

    def test_vector_splat(self):
        src = "__kernel void f(__global int4 *a) { a[0] = (int4)(7); }"
        stmt = parse(src).kernel().body.body[0]
        assert isinstance(stmt.expr.value, cast.VectorLiteral)

    def test_paren_cast_of_scalar_is_cast(self):
        e = self._expr("(double)(b[0])")
        assert isinstance(e, cast.Cast)

    def test_swizzle(self):
        src = "__kernel void f(__global int4 *a) { int4 v = a[0]; int x = v.s0; a[0] = v; }"
        body = parse(src).kernel().body
        assert isinstance(body.body[1].init, cast.Swizzle)

    def test_assignment_target_validation(self):
        with pytest.raises(ParseError):
            parse("__kernel void f(__global int *a) { 3 = a[0]; }")

    def test_compound_assignment(self):
        src = "__kernel void f(__global int *a) { a[0] += 2; }"
        stmt = parse(src).kernel().body.body[0]
        assert stmt.expr.op == "+="

    def test_unexpected_token(self):
        with pytest.raises(ParseError) as err:
            parse("__kernel void f(__global int *a) { a[0] = ; }")
        assert err.value.line > 0
