"""Result records, collections and reporting."""

from __future__ import annotations

import csv
import json

import pytest

from repro.core import (
    ParameterSweep,
    ResultSet,
    RunResult,
    TuningParameters,
    results_table,
    series_table,
    stream_table,
)
from repro.core.report import ascii_chart, markdown_table
from repro.errors import SweepError
from repro.units import KIB


def mk_result(target="cpu", bw_gbs=10.0, n_bytes=2 * KIB, **changes):
    params = TuningParameters(array_bytes=n_bytes).with_(**changes)
    moved = params.moved_bytes
    t = moved / (bw_gbs * 1e9)
    return RunResult(
        target=target,
        params=params,
        times=(t * 1.2, t, t * 1.1),
        moved_bytes=moved,
        validated=True,
    )


def mk_failure(**changes):
    params = TuningParameters(array_bytes=2 * KIB).with_(**changes)
    return RunResult(
        target="sdaccel",
        params=params,
        times=(),
        moved_bytes=params.moved_bytes,
        validated=False,
        error="ResourceError: does not fit",
    )


class TestRunResult:
    def test_best_time_bandwidth(self):
        r = mk_result(bw_gbs=10.0)
        assert r.bandwidth_gbs == pytest.approx(10.0)
        assert r.min_time < r.avg_time < r.max_time

    def test_failure_reports_zero(self):
        f = mk_failure()
        assert not f.ok
        assert f.bandwidth_gbs == 0.0
        assert "FAILED" in f.summary()

    def test_row_is_flat_and_json_safe(self):
        row = mk_result().row()
        json.dumps(row)  # no numpy or enum leakage
        assert row["kernel"] == "copy"
        assert row["target"] == "cpu"

    def test_summary_readable(self):
        text = mk_result(bw_gbs=25.0).summary()
        assert "cpu" in text and "GB/s" in text


class TestResultSet:
    def _set(self):
        return ResultSet(
            [
                mk_result(target="cpu", bw_gbs=25.0),
                mk_result(target="gpu", bw_gbs=200.0),
                mk_result(target="aocl", bw_gbs=2.5),
                mk_failure(),
            ]
        )

    def test_len_iter_index(self):
        rs = self._set()
        assert len(rs) == 4
        assert rs[1].target == "gpu"
        assert len(list(rs)) == 4

    def test_ok_filter(self):
        assert len(self._set().ok()) == 3

    def test_filter_by_fields(self):
        rs = self._set().filter(target="gpu")
        assert len(rs) == 1 and rs[0].target == "gpu"

    def test_best(self):
        assert self._set().best().target == "gpu"
        assert ResultSet([mk_failure()]).best() is None

    def test_series(self):
        rs = ResultSet([mk_result(vector_width=w, bw_gbs=w * 1.0) for w in (1, 2, 4)])
        series = rs.series("vector_width")
        assert series == [(1, pytest.approx(1.0)), (2, pytest.approx(2.0)), (4, pytest.approx(4.0))]

    def test_to_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        self._set().to_csv(str(path))
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 4
        assert rows[1]["target"] == "gpu"

    def test_to_json(self, tmp_path):
        path = tmp_path / "out.json"
        text = self._set().to_json(str(path))
        data = json.loads(text)
        assert len(data) == 4
        assert json.loads(path.read_text()) == data

    def test_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultSet().to_csv(str(tmp_path / "x.csv"))

    def test_to_csv_accepts_path_and_makes_parents(self, tmp_path):
        path = tmp_path / "new" / "dirs" / "out.csv"
        self._set().to_csv(path)  # Path object, parents absent
        with open(path) as fh:
            assert len(list(csv.DictReader(fh))) == 4

    def test_to_json_makes_parents(self, tmp_path):
        path = tmp_path / "deep" / "out.json"
        self._set().to_json(path)
        assert len(json.loads(path.read_text())) == 4

    def test_failure_kind_in_row_and_histogram(self):
        kinds = self._set().failure_kinds()
        assert kinds == {"unclassified": 1}  # mk_failure sets no kind
        tagged = RunResult(
            target="cpu",
            params=TuningParameters(array_bytes=2 * KIB),
            times=(),
            moved_bytes=0,
            validated=False,
            error="PointTimeoutError: too slow",
            failure_kind="timeout",
        )
        rs = ResultSet([tagged, mk_failure()])
        assert rs[0].row()["failure_kind"] == "timeout"
        assert rs.failure_kinds() == {"timeout": 1, "unclassified": 1}
        assert len(rs.failed()) == 2


class TestSweep:
    def test_cartesian_points(self):
        sweep = ParameterSweep(
            axes={"vector_width": [1, 2], "array_bytes": [2 * KIB, 4 * KIB]}
        )
        points = list(sweep.points())
        assert len(points) == len(sweep) == 4
        assert {(p.vector_width, p.array_bytes) for p in points} == {
            (1, 2048),
            (1, 4096),
            (2, 2048),
            (2, 4096),
        }

    def test_invalid_axis_name(self):
        with pytest.raises(SweepError):
            ParameterSweep(axes={"warp_speed": [9]})

    def test_empty_axis(self):
        with pytest.raises(SweepError):
            ParameterSweep(axes={"vector_width": []})

    def test_invalid_combinations_skipped(self):
        from repro.core import LoopManagement

        sweep = ParameterSweep(
            base=TuningParameters(array_bytes=2 * KIB, loop=LoopManagement.NDRANGE),
            axes={"unroll": [1, 4]},  # unroll 4 invalid for NDRange
        )
        points = list(sweep.points())
        assert len(points) == 1
        assert len(sweep.skipped) == 1
        assert sweep.skipped[0][0] == {"unroll": 4}


class TestReporting:
    def test_stream_table(self):
        text = stream_table([mk_result(kernel_bw) for kernel_bw in []] or [mk_result()])
        assert "Function" in text and "copy" in text

    def test_stream_table_shows_failures(self):
        text = stream_table([mk_failure()])
        assert "FAILED" in text

    def test_results_table_alignment(self):
        text = results_table(ResultSet([mk_result(), mk_result(target="gpu")]))
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, 2 rows
        assert len(set(len(line) for line in lines[:2])) == 1

    def test_results_table_empty(self):
        assert results_table(ResultSet()) == "(no results)"

    def test_series_table(self):
        text = series_table(
            {"cpu": [(1, 25.0), (2, 26.0)], "gpu": [(1, 170.0)]}, x_label="width"
        )
        assert "width" in text and "cpu" in text and "-" in text
        assert "170.000" in text

    def test_markdown_table(self):
        text = markdown_table({"cpu": [(1, 25.0)]}, x_label="N")
        assert text.startswith("| N | cpu |")
        assert "| 25.000 |" in text

    def test_ascii_chart_renders(self):
        chart = ascii_chart(
            {"a": [(1.0, 1.0), (10.0, 10.0)], "b": [(1.0, 5.0)]},
            width=32,
            height=8,
            title="demo",
        )
        assert "demo" in chart
        assert "o" in chart and "x" in chart
        assert "a" in chart.splitlines()[-1]

    def test_ascii_chart_empty(self):
        assert ascii_chart({}) == "(no data)"
