"""Result persistence/comparison and roofline placement."""

from __future__ import annotations

import pytest

from repro.core import (
    BenchmarkRunner,
    KernelName,
    ResultSet,
    TuningParameters,
    Watchdog,
    compare_results,
    load_results,
    peak_compute_flops,
    roofline_point,
    save_results,
)
from repro.devices.specs import (
    GTX_TITAN_BLACK,
    STRATIX_V_AOCL,
    XEON_E5_2609V2,
)
from repro.errors import BenchmarkError, InvalidValueError
from repro.oclc import analyze, compile_source
from repro.units import KIB, MIB


def small_run(target="cpu", **changes):
    params = TuningParameters(array_bytes=64 * KIB).with_(**changes)
    return BenchmarkRunner(target, ntimes=1).run(params)


class TestHistory:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        results = [small_run(), small_run(vector_width=4)]
        assert save_results(results, path) == 2
        loaded = load_results(path)
        assert len(loaded) == 2
        assert loaded[0].params == results[0].params
        assert loaded[1].bandwidth_gbs == pytest.approx(results[1].bandwidth_gbs)
        assert loaded[0].target == "cpu"

    def test_append_mode(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        save_results([small_run()], path)
        save_results([small_run(vector_width=2)], path)
        assert len(load_results(path)) == 2

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text("this is not json\n")
        with pytest.raises(BenchmarkError):
            load_results(path)

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text('{"schema": 99}\n')
        with pytest.raises(BenchmarkError):
            load_results(path)

    def test_failed_results_roundtrip(self, tmp_path):
        from repro.core import LoopManagement

        failed = BenchmarkRunner("sdaccel", ntimes=1).run(
            TuningParameters(
                array_bytes=64 * KIB,
                kernel=KernelName.ADD,
                vector_width=16,
                loop=LoopManagement.NESTED,
            )
        )
        path = tmp_path / "runs.jsonl"
        save_results([failed], path)
        loaded = load_results(path)
        assert not loaded[0].ok
        assert "fit" in loaded[0].error

    def test_failed_result_error_text_and_kind_preserved_exactly(self, tmp_path):
        from repro.core import LoopManagement

        failed = BenchmarkRunner("sdaccel", ntimes=1).run(
            TuningParameters(
                array_bytes=64 * KIB,
                kernel=KernelName.ADD,
                vector_width=16,
                loop=LoopManagement.NESTED,
            )
        )
        assert failed.failure_kind  # the engine classified it
        timed_out = BenchmarkRunner(
            "cpu", ntimes=1, watchdog=Watchdog(virtual_s=1e-12)
        ).run(TuningParameters(array_bytes=64 * KIB))
        assert timed_out.failure_kind == "timeout"
        path = tmp_path / "runs.jsonl"
        save_results([failed, timed_out], path)
        loaded = load_results(path)
        for original, restored in zip([failed, timed_out], loaded):
            assert restored.error == original.error
            assert restored.failure_kind == original.failure_kind
            assert restored.validated is False

    def test_save_results_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "a" / "b" / "runs.jsonl"
        assert save_results([small_run()], path) == 1
        assert len(load_results(path)) == 1


class TestCompare:
    def test_classification(self):
        base = small_run()
        improved = BenchmarkRunner("cpu", ntimes=1).run(
            TuningParameters(array_bytes=1 * MIB)
        )
        before = ResultSet([base])
        after = ResultSet([base, improved])
        entries = compare_results(before, after)
        by_status = {e.status for e in entries}
        assert "new" in by_status
        unchanged = [e for e in entries if e.status == "unchanged"]
        assert unchanged and unchanged[0].ratio == pytest.approx(1.0)

    def test_removed(self):
        r = small_run()
        entries = compare_results(ResultSet([r]), ResultSet())
        assert entries[0].status == "removed"
        assert entries[0].after_gbs is None


class TestRoofline:
    def _ir(self, kernel=KernelName.TRIAD, width=1):
        from repro.core import generate

        gen = generate(
            TuningParameters(array_bytes=64 * KIB, kernel=kernel, vector_width=width)
        )
        program = compile_source(
            gen.source, {k: str(v) for k, v in gen.defines.items()}
        )
        return analyze(program, gen.kernel_name)

    def test_stream_kernels_are_memory_bound_everywhere(self):
        ir = self._ir()
        for target, spec in [
            ("cpu", XEON_E5_2609V2),
            ("gpu", GTX_TITAN_BLACK),
            ("aocl", STRATIX_V_AOCL),
        ]:
            result = small_run(target, kernel=KernelName.TRIAD)
            point = roofline_point(result, ir, spec)
            assert point.is_memory_bound, target
            assert 0 < point.roof_fraction <= 1.2

    def test_copy_has_zero_intensity(self):
        ir = self._ir(kernel=KernelName.COPY)
        result = small_run(kernel=KernelName.COPY)
        point = roofline_point(result, ir, XEON_E5_2609V2)
        assert point.arithmetic_intensity == 0.0
        assert point.roof_fraction > 0  # measured against the bandwidth roof

    def test_triad_intensity_value(self):
        # triad: 2 lane-ops per 12 bytes (int32, width 1)
        ir = self._ir(kernel=KernelName.TRIAD)
        result = small_run(kernel=KernelName.TRIAD)
        point = roofline_point(result, ir, XEON_E5_2609V2)
        assert point.arithmetic_intensity == pytest.approx(2 / 12)

    def test_peak_compute_rules(self):
        assert peak_compute_flops(XEON_E5_2609V2) == pytest.approx(4 * 2.5e9 * 8)
        assert peak_compute_flops(GTX_TITAN_BLACK) == pytest.approx(15 * 192 * 889e6)
        assert peak_compute_flops(STRATIX_V_AOCL) > 0

    def test_failed_result_rejected(self):
        from repro.core import LoopManagement

        failed = BenchmarkRunner("sdaccel", ntimes=1).run(
            TuningParameters(
                array_bytes=64 * KIB,
                kernel=KernelName.ADD,
                vector_width=16,
                loop=LoopManagement.NESTED,
            )
        )
        with pytest.raises(InvalidValueError):
            roofline_point(failed, self._ir(), STRATIX_V_AOCL)

    def test_summary_text(self):
        ir = self._ir()
        point = roofline_point(small_run(kernel=KernelName.TRIAD), ir, XEON_E5_2609V2)
        assert "memory-bound" in point.summary()
