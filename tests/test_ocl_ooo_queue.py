"""Out-of-order queues: engines, wait lists, transfer/kernel overlap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidValueError
from repro.ocl import CommandQueue, Context, Program
from repro.ocl.events import CommandType, Event

COPY_SRC = """
__kernel void copy_k(__global const int *a, __global int *c) {
    size_t i = get_global_id(0);
    c[i] = a[i];
}
"""


def make_queue(device, out_of_order=True):
    ctx = Context(device)
    return ctx, CommandQueue(ctx, device, out_of_order=out_of_order)


class TestEngines:
    def test_h2d_and_d2h_overlap(self, gpu_device):
        """Opposite-direction DMA engines run concurrently when OOO."""
        ctx, q = make_queue(gpu_device)
        a = ctx.create_buffer(size=4 * 1024 * 1024)
        b = ctx.create_buffer(hostbuf=np.ones(1024 * 1024, np.int32))
        src = np.zeros(1024 * 1024, np.int32)
        dst = np.zeros(1024 * 1024, np.int32)
        w = q.enqueue_write_buffer(a, src)
        r = q.enqueue_read_buffer(b, dst)
        # both started without waiting on each other
        assert r.start < w.end

    def test_same_engine_serializes(self, gpu_device):
        ctx, q = make_queue(gpu_device)
        buf = ctx.create_buffer(size=4 * 1024 * 1024)
        src = np.zeros(1024 * 1024, np.int32)
        w1 = q.enqueue_write_buffer(buf, src)
        w2 = q.enqueue_write_buffer(buf, src)
        assert w2.start >= w1.end

    def test_kernel_overlaps_transfer(self, gpu_device):
        """The classic double-buffering win: a kernel on buffer A runs
        while buffer B uploads."""
        ctx, q = make_queue(gpu_device)
        prog = Program(ctx, COPY_SRC).build()
        k = prog.create_kernel("copy_k")
        a = ctx.create_buffer(hostbuf=np.arange(1 << 20, dtype=np.int32))
        a.residency = "device"
        c = ctx.create_buffer(size=4 << 20)
        k.set_args(a=a, c=c)
        other = ctx.create_buffer(size=16 << 20)
        ev_kernel = q.enqueue_nd_range_kernel(k, (1 << 20,))
        ev_write = q.enqueue_write_buffer(other, np.zeros(4 << 20, np.int32))
        assert ev_write.start < ev_kernel.end  # overlapped

    def test_in_order_never_overlaps(self, gpu_device):
        ctx, q = make_queue(gpu_device, out_of_order=False)
        buf = ctx.create_buffer(size=4 * 1024 * 1024)
        dst = np.zeros(1024 * 1024, np.int32)
        w = q.enqueue_write_buffer(buf, dst)
        r = q.enqueue_read_buffer(buf, dst)
        assert r.queued >= w.end


class TestWaitLists:
    def test_wait_for_orders_commands(self, gpu_device):
        ctx, q = make_queue(gpu_device)
        buf = ctx.create_buffer(size=1 << 20)
        dst = np.zeros(1 << 18, np.int32)
        w = q.enqueue_write_buffer(buf, dst)
        r = q.enqueue_read_buffer(buf, dst, wait_for=[w])
        assert r.submit >= w.end

    def test_marker_joins_engines(self, gpu_device):
        ctx, q = make_queue(gpu_device)
        buf = ctx.create_buffer(size=1 << 20)
        dst = np.zeros(1 << 18, np.int32)
        w = q.enqueue_write_buffer(buf, dst)
        r = q.enqueue_read_buffer(buf, dst)
        m = q.enqueue_marker(wait_for=[w, r])
        assert m.command is CommandType.MARKER
        assert m.end >= max(w.end, r.end)
        assert m.duration == 0.0

    def test_incomplete_dependency_rejected(self, gpu_device):
        ctx, q = make_queue(gpu_device)
        buf = ctx.create_buffer(size=1 << 20)
        pending = Event(command=CommandType.MARKER)  # complete=False
        with pytest.raises(InvalidValueError):
            q.enqueue_write_buffer(buf, np.zeros(16, np.int32), wait_for=[pending])

    def test_finish_covers_all_engines(self, gpu_device):
        ctx, q = make_queue(gpu_device)
        buf = ctx.create_buffer(size=4 << 20)
        w = q.enqueue_write_buffer(buf, np.zeros(1 << 20, np.int32))
        dst = np.zeros(4, np.int32)
        r = q.enqueue_read_buffer(buf, dst)
        assert q.finish() == max(w.end, r.end)


class TestDoubleBufferedPipeline:
    def test_pipelining_beats_serial(self, gpu_device):
        """Streaming N chunks with overlap must finish faster than the
        same chunks through an in-order queue."""
        chunks = 6
        chunk_words = 1 << 20

        def stream(out_of_order: bool) -> float:
            ctx, q = make_queue(gpu_device, out_of_order=out_of_order)
            prog = Program(ctx, COPY_SRC).build()
            bufs = [
                (
                    ctx.create_buffer(size=4 * chunk_words),
                    ctx.create_buffer(size=4 * chunk_words),
                )
                for _ in range(2)
            ]
            data = np.arange(chunk_words, dtype=np.int32)
            last_kernel_on: list[Event | None] = [None, None]
            for i in range(chunks):
                pair = i % 2
                a, c = bufs[pair]
                # the upload may only clobber the buffer once the kernel
                # that last read it (two iterations ago) has finished
                prev = last_kernel_on[pair]
                deps = [prev] if (out_of_order and prev) else None
                w = q.enqueue_write_buffer(a, data, wait_for=deps)
                k = prog.create_kernel("copy_k")
                k.set_args(a=a, c=c)
                last_kernel_on[pair] = q.enqueue_nd_range_kernel(
                    k, (chunk_words,), wait_for=[w] if out_of_order else None
                )
            return q.finish()

        serial = stream(out_of_order=False)
        pipelined = stream(out_of_order=True)
        assert pipelined < 0.9 * serial
