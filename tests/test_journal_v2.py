"""Crash-consistent journal WAL v2 (repro.core.history.SweepJournal).

The contract under test: every record carries CRC32 + length framing
over its canonical serialization; a crash mid-append leaves at most
one torn final line, which ``load()`` truncates *exactly*; mid-file
damage is quarantined to a sidecar and reported — never silently
dropped; ``fsck`` detects every injected corruption with zero false
positives on clean journals; v1 journals still load (read-compat,
flagged deprecated); ``compact`` folds a rotated family back into one
deduplicated all-v2 live file; and journal failure mid-campaign is
*degradation, not death*. The end-to-end kill -9 proof lives in
``tests/test_chaos.py``.
"""

from __future__ import annotations

import json

import pytest

import repro.core.history as history
from repro.cli import main as cli_main
from repro.core import (
    CampaignScheduler,
    ExecutionEngine,
    ParameterSweep,
    SweepJournal,
    TuningParameters,
    compact_journal,
    explore,
    fsck_journal,
    point_fingerprint,
)
from repro.errors import DiskFullError, JournalError, SweepError, failure_kind
from repro.faults import FaultPlan
from repro.obs import events as obs_events
from repro.units import KIB

AXES = {"vector_width": [1, 2, 4], "array_bytes": [32 * KIB, 64 * KIB]}


def _sweep() -> ParameterSweep:
    return ParameterSweep(base=TuningParameters(array_bytes=32 * KIB), axes=AXES)


def _engine(faults: str | None = None, **kw) -> ExecutionEngine:
    kw.setdefault("ntimes", 1)
    if faults is not None:
        kw["faults"] = FaultPlan.parse(faults)
    return ExecutionEngine("gpu", **kw)


@pytest.fixture(scope="module")
def sample():
    """(key, result) pairs of one clean campaign, in grid order."""
    engine = _engine()
    results = explore(engine, _sweep())
    keys = [point_fingerprint(engine.target, p) for p in _sweep().points()]
    return list(zip(keys, results))


def _write_journal(path, sample, **kw) -> SweepJournal:
    journal = SweepJournal(path, **kw)
    for key, result in sample:
        journal.record(key, result)
    return journal


def _fps(pairs_or_results) -> set:
    return {r.fingerprint() for r in pairs_or_results}


class TestV2Format:
    def test_records_are_flat_json_with_framing(self, tmp_path, sample):
        path = tmp_path / "j.jsonl"
        _write_journal(path, sample)
        lines = path.read_text().splitlines()
        assert len(lines) == len(sample)
        for line, (key, result) in zip(lines, sample):
            record = json.loads(line)  # one flat object: v1 readers work
            assert record["schema"] == 2
            assert record["point"] == key
            assert record["fingerprint"] == result.fingerprint()
            assert len(record["crc32"]) == 8
            assert record["nbytes"] == len(history._journal_payload(record))

    def test_roundtrip_restores_identical_fingerprints(self, tmp_path, sample):
        path = tmp_path / "j.jsonl"
        _write_journal(path, sample)
        restored = SweepJournal(path).load()
        assert {k: r.fingerprint() for k, r in restored.items()} == {
            k: r.fingerprint() for k, r in sample
        }

    def test_v1_journals_still_load_with_deprecation_note(self, tmp_path, sample):
        path = tmp_path / "v1.jsonl"
        with path.open("w") as fh:
            for key, result in sample:
                record = history._result_to_record(result, detail=True)
                record["schema"] = 1
                record["point"] = key
                record["fingerprint"] = result.fingerprint()
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        journal = SweepJournal(path)
        restored = journal.load()
        assert len(restored) == len(sample)
        assert journal.v1_loaded == len(sample)
        assert journal.discarded == 0
        report = fsck_journal(path)
        assert report.clean and report.v1_records == len(sample)
        assert any("deprecated" in note for note in report.notes)


class TestTornTail:
    def test_torn_final_record_truncated_exactly(self, tmp_path, sample):
        path = tmp_path / "j.jsonl"
        _write_journal(path, sample)
        intact = path.read_bytes()
        key, result = sample[0]
        path.write_bytes(intact + history._journal_line(key, result)[:37])
        journal = SweepJournal(path)
        restored = journal.load()
        assert len(restored) == len(sample)
        assert journal.discarded == 1 and journal.repaired == 1
        assert path.read_bytes() == intact  # exact truncation, nothing else
        assert journal.load_report.torn_tail == 1

    def test_unterminated_but_intact_tail_repaired_without_loss(
        self, tmp_path, sample
    ):
        path = tmp_path / "j.jsonl"
        _write_journal(path, sample)
        intact = path.read_bytes()
        path.write_bytes(intact[:-1])  # the tear landed on the newline
        journal = SweepJournal(path)
        restored = journal.load()
        assert len(restored) == len(sample)  # no data loss
        assert journal.discarded == 0 and journal.repaired == 1
        assert path.read_bytes() == intact  # re-terminated in place

    def test_torn_write_fault_tears_and_hard_exits(
        self, tmp_path, sample, monkeypatch
    ):
        exits: list[int] = []

        def fake_exit(code: int):
            exits.append(code)
            raise SystemExit(code)

        monkeypatch.setattr(history.os, "_exit", fake_exit)
        plan = FaultPlan.parse("journal_write=1.0,seed=3")
        journal = SweepJournal(tmp_path / "j.jsonl", faults=plan)
        key, result = sample[0]
        with pytest.raises(SystemExit):
            journal.record(key, result)
        assert exits == [history.TORN_WRITE_EXIT_CODE]
        data = (tmp_path / "j.jsonl").read_bytes()
        full = history._journal_line(key, result)
        assert 0 < len(data) < len(full)  # a strict prefix...
        assert not data.endswith(b"\n")  # ...never a terminated line


class TestQuarantine:
    def test_midfile_corruption_quarantined_not_dropped(self, tmp_path, sample):
        path = tmp_path / "j.jsonl"
        _write_journal(path, sample)
        lines = path.read_text().splitlines()
        lines[2] = lines[2].replace('"schema": 2', '"schema": 2, ')
        # re-frame nothing: the edit breaks the recorded nbytes/crc32
        path.write_text("\n".join(lines) + "\n")
        journal = SweepJournal(path)
        restored = journal.load()
        assert len(restored) == len(sample) - 1
        assert journal.discarded == 1
        sidecar = path.with_name(path.name + ".quarantine")
        assert sidecar.exists()
        entry = json.loads(sidecar.read_text().splitlines()[0])
        assert entry["file"] == path.name and entry["lineno"] == 3
        assert entry["reason"]
        # the damaged line is gone from the live file, and a second
        # load sees a clean journal
        assert len(path.read_text().splitlines()) == len(sample) - 1
        assert fsck_journal(path).clean

    def test_stale_fingerprint_quarantined(self, tmp_path, sample):
        path = tmp_path / "j.jsonl"
        _write_journal(path, sample)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["fingerprint"] = "0" * 16
        # recompute the framing so only the fingerprint check can fail
        lines[1] = json.dumps(history._frame_record(record), sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        report = fsck_journal(path)
        assert report.stale == 1 and report.corrupt == 0
        journal = SweepJournal(path)
        restored = journal.load()
        assert len(restored) == len(sample) - 1
        assert journal.discarded == 1

    def test_load_emits_dropped_records_event(self, tmp_path, sample):
        path = tmp_path / "j.jsonl"
        _write_journal(path, sample)
        data = path.read_text().splitlines()
        data[0] = data[0][:-5] + "garbo"
        path.write_text("\n".join(data) + "\n")
        events_path = tmp_path / "events.jsonl"
        with obs_events.use_log(obs_events.EventLog(events_path)):
            SweepJournal(path).load()
        events = [json.loads(x) for x in events_path.read_text().splitlines()]
        dropped = [e for e in events if e["event"] == "journal_dropped_records"]
        assert len(dropped) == 1
        assert dropped[0]["dropped"] == 1 and dropped[0]["corrupt"] == 1


class TestFsck:
    def test_zero_false_positives_on_clean_journals(self, tmp_path, sample):
        path = tmp_path / "j.jsonl"
        _write_journal(path, sample)
        report = fsck_journal(path)
        assert report.clean
        assert report.valid == len(sample) and report.dropped == 0
        assert report.notes == ()
        assert "status: clean" in report.describe()

    def test_detects_flipped_bytes(self, tmp_path, sample):
        path = tmp_path / "j.jsonl"
        _write_journal(path, sample)
        intact = path.read_bytes()
        good = _fps(r for _, r in sample)
        lines = intact.splitlines(keepends=True)
        step = max(1, len(lines[1]) // 7)
        for offset in range(1, len(lines[1]) - 2, step):
            mutated = bytearray(lines[1])
            mutated[offset] ^= 0x20
            if bytes(mutated) == lines[1]:
                continue
            path.write_bytes(lines[0] + bytes(mutated) + b"".join(lines[2:]))
            report = fsck_journal(path)
            assert not report.clean, f"missed a flip at offset {offset}"
            # whatever survives the flip, load never restores wrong data
            restored = SweepJournal(path).load()
            assert _fps(restored.values()) <= good
        path.write_bytes(intact)
        assert fsck_journal(path).clean

    def test_truncated_mid_record_is_torn(self, tmp_path, sample):
        path = tmp_path / "j.jsonl"
        _write_journal(path, sample)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 20])
        report = fsck_journal(path)
        assert report.torn_tail == 1 and report.corrupt == 0
        assert not report.clean

    def test_cli_fsck_exit_codes(self, tmp_path, sample, capsys):
        path = tmp_path / "j.jsonl"
        assert cli_main(["journal", "fsck", str(path)]) == 2  # missing
        _write_journal(path, sample)
        assert cli_main(["journal", "fsck", str(path)]) == 0  # clean
        path.write_bytes(path.read_bytes()[:-9])
        assert cli_main(["journal", "fsck", str(path)]) == 1  # damaged
        out = capsys.readouterr().out
        assert "torn" in out


class TestRotationAndCompaction:
    def test_rotation_seals_segments_and_load_spans_them(self, tmp_path, sample):
        path = tmp_path / "j.jsonl"
        journal = _write_journal(path, sample, rotate_records=2)
        segments = sorted(tmp_path.glob("j.jsonl.seg-*"))
        assert len(segments) == len(sample) // 2
        assert journal.exists()
        restored = SweepJournal(path).load()
        assert len(restored) == len(sample)
        report = fsck_journal(path)
        assert report.clean and len(report.files) == len(segments)

    def test_compact_dedups_upgrades_and_removes_segments(self, tmp_path, sample):
        path = tmp_path / "j.jsonl"
        journal = _write_journal(path, sample, rotate_records=2)
        key0, result0 = sample[0]
        journal.record(key0, result0)  # duplicate key: latest must win
        record = history._result_to_record(result0, detail=True)
        record.update(schema=1, point="v1point", fingerprint=result0.fingerprint())
        with path.open("a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        kept = compact_journal(path)
        assert kept == len(sample) + 1  # unique keys, v1 upgraded
        assert sorted(tmp_path.glob("j.jsonl.seg-*")) == []
        report = fsck_journal(path)
        assert report.clean and report.v1_records == 0
        assert report.valid == kept

    def test_cli_compact(self, tmp_path, sample, capsys):
        path = tmp_path / "j.jsonl"
        assert cli_main(["journal", "compact", str(path)]) == 2  # missing
        _write_journal(path, sample, rotate_records=2)
        assert cli_main(["journal", "compact", str(path)]) == 0
        assert "compacted" in capsys.readouterr().out
        assert fsck_journal(path).clean


class TestFaultsAndDegradation:
    def test_disk_full_degrades_campaign_not_death(self, tmp_path):
        clean = explore(_engine(), _sweep())
        scheduler = CampaignScheduler(
            _engine("disk_full=1.0,seed=3"),
            journal=SweepJournal(tmp_path / "j.jsonl"),
        )
        results = scheduler.run(list(_sweep().points()))
        assert scheduler.journal_degraded
        assert "DiskFullError" in scheduler.journal_error
        assert [r.fingerprint() for r in results] == [
            r.fingerprint() for r in clean
        ]
        # the failed journal family was quarantined out of the way
        assert not (tmp_path / "j.jsonl").exists()

    def test_journal_fsync_fault_fires_only_when_durable(self, tmp_path, sample):
        key, result = sample[0]
        plan = FaultPlan.parse("journal_fsync=1.0,seed=3")
        relaxed = SweepJournal(tmp_path / "relaxed.jsonl", faults=plan)
        relaxed.record(key, result)  # non-durable: no fsync, no fault
        assert relaxed.executed == 1
        durable = SweepJournal(
            tmp_path / "durable.jsonl", durable=True, faults=plan
        )
        with pytest.raises(JournalError):
            durable.record(key, result)

    def test_journal_failure_taxonomy(self):
        assert failure_kind(DiskFullError("x")) == "disk_full"
        assert failure_kind(JournalError("x")) == "journal_io"


class TestStrictResume:
    def test_resume_missing_journal_is_an_error(self, tmp_path):
        with pytest.raises(SweepError, match="cannot resume"):
            explore(
                _engine(),
                _sweep(),
                journal=SweepJournal(tmp_path / "nope.jsonl"),
                resume=True,
            )

    def test_resume_or_start_falls_back_to_fresh(self, tmp_path):
        journal = SweepJournal(tmp_path / "nope.jsonl")
        results = explore(
            _engine(), _sweep(), journal=journal, resume_or_start=True
        )
        assert len(results) == len(_sweep())
        assert journal.executed == len(results)
