"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.target == "cpu"
        assert args.kernel == "copy"

    def test_axis_syntax(self):
        args = build_parser().parse_args(
            ["sweep", "--axis", "vector_width=1,2,4", "--axis", "unroll=1,2"]
        )
        assert len(args.axis) == 2


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        for tag in ("cpu", "gpu", "aocl", "sdaccel"):
            assert tag in out

    def test_run_single(self, capsys):
        code = main(["run", "--target", "aocl", "--size", "64KiB", "--ntimes", "1"])
        assert code == 0
        assert "GB/s" in capsys.readouterr().out

    def test_run_all_kernels(self, capsys):
        code = main(
            ["run", "--target", "cpu", "--size", "64KiB", "--all-kernels", "--ntimes", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for k in ("copy", "scale", "add", "triad"):
            assert k in out

    def test_run_failure_exit_code(self, capsys):
        # ADD with int16 overflows the Virtex-7 resources -> exit 1
        code = main(
            [
                "run",
                "--target",
                "sdaccel",
                "--size",
                "64KiB",
                "--kernel",
                "add",
                "--vec",
                "16",
                "--ntimes",
                "1",
            ]
        )
        assert code == 1

    def test_run_csv_output(self, tmp_path, capsys):
        out_csv = tmp_path / "r.csv"
        code = main(
            ["run", "--target", "gpu", "--size", "64KiB", "--ntimes", "1", "--csv", str(out_csv)]
        )
        assert code == 0
        assert out_csv.exists()
        assert "bandwidth_gbs" in out_csv.read_text()

    def test_sweep(self, capsys):
        code = main(
            [
                "sweep",
                "--target",
                "aocl",
                "--size",
                "64KiB",
                "--loop",
                "flat",
                "--axis",
                "vector_width=1,4",
                "--ntimes",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "best:" in out

    def test_sweep_parallel_reports_cache_and_skips(self, capsys):
        code = main(
            [
                "sweep",
                "--target",
                "cpu",
                "--axis",
                "array_bytes=32KiB,64KiB,128KiB",
                "--ntimes",
                "1",
                "--jobs",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # the campaign summary: point/job/skip counts and cache counters
        assert (
            "3 point(s) on 2 job(s) (thread backend), "
            "0 invalid point(s) skipped" in out
        )
        # NDRange sizes share one front-end pass; repeats are tagged
        assert "front-end 2 hit/1 miss" in out
        assert "[cached front-end]" in out
        assert "stage wall time:" in out

    def test_sweep_no_cache(self, capsys):
        code = main(
            [
                "sweep",
                "--target",
                "cpu",
                "--axis",
                "array_bytes=32KiB,64KiB",
                "--ntimes",
                "1",
                "--no-cache",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "front-end 0 hit/0 miss" in out
        assert "[cached front-end]" not in out

    def test_source(self, capsys):
        code = main(["source", "--kernel", "triad", "--loop", "nested", "--vec", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mpstream_triad" in out and "int4" in out

    def test_host_stream(self, capsys):
        code = main(["host-stream", "--size", "1MiB", "--ntimes", "1"])
        assert code == 0
        assert "copy" in capsys.readouterr().out

    def test_figure_targets(self, capsys):
        code = main(["figure", "targets"])
        assert code == 0
        assert "peak=336.0" in capsys.readouterr().out

    def test_bad_size_reports_error(self, capsys):
        code = main(["run", "--size", "lots"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestExtendedCommands:
    def test_autotune(self, capsys):
        code = main(
            [
                "autotune",
                "--target",
                "aocl",
                "--size",
                "128KiB",
                "--budget",
                "8",
                "--ntimes",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "best:" in out and "evaluated" in out

    def test_autotune_custom_axis(self, capsys):
        code = main(
            [
                "autotune",
                "--target",
                "cpu",
                "--size",
                "64KiB",
                "--axis",
                "vector_width=1,4",
                "--budget",
                "4",
                "--ntimes",
                "1",
            ]
        )
        assert code == 0

    def test_autotune_multifidelity_strategy(self, capsys):
        code = main(
            [
                "autotune",
                "--target",
                "cpu",
                "--size",
                "64KiB",
                "--strategy",
                "multifidelity",
                "--budget",
                "6",
                "--ntimes",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "best:" in out
        # the multi-fidelity report leads with pool accounting and the
        # trajectory hash, then one line per rung
        assert "pool points" in out and "trajectory" in out
        assert "rung 0 [model]" in out

    def test_autotune_rejects_zero_budget(self, capsys):
        code = main(
            ["autotune", "--target", "cpu", "--size", "64KiB",
             "--strategy", "multifidelity", "--budget", "0"]
        )
        assert code == 2
        assert "budget must be >= 1" in capsys.readouterr().err

    def test_autotune_rejects_empty_axis(self, capsys):
        # `--axis vector_width=` must exit 2 with a message, not dump
        # a traceback from deep inside the sweep machinery
        code = main(
            ["autotune", "--target", "cpu", "--size", "64KiB",
             "--axis", "vector_width="]
        )
        assert code == 2
        assert "has no values" in capsys.readouterr().err

    def test_autotune_rejects_unparseable_axis_value(self, capsys):
        code = main(
            ["autotune", "--target", "cpu", "--size", "64KiB",
             "--axis", "vector_width=banana"]
        )
        assert code == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_energy(self, capsys):
        code = main(
            ["energy", "--target", "aocl", "--size", "256KiB", "--vec", "8",
             "--loop", "flat", "--ntimes", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GB/J" in out

    def test_energy_failure(self, capsys):
        code = main(
            ["energy", "--target", "sdaccel", "--size", "64KiB",
             "--kernel", "add", "--vec", "16", "--loop", "nested", "--ntimes", "1"]
        )
        assert code == 1

    def test_save_and_compare(self, tmp_path, capsys):
        before = tmp_path / "before.jsonl"
        after = tmp_path / "after.jsonl"
        assert main(["run", "--target", "aocl", "--size", "64KiB", "--ntimes", "1",
                     "--save", str(before)]) == 0
        assert main(["run", "--target", "aocl", "--size", "64KiB", "--vec", "8",
                     "--loop", "flat", "--ntimes", "1", "--save", str(after)]) == 0
        code = main(["compare", str(before), str(after)])
        assert code == 0
        out = capsys.readouterr().out
        assert "new" in out or "removed" in out

    def test_gpustream(self, capsys):
        code = main(
            ["gpustream", "--target", "cpu", "--size", "1MiB", "--ntimes", "2", "--dot"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GPU-STREAM" in out and "dot" in out and "triad" in out

    def test_selfcheck(self, capsys):
        code = main(["selfcheck"])
        assert code == 0
        out = capsys.readouterr().out
        assert "self-check passed" in out

    def test_figure_dtype_listed(self):
        args = build_parser().parse_args(["figure", "dtype"])
        assert args.name == "dtype"

    def test_figure_csv_export(self, tmp_path, capsys, monkeypatch):
        import repro.cli as cli

        monkeypatch.setitem(
            cli._FIGURES, "fig1b", lambda: {"cpu": [(1.0, 25.0), (2.0, 26.0)]}
        )
        out_csv = tmp_path / "fig.csv"
        code = main(["figure", "fig1b", "--csv", str(out_csv)])
        assert code == 0
        text = out_csv.read_text()
        assert text.splitlines()[0] == "x,cpu"
        assert "25.0" in text


class TestResilienceFlags:
    SWEEP = ["sweep", "--target", "cpu", "--size", "64KiB",
             "--axis", "vector_width=1,2", "--ntimes", "1"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.journal is None
        assert args.resume is False
        assert args.inject_faults is None
        assert args.retries == 2

    def test_bad_fault_spec_exits_cleanly(self, capsys):
        code = main(self.SWEEP + ["--inject-faults", "bitflip=0.5"])
        assert code == 2
        assert "unknown fault site" in capsys.readouterr().err

    def test_inject_faults_reports_taxonomy(self, capsys):
        code = main(self.SWEEP + ["--inject-faults", "launch=1.0", "--retries", "0"])
        assert code == 0  # per-point failures are data, not crashes
        out = capsys.readouterr().out
        assert "failure kind" in out
        assert "launch" in out

    def test_point_timeout_flag(self, capsys):
        code = main(self.SWEEP + ["--inject-faults", "stall=1.0,stall_s=30",
                                  "--retries", "0", "--point-timeout", "0.2"])
        assert code == 0
        assert "timeout" in capsys.readouterr().out

    def test_journal_then_resume(self, tmp_path, capsys):
        journal = tmp_path / "campaign.jsonl"
        assert main(self.SWEEP + ["--journal", str(journal)]) == 0
        first = capsys.readouterr().out
        assert "0 restored, 2 executed" in first
        assert main(self.SWEEP + ["--journal", str(journal), "--resume"]) == 0
        second = capsys.readouterr().out
        assert "2 restored, 0 executed" in second

    def test_resume_without_journal_rejected(self, capsys):
        code = main(self.SWEEP + ["--resume"])
        assert code == 2
        assert "journal" in capsys.readouterr().err


class TestSchedulerFlags:
    SWEEP = ["sweep", "--target", "cpu", "--size", "64KiB",
             "--axis", "vector_width=1,2", "--ntimes", "1"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.backend is None
        assert args.max_worker_restarts == 2
        assert args.durable_journal is False

    def test_zero_jobs_rejected(self, capsys):
        code = main(self.SWEEP + ["--jobs", "0"])
        assert code == 2
        assert "jobs must be >= 1" in capsys.readouterr().err

    def test_negative_jobs_rejected(self, capsys):
        code = main(self.SWEEP + ["--jobs", "-3"])
        assert code == 2
        assert "jobs must be >= 1" in capsys.readouterr().err

    def test_unknown_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--backend", "mpi"])

    def test_process_backend_smoke(self, capsys):
        code = main(self.SWEEP + ["--jobs", "2", "--backend", "process"])
        assert code == 0
        assert "(process backend)" in capsys.readouterr().out

    def test_serial_backend_overrides_jobs(self, capsys):
        code = main(self.SWEEP + ["--jobs", "4", "--backend", "serial"])
        assert code == 0
        assert "(serial backend)" in capsys.readouterr().out

    def test_crash_faults_reported_in_summary(self, tmp_path, capsys):
        journal = tmp_path / "crash.jsonl"
        code = main(self.SWEEP + [
            "--inject-faults", "worker_crash=1.0,seed=7",
            "--max-worker-restarts", "1",
            "--journal", str(journal), "--durable-journal",
        ])
        assert code == 0  # crash failures are data, not harness errors
        out = capsys.readouterr().out
        assert "scheduler:" in out
        assert "worker crash(es)" in out
        assert "worker_crash" in out  # failure-kind table row
        # resume restores the crash-failure points instead of re-running
        assert main(self.SWEEP + [
            "--inject-faults", "worker_crash=1.0,seed=7",
            "--max-worker-restarts", "1",
            "--journal", str(journal), "--resume",
        ]) == 0
        assert "2 restored, 0 executed" in capsys.readouterr().out

    def test_autotune_scheduler_flags(self, tmp_path, capsys):
        journal = tmp_path / "tune.jsonl"
        tune = ["autotune", "--target", "aocl", "--size", "64KiB",
                "--ntimes", "1", "--budget", "10",
                "--axis", "vector_width=1,2,4"]
        assert main(tune + ["--jobs", "2", "--journal", str(journal)]) == 0
        first = capsys.readouterr().out
        assert "journal:" in first and "0 restored" in first
        assert main(tune + ["--journal", str(journal), "--resume"]) == 0
        second = capsys.readouterr().out
        assert "0 executed" in second


class TestVerifyCommand:
    SWEEP = ["sweep", "--target", "cpu", "--size", "4KiB",
             "--axis", "vector_width=1,2", "--ntimes", "1"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.grid == "small"
        assert args.golden is None
        assert not args.update_golden and not args.skip_golden

    @pytest.mark.slow
    def test_verify_small_grid_passes_clean(self, capsys):
        code = main(["verify", "--grid", "small", "--target", "cpu"])
        assert code == 0
        out = capsys.readouterr().out
        for pillar in ("conformance", "metamorphic", "engine", "golden"):
            assert pillar in out
        assert "FAIL" not in out
        assert "clean (no drift)" in out

    def test_sweep_verify_flag_runs_clean(self, capsys):
        code = main(self.SWEEP + ["--verify"])
        assert code == 0
        out = capsys.readouterr().out
        assert "best:" in out
        assert "verify_mismatch" not in out

    def test_injected_miscompile_reported_as_verify_mismatch(self, capsys):
        code = main(self.SWEEP + ["--verify", "--inject-faults",
                                  "verify=1.0,seed=7"])
        assert code == 0  # mismatches are data points, not crashes
        out = capsys.readouterr().out
        assert "verify_mismatch" in out
        assert "failure kind" in out

    def test_verify_negative_path_classifies_faults(self, capsys):
        code = main(["verify", "--grid", "small", "--target", "cpu",
                     "--skip-golden", "--inject-faults", "verify=1.0,seed=7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "verify_mismatch" in out
        assert "FAIL" not in out

    @pytest.mark.slow
    def test_update_golden_writes_corpus(self, tmp_path, capsys):
        golden = tmp_path / "corpus.json"
        code = main(["verify", "--grid", "small", "--target", "cpu",
                     "--golden", str(golden), "--update-golden"])
        assert code == 0
        assert golden.exists()
        assert "re-pinned" in capsys.readouterr().out
        # a second run against the fresh pin is clean
        code = main(["verify", "--grid", "small", "--target", "cpu",
                     "--golden", str(golden)])
        assert code == 0
        assert "clean (no drift)" in capsys.readouterr().out

    @pytest.mark.slow
    def test_drift_fails_with_diff_report(self, tmp_path, capsys):
        import json

        golden = tmp_path / "corpus.json"
        assert main(["verify", "--grid", "small", "--target", "cpu",
                     "--golden", str(golden), "--update-golden"]) == 0
        capsys.readouterr()
        doc = json.loads(golden.read_text())
        key = next(iter(doc["entries"]))
        doc["entries"][key]["result_sha"] = "0" * 16
        golden.write_text(json.dumps(doc))
        code = main(["verify", "--grid", "small", "--target", "cpu",
                     "--golden", str(golden)])
        assert code == 1
        out = capsys.readouterr().out
        assert "drift" in out and "result_sha" in out
        assert "-   result_sha = 0000000000000000" in out

    @pytest.mark.slow
    def test_missing_golden_exits_with_guidance(self, tmp_path, capsys):
        code = main(["verify", "--grid", "small", "--target", "cpu",
                     "--golden", str(tmp_path / "absent.json")])
        assert code == 2
        assert "update-golden" in capsys.readouterr().err


class TestBenchCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert not args.quick and not args.no_compare
        assert args.out == "BENCH_PERF.json"
        assert args.baseline is None and args.threshold == 25.0

    def test_bench_writes_schema_versioned_report(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_PERF.json"
        code = main(["bench", "--quick", "--only", "engine_stages",
                     "--out", str(out), "--no-compare"])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        report = json.loads(out.read_text())
        assert report["schema"] == 1 and report["quick"] is True
        assert "engine_stages" in report["benchmarks"]
        assert "python" in report["env"] and "numpy" in report["env"]

    def test_bench_defaults_baseline_to_previous_out(self, tmp_path, capsys):
        out = tmp_path / "BENCH_PERF.json"
        argv = ["bench", "--quick", "--only", "engine_stages",
                "--out", str(out)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0  # second run gates against the first
        assert f"compared against {out}" in capsys.readouterr().out

    def test_bench_fails_on_regression_against_baseline(
        self, tmp_path, capsys
    ):
        import json

        out = tmp_path / "BENCH_PERF.json"
        assert main(["bench", "--quick", "--only", "sweep_throughput",
                     "--out", str(out), "--no-compare"]) == 0
        capsys.readouterr()
        doc = json.loads(out.read_text())
        # forge a baseline whose throughput the current run can never
        # reach on the same machine; throughput only gates when machine
        # fingerprints match, which they do here by construction
        doc["benchmarks"]["sweep_throughput"]["throughput"]["value"] = 1e18
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(doc))
        code = main(["bench", "--quick", "--only", "sweep_throughput",
                     "--out", str(out), "--baseline", str(baseline)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_rejects_unknown_benchmark(self, capsys):
        code = main(["bench", "--quick", "--only", "nope"])
        assert code == 2
        err = capsys.readouterr().err
        # the error must name the offender *and* list the valid menu,
        # or a typo'd CI invocation is undebuggable from the log alone
        assert "nope" in err
        assert "engine_stages" in err and "search_efficiency" in err

    def test_bench_rejects_empty_only(self, capsys):
        # `--only ""` (and all-comma variants) must error, not silently
        # fall back to running the full suite
        code = main(["bench", "--quick", "--only", ""])
        assert code == 2
        assert "expected a comma-separated list" in capsys.readouterr().err
        code = main(["bench", "--quick", "--only", ",,"])
        assert code == 2
