"""Cache simulation: exact LRU behaviour and the analytic streaming model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidValueError
from repro.memsim.access import contiguous_stream, strided_stream, to_byte_addresses
from repro.memsim.cache import Cache, CacheConfig, streaming_hit_ratio


class TestConfig:
    def test_geometry(self):
        cfg = CacheConfig(capacity_bytes=8192, line_bytes=64, ways=4)
        assert cfg.num_sets == 32
        assert cfg.num_lines == 128

    def test_line_must_be_pow2(self):
        with pytest.raises(InvalidValueError):
            CacheConfig(capacity_bytes=8192, line_bytes=48)

    def test_capacity_divisibility(self):
        with pytest.raises(InvalidValueError):
            CacheConfig(capacity_bytes=1000, line_bytes=64, ways=4)


class TestExactLru:
    def _cache(self, lines=4, ways=None):
        ways = ways or lines  # fully associative by default
        return Cache(CacheConfig(capacity_bytes=64 * lines, line_bytes=64, ways=ways))

    def test_cold_misses(self):
        c = self._cache()
        stats = c.access(np.array([0, 64, 128]))
        assert stats.misses == 3 and stats.hits == 0

    def test_line_granularity_hit(self):
        c = self._cache()
        stats = c.access(np.array([0, 4, 63]))
        assert stats.misses == 1 and stats.hits == 2

    def test_lru_eviction_order(self):
        c = self._cache(lines=2)
        # fill two lines, touch line0 again, insert line2: line1 evicted
        c.access(np.array([0, 64]))
        c.access(np.array([0]))
        c.access(np.array([128]))
        assert c.contains(0)
        assert not c.contains(64)
        assert c.contains(128)

    def test_eviction_counted(self):
        c = self._cache(lines=2)
        stats = c.access(np.array([0, 64, 128, 192]))
        assert stats.evictions == 2

    def test_set_conflicts(self):
        # direct-mapped: addresses one set apart conflict
        c = Cache(CacheConfig(capacity_bytes=256, line_bytes=64, ways=1))
        assert c.config.num_sets == 4
        stats = c.access(np.array([0, 256, 0, 256]))  # same set, different tags
        assert stats.hits == 0 and stats.misses == 4

    def test_state_persists_across_calls(self):
        c = self._cache()
        c.access(np.array([0]))
        stats = c.access(np.array([0]))
        assert stats.hits == 1

    def test_reset(self):
        c = self._cache()
        c.access(np.array([0]))
        c.reset()
        assert c.stats.accesses == 0
        assert not c.contains(0)

    def test_stats_merge(self):
        c = self._cache()
        c.access(np.array([0, 64]))
        c.access(np.array([0]))
        assert c.stats.accesses == 3
        assert c.stats.hits == 1
        assert c.stats.hit_ratio == pytest.approx(1 / 3)


class TestStreamingModel:
    CFG = CacheConfig(capacity_bytes=16 * 1024, line_bytes=64, ways=8)

    def test_unit_stride_one_pass(self):
        # int32 unit stride: 16 accesses per line, 15/16 spatial hits
        ratio = streaming_hit_ratio(
            footprint_bytes=1024 * 1024,
            stride_bytes=4,
            element_bytes=4,
            config=self.CFG,
        )
        assert ratio == pytest.approx(15 / 16)

    def test_fits_second_pass_all_hits(self):
        ratio = streaming_hit_ratio(
            footprint_bytes=4096,
            stride_bytes=4,
            element_bytes=4,
            config=self.CFG,
            passes=2,
        )
        assert ratio == pytest.approx((15 / 16 + 1.0) / 2)

    def test_thrash_second_pass_no_temporal_hits(self):
        ratio1 = streaming_hit_ratio(
            footprint_bytes=1024 * 1024,
            stride_bytes=4,
            element_bytes=4,
            config=self.CFG,
            passes=1,
        )
        ratio2 = streaming_hit_ratio(
            footprint_bytes=1024 * 1024,
            stride_bytes=4,
            element_bytes=4,
            config=self.CFG,
            passes=2,
        )
        assert ratio2 == pytest.approx(ratio1)

    def test_large_stride_no_spatial_hits(self):
        ratio = streaming_hit_ratio(
            footprint_bytes=1024 * 1024,
            stride_bytes=4096,
            element_bytes=4,
            config=self.CFG,
        )
        assert ratio == 0.0

    def test_invalid_args(self):
        with pytest.raises(InvalidValueError):
            streaming_hit_ratio(
                footprint_bytes=1024, stride_bytes=0, element_bytes=4, config=self.CFG
            )
        with pytest.raises(InvalidValueError):
            streaming_hit_ratio(
                footprint_bytes=1024,
                stride_bytes=4,
                element_bytes=4,
                config=self.CFG,
                passes=0,
            )


@settings(max_examples=30, deadline=None)
@given(
    lines=st.sampled_from([8, 16, 32]),
    ways=st.sampled_from([2, 4, 8]),
    n_lines_touched=st.integers(1, 64),
    passes=st.integers(1, 3),
)
def test_analytic_matches_exact_for_unit_stride(lines, ways, n_lines_touched, passes):
    """Property: the closed form tracks the exact simulator for unit-stride
    walks, within a small conflict-miss allowance."""
    line = 64
    cfg = CacheConfig(capacity_bytes=line * lines, line_bytes=line, ways=min(ways, lines))
    footprint = n_lines_touched * line
    stream = to_byte_addresses(contiguous_stream(footprint // 4), 4)
    cache = Cache(cfg)
    total = None
    for _ in range(passes):
        total = cache.stats
        cache.access(stream)
    exact = cache.stats.hit_ratio
    model = streaming_hit_ratio(
        footprint_bytes=footprint,
        stride_bytes=4,
        element_bytes=4,
        config=cfg,
        passes=passes,
    )
    assert model == pytest.approx(exact, abs=0.13)
    _ = total


@settings(max_examples=30, deadline=None)
@given(
    stride_lines=st.integers(1, 8),
    n=st.integers(10, 200),
)
def test_exact_hits_never_exceed_accesses(stride_lines, n):
    cfg = CacheConfig(capacity_bytes=4096, line_bytes=64, ways=4)
    cache = Cache(cfg)
    stream = to_byte_addresses(strided_stream(n, stride_lines * 16), 4)
    stats = cache.access(stream)
    assert stats.hits + stats.misses == stats.accesses == n
    assert 0.0 <= stats.hit_ratio <= 1.0


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(32, 256),
    seed=st.integers(0, 2**16),
)
def test_bigger_cache_never_hits_less(n, seed):
    """Property: for the same trace, doubling capacity cannot reduce hits
    (LRU with nesting set mapping at fixed line size and ways)."""
    rng = np.random.default_rng(seed)
    trace = rng.integers(0, 64, n) * 64
    small = Cache(CacheConfig(capacity_bytes=1024, line_bytes=64, ways=16))
    large = Cache(CacheConfig(capacity_bytes=2048, line_bytes=64, ways=32))
    hs = small.access(trace).hits
    hl = large.access(trace).hits
    assert hl >= hs
