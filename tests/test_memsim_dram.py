"""DRAM timing, controller arbitration and the PCIe link."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidValueError
from repro.memsim.access import contiguous_stream, strided_stream, to_byte_addresses
from repro.memsim.controller import MemoryController, StreamDemand
from repro.memsim.dram import DramSpec, row_locality_efficiency, simulate_dram
from repro.memsim.pcie import PcieLink

SPEC = DramSpec(
    name="test-ddr",
    channels=2,
    banks_per_channel=8,
    row_bytes=2048,
    peak_bandwidth=25.6e9,
    t_row_miss=30e-9,
    t_row_hit=6e-9,
)


class TestSimulateDram:
    def test_empty_trace(self):
        t = simulate_dram(SPEC, np.array([], dtype=np.int64), 64)
        assert t.seconds == 0.0

    def test_sequential_bursts_near_peak(self):
        addrs = np.arange(0, 8 * 1024 * 1024, 1024, dtype=np.int64)
        t = simulate_dram(SPEC, addrs, 1024)
        assert t.achieved_bandwidth > 0.8 * SPEC.peak_bandwidth
        assert t.row_hit_ratio > 0.4

    def test_random_rows_all_miss(self):
        rng = np.random.default_rng(7)
        addrs = rng.integers(0, 2**30, 4096) * 64
        t = simulate_dram(SPEC, addrs, 64)
        # every transaction opens a fresh row...
        assert t.row_misses == 4096
        # ...but bank-level parallelism still hides most activates
        assert t.command_seconds > 0

    def test_random_rows_limited_parallelism_is_command_bound(self):
        # with few banks, random rows cannot hide activations
        narrow = DramSpec(
            name="narrow",
            channels=1,
            banks_per_channel=2,
            row_bytes=2048,
            peak_bandwidth=25.6e9,
            t_row_miss=30e-9,
            t_row_hit=6e-9,
        )
        rng = np.random.default_rng(7)
        addrs = rng.integers(0, 2**30, 4096) * 64
        t = simulate_dram(narrow, addrs, 64)
        assert t.command_seconds >= t.data_seconds
        assert t.achieved_bandwidth < 0.5 * narrow.peak_bandwidth

    def test_min_transaction_granularity(self):
        addrs = np.arange(0, 64 * 100, 64, dtype=np.int64)
        t = simulate_dram(SPEC, addrs, 4)  # tiny sizes round up to 64
        assert t.bytes_moved == 100 * SPEC.min_transaction_bytes

    def test_shape_mismatch(self):
        with pytest.raises(InvalidValueError):
            simulate_dram(SPEC, np.zeros(3, np.int64), np.zeros(2, np.int64))

    def test_row_transitions_counted(self):
        # two transactions in the same row of the same bank: 1 miss + 1 hit
        addrs = np.array([0, 64], dtype=np.int64)
        t = simulate_dram(SPEC, addrs, 64)
        assert t.row_misses == 1 and t.row_hits == 1


class TestAnalyticEfficiency:
    def test_matches_simulation_for_uniform_stream(self):
        tx = 512
        addrs = np.arange(0, tx * 2048, tx, dtype=np.int64)
        sim = simulate_dram(SPEC, addrs, tx)
        model = row_locality_efficiency(
            SPEC,
            tx,
            row_hit_ratio=sim.row_hit_ratio,
            parallelism=SPEC.banks_per_channel * SPEC.channels,
        )
        assert model == pytest.approx(
            sim.achieved_bandwidth / SPEC.peak_bandwidth, rel=0.15
        )

    def test_efficiency_bounds(self):
        for tx in (64, 256, 4096):
            for hit in (0.0, 0.5, 1.0):
                e = row_locality_efficiency(SPEC, tx, row_hit_ratio=hit)
                assert 0.0 < e <= 1.0

    def test_larger_transactions_more_efficient(self):
        e_small = row_locality_efficiency(SPEC, 64, parallelism=1)
        e_big = row_locality_efficiency(SPEC, 2048, parallelism=1)
        assert e_big > e_small

    def test_invalid_args(self):
        with pytest.raises(InvalidValueError):
            row_locality_efficiency(SPEC, 0)
        with pytest.raises(InvalidValueError):
            row_locality_efficiency(SPEC, 64, row_hit_ratio=1.5)


class TestController:
    def test_single_sequential_stream(self):
        ctl = MemoryController(SPEC)
        res = ctl.service([StreamDemand(bytes_total=1 << 20, transaction_bytes=512)])
        assert 0.3 < res.efficiency <= 1.0

    def test_mixed_read_write_pays_turnaround(self):
        ctl = MemoryController(SPEC)
        ro = ctl.service(
            [
                StreamDemand(bytes_total=1 << 20, transaction_bytes=512),
                StreamDemand(bytes_total=1 << 20, transaction_bytes=512),
            ]
        )
        rw = ctl.service(
            [
                StreamDemand(bytes_total=1 << 20, transaction_bytes=512),
                StreamDemand(bytes_total=1 << 20, transaction_bytes=512, is_write=True),
            ]
        )
        assert rw.seconds > ro.seconds

    def test_many_streams_conflict(self):
        ctl = MemoryController(SPEC)
        few = ctl.service(
            [StreamDemand(bytes_total=1 << 18, transaction_bytes=64)] * 2
        )
        many = ctl.service(
            [StreamDemand(bytes_total=(1 << 19) // 32, transaction_bytes=64)] * 32
        )
        assert many.efficiency < few.efficiency

    def test_random_stream_worse_than_sequential(self):
        ctl = MemoryController(SPEC)
        seq = ctl.service(
            [StreamDemand(bytes_total=1 << 20, transaction_bytes=64)]
        )
        rand = ctl.service(
            [StreamDemand(bytes_total=1 << 20, transaction_bytes=64, sequential=False)]
        )
        assert rand.seconds > seq.seconds

    def test_empty_streams_rejected(self):
        with pytest.raises(InvalidValueError):
            MemoryController(SPEC).service([])

    def test_zero_bytes(self):
        res = MemoryController(SPEC).service(
            [StreamDemand(bytes_total=0, transaction_bytes=64)]
        )
        assert res.seconds == 0.0


class TestPcie:
    def test_peak_below_raw(self):
        link = PcieLink(generation=3, lanes=8)
        assert link.peak_bandwidth < link.raw_bandwidth
        assert link.peak_bandwidth == pytest.approx(
            link.raw_bandwidth * link.protocol_efficiency
        )

    def test_small_transfers_latency_bound(self):
        link = PcieLink(generation=3, lanes=8, latency=10e-6)
        assert link.effective_bandwidth(1024) < 0.05 * link.peak_bandwidth

    def test_large_transfers_approach_peak(self):
        link = PcieLink(generation=3, lanes=8, latency=10e-6)
        assert link.effective_bandwidth(256 * 1024 * 1024) > 0.95 * link.peak_bandwidth

    def test_monotone_in_size(self):
        link = PcieLink()
        sizes = [2**k for k in range(10, 28, 2)]
        bws = [link.effective_bandwidth(s) for s in sizes]
        assert bws == sorted(bws)

    def test_gen_and_lane_scaling(self):
        assert (
            PcieLink(generation=3, lanes=16).peak_bandwidth
            > PcieLink(generation=3, lanes=8).peak_bandwidth
        )
        assert (
            PcieLink(generation=3, lanes=8).peak_bandwidth
            > PcieLink(generation=2, lanes=8).peak_bandwidth
        )

    def test_invalid_config(self):
        with pytest.raises(InvalidValueError):
            PcieLink(generation=9)
        with pytest.raises(InvalidValueError):
            PcieLink(lanes=3)
        with pytest.raises(InvalidValueError):
            PcieLink().transfer_time(-1)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(16, 512),
    stride=st.sampled_from([64, 128, 1024, 4096]),
)
def test_dram_time_components_consistent(n, stride):
    """Property: total = max(data, command); hits+misses = transactions."""
    addrs = to_byte_addresses(strided_stream(n, stride // 4), 4)
    t = simulate_dram(SPEC, addrs, 64)
    assert t.seconds == pytest.approx(max(t.data_seconds, t.command_seconds))
    assert t.row_hits + t.row_misses == n


@settings(max_examples=30, deadline=None)
@given(n=st.integers(256, 2048))
def test_contiguous_never_slower_than_scattered(n):
    # large enough that the sequential stream spreads across banks
    contig = to_byte_addresses(contiguous_stream(n), 64)
    rng = np.random.default_rng(n)
    scattered = rng.integers(0, 2**28, n) * 64
    t_c = simulate_dram(SPEC, contig, 64)
    t_s = simulate_dram(SPEC, scattered, 64)
    assert t_c.seconds <= t_s.seconds * 1.01
    assert t_c.row_hit_ratio >= t_s.row_hit_ratio
