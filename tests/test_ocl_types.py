"""OpenCL type system: interning, sizes, promotion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidValueError
from repro.ocl import types as T


class TestScalars:
    def test_interning(self):
        assert T.scalar("int") is T.scalar("int")
        assert T.INT is T.scalar("int")

    def test_sizes(self):
        assert T.CHAR.size == 1
        assert T.SHORT.size == 2
        assert T.INT.size == 4
        assert T.LONG.size == 8
        assert T.FLOAT.size == 4
        assert T.DOUBLE.size == 8
        assert T.SIZE_T.size == 8

    def test_dtypes(self):
        assert T.INT.dtype == np.dtype(np.int32)
        assert T.UINT.dtype == np.dtype(np.uint32)
        assert T.DOUBLE.dtype == np.dtype(np.float64)

    def test_predicates(self):
        assert T.INT.is_integer() and not T.INT.is_float()
        assert T.DOUBLE.is_float() and not T.DOUBLE.is_integer()
        assert T.INT.is_numeric()
        assert not T.BOOL.is_numeric()

    def test_unknown_scalar(self):
        with pytest.raises(InvalidValueError):
            T.scalar("quaternion")


class TestVectors:
    def test_interning_and_size(self):
        v = T.vector("int", 4)
        assert v is T.vector("int", 4)
        assert v.size == 16
        assert v.element is T.INT
        assert str(v) == "int4"

    def test_all_legal_widths(self):
        for w in T.VECTOR_WIDTHS:
            assert T.vector("double", w).size == 8 * w

    def test_illegal_width(self):
        with pytest.raises(InvalidValueError):
            T.vector("int", 5)
        with pytest.raises(InvalidValueError):
            T.vector("int", 1)

    def test_widen_helper(self):
        assert T.widen("int", 1) is T.INT
        assert T.widen("int", 8) is T.vector("int", 8)


class TestPointers:
    def test_pointer(self):
        p = T.pointer(T.DOUBLE)
        assert p.pointee is T.DOUBLE
        assert p.address_space == "__global"
        assert p.size == 8
        assert "double" in str(p)

    def test_bad_address_space(self):
        with pytest.raises(InvalidValueError):
            T.pointer(T.INT, "__weird")


class TestParseTypeName:
    def test_scalars_and_vectors(self):
        assert T.parse_type_name("int") is T.INT
        assert T.parse_type_name("double16").size == 128
        assert T.parse_type_name("void") is T.VOID

    def test_unknown(self):
        with pytest.raises(InvalidValueError):
            T.parse_type_name("int5")
        with pytest.raises(InvalidValueError):
            T.parse_type_name("floaty")


class TestPromotion:
    def test_float_beats_int(self):
        assert T.common_numeric_type(T.INT, T.DOUBLE) is T.DOUBLE
        assert T.common_numeric_type(T.FLOAT, T.LONG) is T.FLOAT

    def test_wider_float_wins(self):
        assert T.common_numeric_type(T.FLOAT, T.DOUBLE) is T.DOUBLE

    def test_wider_int_wins(self):
        assert T.common_numeric_type(T.INT, T.LONG) is T.LONG

    def test_same_width_unsigned_wins(self):
        assert T.common_numeric_type(T.INT, T.UINT) is T.UINT

    def test_vector_scalar_broadcast(self):
        v = T.vector("int", 4)
        assert T.common_numeric_type(v, T.INT) is v
        assert T.common_numeric_type(T.DOUBLE, v) == T.vector("double", 4)

    def test_vector_vector_same_width(self):
        a = T.vector("int", 4)
        b = T.vector("double", 4)
        assert T.common_numeric_type(a, b) == T.vector("double", 4)

    def test_vector_width_mismatch(self):
        with pytest.raises(InvalidValueError):
            T.common_numeric_type(T.vector("int", 4), T.vector("int", 8))
