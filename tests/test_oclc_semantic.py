"""Semantic analysis: types, symbols, builtins, attributes."""

from __future__ import annotations

import pytest

from repro.errors import SemanticError
from repro.ocl import types as T
from repro.oclc import cast, compile_source
from repro.oclc.semantic import swizzle_indices


def expr_of(program, predicate):
    """First expression node in the sole kernel matching predicate."""
    found = []

    def walk(node):
        if isinstance(node, cast.Expr) and predicate(node):
            found.append(node)
        for f in getattr(node, "__dataclass_fields__", {}):
            v = getattr(node, f)
            if isinstance(v, cast.Node):
                walk(v)
            elif isinstance(v, tuple):
                for item in v:
                    if isinstance(item, cast.Node):
                        walk(item)

    walk(program.kernel().body)
    return found[0]


class TestTyping:
    def test_param_types(self):
        p = compile_source(
            "__kernel void f(__global const double *a, const int n) { a[0] = n; }"
        )
        types = p.param_types["f"]
        assert isinstance(types["a"], T.PointerType)
        assert types["a"].pointee is T.DOUBLE
        assert types["n"] is T.INT

    def test_index_result_type(self):
        p = compile_source("__kernel void f(__global int4 *a) { a[0] = a[1]; }")
        load = expr_of(p, lambda e: isinstance(e, cast.Index))
        assert p.type_of(load) == T.vector("int", 4)

    def test_int_literal_suffixes(self):
        p = compile_source(
            "__kernel void f(__global long *a) { a[0] = 1ul + 2l + 3u + 4; }"
        )
        assert p.param_types["f"]["a"].pointee is T.LONG

    def test_promotion_int_double(self):
        p = compile_source(
            "__kernel void f(__global double *a) { a[0] = 1 + 2.5; }"
        )
        add = expr_of(p, lambda e: isinstance(e, cast.Binary) and e.op == "+")
        assert p.type_of(add) is T.DOUBLE

    def test_vector_scalar_broadcast(self):
        p = compile_source(
            "__kernel void f(__global int4 *a, const int q) { a[0] = q * a[1]; }"
        )
        mul = expr_of(p, lambda e: isinstance(e, cast.Binary) and e.op == "*")
        assert p.type_of(mul) == T.vector("int", 4)

    def test_vector_width_mismatch(self):
        with pytest.raises(SemanticError):
            compile_source(
                "__kernel void f(__global int4 *a, __global int8 *b) { int4 x = a[0] + b[0]; }"
            )

    def test_comparison_is_int(self):
        p = compile_source("__kernel void f(__global int *a) { a[0] = 1 < 2; }")
        cmp = expr_of(p, lambda e: isinstance(e, cast.Binary) and e.op == "<")
        assert p.type_of(cmp) is T.INT

    def test_vector_comparison_is_int_vector(self):
        p = compile_source(
            "__kernel void f(__global int4 *a) { int4 m = a[0] < a[1]; a[2] = m; }"
        )
        cmp = expr_of(p, lambda e: isinstance(e, cast.Binary) and e.op == "<")
        assert p.type_of(cmp) == T.vector("int", 4)

    def test_modulo_requires_integers(self):
        with pytest.raises(SemanticError):
            compile_source("__kernel void f(__global double *a) { a[0] = a[1] % 2.0; }")

    def test_condition_must_be_scalar(self):
        with pytest.raises(SemanticError):
            compile_source(
                "__kernel void f(__global int4 *a) { if (a[0]) a[1] = a[0]; }"
            )


class TestSymbols:
    def test_undeclared_identifier(self):
        with pytest.raises(SemanticError) as err:
            compile_source("__kernel void f(__global int *a) { a[0] = nope; }")
        assert "nope" in str(err.value)

    def test_redeclaration(self):
        with pytest.raises(SemanticError):
            compile_source(
                "__kernel void f(__global int *a) { int x = 1; int x = 2; a[0] = x; }"
            )

    def test_shadowing_in_inner_scope_allowed(self):
        compile_source(
            "__kernel void f(__global int *a) { int x = 1; { int y = x; a[0] = y; } }"
        )

    def test_const_assignment_rejected(self):
        with pytest.raises(SemanticError):
            compile_source(
                "__kernel void f(__global int *a) { const int x = 1; x = 2; a[0] = x; }"
            )

    def test_scope_does_not_leak(self):
        with pytest.raises(SemanticError):
            compile_source(
                "__kernel void f(__global int *a) { { int y = 1; } a[0] = y; }"
            )

    def test_indexing_non_pointer(self):
        with pytest.raises(SemanticError):
            compile_source("__kernel void f(const int n) { int x = n[0]; }")

    def test_float_index_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("__kernel void f(__global int *a) { a[1.5] = 0; }")


class TestBuiltins:
    def test_workitem_functions(self):
        p = compile_source(
            "__kernel void f(__global int *a) { a[get_global_id(0)] = get_global_size(0); }"
        )
        call = expr_of(p, lambda e: isinstance(e, cast.Call) and e.func == "get_global_id")
        assert p.type_of(call) is T.SIZE_T

    def test_workitem_arity(self):
        with pytest.raises(SemanticError):
            compile_source("__kernel void f(__global int *a) { a[0] = get_global_id(); }")

    def test_math_builtins(self):
        p = compile_source(
            "__kernel void f(__global double *a) { a[0] = sqrt(fabs(a[1])); }"
        )
        call = expr_of(p, lambda e: isinstance(e, cast.Call) and e.func == "sqrt")
        assert p.type_of(call) is T.DOUBLE

    def test_sqrt_of_int_promotes(self):
        p = compile_source("__kernel void f(__global double *a) { a[0] = sqrt(4); }")
        call = expr_of(p, lambda e: isinstance(e, cast.Call))
        assert p.type_of(call) is T.DOUBLE

    def test_unknown_function(self):
        with pytest.raises(SemanticError):
            compile_source("__kernel void f(__global int *a) { a[0] = frobnicate(1); }")

    def test_min_max_arity(self):
        with pytest.raises(SemanticError):
            compile_source("__kernel void f(__global int *a) { a[0] = max(1); }")


class TestAttributes:
    def test_known_attributes_pass(self):
        compile_source(
            "__kernel __attribute__((reqd_work_group_size(64, 1, 1))) "
            "__attribute__((num_compute_units(2))) "
            "void f(__global int *a) { a[0] = 1; }"
        )

    def test_unknown_attribute(self):
        with pytest.raises(SemanticError):
            compile_source(
                "__kernel __attribute__((sparkles(1))) void f(__global int *a) { a[0] = 1; }"
            )

    def test_attribute_arity(self):
        with pytest.raises(SemanticError):
            compile_source(
                "__kernel __attribute__((reqd_work_group_size(64))) "
                "void f(__global int *a) { a[0] = 1; }"
            )


class TestSwizzles:
    def test_xyzw(self):
        assert swizzle_indices("x", 4) == (0,)
        assert swizzle_indices("wzyx", 4) == (3, 2, 1, 0)

    def test_numeric(self):
        assert swizzle_indices("s0", 16) == (0,)
        assert swizzle_indices("sf", 16) == (15,)
        assert swizzle_indices("s01", 8) == (0, 1)

    def test_halves(self):
        assert swizzle_indices("lo", 4) == (0, 1)
        assert swizzle_indices("hi", 4) == (2, 3)
        assert swizzle_indices("even", 4) == (0, 2)
        assert swizzle_indices("odd", 4) == (1, 3)

    def test_out_of_range(self):
        with pytest.raises(SemanticError):
            swizzle_indices("z", 2)
        with pytest.raises(SemanticError):
            swizzle_indices("s9", 4)

    def test_bad_names(self):
        with pytest.raises(SemanticError):
            swizzle_indices("qq", 4)

    def test_swizzle_type_in_program(self):
        p = compile_source(
            "__kernel void f(__global int4 *a, __global int *b) { b[0] = a[0].s2; }"
        )
        sw = expr_of(p, lambda e: isinstance(e, cast.Swizzle))
        assert p.type_of(sw) is T.INT

    def test_swizzle_on_scalar_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("__kernel void f(__global int *a) { a[0] = a[1].x; }")
