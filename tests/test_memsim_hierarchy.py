"""Multi-level cache hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidValueError
from repro.memsim.access import contiguous_stream, strided_stream, to_byte_addresses
from repro.memsim.cache import CacheConfig
from repro.memsim.hierarchy import Hierarchy, Level, simulate_hierarchy

L1 = Level("L1", CacheConfig(4096, line_bytes=64, ways=4), bandwidth=100e9, latency=1e-9)
L2 = Level("L2", CacheConfig(32768, line_bytes=64, ways=8), bandwidth=50e9, latency=5e-9)


def make() -> Hierarchy:
    return Hierarchy([L1, L2], memory_bandwidth=10e9)


class TestConstruction:
    def test_requires_levels(self):
        with pytest.raises(InvalidValueError):
            Hierarchy([], memory_bandwidth=1e9)

    def test_levels_must_grow(self):
        with pytest.raises(InvalidValueError):
            Hierarchy([L2, L1], memory_bandwidth=1e9)

    def test_memory_bandwidth_positive(self):
        with pytest.raises(InvalidValueError):
            Hierarchy([L1], memory_bandwidth=0)


class TestSimulate:
    def test_conservation(self):
        h = make()
        trace = to_byte_addresses(contiguous_stream(512), 4)
        stats = h.simulate(trace)
        assert sum(stats.served) == stats.total == 512
        assert stats.names == ("L1", "L2", "memory")

    def test_unit_stride_mostly_l1(self):
        h = make()
        trace = to_byte_addresses(contiguous_stream(1024), 4)
        stats = h.simulate(trace)
        # 16 int32 per line: 15/16 of accesses hit L1
        assert stats.fraction("L1") > 0.9

    def test_small_working_set_repeats_stay_high(self):
        h = make()
        trace = np.tile(to_byte_addresses(contiguous_stream(256), 4), 4)
        stats = h.simulate(trace)
        assert stats.fraction("memory") < 0.05

    def test_mid_working_set_served_by_l2(self):
        h = make()
        # 16 KiB working set: misses L1 (4 KiB) on the second pass but
        # fits L2 (32 KiB)
        one_pass = to_byte_addresses(strided_stream(256, 16), 4)  # 64B stride
        trace = np.tile(one_pass, 3)
        stats = h.simulate(trace)
        assert stats.fraction("L2") > 0.5
        assert stats.fraction("memory") < 0.4

    def test_streaming_huge_footprint_goes_to_memory(self):
        h = make()
        trace = to_byte_addresses(strided_stream(4096, 16), 4)  # 256 KiB, 64B stride
        stats = h.simulate(trace)
        assert stats.fraction("memory") > 0.9

    def test_unknown_level_name(self):
        h = make()
        stats = h.simulate(to_byte_addresses(contiguous_stream(16), 4))
        with pytest.raises(InvalidValueError):
            stats.fraction("L7")

    def test_as_dict(self):
        stats = simulate_hierarchy(
            [L1], 10e9, to_byte_addresses(contiguous_stream(64), 4)
        )
        d = stats.as_dict()
        assert set(d) == {"L1", "memory"}
        assert sum(d.values()) == 64


class TestAnalytic:
    def test_fitting_stream_fast(self):
        h = make()
        small = h.streaming_service_time(
            footprint_bytes=2048, stride_bytes=4, element_bytes=4, passes=4
        )
        large = h.streaming_service_time(
            footprint_bytes=1 << 20, stride_bytes=4, element_bytes=4, passes=4
        )
        # per-byte service must be cheaper when everything fits L1
        assert small / (2048 * 4) < large / ((1 << 20) * 4)

    def test_strided_slower_than_unit(self):
        h = make()
        unit = h.streaming_service_time(
            footprint_bytes=1 << 20, stride_bytes=4, element_bytes=4
        )
        strided = h.streaming_service_time(
            footprint_bytes=1 << 20, stride_bytes=4096, element_bytes=4
        )
        assert strided > unit

    def test_matches_exact_direction(self):
        """Analytic and exact agree on which workload is cheaper."""
        h = make()
        fit_trace = np.tile(to_byte_addresses(contiguous_stream(512), 4), 2)
        big_trace = to_byte_addresses(contiguous_stream(64 * 1024), 4)
        fit_stats = h.simulate(fit_trace)
        big_stats = h.simulate(big_trace)
        assert fit_stats.fraction("memory") < big_stats.fraction("memory")
