"""CPU/GPU model behaviours (mechanisms, not exact numbers)."""

from __future__ import annotations

import pytest

from repro.devices import BuildOptions, Launch
from repro.devices.cpu import CpuModel
from repro.devices.gpu import GpuModel
from repro.devices.specs import GTX_TITAN_BLACK, XEON_E5_2609V2
from repro.oclc import compile_source
from repro.units import GB, KIB, MIB

NDRANGE_COPY = (
    "__kernel void k(__global const int *a, __global int *c)"
    "{ size_t i = get_global_id(0); c[i] = a[i]; }"
)
FLAT_COPY = (
    "__kernel void k(__global const int *a, __global int *c)"
    "{ for (int i = 0; i < N; i++) c[i] = a[i]; }"
)


def plan_and_launch(model, src, n_bytes, defines=None, n_items=None):
    checked = compile_source(src, defines)
    plan = model.build(checked, BuildOptions())
    n_words = n_bytes // 4
    launch = Launch(
        global_size=(n_items if n_items is not None else n_words,),
        buffer_bytes={"a": n_bytes, "c": n_bytes},
    )
    return plan, launch


def bandwidth(model, src, n_bytes, defines=None, n_items=None):
    plan, launch = plan_and_launch(model, src, n_bytes, defines, n_items)
    timing = model.kernel_timing(plan, launch)
    return 2 * n_bytes / timing.total_s


def exec_bandwidth(model, src, n_bytes, defines=None, n_items=None):
    plan, launch = plan_and_launch(model, src, n_bytes, defines, n_items)
    timing = model.kernel_timing(plan, launch)
    return 2 * n_bytes / timing.execution_s


class TestCpuModel:
    @pytest.fixture(scope="class")
    def model(self):
        return CpuModel(XEON_E5_2609V2)

    def test_sustained_below_peak(self, model):
        bw = exec_bandwidth(model, NDRANGE_COPY, 64 * MIB)
        assert 0.5 * 34 * GB < bw < 34 * GB

    def test_small_arrays_overhead_dominated(self, model):
        bw = bandwidth(model, NDRANGE_COPY, 1 * KIB)
        assert bw < 0.01 * 34 * GB

    def test_bandwidth_rises_with_size(self, model):
        sizes = [4 * KIB, 64 * KIB, 1 * MIB, 16 * MIB]
        bws = [bandwidth(model, NDRANGE_COPY, s) for s in sizes]
        assert bws == sorted(bws)

    def test_single_work_item_single_core(self, model):
        n = 4 * MIB
        flat = exec_bandwidth(model, FLAT_COPY, n, defines={"N": str(n // 4)}, n_items=1)
        ndrange = exec_bandwidth(model, NDRANGE_COPY, n)
        assert flat < ndrange
        assert flat <= XEON_E5_2609V2.per_core_stream_bw * 1.01

    def test_strided_collapses_beyond_cache(self, model):
        n = 64 * MIB
        side = int((n // 4) ** 0.5)
        src = (
            "__kernel void k(__global const int *a, __global int *c)"
            "{ for (int j = 0; j < NJ; j++) for (int i = 0; i < NI; i++)"
            "  { int idx = i * NJ + j; c[idx] = a[idx]; } }"
        )
        defines = {"NI": str(side), "NJ": str(side)}
        strided = exec_bandwidth(model, src, n, defines=defines, n_items=1)
        # strided single-core... compare against contiguous single core
        contig = exec_bandwidth(model, FLAT_COPY, n, defines={"N": str(n // 4)}, n_items=1)
        assert strided < 0.3 * contig

    def test_strided_cache_bump_at_mid_sizes(self, model):
        src = (
            "__kernel void k(__global const int *a, __global int *c) {"
            " size_t g = get_global_id(0);"
            " size_t idx = (g % NI) * NJ + g / NI;"
            " c[idx] = a[idx]; }"
        )

        def strided_bw(n_bytes):
            side = int((n_bytes // 4) ** 0.5)
            return exec_bandwidth(
                model, src, n_bytes, defines={"NI": str(side), "NJ": str(side)}
            )

        mid = strided_bw(1 * MIB)  # reuse window fits the 10 MiB LLC
        big = strided_bw(256 * MIB)  # it does not
        assert mid > 2 * big

    def test_ndrange_scheduling_overhead_scales_with_groups(self, model):
        plan, launch = plan_and_launch(model, NDRANGE_COPY, 4 * MIB)
        t_auto = model.kernel_timing(plan, launch)
        tiny_groups = Launch(
            global_size=launch.global_size,
            local_size=(8,),
            buffer_bytes=launch.buffer_bytes,
        )
        t_tiny = model.kernel_timing(plan, tiny_groups)
        assert t_tiny.launch_overhead_s > t_auto.launch_overhead_s


class TestGpuModel:
    @pytest.fixture(scope="class")
    def model(self):
        return GpuModel(GTX_TITAN_BLACK)

    def test_sustained_fraction_of_peak(self, model):
        bw = exec_bandwidth(model, NDRANGE_COPY, 64 * MIB)
        assert 0.4 * 336 * GB < bw < 336 * GB

    def test_gpu_beats_cpu(self, model):
        cpu = CpuModel(XEON_E5_2609V2)
        assert exec_bandwidth(model, NDRANGE_COPY, 16 * MIB) > 4 * exec_bandwidth(
            cpu, NDRANGE_COPY, 16 * MIB
        )

    def test_single_thread_latency_bound(self, model):
        n = 1 * MIB
        flat = exec_bandwidth(model, FLAT_COPY, n, defines={"N": str(n // 4)}, n_items=1)
        ndrange = exec_bandwidth(model, NDRANGE_COPY, n)
        assert flat < ndrange / 100

    def test_wide_vectors_drop_occupancy(self, model):
        src16 = (
            "__kernel void k(__global const int16 *a, __global int16 *c)"
            "{ size_t i = get_global_id(0); c[i] = a[i]; }"
        )
        n = 16 * MIB
        w1 = exec_bandwidth(model, NDRANGE_COPY, n)
        w16 = exec_bandwidth(model, src16, n, n_items=n // 64)
        assert w16 < 0.85 * w1

    def test_strided_transaction_limited(self, model):
        src = (
            "__kernel void k(__global const int *a, __global int *c) {"
            " size_t g = get_global_id(0);"
            " size_t idx = (g % NI) * NJ + g / NI;"
            " c[idx] = a[idx]; }"
        )
        n = 512 * MIB  # beyond L2 reuse and TLB reach
        side = int((n // 4) ** 0.5)
        strided = exec_bandwidth(
            model, src, n, defines={"NI": str(side), "NJ": str(side)}
        )
        contig = exec_bandwidth(model, NDRANGE_COPY, n)
        assert strided < 0.1 * contig

    def test_l2_reuse_bump(self, model):
        src = (
            "__kernel void k(__global const int *a, __global int *c) {"
            " size_t g = get_global_id(0);"
            " size_t idx = (g % NI) * NJ + g / NI;"
            " c[idx] = a[idx]; }"
        )

        def strided_bw(n_bytes):
            side = int((n_bytes // 4) ** 0.5)
            return exec_bandwidth(
                model, src, n_bytes, defines={"NI": str(side), "NJ": str(side)}
            )

        assert strided_bw(4 * MIB) > 2 * strided_bw(512 * MIB)

    def test_build_log_mentions_occupancy(self, model):
        checked = compile_source(NDRANGE_COPY)
        plan = model.build(checked, BuildOptions())
        assert "occupancy" in plan.build_log
