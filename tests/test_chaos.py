"""Chaos tests: kill real campaign processes, prove resume is lossless.

These drive :mod:`tools.chaos` — the harness that runs ``mp-stream
sweep``/``autotune`` as a **real subprocess**, interrupts it mid-sweep
(``kill -9``, SIGTERM, or an injected torn journal append), fscks the
survivor journal, resumes in-process and compares ordered result
fingerprints against an uninterrupted run. One scenario per backend
runs in tier 1; more live behind ``--runslow``.

The invariant under test is docs/SCHEDULING.md's crash-consistency
contract: a campaign killed at *any* instant resumes from its journal
to a byte-identical final ResultSet.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tools"))

from chaos import (  # noqa: E402
    run_autotune_chaos,
    run_chaos,
    run_search_chaos,
    run_uninterrupted,
)


@pytest.fixture(scope="module")
def baseline() -> list[str]:
    """Fingerprints of the uninterrupted fault-free campaign.

    Fingerprints are backend-independent, so one serial in-process run
    serves every fault-free scenario over the default grid.
    """
    return run_uninterrupted()


class TestKillNine:
    def test_process_backend_kill9_resumes_identically(self, baseline):
        out = run_chaos(
            mode="kill", backend="process", jobs=2, baseline=baseline
        )
        assert out.ok, out.describe()
        assert out.interrupted and out.returncode == -9
        assert out.restored > 0
        assert out.fsck is not None and out.fsck.corrupt == 0
        assert out.resumed == baseline

    @pytest.mark.slow
    def test_serial_backend_kill9_resumes_identically(self, baseline):
        out = run_chaos(mode="kill", backend="serial", baseline=baseline)
        assert out.ok, out.describe()

    @pytest.mark.slow
    def test_thread_backend_kill9_with_worker_crashes(self):
        # engine faults ride along: a worker_crash failure is a data
        # point, and the resumed campaign must reproduce it exactly
        out = run_chaos(
            mode="kill",
            backend="thread",
            jobs=2,
            faults_spec="worker_crash=0.4,seed=11",
        )
        assert out.ok, out.describe()


class TestTornWrite:
    def test_torn_append_resumes_identically(self, baseline):
        # the child dies *mid-journal-append* (injected journal_write
        # tear + hard exit 5): the worst crash a power loss produces
        out = run_chaos(mode="torn", backend="serial", baseline=baseline)
        assert out.ok, out.describe()
        assert out.returncode == 5
        # the tear leaves exactly one unterminated prefix, never a
        # corrupt or stale record
        assert out.fsck is not None
        assert out.fsck.torn_tail == 1
        assert out.fsck.corrupt == 0 and out.fsck.stale == 0
        assert out.resumed == baseline


class TestGracefulShutdown:
    def test_sigterm_drains_and_exits_130(self, baseline):
        out = run_chaos(
            mode="term", backend="thread", jobs=2, baseline=baseline
        )
        assert out.ok, out.describe()
        assert out.returncode == 130
        # a graceful drain checkpoints cleanly: no torn tail at all
        assert out.fsck is not None and out.fsck.clean
        assert out.resumed == baseline


class TestAutotuneChaos:
    @pytest.mark.slow
    def test_autotune_kill9_replays_identical_trajectory(self):
        out = run_autotune_chaos(backend="process", jobs=2)
        assert out.ok, out.describe()
        assert out.interrupted and out.returncode == -9
        assert out.restored > 0
        assert out.resumed == out.baseline


class TestSearchChaos:
    @pytest.mark.slow
    def test_search_kill9_replays_identical_trajectory(self):
        """A multi-fidelity search killed mid-rung resumes to the same
        rung fingerprints, trajectory hash, and winning point."""
        out = run_search_chaos(backend="process", jobs=2)
        assert out.ok, out.describe()
        assert out.interrupted and out.returncode == -9
        assert out.restored > 0
        assert out.resumed == out.baseline
