"""OpenCL-like runtime: platforms, contexts, buffers, queues, events."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    BuildError,
    InvalidOperationError,
    InvalidValueError,
    LaunchError,
)
from repro.ocl import CommandQueue, Context, MemFlags, Program
from repro.ocl.events import CommandType
from repro.ocl.platform import find_device, get_platforms

COPY_SRC = """
__kernel void copy_k(__global const int *a, __global int *c) {
    size_t i = get_global_id(0);
    c[i] = a[i];
}
"""


class TestPlatforms:
    def test_four_paper_targets(self):
        shorts = {d.short_name for p in get_platforms() for d in p.devices}
        assert shorts == {"cpu", "gpu", "aocl", "sdaccel"}

    def test_device_types(self):
        assert find_device("cpu").device_type == "cpu"
        assert find_device("gpu").device_type == "gpu"
        assert find_device("aocl").device_type == "accelerator"
        assert find_device("sdaccel").device_type == "accelerator"

    def test_unknown_device(self):
        with pytest.raises(InvalidValueError):
            find_device("tpu")

    def test_info_fields(self, any_device):
        info = any_device.info()
        assert info["peak_global_bandwidth_gbs"] > 0
        assert info["global_mem_size"] > 0
        assert info["max_compute_units"] >= 1

    def test_platform_filter(self):
        for p in get_platforms():
            cpus = p.get_devices("cpu")
            assert all(d.device_type == "cpu" for d in cpus)


class TestBuffers:
    def test_create_by_size_zeroed(self, cpu_device):
        ctx = Context(cpu_device)
        buf = ctx.create_buffer(size=64)
        assert buf.size == 64
        assert not buf.view(np.uint8).any()

    def test_create_from_hostbuf_copies(self, cpu_device):
        ctx = Context(cpu_device)
        host = np.arange(10, dtype=np.int32)
        buf = ctx.create_buffer(hostbuf=host)
        host[0] = 99
        assert buf.view(np.int32)[0] == 0  # copy, not view

    def test_size_xor_hostbuf(self, cpu_device):
        ctx = Context(cpu_device)
        with pytest.raises(InvalidValueError):
            ctx.create_buffer()
        with pytest.raises(InvalidValueError):
            ctx.create_buffer(size=4, hostbuf=np.zeros(1, np.int32))

    def test_exceeds_device_memory(self, gpu_device):
        ctx = Context(gpu_device)
        with pytest.raises(InvalidValueError):
            ctx.create_buffer(size=gpu_device.global_mem_size + 1)

    def test_typed_view_divisibility(self, cpu_device):
        ctx = Context(cpu_device)
        buf = ctx.create_buffer(size=6)
        with pytest.raises(InvalidValueError):
            buf.view(np.int32)

    def test_release_semantics(self, cpu_device):
        ctx = Context(cpu_device)
        buf = ctx.create_buffer(size=16)
        buf.release()
        with pytest.raises(InvalidOperationError):
            buf.view(np.uint8)

    def test_context_manager_releases(self, cpu_device):
        with Context(cpu_device) as ctx:
            buf = ctx.create_buffer(size=16)
        assert buf.released

    def test_flags(self, cpu_device):
        ctx = Context(cpu_device)
        ro = ctx.create_buffer(size=4, flags=MemFlags.READ_ONLY)
        assert ro.readable() and not ro.writable()


class TestQueueTransfers:
    def test_write_then_read_roundtrip(self, gpu_device):
        ctx = Context(gpu_device)
        q = CommandQueue(ctx, gpu_device)
        buf = ctx.create_buffer(size=4096)
        src = np.arange(1024, dtype=np.int32)
        dst = np.zeros(1024, dtype=np.int32)
        ev_w = q.enqueue_write_buffer(buf, src)
        ev_r = q.enqueue_read_buffer(buf, dst)
        assert np.array_equal(dst, src)
        assert ev_w.command is CommandType.WRITE_BUFFER
        assert ev_r.command is CommandType.READ_BUFFER
        assert ev_w.duration > 0 and ev_r.duration > 0

    def test_virtual_clock_monotone(self, gpu_device):
        ctx = Context(gpu_device)
        q = CommandQueue(ctx, gpu_device)
        buf = ctx.create_buffer(size=4096)
        src = np.zeros(1024, dtype=np.int32)
        e1 = q.enqueue_write_buffer(buf, src)
        e2 = q.enqueue_write_buffer(buf, src)
        assert e2.queued >= e1.end
        assert q.finish() == e2.end

    def test_larger_transfers_take_longer(self, gpu_device):
        ctx = Context(gpu_device)
        q = CommandQueue(ctx, gpu_device)
        small = ctx.create_buffer(size=4096)
        big = ctx.create_buffer(size=4 * 1024 * 1024)
        t_small = q.enqueue_write_buffer(small, np.zeros(1024, np.int32)).duration
        t_big = q.enqueue_write_buffer(big, np.zeros(1024 * 1024, np.int32)).duration
        assert t_big > t_small

    def test_copy_buffer(self, cpu_device):
        ctx = Context(cpu_device)
        q = CommandQueue(ctx, cpu_device)
        a = ctx.create_buffer(hostbuf=np.arange(16, dtype=np.int32))
        b = ctx.create_buffer(size=64)
        q.enqueue_copy_buffer(a, b)
        assert np.array_equal(b.view(np.int32), np.arange(16))

    def test_oversized_write_rejected(self, cpu_device):
        ctx = Context(cpu_device)
        q = CommandQueue(ctx, cpu_device)
        buf = ctx.create_buffer(size=16)
        with pytest.raises(InvalidValueError):
            q.enqueue_write_buffer(buf, np.zeros(100, np.int32))

    def test_queue_device_must_be_in_context(self, cpu_device, gpu_device):
        ctx = Context(cpu_device)
        with pytest.raises(InvalidValueError):
            CommandQueue(ctx, gpu_device)


class TestProgramsAndKernels:
    def test_build_and_run(self, any_device):
        ctx = Context(any_device)
        q = CommandQueue(ctx, any_device)
        prog = Program(ctx, COPY_SRC).build()
        k = prog.create_kernel("copy_k")
        a = ctx.create_buffer(hostbuf=np.arange(256, dtype=np.int32))
        c = ctx.create_buffer(size=1024)
        k.set_args(a=a, c=c)
        ev = q.enqueue_nd_range_kernel(k, (256,))
        assert ev.command is CommandType.ND_RANGE_KERNEL
        assert ev.duration > 0
        assert np.array_equal(c.view(np.int32), np.arange(256))

    def test_build_error_has_log(self, cpu_device):
        ctx = Context(cpu_device)
        with pytest.raises(BuildError) as err:
            Program(ctx, "__kernel void f(__global int *a) { a[0] = oops; }").build()
        assert "oops" in str(err.value)

    def test_build_log_query(self, aocl_device):
        ctx = Context(aocl_device)
        prog = Program(ctx, COPY_SRC).build()
        assert "copy_k" in prog.build_log(aocl_device)

    def test_kernel_names(self, cpu_device):
        ctx = Context(cpu_device)
        prog = Program(ctx, COPY_SRC).build()
        assert prog.kernel_names() == ("copy_k",)

    def test_positional_args(self, cpu_device):
        ctx = Context(cpu_device)
        q = CommandQueue(ctx, cpu_device)
        prog = Program(ctx, COPY_SRC).build()
        k = prog.create_kernel("copy_k")
        a = ctx.create_buffer(hostbuf=np.arange(8, dtype=np.int32))
        c = ctx.create_buffer(size=32)
        k.set_arg(0, a)
        k.set_arg(1, c)
        q.enqueue_nd_range_kernel(k, (8,))
        assert np.array_equal(c.view(np.int32), np.arange(8))

    def test_unbound_args_rejected(self, cpu_device):
        ctx = Context(cpu_device)
        q = CommandQueue(ctx, cpu_device)
        k = Program(ctx, COPY_SRC).build().create_kernel("copy_k")
        k.set_arg(0, ctx.create_buffer(size=32))
        with pytest.raises(LaunchError):
            q.enqueue_nd_range_kernel(k, (8,))

    def test_scalar_arg_type_check(self, cpu_device):
        ctx = Context(cpu_device)
        src = "__kernel void f(__global int *a, const int n) { a[0] = n; }"
        k = Program(ctx, src).build().create_kernel("f")
        with pytest.raises(InvalidValueError):
            k.set_args(n=ctx.create_buffer(size=4))  # buffer for scalar
        with pytest.raises(InvalidValueError):
            k.set_args(a=5)  # scalar for buffer

    def test_misaligned_buffer_rejected(self, cpu_device):
        ctx = Context(cpu_device)
        src = "__kernel void f(__global int4 *a) { a[0] = (int4)(1); }"
        k = Program(ctx, src).build().create_kernel("f")
        with pytest.raises(InvalidValueError):
            k.set_args(a=ctx.create_buffer(size=12))  # not a whole int4

    def test_write_to_readonly_buffer_rejected(self, cpu_device):
        ctx = Context(cpu_device)
        q = CommandQueue(ctx, cpu_device)
        k = Program(ctx, COPY_SRC).build().create_kernel("copy_k")
        a = ctx.create_buffer(hostbuf=np.arange(8, dtype=np.int32))
        c = ctx.create_buffer(size=32, flags=MemFlags.READ_ONLY)
        k.set_args(a=a, c=c)
        with pytest.raises(LaunchError):
            q.enqueue_nd_range_kernel(k, (8,))

    def test_reqd_work_group_size_enforced(self, cpu_device):
        ctx = Context(cpu_device)
        q = CommandQueue(ctx, cpu_device)
        src = (
            "__kernel __attribute__((reqd_work_group_size(64, 1, 1)))"
            " void f(__global int *a) { a[get_global_id(0)] = 1; }"
        )
        k = Program(ctx, src).build().create_kernel("f")
        k.set_args(a=ctx.create_buffer(size=4 * 128))
        with pytest.raises(LaunchError):
            q.enqueue_nd_range_kernel(k, (128,), (32,))
        q.enqueue_nd_range_kernel(k, (128,), (64,))  # correct size passes

    def test_bad_ndrange(self, cpu_device):
        ctx = Context(cpu_device)
        q = CommandQueue(ctx, cpu_device)
        k = Program(ctx, COPY_SRC).build().create_kernel("copy_k")
        k.set_args(
            a=ctx.create_buffer(size=32),
            c=ctx.create_buffer(size=32),
        )
        with pytest.raises(LaunchError):
            q.enqueue_nd_range_kernel(k, (0,))
        with pytest.raises(LaunchError):
            q.enqueue_nd_range_kernel(k, (8,), (3,))


class TestEvents:
    def test_profile_counters(self, gpu_device):
        ctx = Context(gpu_device)
        q = CommandQueue(ctx, gpu_device)
        prog = Program(ctx, COPY_SRC).build()
        k = prog.create_kernel("copy_k")
        k.set_args(
            a=ctx.create_buffer(hostbuf=np.zeros(64, np.int32)),
            c=ctx.create_buffer(size=256),
        )
        ev = q.enqueue_nd_range_kernel(k, (64,))
        prof = ev.profile()
        assert prof["queued"] <= prof["submit"] <= prof["start"] <= prof["end"]
        assert ev.latency >= ev.duration

    def test_incomplete_event_raises(self):
        from repro.ocl.events import Event

        ev = Event(command=CommandType.MARKER)
        with pytest.raises(InvalidOperationError):
            _ = ev.duration
        with pytest.raises(InvalidOperationError):
            ev.profile()


class TestExecutionPaths:
    def test_control_flow_kernel_uses_interpreter(self, cpu_device):
        """Kernels the specializer refuses still execute (fallback)."""
        ctx = Context(cpu_device)
        q = CommandQueue(ctx, cpu_device)
        src = (
            "__kernel void k(__global int *a) {"
            " size_t i = get_global_id(0);"
            " if (i % 2 == 0) a[i] = 1; else a[i] = 2; }"
        )
        k = Program(ctx, src).build().create_kernel("k")
        buf = ctx.create_buffer(size=64)
        k.set_args(a=buf)
        q.enqueue_nd_range_kernel(k, (16,))
        got = buf.view(np.int32)
        assert np.array_equal(got, np.where(np.arange(16) % 2 == 0, 1, 2))

    def test_reduction_kernel_through_queue(self, aocl_device):
        ctx = Context(aocl_device)
        q = CommandQueue(ctx, aocl_device)
        src = (
            "__kernel void k(__global const int *a, __global int *c) {"
            " int acc = 0;"
            " for (int i = 0; i < 64; i++) acc += a[i];"
            " c[0] = acc; }"
        )
        k = Program(ctx, src).build().create_kernel("k")
        a = ctx.create_buffer(hostbuf=np.arange(64, dtype=np.int32))
        c = ctx.create_buffer(size=4)
        k.set_args(a=a, c=c)
        q.enqueue_nd_range_kernel(k, (1,))
        assert c.view(np.int32)[0] == 2016

    def test_specializer_cached_across_launches(self, cpu_device):
        ctx = Context(cpu_device)
        q = CommandQueue(ctx, cpu_device)
        k = Program(ctx, COPY_SRC).build().create_kernel("copy_k")
        a = ctx.create_buffer(hostbuf=np.arange(64, dtype=np.int32))
        c = ctx.create_buffer(size=256)
        k.set_args(a=a, c=c)
        q.enqueue_nd_range_kernel(k, (64,))
        assert len(q._specialized_cache) == 1
        q.enqueue_nd_range_kernel(k, (64,))
        assert len(q._specialized_cache) == 1
