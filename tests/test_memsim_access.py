"""Address-stream generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidValueError
from repro.memsim import access


class TestContiguous:
    def test_basic(self):
        assert np.array_equal(access.contiguous_stream(5), [0, 1, 2, 3, 4])

    def test_start(self):
        assert np.array_equal(access.contiguous_stream(3, start=10), [10, 11, 12])

    def test_empty(self):
        assert access.contiguous_stream(0).size == 0

    def test_negative_rejected(self):
        with pytest.raises(InvalidValueError):
            access.contiguous_stream(-1)


class TestStrided:
    def test_positive_stride(self):
        assert np.array_equal(access.strided_stream(4, 3), [0, 3, 6, 9])

    def test_negative_stride(self):
        assert np.array_equal(access.strided_stream(3, -2, start=10), [10, 8, 6])

    def test_zero_stride_repeats(self):
        assert np.array_equal(access.strided_stream(3, 0, start=7), [7, 7, 7])


class TestColumnMajor:
    def test_small_walk(self):
        stream = access.column_major_stream(3, 2)  # 3x2 row-major
        # columns: (0,0)=0,(1,0)=2,(2,0)=4 then (0,1)=1,(1,1)=3,(2,1)=5
        assert np.array_equal(stream, [0, 2, 4, 1, 3, 5])

    def test_touches_each_once(self):
        stream = access.column_major_stream(8, 16)
        assert sorted(stream.tolist()) == list(range(128))

    def test_consecutive_stride_is_cols(self):
        stream = access.column_major_stream(16, 7)
        diffs = np.diff(stream[:16])
        assert np.all(diffs == 7)

    def test_bad_shape(self):
        with pytest.raises(InvalidValueError):
            access.column_major_stream(0, 5)


class TestInterleaveAndBytes:
    def test_interleave(self):
        a = np.array([0, 1], dtype=np.int64)
        b = np.array([100, 101], dtype=np.int64)
        assert np.array_equal(
            access.interleaved_streams([a, b]), [0, 100, 1, 101]
        )

    def test_interleave_length_mismatch(self):
        with pytest.raises(InvalidValueError):
            access.interleaved_streams(
                [np.zeros(2, np.int64), np.zeros(3, np.int64)]
            )

    def test_interleave_empty_list(self):
        with pytest.raises(InvalidValueError):
            access.interleaved_streams([])

    def test_to_byte_addresses(self):
        stream = np.array([0, 1, 2], dtype=np.int64)
        assert np.array_equal(
            access.to_byte_addresses(stream, 8, base=100), [100, 108, 116]
        )

    def test_bad_element_size(self):
        with pytest.raises(InvalidValueError):
            access.to_byte_addresses(np.zeros(1, np.int64), 0)
