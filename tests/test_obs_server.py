"""Campaign health aggregation and the live exposition server.

Covers the Prometheus text rendering (naming conventions, structural
validity), the stdlib HTTP server's three endpoints, the health
verdict rules, the journal-watcher path (``health_from_journal`` /
``scan_results`` — read-only against a live campaign), and the
``serve=`` wiring in :func:`repro.obs.session`.
"""

from __future__ import annotations

import json
import re
import urllib.request

import pytest

from repro import obs
from repro.core import (
    CampaignScheduler,
    ExecutionEngine,
    ParameterSweep,
    SweepJournal,
    TuningParameters,
    explore,
)
from repro.core.history import scan_results
from repro.obs import health as obs_health
from repro.obs import metrics as obs_metrics
from repro.obs.server import PROM_CONTENT_TYPE, _prom_name
from repro.units import KIB

SAMPLE_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]* -?\d+(\.\d+)?(e-?\d+)?$")


def _sweep() -> ParameterSweep:
    return ParameterSweep(
        base=TuningParameters(array_bytes=32 * KIB),
        axes={"vector_width": [1, 2]},
    )


def _engine(**kw) -> ExecutionEngine:
    kw.setdefault("ntimes", 1)
    return ExecutionEngine("cpu", **kw)


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read().decode()


def assert_valid_exposition(text: str) -> dict[str, float]:
    """Parse Prometheus text format 0.0.4 strictly; return the samples."""
    samples: dict[str, float] = {}
    assert text.endswith("\n")
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            parts = line.split()
            assert len(parts) == 4 and parts[3] in {"counter", "gauge", "summary"}
            continue
        assert SAMPLE_RE.match(line), f"malformed sample line: {line!r}"
        name, value = line.split()
        samples[name] = float(value)
    assert samples.get("up") == 1.0
    return samples


# --------------------------------------------------------------------------
# prometheus rendering
# --------------------------------------------------------------------------


class TestPrometheusText:
    def test_naming_conventions(self):
        reg = obs_metrics.MetricsRegistry()
        reg.counter("scheduler.worker_restarts").inc(3)
        reg.gauge("scheduler.queue_depth").set(4)
        reg.histogram("engine.stage_s_per_point.execute").observe(0.5)
        samples = assert_valid_exposition(obs.prometheus_text(reg.snapshot()))
        assert samples["scheduler_worker_restarts_total"] == 3
        assert samples["scheduler_queue_depth"] == 4
        assert samples["engine_stage_s_per_point_execute_count"] == 1
        assert samples["engine_stage_s_per_point_execute_sum"] == 0.5
        assert samples["engine_stage_s_per_point_execute_min"] == 0.5
        assert samples["engine_stage_s_per_point_execute_max"] == 0.5

    def test_campaign_gauges_rendered(self):
        health = obs_health.CampaignHealth(
            verdict="healthy", points_total=10, points_done=4, queue_depth=6,
            eta_s=12.5, cache_hit_rate=0.75,
        )
        samples = assert_valid_exposition(obs.prometheus_text(None, health))
        assert samples["campaign_points_planned"] == 10
        assert samples["campaign_points_done"] == 4
        assert samples["campaign_queue_depth"] == 6
        assert samples["campaign_eta_seconds"] == 12.5
        assert samples["campaign_cache_hit_rate"] == 0.75
        assert samples["campaign_healthy"] == 1

    def test_empty_snapshot_still_valid(self):
        samples = assert_valid_exposition(obs.prometheus_text(None))
        assert samples == {"up": 1.0}

    def test_name_sanitization(self):
        assert _prom_name("memsim.dram.row-hit%") == "memsim_dram_row_hit_"
        assert _prom_name("0weird") == "_0weird"


# --------------------------------------------------------------------------
# health verdicts and snapshots
# --------------------------------------------------------------------------


class TestCampaignHealth:
    def test_verdict_rules(self):
        v = obs_health.derive_verdict
        assert v(points_total=0, executed=0, failed=0) == "idle"
        assert v(points_total=4, executed=2, failed=0) == "healthy"
        assert v(points_total=4, executed=2, failed=1) == "degraded"
        assert v(points_total=4, executed=2, failed=2) == "failing"
        assert v(points_total=4, executed=2, failed=0, journal_degraded=True) == "degraded"
        assert (
            v(points_total=4, executed=2, failed=2, interrupted="SIGTERM")
            == "interrupted"
        )

    def test_ok_and_json_round_trip(self):
        health = obs_health.CampaignHealth(verdict="failing")
        assert not health.ok
        doc = json.loads(json.dumps(health.to_json()))
        assert doc["verdict"] == "failing" and doc["ok"] is False

    def test_scheduler_registers_itself_and_snapshots_after_run(self):
        scheduler = CampaignScheduler(_engine(), backend="serial")
        assert obs_health.active_campaign_source() == scheduler.health_snapshot
        scheduler.run(list(_sweep().points()))
        health = obs_health.campaign_health()
        assert health is not None
        assert health.verdict == "healthy"
        assert health.points_total == health.points_done == 2
        assert health.points_failed == 0
        assert health.queue_depth == 0
        assert health.backend == "serial"
        assert health.elapsed_s > 0
        assert health.rate_points_per_s > 0
        assert health.cache_hit_rate is not None

    def test_snapshot_counts_failures_by_kind(self):
        from repro.faults import FaultPlan

        scheduler = CampaignScheduler(
            _engine(verify=True, faults=FaultPlan.parse("verify=1.0,seed=1")),
            backend="serial",
        )
        results = scheduler.run(list(_sweep().points()))
        assert all(not r.ok for r in results)
        health = scheduler.health_snapshot()
        assert health.verdict == "failing" and not health.ok
        assert health.failure_kinds == {"verify_mismatch": 2}

    def test_journal_state_in_snapshot(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.wal")
        scheduler = CampaignScheduler(_engine(), backend="serial", journal=journal)
        scheduler.run(list(_sweep().points()))
        health = scheduler.health_snapshot()
        assert health.journal is not None
        assert health.journal["executed"] == 2
        assert health.journal["degraded"] is False


# --------------------------------------------------------------------------
# journal watching (read-only)
# --------------------------------------------------------------------------


class TestJournalWatching:
    def test_scan_results_reads_without_side_effects(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.wal")
        results = explore(_engine(), _sweep(), journal=journal)
        before = journal.path.read_bytes()
        scanned = scan_results(journal.path)
        assert journal.path.read_bytes() == before  # strictly read-only
        assert len(scanned) == 2
        assert {r.fingerprint() for r in scanned.values()} == {
            r.fingerprint() for r in results
        }

    def test_health_from_journal(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.wal")
        explore(_engine(), _sweep(), journal=journal)
        health = obs_health.health_from_journal(journal.path)
        assert health.verdict == "healthy"
        assert health.points_total == health.points_done == 2
        assert health.target == "cpu"
        assert health.journal is not None and health.journal["clean"]

    def test_health_from_missing_journal_is_idle(self, tmp_path):
        health = obs_health.health_from_journal(tmp_path / "nope.wal")
        assert health.verdict == "idle"
        assert health.points_total == 0


# --------------------------------------------------------------------------
# the HTTP server
# --------------------------------------------------------------------------


class TestObsServer:
    def test_endpoints(self):
        reg = obs_metrics.MetricsRegistry()
        reg.counter("scheduler.worker_restarts").inc(2)
        health = obs_health.CampaignHealth(
            verdict="healthy", points_total=3, points_done=1
        )
        with obs.ObsServer(
            port=0,
            registry_source=reg.snapshot,
            health_source=lambda: health,
        ) as server:
            status, headers, body = _get(server.url + "/metrics")
            assert status == 200
            assert headers["Content-Type"] == PROM_CONTENT_TYPE
            samples = assert_valid_exposition(body)
            assert samples["scheduler_worker_restarts_total"] == 2
            assert samples["campaign_points_planned"] == 3

            status, _, body = _get(server.url + "/health")
            assert status == 200
            doc = json.loads(body)
            assert doc == {"status": "ok", "campaign": "healthy", "ok": True}

            status, _, body = _get(server.url + "/campaign")
            assert status == 200
            doc = json.loads(body)
            assert doc["points_total"] == 3 and doc["ok"] is True

    def test_unknown_path_404(self):
        with obs.ObsServer(port=0, health_source=lambda: None) as server:
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                _get(server.url + "/nope")
            assert exc_info.value.code == 404

    def test_campaign_404_when_no_source(self):
        with obs.ObsServer(
            port=0, registry_source=lambda: None, health_source=lambda: None
        ) as server:
            status, _, body = _get(server.url + "/health")
            assert status == 200 and json.loads(body) == {"status": "ok"}
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                _get(server.url + "/campaign")
            assert exc_info.value.code == 404

    def test_close_is_idempotent_and_releases_port(self):
        server = obs.ObsServer(port=0, health_source=lambda: None)
        url = server.url
        server.close()
        server.close()
        with pytest.raises(OSError):
            _get(url + "/health")


# --------------------------------------------------------------------------
# session wiring
# --------------------------------------------------------------------------


class TestSessionServe:
    def test_serve_implies_in_memory_registry(self):
        with obs.session(serve=0) as session:
            assert session.server is not None
            assert session.registry is not None
            assert obs_metrics.active_registry() is session.registry
            obs_metrics.count("engine.points")
            _, _, body = _get(session.server.url + "/metrics")
            assert assert_valid_exposition(body)["engine_points_total"] == 1
        assert session.written == []  # in-memory registry: no artifact
        url = session.server.url
        with pytest.raises(OSError):
            _get(url + "/metrics")  # server stopped with the session

    def test_live_scrape_during_campaign(self):
        """A scrape taken mid-run sees the live campaign state."""
        seen: list[dict] = []
        with obs.session(serve=0) as session:
            url = session.server.url

            def scrape_progress(result) -> None:
                _, _, body = _get(url + "/campaign")
                seen.append(json.loads(body))

            scheduler = CampaignScheduler(
                _engine(), backend="serial", progress=scrape_progress
            )
            scheduler.run(list(_sweep().points()))
        assert len(seen) == 2
        assert [d["points_done"] for d in seen] == [1, 2]
        assert all(d["verdict"] == "healthy" for d in seen)
