"""Figure reproduction functions: qualitative paper shapes at small scale."""

from __future__ import annotations

import pytest

from repro import figures
from repro.units import KIB, MIB

# small sizes keep the functional simulation fast; shapes already hold
SIZES = [64 * KIB, 512 * KIB]
AB = 512 * KIB


@pytest.fixture(scope="module")
def fig1a():
    return figures.fig1a_array_size(sizes=SIZES, ntimes=1)


@pytest.fixture(scope="module")
def fig3():
    return figures.fig3_loop_management(array_bytes=AB, ntimes=1)


class TestFig1a:
    def test_all_targets_present(self, fig1a):
        assert set(fig1a) == {"aocl", "sdaccel", "cpu", "gpu"}

    def test_bandwidth_rises_with_size(self, fig1a):
        for target, points in fig1a.items():
            ys = [y for _, y in points]
            assert ys == sorted(ys), target

    def test_target_ordering(self, fig1a):
        last = {t: pts[-1][1] for t, pts in fig1a.items()}
        assert last["gpu"] > last["cpu"] > last["aocl"] > last["sdaccel"]


class TestFig1b:
    def test_fpga_targets_gain_most_from_vectorization(self):
        series = figures.fig1b_vector_width(
            widths=(1, 4, 16), array_bytes=AB, ntimes=1
        )
        gain = {
            t: pts[-1][1] / pts[0][1] for t, pts in series.items() if pts
        }
        assert gain["aocl"] > 3
        # smaller test arrays leave some fill overhead on the slow V7 clock
        assert gain["sdaccel"] > 2.5
        assert gain["cpu"] < 1.5
        assert gain["gpu"] < 1.5


class TestFig2:
    def test_contiguous_beats_strided(self):
        series = figures.fig2_contiguity(sizes=[512 * KIB], ntimes=1)
        for target in ("aocl", "sdaccel", "cpu", "gpu"):
            contig = series[f"{target}-contig"][0][1]
            strided = series[f"{target}-strided"][0][1]
            assert contig > strided, target

    def test_sdaccel_strided_collapse(self):
        series = figures.fig2_contiguity(sizes=[512 * KIB], ntimes=1)
        assert series["sdaccel-strided"][0][1] < 0.05


class TestFig3:
    def test_cpu_gpu_prefer_ndrange(self, fig3):
        nd = dict(fig3["ndrange-kernel"])
        flat = dict(fig3["kernel-loop-flat"])
        # targets indexed in paper order: aocl=0, sdaccel=1, cpu=2, gpu=3
        assert nd[2.0] > flat[2.0]
        assert nd[3.0] > flat[3.0]

    def test_fpgas_prefer_single_work_item(self, fig3):
        nd = dict(fig3["ndrange-kernel"])
        flat = dict(fig3["kernel-loop-flat"])
        nested = dict(fig3["kernel-loop-nested"])
        assert flat[0.0] > nd[0.0]  # aocl
        assert max(flat[1.0], nested[1.0]) > nd[1.0]  # sdaccel

    def test_sdaccel_nested_anomaly(self, fig3):
        flat = dict(fig3["kernel-loop-flat"])
        nested = dict(fig3["kernel-loop-nested"])
        assert nested[1.0] > 2 * flat[1.0]


class TestFig4:
    def test_all_kernels_memory_bound(self):
        series = figures.fig4a_all_kernels(array_bytes=AB, ntimes=1)
        assert set(series) == {"copy", "scale", "add", "triad"}
        # per target, kernels land within a factor ~3 of each other
        for i in range(4):
            values = [dict(series[k])[float(i)] for k in series if float(i) in dict(series[k])]
            assert max(values) < 4 * min(values)

    def test_aocl_native_vectorization_most_reliable(self):
        series = figures.fig4b_aocl_optimizations(
            scales=(1, 4, 16), array_bytes=AB, ntimes=1
        )
        vec = dict(series["vector-width"])
        simd = dict(series["simd-work-items"])
        cu = dict(series["compute-units"])
        assert vec[16.0] > simd.get(16.0, 0.0)
        assert vec[16.0] > cu.get(16.0, 0.0)
        # vectorization improves monotonically in this range
        assert vec[16.0] > vec[4.0] > vec[1.0]


class TestTableAndExtras:
    def test_targets_table_matches_paper_setup(self):
        rows = figures.targets_table()
        by_target = {r["target"]: r for r in rows}
        assert by_target["cpu"]["peak_bw_gbs"] == 34.0
        assert by_target["gpu"]["peak_bw_gbs"] == 336.0
        assert by_target["aocl"]["peak_bw_gbs"] == 25.6
        assert by_target["sdaccel"]["peak_bw_gbs"] == 10.0
        assert [r["target"] for r in rows] == ["aocl", "sdaccel", "cpu", "gpu"]

    def test_pcie_streams_monotone(self):
        series = figures.pcie_streams(sizes=[64 * KIB, 4 * MIB], ntimes=1)
        for target, points in series.items():
            assert points[-1][1] > points[0][1], target

    def test_ablation_unroll_runs(self):
        series = figures.ablation_unroll(
            factors=(1, 4), targets=("aocl",), array_bytes=AB, ntimes=1
        )
        assert len(series["aocl"]) == 2

    def test_ablation_preshaping_breakeven(self):
        out = figures.ablation_preshaping(
            targets=("gpu",), array_bytes=AB, ntimes=1
        )
        entry = out["gpu"]
        assert entry["speedup"] > 1.0
        assert entry["breakeven_passes"] > 0
