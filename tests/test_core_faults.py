"""Campaign resilience: fault injection, retry, watchdogs, journals."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import (
    BenchmarkRunner,
    ExecutionEngine,
    FaultPlan,
    FaultSpec,
    ParameterSweep,
    SweepJournal,
    TuningParameters,
    Watchdog,
    explore,
    point_fingerprint,
)
from repro.errors import (
    BenchmarkError,
    PointTimeoutError,
    SweepError,
    TransientError,
    failure_kind,
)
from repro.faults import (
    FAULT_SITES,
    InjectedBuildFault,
    InjectedLaunchFault,
)
from repro.units import KIB

SMALL = TuningParameters(array_bytes=32 * KIB)


class TestFaultSpec:
    def test_parse_full(self):
        spec = FaultSpec.parse("build=0.3,launch=0.2,seed=7,stall_s=5")
        assert dict(spec.rates) == {"build": 0.3, "launch": 0.2}
        assert spec.seed == 7
        assert spec.stall_s == 5.0

    def test_parse_defaults(self):
        spec = FaultSpec.parse("readback=1.0")
        assert dict(spec.rates) == {"readback": 1.0}
        assert spec.stall_s > 0

    def test_unknown_site_rejected(self):
        with pytest.raises(BenchmarkError, match="unknown fault site"):
            FaultSpec.parse("bitflip=0.5")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(BenchmarkError, match=r"\[0, 1\]"):
            FaultSpec.parse("build=1.5")

    def test_bad_token_rejected(self):
        with pytest.raises(BenchmarkError, match="SITE=RATE"):
            FaultSpec.parse("build")

    def test_bad_value_rejected(self):
        with pytest.raises(BenchmarkError, match="bad fault spec value"):
            FaultSpec.parse("build=lots")

    def test_describe_roundtrips_sites(self):
        text = FaultSpec.parse("launch=0.25,build=0.5,seed=3").describe()
        assert "build=0.5" in text and "launch=0.25" in text and "seed=3" in text


class TestFaultPlan:
    def test_draws_are_deterministic_and_order_free(self):
        plan = FaultPlan.parse("launch=0.5,seed=11")
        a = [plan.should_fire("launch", f"k{i}", 0) for i in range(50)]
        b = [plan.should_fire("launch", f"k{i}", 0) for i in reversed(range(50))]
        assert a == list(reversed(b))
        assert any(a) and not all(a)  # rate 0.5 actually discriminates

    def test_draws_vary_by_site_and_attempt(self):
        plan = FaultPlan.parse(",".join(f"{s}=0.5" for s in FAULT_SITES) + ",seed=2")
        key = "samepoint"
        per_site = {s: plan.should_fire(s, key, 0) for s in FAULT_SITES}
        per_attempt = [plan.should_fire("launch", key, a) for a in range(20)]
        assert len(set(per_site.values())) == 2  # sites decide independently
        assert len(set(per_attempt)) == 2  # retries see fresh draws

    def test_check_raises_typed_transient_errors(self):
        plan = FaultPlan.parse("build=1.0,launch=1.0")
        with pytest.raises(InjectedBuildFault):
            plan.check("build", "k", 0)
        with pytest.raises(InjectedLaunchFault):
            plan.check("launch", "k", 0)
        assert issubclass(InjectedBuildFault, TransientError)
        plan.check("readback", "k", 0)  # rate 0: no-op

    def test_corrupt_readback_flips_one_byte(self):
        plan = FaultPlan.parse("readback=1.0,seed=5")
        arr = np.ones(64, dtype=np.float64)
        assert plan.corrupt_readback("k", 0, arr)
        assert (arr != 1.0).sum() == 1
        clean = FaultPlan.parse("readback=0.0")
        arr2 = np.ones(8, dtype=np.float64)
        assert not clean.corrupt_readback("k", 0, arr2)
        assert (arr2 == 1.0).all()

    def test_stall_checkpoint_can_cancel(self):
        plan = FaultPlan.parse("stall=1.0,stall_s=30")
        calls = []

        def checkpoint():
            calls.append(1)
            if len(calls) >= 2:
                raise PointTimeoutError("budget blown")

        with pytest.raises(PointTimeoutError):
            plan.stall("k", 0, checkpoint)
        assert len(calls) == 2  # cancelled long before stall_s elapsed


class TestRetry:
    def test_transient_launch_absorbed_and_instrumented(self):
        # launch=1.0 fires on every attempt; 3 retries means attempt 3
        # (the 4th) must run clean — so fire only on attempts 0-2 via a
        # plan whose rate is 1.0 but engine retries exceed the streak.
        plan = FaultPlan.parse("launch=0.7,seed=13")
        engine = ExecutionEngine("cpu", ntimes=1, faults=plan, retries=8,
                                 backoff_s=0.0)
        result = engine.run(SMALL)
        assert result.ok
        eng = result.detail["engine"]
        assert eng["attempts"] >= 1
        if eng["attempts"] > 1:
            assert eng["transient_errors"]
            assert engine.stats.snapshot()["retries"] == eng["attempts"] - 1

    def test_retries_exhausted_records_failure_kind(self):
        plan = FaultPlan.parse("launch=1.0")
        engine = ExecutionEngine("cpu", ntimes=1, faults=plan, retries=2,
                                 backoff_s=0.0)
        result = engine.run(SMALL)
        assert not result.ok
        assert result.failure_kind == "launch"
        assert result.detail["engine"]["attempts"] == 3
        assert len(result.detail["engine"]["transient_errors"]) == 2

    def test_readback_corruption_is_transient(self):
        plan = FaultPlan.parse("readback=1.0")
        engine = ExecutionEngine("cpu", ntimes=1, faults=plan, retries=1,
                                 backoff_s=0.0)
        result = engine.run(SMALL)
        assert not result.ok
        assert result.failure_kind == "validation"
        assert "Injected" in str(result.detail["engine"]["transient_errors"][0])

    def test_backoff_is_deterministic_and_capped(self):
        engine = ExecutionEngine("cpu", ntimes=1, backoff_s=0.05,
                                 backoff_cap_s=0.2)
        delays = [engine._backoff_delay("key", a) for a in range(8)]
        assert delays == [engine._backoff_delay("key", a) for a in range(8)]
        assert all(0 < d <= 0.2 for d in delays)

    def test_negative_retries_rejected(self):
        with pytest.raises(BenchmarkError, match="retries"):
            ExecutionEngine("cpu", retries=-1)

    def test_transient_build_failure_not_cached(self):
        # build=1.0 fails every attempt; a second engine sharing the
        # cache but without faults must still build successfully — the
        # cache must not have memoized the injected failure.
        faulty = ExecutionEngine("cpu", ntimes=1,
                                 faults=FaultPlan.parse("build=1.0"),
                                 retries=0, backoff_s=0.0)
        bad = faulty.run(SMALL)
        assert not bad.ok and bad.failure_kind == "build"
        clean = ExecutionEngine("cpu", ntimes=1, cache=faulty.cache)
        good = clean.run(SMALL)
        assert good.ok


class TestWatchdog:
    def test_validation(self):
        with pytest.raises(BenchmarkError):
            Watchdog(wall_s=0)
        with pytest.raises(BenchmarkError):
            Watchdog(virtual_s=-1.0)
        assert not Watchdog().active
        assert Watchdog(wall_s=1.0).active

    def test_stalled_point_times_out(self):
        plan = FaultPlan.parse("stall=1.0,stall_s=30")
        engine = ExecutionEngine("cpu", ntimes=1, faults=plan, retries=0,
                                 watchdog=Watchdog(wall_s=0.2))
        result = engine.run(SMALL)
        assert not result.ok
        assert result.failure_kind == "timeout"
        assert "wall budget" in result.error

    def test_virtual_budget_cancels(self):
        engine = ExecutionEngine("cpu", ntimes=50,
                                 watchdog=Watchdog(virtual_s=1e-9))
        result = engine.run(SMALL)
        assert not result.ok
        assert result.failure_kind == "timeout"
        assert "virtual budget" in result.error

    def test_per_call_override(self):
        engine = ExecutionEngine("cpu", ntimes=1,
                                 faults=FaultPlan.parse("stall=1.0,stall_s=30"),
                                 retries=0)
        result = engine.run(SMALL, watchdog=Watchdog(wall_s=0.2))
        assert result.failure_kind == "timeout"

    def test_failure_kind_mapping(self):
        assert failure_kind(PointTimeoutError("x")) == "timeout"
        assert failure_kind(None) == ""
        assert failure_kind(RuntimeError("x")) == "internal"


class TestFingerprintIdentity:
    def test_faulty_run_matches_clean_run(self):
        # Transient faults that are fully absorbed by retries must not
        # leak into the measurement fingerprint.
        clean = ExecutionEngine("cpu", ntimes=1).run(SMALL)
        faulty = ExecutionEngine(
            "cpu", ntimes=1, retries=10, backoff_s=0.0,
            faults=FaultPlan.parse("build=0.5,launch=0.5,seed=3"),
        ).run(SMALL)
        assert faulty.ok
        assert faulty.fingerprint() == clean.fingerprint()


def _sweep(n=3):
    return ParameterSweep(base=SMALL, axes={"vector_width": [1, 2, 4][:n]})


class TestJournal:
    def test_resume_skips_completed_points(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        runner = BenchmarkRunner("cpu", ntimes=1)
        first = explore(runner, _sweep(), journal=SweepJournal(path))
        journal = SweepJournal(path)
        again = explore(BenchmarkRunner("cpu", ntimes=1), _sweep(),
                        journal=journal, resume=True)
        assert journal.reused == 3 and journal.executed == 0
        assert [r.fingerprint() for r in again] == [
            r.fingerprint() for r in first
        ]

    def test_interrupted_campaign_resumes_byte_identical(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        faults = "launch=0.4,readback=0.3,seed=9"
        uninterrupted = explore(
            BenchmarkRunner("cpu", ntimes=1,
                            faults=FaultPlan.parse(faults)),
            _sweep(),
        )
        # simulate a kill after the first point: journal holds one record
        journal = SweepJournal(path)
        engine = BenchmarkRunner("cpu", ntimes=1,
                                 faults=FaultPlan.parse(faults)).engine
        points = list(_sweep().points())
        journal.record(point_fingerprint("cpu", points[0]),
                       engine.run(points[0]))
        resumed = explore(
            BenchmarkRunner("cpu", ntimes=1,
                            faults=FaultPlan.parse(faults)),
            _sweep(),
            journal=SweepJournal(path),
            resume=True,
        )
        assert [r.fingerprint() for r in resumed] == [
            r.fingerprint() for r in uninterrupted
        ]

    def test_truncated_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        explore(BenchmarkRunner("cpu", ntimes=1), _sweep(2),
                journal=SweepJournal(path))
        text = path.read_text()
        path.write_text(text + '{"schema": 1, "point": "tru')
        journal = SweepJournal(path)
        done = journal.load()
        assert len(done) == 2
        assert journal.discarded == 1

    def test_stale_fingerprint_discarded(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        explore(BenchmarkRunner("cpu", ntimes=1), _sweep(1),
                journal=SweepJournal(path))
        record = json.loads(path.read_text())
        record["times_s"] = [t * 2 for t in record["times_s"]]  # tampered
        path.write_text(json.dumps(record) + "\n")
        journal = SweepJournal(path)
        assert journal.load() == {}
        assert journal.discarded == 1

    def test_resume_requires_journal(self):
        with pytest.raises(SweepError, match="requires a journal"):
            explore(BenchmarkRunner("cpu", ntimes=1), _sweep(), resume=True)

    def test_journal_accepts_path_like(self, tmp_path):
        nested = tmp_path / "deep" / "dir" / "j.jsonl"
        explore(BenchmarkRunner("cpu", ntimes=1), _sweep(1),
                journal=str(nested))
        assert nested.exists()

    def test_parallel_sweep_journals_every_point(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        journal = SweepJournal(path)
        explore(BenchmarkRunner("cpu", ntimes=1), _sweep(), jobs=2,
                journal=journal)
        assert journal.executed == 3
        assert len(SweepJournal(path).load()) == 3


class TestVerifyFaultSite:
    def test_parse_accepts_verify_site(self):
        spec = FaultSpec.parse("verify=0.5,seed=3")
        assert dict(spec.rates) == {"verify": 0.5}
        assert "verify" in FAULT_SITES

    def test_verify_mismatch_is_permanent_not_transient(self):
        from repro.errors import VerifyMismatchError

        assert not issubclass(VerifyMismatchError, TransientError)
        assert failure_kind(VerifyMismatchError("x")) == "verify_mismatch"
        assert VerifyMismatchError("x", verdict={"ok": False}).verdict == {
            "ok": False
        }

    def test_injected_miscompile_flagged_not_crashed(self):
        # the verify site corrupts the *re-derived* side, so STREAM
        # validation stays green and only the verify stage can catch it
        plan = FaultPlan.parse("verify=1.0,seed=7")
        engine = ExecutionEngine("cpu", ntimes=1, verify=True, validate=True,
                                 faults=plan, retries=2, backoff_s=0.0)
        result = engine.run(SMALL)  # returned, not raised
        assert not result.ok
        assert result.failure_kind == "verify_mismatch"
        verdict = result.detail["verify"]
        assert verdict["ok"] is False and verdict["corrupted"] is True
        assert "re-derived" in result.error
        # a miscompile reproduces on retry: no retry budget is burned
        assert result.detail["engine"]["attempts"] == 1

    def test_corrupt_verify_decisions_are_deterministic(self):
        plan = FaultPlan.parse("verify=0.5,seed=21")
        arrays = lambda: {  # noqa: E731 - tiny fixture
            n: np.ones(16, dtype=np.int32) for n in ("a", "b", "c")
        }
        draws = []
        for i in range(20):
            a = arrays()
            fired = plan.corrupt_verify(f"k{i}", 0, a)
            flipped = sum((a[n] != 1).sum() for n in a)
            assert flipped == (1 if fired else 0)
            draws.append(fired)
        assert draws == [
            FaultPlan.parse("verify=0.5,seed=21").corrupt_verify(
                f"k{i}", 0, arrays()
            )
            for i in range(20)
        ]
        assert any(draws) and not all(draws)

    def test_clean_verify_run_has_no_fault_effect(self):
        plan = FaultPlan.parse("verify=0.0")
        engine = ExecutionEngine("cpu", ntimes=1, verify=True, faults=plan)
        result = engine.run(SMALL)
        assert result.ok
        assert result.detail["verify"]["ok"] is True
        assert result.detail["verify"]["corrupted"] is False


class TestVerifyResume:
    def _runner(self, faults: str | None = None):
        return BenchmarkRunner(
            "cpu",
            ntimes=1,
            verify=True,
            faults=FaultPlan.parse(faults) if faults else None,
        )

    @staticmethod
    def _verdicts(results):
        return [json.dumps(r.detail.get("verify"), sort_keys=True) for r in results]

    def test_resumed_sweep_restores_byte_identical_verdicts(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        fresh = explore(self._runner(), _sweep())
        # simulate a kill after the first point, then resume the rest
        journal = SweepJournal(path)
        points = list(_sweep().points())
        journal.record(
            point_fingerprint("cpu", points[0]),
            self._runner().engine.run(points[0]),
        )
        resumed = explore(
            self._runner(), _sweep(), journal=SweepJournal(path), resume=True
        )
        assert self._verdicts(resumed) == self._verdicts(fresh)
        assert [r.fingerprint() for r in resumed] == [
            r.fingerprint() for r in fresh
        ]

    def test_resume_preserves_mismatch_verdicts_too(self, tmp_path):
        # a mixed campaign: some points pass, some fail verification
        path = tmp_path / "campaign.jsonl"
        faults = "verify=0.5,seed=29"
        fresh = explore(self._runner(faults), _sweep())
        kinds = {r.failure_kind for r in fresh}
        assert "verify_mismatch" in kinds and "" in kinds  # genuinely mixed
        journal = SweepJournal(path)
        points = list(_sweep().points())
        journal.record(
            point_fingerprint("cpu", points[0]),
            self._runner(faults).engine.run(points[0]),
        )
        resumed = explore(
            self._runner(faults),
            _sweep(),
            journal=SweepJournal(path),
            resume=True,
        )
        assert self._verdicts(resumed) == self._verdicts(fresh)
        assert [r.failure_kind for r in resumed] == [
            r.failure_kind for r in fresh
        ]

    def test_verify_toggle_does_not_change_fingerprints(self):
        plain = explore(BenchmarkRunner("cpu", ntimes=1), _sweep())
        verified = explore(self._runner(), _sweep())
        assert [r.fingerprint() for r in verified] == [
            r.fingerprint() for r in plain
        ]


class TestWorkerCrash:
    def test_crash_cancels_pool_and_names_point(self):
        class BombEngine:
            target = "cpu"

            def worker_clone(self):
                return self

            def run(self, params, *, watchdog=None):
                raise RuntimeError("engine bug")

        with pytest.raises(SweepError, match=r"grid point \d+ .*engine bug"):
            explore(BombEngine(), _sweep(), jobs=2)
