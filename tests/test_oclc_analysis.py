"""Kernel analysis: loop modes, affine strides, index streams, IR metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import UnsupportedKernelError
from repro.oclc import LoopMode, analyze, classify_stride, compile_source, index_stream


def ir_of(src, defines=None):
    return analyze(compile_source(src, defines))


class TestLoopModes:
    def test_ndrange(self):
        ir = ir_of(
            "__kernel void k(__global const int *a, __global int *c)"
            "{ size_t i = get_global_id(0); c[i] = a[i]; }"
        )
        assert ir.loop_mode is LoopMode.NDRANGE
        assert ir.loops == ()
        assert ir.gid_vars == ("gid0",)

    def test_flat(self):
        ir = ir_of(
            "__kernel void k(__global const int *a, __global int *c)"
            "{ for (int i = 0; i < 128; i++) c[i] = a[i]; }"
        )
        assert ir.loop_mode is LoopMode.FLAT
        assert ir.loops[0].trip_count == 128
        assert ir.iterations_per_work_item() == 128

    def test_nested(self):
        ir = ir_of(
            "__kernel void k(__global const int *a, __global int *c)"
            "{ for (int i = 0; i < 4; i++) for (int j = 0; j < 8; j++)"
            "  c[i * 8 + j] = a[i * 8 + j]; }"
        )
        assert ir.loop_mode is LoopMode.NESTED
        assert [loop.trip_count for loop in ir.loops] == [4, 8]
        assert ir.iterations_per_work_item() == 32

    def test_loop_with_step(self):
        ir = ir_of(
            "__kernel void k(__global int *c)"
            "{ for (int i = 0; i < 100; i += 3) c[i] = i; }"
        )
        assert ir.loops[0].trip_count == 34

    def test_le_bound(self):
        ir = ir_of(
            "__kernel void k(__global int *c)"
            "{ for (int i = 0; i <= 9; i++) c[i] = i; }"
        )
        assert ir.loops[0].trip_count == 10

    def test_nonconstant_bound_rejected(self):
        with pytest.raises(UnsupportedKernelError):
            ir_of(
                "__kernel void k(__global int *c, const int n)"
                "{ for (int i = 0; i < n; i++) c[i] = i; }"
            )


class TestAccesses:
    def test_reads_writes_split(self):
        ir = ir_of(
            "__kernel void k(__global const int *a, __global const int *b, __global int *c)"
            "{ size_t i = get_global_id(0); c[i] = a[i] + b[i]; }"
        )
        assert {a.param for a in ir.reads} == {"a", "b"}
        assert {a.param for a in ir.writes} == {"c"}
        assert ir.bytes_per_iteration() == 12
        assert ir.elements_per_iteration() == 3

    def test_affine_coefficients(self):
        ir = ir_of(
            "__kernel void k(__global int *c)"
            "{ for (int i = 0; i < 4; i++) for (int j = 0; j < 8; j++)"
            "  c[i * 8 + j + 2] = j; }"
        )
        acc = ir.writes[0]
        assert acc.affine.is_affine
        assert acc.affine.stride_of("i") == 8
        assert acc.affine.stride_of("j") == 1
        assert acc.affine.const == 2

    def test_affine_through_local_alias(self):
        ir = ir_of(
            "__kernel void k(__global int *c)"
            "{ for (int i = 0; i < 16; i++) { int idx = i * 4; c[idx] = i; } }"
        )
        assert ir.writes[0].affine.is_affine
        assert ir.writes[0].affine.stride_of("i") == 4

    def test_modulo_index_not_affine(self):
        ir = ir_of(
            "__kernel void k(__global int *c) {"
            " size_t g = get_global_id(0);"
            " size_t idx = (g % 8) * 8 + g / 8;"
            " c[idx] = 1; }"
        )
        assert not ir.writes[0].affine.is_affine

    def test_vector_width(self):
        ir = ir_of(
            "__kernel void k(__global const int8 *a, __global int8 *c)"
            "{ size_t i = get_global_id(0); c[i] = a[i]; }"
        )
        assert ir.vector_width == 8
        assert ir.accesses[0].element_bytes == 32

    def test_alu_and_mul_counting(self):
        ir = ir_of(
            "__kernel void k(__global const double *b, __global const double *c,"
            " __global double *a, const double q)"
            "{ size_t i = get_global_id(0); a[i] = b[i] + q * c[i]; }"
        )
        assert ir.alu_ops_per_iteration == 2
        assert ir.mul_ops_per_iteration == 1
        assert ir.uses_double

    def test_address_arithmetic_not_counted(self):
        ir = ir_of(
            "__kernel void k(__global const int *a, __global int *c)"
            "{ for (int i = 0; i < 4; i++) for (int j = 0; j < 8; j++)"
            "  c[i * 8 + j] = a[i * 8 + j]; }"
        )
        assert ir.alu_ops_per_iteration == 0
        assert ir.mul_ops_per_iteration == 0

    def test_control_flow_flag(self):
        ir = ir_of(
            "__kernel void k(__global int *c)"
            "{ size_t i = get_global_id(0); if (i > 1) c[i] = 1; }"
        )
        assert ir.has_control_flow


class TestAttributesAndUnroll:
    def test_attributes_surface(self):
        ir = ir_of(
            "__kernel __attribute__((reqd_work_group_size(64, 1, 1)))"
            "__attribute__((num_simd_work_items(8)))"
            " void k(__global int *c) { size_t i = get_global_id(0); c[i] = 1; }"
        )
        assert ir.attributes["reqd_work_group_size"] == (64, 1, 1)
        assert ir.attributes["num_simd_work_items"] == (8,)

    def test_unroll_from_pragma(self):
        ir = ir_of(
            "__kernel void k(__global int *c) {\n"
            "#pragma unroll 4\n"
            "for (int i = 0; i < 64; i++) c[i] = i; }"
        )
        assert ir.unroll_factor == 4

    def test_unroll_default(self):
        ir = ir_of(
            "__kernel void k(__global int *c)"
            "{ for (int i = 0; i < 64; i++) c[i] = i; }"
        )
        assert ir.unroll_factor == 1


class TestIndexStreams:
    def test_contiguous_stream(self):
        ir = ir_of(
            "__kernel void k(__global const int *a, __global int *c)"
            "{ size_t i = get_global_id(0); c[i] = a[i]; }"
        )
        stream = index_stream(ir, ir.writes[0], global_size=16)
        assert np.array_equal(stream, np.arange(16))
        assert classify_stride(ir, ir.writes[0], global_size=16) == 1

    def test_column_walk_stream(self):
        ir = ir_of(
            "__kernel void k(__global int *c)"
            "{ for (int j = 0; j < 4; j++) for (int i = 0; i < 8; i++)"
            "  c[i * 4 + j] = i; }"
        )
        stream = index_stream(ir, ir.writes[0])
        # column-major: first column is 0, 4, 8, ... then column 1
        assert np.array_equal(stream[:8], np.arange(8) * 4)
        assert stream[8] == 1
        assert classify_stride(ir, ir.writes[0]) == 4

    def test_modulo_stream_covers_all_elements(self):
        ir = ir_of(
            "__kernel void k(__global int *c) {"
            " size_t g = get_global_id(0);"
            " size_t idx = (g % 8) * 8 + g / 8;"
            " c[idx] = 1; }"
        )
        stream = index_stream(ir, ir.writes[0], global_size=64)
        assert sorted(stream.tolist()) == list(range(64))

    def test_max_elements_window(self):
        ir = ir_of(
            "__kernel void k(__global int *c)"
            "{ for (int i = 0; i < 1000; i++) c[i] = i; }"
        )
        stream = index_stream(ir, ir.writes[0], max_elements=10)
        assert len(stream) == 10

    def test_classify_no_dominant_stride(self):
        ir = ir_of(
            "__kernel void k(__global int *c) {"
            " size_t g = get_global_id(0);"
            " size_t idx = (g * g) % 64;"
            " c[idx] = 1; }"
        )
        assert classify_stride(ir, ir.writes[0], global_size=64) is None
