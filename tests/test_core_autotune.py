"""Autotuner: coordinate descent over the tuning space."""

from __future__ import annotations

import pytest

from repro.core import (
    BenchmarkRunner,
    LoopManagement,
    TuningParameters,
    autotune,
)
from repro.errors import SweepError
from repro.units import KIB, MIB

AXES = {
    "loop": list(LoopManagement),
    "vector_width": [1, 2, 4, 8, 16],
    "unroll": [1, 2, 4],
}


class TestAutotune:
    def test_finds_fpga_optimum(self):
        """On AOCL the known optimum is a vectorized single-work-item loop."""
        runner = BenchmarkRunner("aocl", ntimes=1)
        out = autotune(
            runner,
            AXES,
            seed=TuningParameters(array_bytes=1 * MIB),
            budget=40,
        )
        assert out.best.ok
        assert out.best.params.loop is not LoopManagement.NDRANGE
        assert out.best.params.vector_width >= 8
        # descends: every trajectory step improves
        bws = [bw for _, bw in out.trajectory]
        assert bws == sorted(bws)

    def test_beats_or_matches_seed(self):
        runner = BenchmarkRunner("sdaccel", ntimes=1)
        seed = TuningParameters(array_bytes=512 * KIB)
        out = autotune(runner, AXES, seed=seed, budget=30)
        seed_result = runner.run(seed)
        assert out.best.bandwidth_gbs >= seed_result.bandwidth_gbs

    def test_budget_respected(self):
        runner = BenchmarkRunner("cpu", ntimes=1)
        out = autotune(
            runner,
            AXES,
            seed=TuningParameters(array_bytes=64 * KIB),
            budget=5,
        )
        assert out.evaluations_used <= 5

    def test_cheaper_than_grid(self):
        """Coordinate descent reaches the same winner as the full grid
        with a fraction of the evaluations."""
        from repro.core import ParameterSweep, explore

        runner = BenchmarkRunner("aocl", ntimes=1)
        sweep = ParameterSweep(
            base=TuningParameters(array_bytes=256 * KIB),
            axes=AXES,
        )
        grid = explore(runner, sweep)
        tuned = autotune(
            runner,
            AXES,
            seed=TuningParameters(array_bytes=256 * KIB),
            budget=25,
        )
        grid_best = grid.best()
        assert grid_best is not None
        assert tuned.best.bandwidth_gbs >= 0.9 * grid_best.bandwidth_gbs
        assert tuned.evaluations_used < len(grid)

    def test_build_failures_do_not_win(self):
        """On sdaccel, vec=16 + 3-array kernels overflow; the tuner must
        route around failed builds."""
        from repro.core import KernelName

        runner = BenchmarkRunner("sdaccel", ntimes=1)
        out = autotune(
            runner,
            {"vector_width": [1, 8, 16]},
            seed=TuningParameters(
                array_bytes=256 * KIB,
                kernel=KernelName.ADD,
                loop=LoopManagement.NESTED,
            ),
            budget=10,
        )
        assert out.best.ok
        assert out.best.params.vector_width == 8

    def test_invalid_axes(self):
        runner = BenchmarkRunner("cpu", ntimes=1)
        with pytest.raises(SweepError):
            autotune(runner, {"warp_factor": [1]}, budget=3)
        with pytest.raises(SweepError):
            autotune(runner, {}, budget=3)
        with pytest.raises(SweepError):
            autotune(runner, AXES, budget=0)

    def test_illegal_moves_skipped(self):
        """unroll>1 is illegal for NDRange; the tuner must skip, not crash."""
        runner = BenchmarkRunner("cpu", ntimes=1)
        out = autotune(
            runner,
            {"unroll": [1, 4], "vector_width": [1, 4]},
            seed=TuningParameters(array_bytes=64 * KIB),  # NDRange seed
            budget=10,
        )
        assert out.best.ok
        assert out.best.params.unroll == 1


class TestDeterminism:
    def test_autotune_is_deterministic(self):
        """Same inputs, same trajectory: the simulation has no hidden
        randomness."""
        runner = BenchmarkRunner("aocl", ntimes=1)
        seed = TuningParameters(array_bytes=128 * KIB)
        a = autotune(runner, AXES, seed=seed, budget=20)
        b = autotune(runner, AXES, seed=seed, budget=20)
        assert a.trajectory == b.trajectory
        assert a.best.params == b.best.params
        assert a.best.bandwidth_gbs == b.best.bandwidth_gbs

    def test_runner_results_deterministic(self):
        runner = BenchmarkRunner("gpu", ntimes=3)
        p = TuningParameters(array_bytes=128 * KIB)
        r1, r2 = runner.run(p), runner.run(p)
        assert r1.times == r2.times
