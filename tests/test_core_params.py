"""Tuning parameters: validation and derived quantities."""

from __future__ import annotations

import pytest

from repro.core import (
    AccessPattern,
    DataType,
    KernelName,
    LoopManagement,
    StreamLocus,
    TuningParameters,
)
from repro.errors import SweepError
from repro.units import MIB


class TestDefaults:
    def test_default_point(self):
        p = TuningParameters()
        assert p.kernel is KernelName.COPY
        assert p.array_bytes == 4 * MIB
        assert p.dtype is DataType.INT
        assert p.vector_width == 1
        assert p.locus is StreamLocus.DEVICE

    def test_describe_is_readable(self):
        text = TuningParameters(vector_width=4, unroll=2, loop=LoopManagement.FLAT).describe()
        assert "copy" in text and "int4" in text and "unroll2" in text


class TestValidation:
    def test_bad_vector_width(self):
        with pytest.raises(SweepError):
            TuningParameters(vector_width=3)

    def test_bad_array_size(self):
        with pytest.raises(SweepError):
            TuningParameters(array_bytes=0)

    def test_bad_unroll(self):
        with pytest.raises(SweepError):
            TuningParameters(unroll=0)

    def test_unroll_requires_loop_kernel(self):
        with pytest.raises(SweepError):
            TuningParameters(unroll=4, loop=LoopManagement.NDRANGE)
        TuningParameters(unroll=4, loop=LoopManagement.FLAT)

    def test_simd_requires_ndrange_and_wg(self):
        with pytest.raises(SweepError):
            TuningParameters(num_simd_work_items=4, loop=LoopManagement.FLAT)
        with pytest.raises(SweepError):
            TuningParameters(num_simd_work_items=4, loop=LoopManagement.NDRANGE)
        TuningParameters(
            num_simd_work_items=4,
            loop=LoopManagement.NDRANGE,
            reqd_work_group_size=64,
        )

    def test_array_must_hold_whole_elements(self):
        with pytest.raises(SweepError):
            TuningParameters(array_bytes=100, vector_width=16)  # 100 % 64 != 0

    def test_port_width_values(self):
        with pytest.raises(SweepError):
            TuningParameters(xcl_memory_port_width=100)
        TuningParameters(xcl_memory_port_width=512)


class TestDerived:
    def test_word_and_element_counts(self):
        p = TuningParameters(array_bytes=1 * MIB, dtype=DataType.DOUBLE, vector_width=4)
        assert p.word_count == 131072
        assert p.element_bytes == 32
        assert p.element_count == 32768
        assert p.type_name == "double4"

    def test_shape_2d_square_power_of_two(self):
        p = TuningParameters(array_bytes=4 * MIB)  # 1M int32
        rows, cols = p.shape_2d()
        assert rows * cols == p.element_count
        assert rows == 1024 and cols == 1024

    def test_shape_2d_non_square(self):
        p = TuningParameters(array_bytes=2 * MIB)  # 512K elements
        rows, cols = p.shape_2d()
        assert rows * cols == p.element_count
        assert rows & (rows - 1) == 0  # rows is a power of two

    def test_moved_bytes_convention(self):
        p = TuningParameters(array_bytes=1 * MIB)
        assert p.moved_bytes == 2 * MIB
        assert p.with_(kernel=KernelName.ADD).moved_bytes == 3 * MIB
        assert p.with_(kernel=KernelName.TRIAD).moved_bytes == 3 * MIB
        assert p.with_(kernel=KernelName.SCALE).moved_bytes == 2 * MIB

    def test_moved_bytes_2d_uses_touched_elements(self):
        p = TuningParameters(array_bytes=1 * MIB, pattern=AccessPattern.STRIDED)
        rows, cols = p.shape_2d()
        assert p.moved_bytes == 2 * rows * cols * 4

    def test_with_and_parse(self):
        p = TuningParameters.parse(array_size="1MiB", vector_width=8)
        assert p.array_bytes == MIB and p.vector_width == 8
        q = p.with_(kernel=KernelName.TRIAD)
        assert q.kernel is KernelName.TRIAD and p.kernel is KernelName.COPY

    def test_kernel_metadata(self):
        assert KernelName.COPY.arrays_touched == 2
        assert KernelName.TRIAD.arrays_touched == 3
        assert KernelName.SCALE.uses_scalar
        assert not KernelName.ADD.uses_scalar
