"""GPU-STREAM baseline: faithfulness and cross-validation with MP-STREAM."""

from __future__ import annotations

import pytest

from repro.core import BenchmarkRunner, DataType, KernelName, TuningParameters
from repro.errors import BenchmarkError
from repro.gpustream import run_gpu_stream
from repro.gpustream.runner import _expected_final
from repro.units import KIB, MIB


class TestMechanics:
    def test_all_four_kernels(self):
        res = run_gpu_stream("gpu", array_bytes=256 * KIB, ntimes=2)
        assert set(res) == {"copy", "mul", "add", "triad"}
        for r in res.values():
            assert len(r.times) == 2
            assert r.bandwidth_gbs > 0

    def test_byte_counting(self):
        res = run_gpu_stream("cpu", array_bytes=256 * KIB, ntimes=1)
        assert res["copy"].moved_bytes == 2 * 256 * KIB
        assert res["triad"].moved_bytes == 3 * 256 * KIB

    def test_validation_tracks_evolving_arrays(self):
        # the run itself validates; reaching here means the simulated
        # kernels reproduced the scalar recurrence across iterations
        run_gpu_stream("gpu", array_bytes=64 * KIB, ntimes=5)

    def test_expected_final_recurrence(self):
        a, b, c = _expected_final(1)
        # c=a=1; b=3; c=1+3=4; a=3+3*4=15
        assert (a, b, c) == (15.0, 3.0, 4.0)

    def test_bad_args(self):
        with pytest.raises(BenchmarkError):
            run_gpu_stream("gpu", ntimes=0)
        with pytest.raises(BenchmarkError):
            run_gpu_stream("gpu", array_bytes=4)

    def test_runs_on_every_target(self, any_device):
        res = run_gpu_stream(any_device, array_bytes=64 * KIB, ntimes=1)
        assert all(r.bandwidth_gbs > 0 for r in res.values())


class TestCrossValidation:
    """Two independent host implementations over one simulated stack
    must agree — this is the reproduction's internal consistency check."""

    KERNEL_MAP = {
        "copy": KernelName.COPY,
        "mul": KernelName.SCALE,
        "add": KernelName.ADD,
        "triad": KernelName.TRIAD,
    }

    @pytest.mark.parametrize("target", ["gpu", "cpu"])
    def test_agrees_with_mpstream_ndrange_double(self, target):
        n = 1 * MIB
        gs = run_gpu_stream(target, array_bytes=n, ntimes=3)
        runner = BenchmarkRunner(target, ntimes=3)
        for gs_name, mp_kernel in self.KERNEL_MAP.items():
            mp = runner.run(
                TuningParameters(
                    array_bytes=n, kernel=mp_kernel, dtype=DataType.DOUBLE
                )
            )
            assert mp.ok
            assert gs[gs_name].bandwidth_gbs == pytest.approx(
                mp.bandwidth_gbs, rel=0.1
            ), (target, gs_name)

    def test_gpu_stream_is_the_wrong_style_for_fpgas(self):
        """The paper's whole motivation: GPU-STREAM's NDRange style
        under-uses FPGA memory systems by an order of magnitude."""
        gs = run_gpu_stream("sdaccel", array_bytes=1 * MIB, ntimes=2)
        from repro.core import LoopManagement

        tuned = BenchmarkRunner("sdaccel", ntimes=2).run(
            TuningParameters(
                array_bytes=1 * MIB,
                dtype=DataType.DOUBLE,
                loop=LoopManagement.NESTED,
            )
        )
        assert tuned.bandwidth_gbs > 10 * gs["copy"].bandwidth_gbs
