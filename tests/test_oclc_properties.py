"""Property-based tests for the compiler front-end (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AccessPattern,
    DataType,
    KernelName,
    LoopManagement,
    TuningParameters,
    generate,
)
from repro.oclc import (
    BufferArg,
    analyze,
    compile_source,
    parse,
    run_kernel,
    specialize,
    to_source,
)

# -- strategy: a random (valid) tuning point small enough to interpret -------

_dtypes = st.sampled_from([DataType.INT, DataType.DOUBLE])
_kernels = st.sampled_from(list(KernelName))
_patterns = st.sampled_from(list(AccessPattern))
_loops = st.sampled_from(list(LoopManagement))
_widths = st.sampled_from([1, 2, 4, 8, 16])


@st.composite
def tuning_points(draw) -> TuningParameters:
    dtype = draw(_dtypes)
    width = draw(_widths)
    # keep arrays tiny: at most 256 vector elements
    n_elements = draw(st.sampled_from([16, 32, 64, 128, 256]))
    loop = draw(_loops)
    unroll = draw(st.sampled_from([1, 2, 4])) if loop is not LoopManagement.NDRANGE else 1
    return TuningParameters(
        kernel=draw(_kernels),
        array_bytes=n_elements * width * dtype.size,
        dtype=dtype,
        vector_width=width,
        pattern=draw(_patterns),
        loop=loop,
        unroll=unroll,
    )


@settings(max_examples=40, deadline=None)
@given(tuning_points())
def test_generated_source_parses_and_roundtrips(params):
    """generate() output parses; pretty-print -> parse is structurally stable."""
    gen = generate(params)
    unit = parse(gen.source, {k: str(v) for k, v in gen.defines.items()})
    printed = to_source(unit)
    reparsed = parse(printed)
    assert to_source(reparsed) == printed  # fixed point after one print


@settings(max_examples=30, deadline=None)
@given(tuning_points())
def test_specializer_matches_interpreter_on_generated_kernels(params):
    """The fast path computes exactly what the reference interpreter does."""
    gen = generate(params)
    defines = {k: str(v) for k, v in gen.defines.items()}
    program = compile_source(gen.source, defines)

    dt = {DataType.INT: np.int32, DataType.DOUBLE: np.float64}[params.dtype]
    rng = np.random.default_rng(params.array_bytes + params.vector_width)
    n = params.word_count
    base = {
        "a": rng.integers(-50, 50, n).astype(dt),
        "b": rng.integers(-50, 50, n).astype(dt),
        "c": rng.integers(-50, 50, n).astype(dt),
    }
    from repro.core.kernels import KERNELS

    spec = KERNELS[params.kernel]
    names = (*spec.reads, spec.writes)

    interp_arrays = {k: v.copy() for k, v in base.items()}
    spec_arrays = {k: v.copy() for k, v in base.items()}

    def args(arrays):
        out = {name: BufferArg(arrays[name]) for name in names}
        if spec.uses_scalar:
            out["q"] = dt(3)
        return out

    run_kernel(program, gen.kernel_name, gen.global_size, args(interp_arrays))
    specialize(program, gen.kernel_name).run(gen.global_size, args(spec_arrays))

    for name in ("a", "b", "c"):
        np.testing.assert_array_equal(
            interp_arrays[name],
            spec_arrays[name],
            err_msg=f"array {name} diverged for {params.describe()}",
        )


@settings(max_examples=40, deadline=None)
@given(tuning_points())
def test_analysis_accesses_match_kernel_spec(params):
    """The IR sees exactly the reads/writes the STREAM kernel defines."""
    from repro.core.kernels import KERNELS

    gen = generate(params)
    program = compile_source(gen.source, {k: str(v) for k, v in gen.defines.items()})
    ir = analyze(program, gen.kernel_name)
    spec = KERNELS[params.kernel]
    assert {a.param for a in ir.reads} == set(spec.reads)
    assert {a.param for a in ir.writes} == {spec.writes}
    assert ir.vector_width == params.vector_width
    # loop-mode classification matches the requested management
    assert ir.loop_mode.value == params.loop.value


@settings(max_examples=30, deadline=None)
@given(tuning_points())
def test_index_streams_cover_every_touched_element(params):
    """Every access stream touches each element exactly once."""
    from repro.oclc.analysis import index_stream

    gen = generate(params)
    program = compile_source(gen.source, {k: str(v) for k, v in gen.defines.items()})
    ir = analyze(program, gen.kernel_name)
    for access in ir.accesses:
        stream = index_stream(ir, access, global_size=gen.global_size[0])
        n_touched = gen.touched_words // params.vector_width
        assert len(stream) == n_touched
        assert sorted(stream.tolist()) == list(range(n_touched))
