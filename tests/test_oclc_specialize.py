"""Vectorized specializer: equivalence with the interpreter + safety refusals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import UnsupportedKernelError
from repro.oclc import BufferArg, compile_source, run_kernel, specialize


def both_paths(src, global_size, defines=None, **arrays):
    """Run interpreter and specializer on copies of the same inputs."""
    p = compile_source(src, defines)
    name = p.kernel().name
    interp_arrays = {k: v.copy() for k, v in arrays.items() if isinstance(v, np.ndarray)}
    spec_arrays = {k: v.copy() for k, v in arrays.items() if isinstance(v, np.ndarray)}
    scalars = {k: v for k, v in arrays.items() if not isinstance(v, np.ndarray)}
    run_kernel(
        p, name, global_size,
        {**{k: BufferArg(v) for k, v in interp_arrays.items()}, **scalars},
    )
    specialize(p).run(
        global_size,
        {**{k: BufferArg(v) for k, v in spec_arrays.items()}, **scalars},
    )
    return interp_arrays, spec_arrays


class TestEquivalence:
    def test_ndrange_copy(self):
        a = np.arange(64, dtype=np.int32)
        i, s = both_paths(
            "__kernel void k(__global const int *a, __global int *c)"
            "{ size_t i = get_global_id(0); c[i] = a[i]; }",
            (64,),
            a=a,
            c=np.zeros(64, np.int32),
        )
        assert np.array_equal(i["c"], s["c"])

    def test_flat_scale_double(self):
        c = np.linspace(0, 1, 32)
        i, s = both_paths(
            "__kernel void k(__global const double *c, __global double *b, const double q)"
            "{ for (int i = 0; i < 32; i++) b[i] = q * c[i]; }",
            (1,),
            c=c,
            b=np.zeros(32),
            q=3.0,
        )
        assert np.allclose(i["b"], s["b"])
        assert np.allclose(s["b"], 3.0 * c)

    def test_nested_add(self):
        a = np.arange(48, dtype=np.int32)
        b = np.arange(48, dtype=np.int32)[::-1].copy()
        i, s = both_paths(
            "__kernel void k(__global const int *a, __global const int *b, __global int *c)"
            "{ for (int i = 0; i < 6; i++) for (int j = 0; j < 8; j++)"
            "  { int idx = i * 8 + j; c[idx] = a[idx] + b[idx]; } }",
            (1,),
            a=a,
            b=b,
            c=np.zeros(48, np.int32),
        )
        assert np.array_equal(i["c"], s["c"])

    def test_strided_column_walk(self):
        a = np.arange(64, dtype=np.int32)
        i, s = both_paths(
            "__kernel void k(__global const int *a, __global int *c)"
            "{ for (int j = 0; j < 8; j++) for (int i = 0; i < 8; i++)"
            "  { int idx = i * 8 + j; c[idx] = a[idx]; } }",
            (1,),
            a=a,
            c=np.zeros(64, np.int32),
        )
        assert np.array_equal(i["c"], s["c"])

    def test_ndrange_strided_modulo_index(self):
        a = np.arange(64, dtype=np.int32)
        i, s = both_paths(
            "__kernel void k(__global const int *a, __global int *c) {"
            " size_t g = get_global_id(0);"
            " size_t idx = (g % 8) * 8 + g / 8;"
            " c[idx] = a[idx]; }",
            (64,),
            a=a,
            c=np.zeros(64, np.int32),
        )
        assert np.array_equal(i["c"], s["c"])

    def test_vector_triad(self):
        n = 64
        b = np.arange(n, dtype=np.int32)
        c = np.arange(n, dtype=np.int32)[::-1].copy()
        i, s = both_paths(
            "__kernel void k(__global const int4 *b, __global const int4 *c,"
            " __global int4 *a, const int q)"
            "{ size_t i = get_global_id(0); a[i] = b[i] + q * c[i]; }",
            (n // 4,),
            a=np.zeros(n, np.int32),
            b=b,
            c=c,
            q=3,
        )
        assert np.array_equal(i["a"], s["a"])
        assert np.array_equal(s["a"], b + 3 * c)

    def test_int_wraparound_matches(self):
        a = np.full(8, 2**30, dtype=np.int32)
        i, s = both_paths(
            "__kernel void k(__global const int *a, __global int *c)"
            "{ size_t i = get_global_id(0); c[i] = a[i] * 4; }",
            (8,),
            a=a,
            c=np.zeros(8, np.int32),
        )
        assert np.array_equal(i["c"], s["c"])

    def test_math_builtin(self):
        a = np.array([-1.0, 4.0, 9.0, 16.0])
        i, s = both_paths(
            "__kernel void k(__global const double *a, __global double *c)"
            "{ size_t i = get_global_id(0); c[i] = sqrt(fabs(a[i])); }",
            (4,),
            a=a,
            c=np.zeros(4),
        )
        assert np.allclose(i["c"], s["c"], equal_nan=True)

    def test_unroll_pragma_is_semantically_neutral(self):
        a = np.arange(32, dtype=np.int32)
        i, s = both_paths(
            "__kernel void k(__global const int *a, __global int *c) {\n"
            "#pragma unroll 4\n"
            "for (int i = 0; i < 32; i++) c[i] = a[i]; }",
            (1,),
            a=a,
            c=np.zeros(32, np.int32),
        )
        assert np.array_equal(i["c"], s["c"])


class TestRefusals:
    def test_control_flow_refused(self):
        p = compile_source(
            "__kernel void k(__global int *a) {"
            " size_t i = get_global_id(0);"
            " if (i > 2) a[i] = 1; }"
        )
        with pytest.raises(UnsupportedKernelError):
            specialize(p)

    def test_read_write_same_buffer_refused(self):
        p = compile_source(
            "__kernel void k(__global int *a)"
            "{ for (int i = 0; i < 7; i++) a[i + 1] = a[i]; }"
        )
        with pytest.raises(UnsupportedKernelError):
            specialize(p)

    def test_loop_carried_scalar_refused(self):
        p = compile_source(
            "__kernel void k(__global const int *a, __global int *c) {"
            " int acc = 0;"
            " for (int i = 0; i < 8; i++) { acc = acc + a[i]; c[i] = acc; } }"
        )
        # acc reads and writes a local across iterations; either analysis
        # or execution must refuse rather than silently diverge.
        with pytest.raises(UnsupportedKernelError):
            sp = specialize(p)
            sp.run(
                (1,),
                {
                    "a": BufferArg(np.arange(8, dtype=np.int32)),
                    "c": BufferArg(np.zeros(8, dtype=np.int32)),
                },
            )

    def test_multidimensional_ndrange_refused(self):
        p = compile_source(
            "__kernel void k(__global int *a)"
            "{ size_t i = get_global_id(0); a[i] = 1; }"
        )
        with pytest.raises(UnsupportedKernelError):
            specialize(p).run(
                (2, 2), {"a": BufferArg(np.zeros(4, np.int32))}
            )
