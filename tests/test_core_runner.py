"""Benchmark runner: timing discipline, validation, failure capture."""

from __future__ import annotations

import pytest

from repro.core import (
    AccessPattern,
    BenchmarkRunner,
    DataType,
    KernelName,
    LoopManagement,
    StreamLocus,
    TuningParameters,
)
from repro.errors import BenchmarkError
from repro.units import KIB, MIB


class TestDeviceStream:
    def test_run_produces_valid_result(self, small_params):
        result = BenchmarkRunner("cpu", ntimes=3).run(small_params)
        assert result.ok
        assert result.validated
        assert len(result.times) == 3
        assert result.bandwidth_gbs > 0
        assert result.moved_bytes == 2 * small_params.array_bytes
        assert result.min_time <= result.avg_time <= result.max_time

    def test_all_four_kernels(self, small_params):
        results = BenchmarkRunner("aocl", ntimes=2).run_all_kernels(small_params)
        assert [str(r.params.kernel) for r in results] == [
            "copy",
            "scale",
            "add",
            "triad",
        ]
        assert all(r.ok and r.validated for r in results)

    @pytest.mark.parametrize("dtype", [DataType.INT, DataType.DOUBLE])
    def test_dtypes_validate(self, dtype):
        params = TuningParameters(
            array_bytes=32 * KIB, dtype=dtype, kernel=KernelName.TRIAD
        )
        result = BenchmarkRunner("gpu", ntimes=2).run(params)
        assert result.ok and result.validated

    def test_strided_2d_validates(self):
        params = TuningParameters(
            array_bytes=64 * KIB,
            pattern=AccessPattern.STRIDED,
            loop=LoopManagement.NESTED,
        )
        result = BenchmarkRunner("sdaccel", ntimes=2).run(params)
        assert result.ok and result.validated

    def test_detail_carries_build_log_and_source(self, small_params):
        result = BenchmarkRunner("aocl", ntimes=1).run(small_params)
        assert "mpstream_copy" in str(result.detail["generated_source"])
        assert result.detail["build_log"]

    def test_build_failure_is_captured_not_raised(self):
        # int16 x 3 arrays overflows the Virtex-7 in our resource model
        params = TuningParameters(
            array_bytes=64 * KIB,
            kernel=KernelName.ADD,
            vector_width=16,
            loop=LoopManagement.NESTED,
        )
        result = BenchmarkRunner("sdaccel", ntimes=1).run(params)
        assert not result.ok
        assert "does not fit" in result.error
        assert result.bandwidth_gbs == 0.0

    def test_ntimes_validation(self):
        with pytest.raises(BenchmarkError):
            BenchmarkRunner("cpu", ntimes=0)

    def test_validation_can_be_disabled(self, small_params):
        result = BenchmarkRunner("cpu", ntimes=1, validate=False).run(small_params)
        assert result.ok and not result.validated

    def test_times_are_warm(self):
        """Warm-up absorbs the first-launch migration: repetition times
        should be tightly clustered."""
        params = TuningParameters(array_bytes=256 * KIB)
        result = BenchmarkRunner("gpu", ntimes=4).run(params)
        assert result.max_time < 1.5 * result.min_time


class TestHostStream:
    def test_pcie_mode(self):
        params = TuningParameters(array_bytes=1 * MIB, locus=StreamLocus.HOST)
        result = BenchmarkRunner("gpu", ntimes=3).run(params)
        assert result.ok and result.validated
        assert result.moved_bytes == 2 * MIB
        # PCIe gen3 x16 tops out well below device DRAM bandwidth
        assert result.bandwidth_gbs < 20

    def test_pcie_slower_than_global_memory(self):
        device_bw = (
            BenchmarkRunner("gpu", ntimes=2)
            .run(TuningParameters(array_bytes=4 * MIB))
            .bandwidth_gbs
        )
        pcie_bw = (
            BenchmarkRunner("gpu", ntimes=2)
            .run(TuningParameters(array_bytes=4 * MIB, locus=StreamLocus.HOST))
            .bandwidth_gbs
        )
        assert pcie_bw < device_bw / 5

    def test_small_transfers_latency_bound(self):
        small = (
            BenchmarkRunner("aocl", ntimes=2)
            .run(TuningParameters(array_bytes=4 * KIB, locus=StreamLocus.HOST))
            .bandwidth_gbs
        )
        large = (
            BenchmarkRunner("aocl", ntimes=2)
            .run(TuningParameters(array_bytes=16 * MIB, locus=StreamLocus.HOST))
            .bandwidth_gbs
        )
        assert large > 10 * small


class TestPaperOrderings:
    """The qualitative target orderings the paper reports, at small scale."""

    def test_loop_mode_preferences(self):
        n = 256 * KIB
        for target, best_mode in [
            ("cpu", LoopManagement.NDRANGE),
            ("gpu", LoopManagement.NDRANGE),
            ("aocl", LoopManagement.FLAT),
            ("sdaccel", LoopManagement.NESTED),
        ]:
            runner = BenchmarkRunner(target, ntimes=2)
            results = {
                mode: runner.run(TuningParameters(array_bytes=n, loop=mode))
                for mode in LoopManagement
            }
            winner = max(results, key=lambda m: results[m].bandwidth_gbs)
            assert winner is best_mode, (
                f"{target}: expected {best_mode}, got {winner} "
                f"({ {str(m): round(r.bandwidth_gbs, 4) for m, r in results.items()} })"
            )

    def test_contiguous_beats_strided_everywhere(self):
        n = 1 * MIB
        for target in ("cpu", "gpu", "aocl", "sdaccel"):
            runner = BenchmarkRunner(target, ntimes=2)
            from repro.core import optimal_loop_for

            loop = optimal_loop_for(target)
            contig = runner.run(TuningParameters(array_bytes=n, loop=loop))
            strided = runner.run(
                TuningParameters(
                    array_bytes=n, loop=loop, pattern=AccessPattern.STRIDED
                )
            )
            assert contig.bandwidth_gbs > strided.bandwidth_gbs, target
