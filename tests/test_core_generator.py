"""Kernel source generation."""

from __future__ import annotations

import pytest

from repro.core import (
    AccessPattern,
    DataType,
    KernelName,
    LoopManagement,
    TuningParameters,
    generate,
)
from repro.oclc import analyze, compile_source
from repro.units import KIB


def compiled(params):
    gen = generate(params)
    program = compile_source(gen.source, {k: str(v) for k, v in gen.defines.items()})
    return gen, program


class TestSignatures:
    def test_copy_signature(self):
        gen, program = compiled(TuningParameters(array_bytes=64 * KIB))
        assert gen.kernel_name == "mpstream_copy"
        params = program.kernel().params
        assert [p.name for p in params] == ["a", "c"]

    def test_triad_signature_has_scalar(self):
        gen, program = compiled(
            TuningParameters(array_bytes=64 * KIB, kernel=KernelName.TRIAD)
        )
        names = [p.name for p in program.kernel().params]
        assert names == ["b", "c", "a", "q"]

    def test_vector_type_in_signature(self):
        gen, _ = compiled(TuningParameters(array_bytes=64 * KIB, vector_width=8))
        assert "int8 *" in gen.source

    def test_double_scalar_q_stays_scalar(self):
        gen, _ = compiled(
            TuningParameters(
                array_bytes=64 * KIB,
                kernel=KernelName.SCALE,
                dtype=DataType.DOUBLE,
                vector_width=4,
            )
        )
        assert "const double q" in gen.source


class TestLoopVariants:
    def test_ndrange_launch_shape(self):
        gen, _ = compiled(TuningParameters(array_bytes=64 * KIB))
        assert gen.global_size == (16384,)
        assert "get_global_id" in gen.source

    def test_flat_single_work_item(self):
        gen, program = compiled(
            TuningParameters(array_bytes=64 * KIB, loop=LoopManagement.FLAT)
        )
        assert gen.global_size == (1,)
        ir = analyze(program, gen.kernel_name)
        assert len(ir.loops) == 1
        assert ir.loops[0].trip_count == 16384

    def test_nested_two_loops(self):
        gen, program = compiled(
            TuningParameters(array_bytes=64 * KIB, loop=LoopManagement.NESTED)
        )
        ir = analyze(program, gen.kernel_name)
        assert len(ir.loops) == 2
        trips = [loop.trip_count for loop in ir.loops]
        assert trips[0] * trips[1] == 16384

    def test_vector_width_shrinks_trip_count(self):
        gen, program = compiled(
            TuningParameters(
                array_bytes=64 * KIB, loop=LoopManagement.FLAT, vector_width=16
            )
        )
        ir = analyze(program, gen.kernel_name)
        assert ir.loops[0].trip_count == 1024

    def test_unroll_pragma_emitted(self):
        gen, program = compiled(
            TuningParameters(array_bytes=64 * KIB, loop=LoopManagement.FLAT, unroll=8)
        )
        assert "#pragma unroll 8" in gen.source
        assert analyze(program, gen.kernel_name).unroll_factor == 8


class TestStridedVariants:
    def test_strided_ndrange_uses_modulo_remap(self):
        gen, _ = compiled(
            TuningParameters(array_bytes=64 * KIB, pattern=AccessPattern.STRIDED)
        )
        assert "%" in gen.source and "NI" in gen.source

    def test_strided_nested_swaps_loop_order(self):
        contig, _ = compiled(
            TuningParameters(array_bytes=64 * KIB, loop=LoopManagement.NESTED)
        )
        strided, _ = compiled(
            TuningParameters(
                array_bytes=64 * KIB,
                loop=LoopManagement.NESTED,
                pattern=AccessPattern.STRIDED,
            )
        )
        assert contig.source != strided.source
        # strided walks columns: the j loop is outermost
        assert strided.source.index("j < NJ") < strided.source.index("i < NI")

    def test_touched_words_accounts_2d_shape(self):
        params = TuningParameters(
            array_bytes=96 * KIB, pattern=AccessPattern.STRIDED
        )
        gen, _ = compiled(params)
        rows, cols = params.shape_2d()
        assert gen.touched_words == rows * cols


class TestAttributes:
    def test_reqd_work_group_size(self):
        gen, program = compiled(
            TuningParameters(array_bytes=64 * KIB, reqd_work_group_size=128)
        )
        assert "reqd_work_group_size(128, 1, 1)" in gen.source
        assert gen.local_size == (128,)

    def test_simd_and_cu_attributes(self):
        gen, program = compiled(
            TuningParameters(
                array_bytes=64 * KIB,
                reqd_work_group_size=64,
                num_simd_work_items=8,
                num_compute_units=2,
            )
        )
        ir = analyze(program, gen.kernel_name)
        assert ir.attributes["num_simd_work_items"] == (8,)
        assert ir.attributes["num_compute_units"] == (2,)

    def test_xcl_attributes(self):
        gen, program = compiled(
            TuningParameters(
                array_bytes=64 * KIB,
                loop=LoopManagement.FLAT,
                xcl_pipeline_loop=True,
                xcl_max_memory_ports=True,
                xcl_memory_port_width=256,
            )
        )
        ir = analyze(program, gen.kernel_name)
        assert "xcl_pipeline_loop" in ir.attributes
        assert ir.attributes["xcl_memory_port_data_width"] == (256,)


@pytest.mark.parametrize("kernel", list(KernelName))
@pytest.mark.parametrize("loop", list(LoopManagement))
def test_every_variant_compiles(kernel, loop):
    gen, program = compiled(
        TuningParameters(array_bytes=16 * KIB, kernel=kernel, loop=loop)
    )
    assert program.kernel(gen.kernel_name).is_kernel
