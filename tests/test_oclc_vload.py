"""vloadN/vstoreN builtins across the whole front-end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BenchmarkRunner,
    KernelName,
    LoopManagement,
    TuningParameters,
    generate,
)
from repro.errors import InterpError, SemanticError, SweepError
from repro.oclc import BufferArg, analyze, compile_source, run_kernel, specialize
from repro.units import KIB

VLOAD_COPY = """
__kernel void k(__global const int *a, __global int *c) {
    size_t i = get_global_id(0);
    vstore4(vload4(i, a), i, c);
}
"""


class TestSemantics:
    def test_vload_type(self):
        from repro.ocl import types as T

        p = compile_source(VLOAD_COPY)
        assert p.param_types["k"]["a"].pointee is T.INT

    def test_vload_arity(self):
        with pytest.raises(SemanticError):
            compile_source(
                "__kernel void k(__global int *a) { int4 v = vload4(0); a[0] = v.x; }"
            )

    def test_vstore_data_width_checked(self):
        with pytest.raises(SemanticError):
            compile_source(
                "__kernel void k(__global int *a) {"
                " int8 v = (int8)(0); vstore4(v, 0, a); }"
            )

    def test_vstore_element_kind_checked(self):
        with pytest.raises(SemanticError):
            compile_source(
                "__kernel void k(__global double *a) {"
                " int4 v = (int4)(0); vstore4(v, 0, a); }"
            )

    def test_pointer_must_be_scalar(self):
        with pytest.raises(SemanticError):
            compile_source(
                "__kernel void k(__global int4 *a) { int4 v = vload4(0, a); a[0] = v; }"
            )

    def test_offset_must_be_integer(self):
        with pytest.raises(SemanticError):
            compile_source(
                "__kernel void k(__global int *a) { int4 v = vload4(1.5, a); a[0] = v.x; }"
            )


class TestExecution:
    def test_interpreter(self):
        p = compile_source(VLOAD_COPY)
        a = np.arange(32, dtype=np.int32)
        c = np.zeros(32, dtype=np.int32)
        run_kernel(p, "k", (8,), {"a": BufferArg(a), "c": BufferArg(c)})
        assert np.array_equal(c, a)

    def test_specializer_matches(self):
        p = compile_source(VLOAD_COPY)
        a = np.arange(32, dtype=np.int32)
        c = np.zeros(32, dtype=np.int32)
        specialize(p).run((8,), {"a": BufferArg(a), "c": BufferArg(c)})
        assert np.array_equal(c, a)

    def test_arithmetic_on_loaded_vectors(self):
        src = """
__kernel void k(__global const double *b, __global const double *c,
                __global double *a, const double q) {
    size_t i = get_global_id(0);
    vstore2(vload2(i, b) + q * vload2(i, c), i, a);
}
"""
        p = compile_source(src)
        b = np.arange(16, dtype=np.float64)
        c = np.ones(16)
        a = np.zeros(16)
        run_kernel(
            p, "k", (8,), {"b": BufferArg(b), "c": BufferArg(c), "a": BufferArg(a), "q": 3.0}
        )
        assert np.allclose(a, b + 3.0)

    def test_out_of_bounds(self):
        p = compile_source(VLOAD_COPY)
        a = np.arange(30, dtype=np.int32)  # not 8 full int4 groups
        c = np.zeros(32, dtype=np.int32)
        with pytest.raises(InterpError):
            run_kernel(p, "k", (8,), {"a": BufferArg(a), "c": BufferArg(c)})


class TestAnalysis:
    def test_accesses_have_vector_width(self):
        ir = analyze(compile_source(VLOAD_COPY))
        assert len(ir.accesses) == 2
        assert all(a.element_bytes == 16 for a in ir.accesses)
        assert ir.vector_width == 4
        by_write = {a.is_write: a.param for a in ir.accesses}
        assert by_write == {False: "a", True: "c"}

    def test_affine_stride(self):
        ir = analyze(compile_source(VLOAD_COPY))
        assert all(a.affine.is_affine for a in ir.accesses)
        assert all(a.affine.stride_of("gid0") == 1 for a in ir.accesses)


class TestGeneratorIntegration:
    def test_use_vload_validation(self):
        with pytest.raises(SweepError):
            TuningParameters(use_vload=True, vector_width=1)

    def test_generated_source_uses_vload(self):
        gen = generate(
            TuningParameters(array_bytes=64 * KIB, vector_width=8, use_vload=True)
        )
        assert "vload8" in gen.source and "vstore8" in gen.source
        assert "int *" in gen.source  # scalar pointers

    @pytest.mark.parametrize("kernel", list(KernelName))
    def test_styles_agree_functionally_and_in_bandwidth(self, kernel):
        """Pointer-vector style and vload style are the same access
        pattern; the models must price them identically."""
        base = TuningParameters(
            array_bytes=64 * KIB,
            vector_width=4,
            kernel=kernel,
            loop=LoopManagement.FLAT,
        )
        runner = BenchmarkRunner("aocl", ntimes=1)
        pointer = runner.run(base)
        vload = runner.run(base.with_(use_vload=True))
        assert pointer.ok and vload.ok
        assert vload.bandwidth_gbs == pytest.approx(pointer.bandwidth_gbs, rel=0.01)
