"""Units: parsing, formatting, conversions."""

from __future__ import annotations

import math

import pytest

from repro import units
from repro.errors import UnitParseError


class TestParseSize:
    def test_plain_bytes(self):
        assert units.parse_size("512") == 512
        assert units.parse_size(512) == 512
        assert units.parse_size(512.0) == 512

    def test_binary_prefixes(self):
        assert units.parse_size("4MiB") == 4 * 1024**2
        assert units.parse_size("1KiB") == 1024
        assert units.parse_size("2GiB") == 2 * 1024**3
        assert units.parse_size("3K") == 3 * 1024
        assert units.parse_size("3M") == 3 * 1024**2

    def test_decimal_prefixes(self):
        assert units.parse_size("4MB") == 4_000_000
        assert units.parse_size("1KB") == 1000
        assert units.parse_size("2GB") == 2 * 10**9

    def test_case_insensitive(self):
        assert units.parse_size("4mib") == 4 * 1024**2
        assert units.parse_size("4MB") == units.parse_size("4mb")

    def test_whitespace_and_fraction(self):
        assert units.parse_size(" 1.5 KiB ") == 1536

    def test_scientific_notation(self):
        assert units.parse_size("1e3") == 1000

    def test_rejects_garbage(self):
        with pytest.raises(UnitParseError):
            units.parse_size("four megabytes")
        with pytest.raises(UnitParseError):
            units.parse_size("4XB")
        with pytest.raises(UnitParseError):
            units.parse_size("")


class TestParseFrequencyAndTime:
    def test_frequency(self):
        assert units.parse_frequency("200MHz") == 200e6
        assert units.parse_frequency("1.05 GHz") == pytest.approx(1.05e9)
        assert units.parse_frequency("50 kHz") == 50e3

    def test_frequency_must_be_positive(self):
        with pytest.raises(UnitParseError):
            units.parse_frequency("0Hz")

    def test_time(self):
        assert units.parse_time("15us") == pytest.approx(15e-6)
        assert units.parse_time("3ms") == pytest.approx(3e-3)
        assert units.parse_time("2s") == 2.0
        assert units.parse_time("7ns") == pytest.approx(7e-9)

    def test_time_unknown_suffix(self):
        with pytest.raises(UnitParseError):
            units.parse_time("5 fortnights")


class TestFormatting:
    def test_format_size_binary(self):
        assert units.format_size(4 * 1024**2) == "4.00 MiB"
        assert units.format_size(0) == "0 B"
        assert units.format_size(512) == "512 B"

    def test_format_size_decimal(self):
        assert units.format_size(25_600_000_000, decimal=True) == "25.60 GB"

    def test_format_bandwidth(self):
        assert units.format_bandwidth(25.1e9) == "25.100 GB/s"

    def test_format_time_ranges(self):
        assert units.format_time(0) == "0 s"
        assert "ns" in units.format_time(5e-9)
        assert "us" in units.format_time(5e-6)
        assert "ms" in units.format_time(5e-3)
        assert units.format_time(2.5).endswith(" s")

    def test_format_frequency(self):
        assert units.format_frequency(316e6) == "316.0 MHz"
        assert units.format_frequency(2.5e9) == "2.50 GHz"
        assert units.format_frequency(50e3) == "50.0 kHz"
        assert units.format_frequency(10) == "10 Hz"


class TestBandwidthMath:
    def test_bandwidth_gbs(self):
        assert units.bandwidth_gbs(1e9, 1.0) == pytest.approx(1.0)
        assert units.bandwidth_gbs(2e9, 0.5) == pytest.approx(4.0)

    def test_bandwidth_rejects_zero_time(self):
        with pytest.raises(ValueError):
            units.bandwidth_gbs(100, 0)

    def test_geomean(self):
        assert units.geomean([4.0, 1.0]) == pytest.approx(2.0)
        assert units.geomean([5.0]) == pytest.approx(5.0)

    def test_geomean_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            units.geomean([])
        with pytest.raises(ValueError):
            units.geomean([1.0, 0.0])

    def test_geomean_matches_log_identity(self):
        values = [1.5, 2.5, 10.0, 0.3]
        expect = math.exp(sum(math.log(v) for v in values) / len(values))
        assert units.geomean(values) == pytest.approx(expect)
