"""Differential property tests: fast lanes vs their scalar oracles.

The vectorized fast lanes (batch cache simulation, batched coalescers,
compiled kernel closures) are only allowed to exist because the scalar
paths remain as oracles. These tests pin the contract **bit-for-bit**:

* ``Cache.access_batch`` must produce identical stats, identical
  per-access miss masks *and* identical final LRU state to the scalar
  per-access loop, over randomized geometries and trace styles —
  including state carried across mixed-lane call windows;
* the compiled-to-closures interpreter must produce fingerprint
  (checksum) identical arrays to the tree-walking ``interpret_point``
  across all 13 conformance variants;
* the batched coalescers must equal the per-window scalar calls
  exactly, window by window.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.generator import generate
from repro.core.kernels import KERNELS, SCALAR_Q, initial_arrays
from repro.core.params import DataType, KernelName
from repro.errors import InvalidValueError
from repro.memsim import (
    Cache,
    CacheConfig,
    coalesce_fixed_groups,
    coalesce_fixed_groups_batch,
    coalesce_sequential,
    coalesce_sequential_batch,
)
from repro.oclc import compile_kernel, compile_source_cached, specialize
from repro.oclc.interp import BufferArg
from repro.verify.conformance import (
    _VARIANT_AXES,
    interpret_point,
    output_checksum,
    variant_grid,
)

# -- cache: batch lane == scalar lane -----------------------------------------

GEOMETRIES = [
    CacheConfig(capacity_bytes=32 * 1024, line_bytes=64, ways=1),
    CacheConfig(capacity_bytes=64 * 1024, line_bytes=64, ways=8),
    CacheConfig(capacity_bytes=256 * 1024, line_bytes=128, ways=16),
    CacheConfig(capacity_bytes=1024 * 1024, line_bytes=64, ways=4),
]


def _traces(rng: np.random.Generator, n: int):
    yield "unit_walk_2pass", np.tile(np.arange(n // 2, dtype=np.int64) * 4, 2)
    yield "unit_walk_4pass", np.tile(np.arange(n // 4, dtype=np.int64) * 8, 4)
    yield "strided", (np.arange(n, dtype=np.int64) * 256) % (1 << 22)
    yield "random", rng.integers(0, 1 << 24, n).astype(np.int64)
    third = n // 3
    a = np.arange(third, dtype=np.int64) * 8
    tri = np.empty(3 * third, dtype=np.int64)
    tri[0::3] = a
    tri[1::3] = a + (1 << 20)
    tri[2::3] = a + (1 << 21)
    yield "interleaved_triad", tri


@pytest.mark.parametrize("cfg", GEOMETRIES, ids=lambda c: f"{c.num_sets}x{c.ways}")
def test_cache_batch_matches_scalar_bit_for_bit(cfg, rng):
    for name, trace in _traces(rng, 9000):
        scalar_cache = Cache(cfg)
        batch_cache = Cache(cfg)
        scalar_stats = scalar_cache.access_scalar(trace)
        batch_stats = batch_cache.access_batch(trace)
        assert scalar_stats == batch_stats, name
        # the *state* must match too, or subsequent windows diverge
        assert scalar_cache._sets == batch_cache._sets, name


@pytest.mark.parametrize("cfg", GEOMETRIES[:2], ids=lambda c: f"{c.num_sets}x{c.ways}")
def test_cache_miss_masks_identical(cfg, rng):
    for name, trace in _traces(rng, 6000):
        scalar_cache = Cache(cfg)
        want = np.zeros(trace.size, dtype=bool)
        scalar_cache._access_scalar(*scalar_cache._split(trace), want)
        batch_cache = Cache(cfg)
        _, got = batch_cache._access_batch(*batch_cache._split(trace))
        assert np.array_equal(got, want), name
        # and access_masked agrees with whichever lane it picked
        masked_cache = Cache(cfg)
        _, picked = masked_cache.access_masked(trace)
        assert np.array_equal(picked, want), name


def test_cache_state_carries_across_mixed_lane_windows(rng):
    cfg = CacheConfig(capacity_bytes=64 * 1024, line_bytes=64, ways=8)
    scalar_cache = Cache(cfg)
    mixed_cache = Cache(cfg)
    for window, (name, trace) in enumerate(_traces(rng, 4800)):
        scalar_cache.access_scalar(trace)
        # alternate lanes so batch inherits scalar state and vice versa
        if window % 2:
            mixed_cache.access_scalar(trace)
        else:
            mixed_cache.access_batch(trace)
        assert scalar_cache.stats == mixed_cache.stats, name
        assert scalar_cache._sets == mixed_cache._sets, name


def test_cache_randomized_geometries_and_traces():
    rng = np.random.default_rng(77)
    for _ in range(12):
        ways = int(rng.choice([1, 2, 4, 8, 16]))
        line = int(rng.choice([32, 64, 128]))
        sets = int(rng.choice([8, 64, 512]))
        cfg = CacheConfig(capacity_bytes=sets * ways * line, line_bytes=line, ways=ways)
        n = int(rng.integers(500, 6000))
        style = rng.integers(0, 3)
        if style == 0:
            trace = np.arange(n, dtype=np.int64) * int(rng.choice([4, 8, 64]))
        elif style == 1:
            trace = rng.integers(0, 1 << 22, n).astype(np.int64)
        else:
            trace = np.tile(
                np.arange(n // 2, dtype=np.int64) * 4, 2
            )
        a, b = Cache(cfg), Cache(cfg)
        assert a.access_scalar(trace) == b.access_batch(trace)
        assert a._sets == b._sets


def test_cache_auto_dispatch_equals_oracle_either_way(rng):
    """Whatever lane access() picks, the result equals the oracle."""
    cfg = CacheConfig(capacity_bytes=64 * 1024, line_bytes=64, ways=8)
    big_walk = np.tile(np.arange(60_000, dtype=np.int64) * 4, 2)
    big_random = rng.integers(0, 1 << 24, 120_000).astype(np.int64)
    for trace in (big_walk, big_random):
        auto, oracle = Cache(cfg), Cache(cfg)
        assert auto.access(trace) == oracle.access_scalar(trace)
        assert auto._sets == oracle._sets


def test_cache_batch_rejects_negative_addresses():
    cfg = CacheConfig(capacity_bytes=64 * 1024, line_bytes=64, ways=8)
    with pytest.raises(InvalidValueError):
        Cache(cfg).access_batch(np.array([-64, 0, 64]))


# -- coalescers: batch == per-window ------------------------------------------


def test_coalesce_batch_matches_per_window(rng):
    stacks = {
        "unit": (np.arange(64, dtype=np.int64) * 4)[None, :]
        + (np.arange(50, dtype=np.int64) * 4096)[:, None],
        "random": rng.integers(0, 1 << 20, (50, 64)).astype(np.int64) * 4,
        "ragged_group": rng.integers(0, 1 << 20, (11, 100)).astype(np.int64) * 4,
    }
    for name, stack in stacks.items():
        for eb, fg_kw, sq_kw in [
            (4, {}, {}),
            (8, dict(group_size=16, segment_bytes=64), dict(max_burst_bytes=256)),
        ]:
            assert coalesce_fixed_groups_batch(stack, eb, **fg_kw) == [
                coalesce_fixed_groups(row, eb, **fg_kw) for row in stack
            ], name
            assert coalesce_sequential_batch(stack, eb, **sq_kw) == [
                coalesce_sequential(row, eb, **sq_kw) for row in stack
            ], name


def test_coalesce_batch_requires_2d():
    flat = np.arange(64, dtype=np.int64) * 4
    with pytest.raises(InvalidValueError):
        coalesce_fixed_groups_batch(flat, 4)
    with pytest.raises(InvalidValueError):
        coalesce_sequential_batch(flat, 4)


# -- compiled kernels: fingerprint-identical to the interpreter ----------------


def _run_lane(params, factory):
    gen = generate(params)
    checked = compile_source_cached(
        gen.source, {k: str(v) for k, v in gen.defines.items()}
    )
    initial = initial_arrays(params.word_count, params.dtype)
    arrays = {name: initial[name].copy() for name in ("a", "b", "c")}
    spec = KERNELS[params.kernel]
    call = {name: BufferArg(arrays[name]) for name in (*spec.reads, spec.writes)}
    if spec.uses_scalar:
        call["q"] = SCALAR_Q
    factory(checked, gen.kernel_name).run(gen.global_size, call, gen.local_size)
    return arrays


@pytest.mark.parametrize("kernel", [KernelName.COPY, KernelName.SCALE, KernelName.TRIAD])
@pytest.mark.parametrize("dtype", [DataType.FLOAT, DataType.INT])
def test_compiled_fingerprints_match_interpreter_all_variants(kernel, dtype):
    """All 13 conformance variants: compiled == tree-walking interp."""
    points = variant_grid(kernel, dtype, 4096)
    assert len(points) == len(_VARIANT_AXES)
    for params in points:
        want = output_checksum(interpret_point(params))
        got = output_checksum(_run_lane(params, compile_kernel))
        assert got == want, params.describe()


def test_compiled_matches_specialized_double():
    for params in variant_grid(KernelName.ADD, DataType.DOUBLE, 2048):
        compiled = output_checksum(_run_lane(params, compile_kernel))
        specialized = output_checksum(_run_lane(params, specialize))
        assert compiled == specialized, params.describe()
