"""Hypothetical future targets and user-defined device specs."""

from __future__ import annotations

import pytest

from repro.core import (
    BenchmarkRunner,
    LoopManagement,
    TuningParameters,
)
from repro.devices.custom import device_from_dict, spec_from_dict
from repro.devices.future import STRATIX_HMC, VIRTEX7_MATURE
from repro.devices.specs import CpuSpec, FpgaSpec, GpuSpec
from repro.errors import InvalidValueError
from repro.ocl.platform import find_device, get_platforms
from repro.units import MIB


class TestFutureTargets:
    def test_registry(self):
        names = {
            d.short_name for p in get_platforms(include_future=True) for d in p.devices
        }
        assert {"aocl-hmc", "sdaccel-mature"} <= names
        default_names = {
            d.short_name for p in get_platforms() for d in p.devices
        }
        assert "aocl-hmc" not in default_names  # opt-in only

    def test_hmc_changes_the_picture(self):
        """§IV: HMC boards 'can change the picture we present ...
        considerably' — the vectorized FPGA keeps scaling instead of
        saturating at the DDR3 limit."""
        params = TuningParameters(
            array_bytes=4 * MIB, loop=LoopManagement.FLAT, vector_width=16
        )
        ddr = BenchmarkRunner("aocl", ntimes=2).run(params)
        hmc = BenchmarkRunner("aocl-hmc", ntimes=2).run(params)
        assert hmc.bandwidth_gbs > 1.5 * ddr.bandwidth_gbs

    def test_hmc_strided_penalty_is_softer(self):
        """HMC's small pages and vault parallelism tolerate strided
        access far better than planar DDR3."""
        from repro.core import AccessPattern

        params = TuningParameters(
            array_bytes=4 * MIB,
            loop=LoopManagement.FLAT,
            pattern=AccessPattern.STRIDED,
        )
        ddr = BenchmarkRunner("aocl", ntimes=2).run(params)
        hmc = BenchmarkRunner("aocl-hmc", ntimes=2).run(params)
        assert hmc.bandwidth_gbs > 2 * ddr.bandwidth_gbs

    def test_matured_toolchain_fixes_flat_loops(self):
        """§IV: matured tools 'show more consistent memory performance
        that takes into account different coding styles' — the flat/
        nested gap closes."""
        n = 4 * MIB
        old_flat = BenchmarkRunner("sdaccel", ntimes=2).run(
            TuningParameters(array_bytes=n, loop=LoopManagement.FLAT)
        )
        new_flat = BenchmarkRunner("sdaccel-mature", ntimes=2).run(
            TuningParameters(array_bytes=n, loop=LoopManagement.FLAT)
        )
        new_nested = BenchmarkRunner("sdaccel-mature", ntimes=2).run(
            TuningParameters(array_bytes=n, loop=LoopManagement.NESTED)
        )
        assert new_flat.bandwidth_gbs > 5 * old_flat.bandwidth_gbs
        ratio = new_nested.bandwidth_gbs / new_flat.bandwidth_gbs
        assert 0.5 < ratio < 2.0  # coding styles now roughly equivalent

    def test_specs_are_fpga_specs(self):
        assert isinstance(STRATIX_HMC, FpgaSpec)
        assert isinstance(VIRTEX7_MATURE, FpgaSpec)
        assert STRATIX_HMC.peak_bandwidth_gbs > 100

    def test_find_device_resolves_future_names(self):
        assert find_device("aocl-hmc").short_name == "aocl-hmc"


class TestCustomSpecs:
    MINIMAL = {
        "kind": "fpga",
        "short_name": "myboard",
        "name": "My Dev Board",
        "vendor": "Altera",
        "peak_bandwidth_gbs": 19.2,
    }

    def test_minimal_fpga(self):
        spec = spec_from_dict(self.MINIMAL)
        assert isinstance(spec, FpgaSpec)
        assert spec.peak_bandwidth_gbs == 19.2
        assert spec.dram.peak_bandwidth == pytest.approx(19.2e9)
        assert spec.device_type == "accelerator"

    def test_kind_dispatch(self):
        cpu = spec_from_dict({**self.MINIMAL, "kind": "cpu"})
        gpu = spec_from_dict({**self.MINIMAL, "kind": "gpu"})
        assert isinstance(cpu, CpuSpec) and isinstance(gpu, GpuSpec)

    def test_fmax_convenience(self):
        spec = spec_from_dict({**self.MINIMAL, "base_fmax_mhz": 280})
        assert spec.base_fmax_hz == pytest.approx(280e6)

    def test_nested_overrides(self):
        spec = spec_from_dict(
            {
                **self.MINIMAL,
                "dram": {"channels": 4, "row_bytes": 4096},
                "pcie": {"generation": 4, "lanes": 16},
            }
        )
        assert spec.dram.channels == 4
        assert spec.pcie.generation == 4

    def test_missing_required(self):
        with pytest.raises(InvalidValueError):
            spec_from_dict({"kind": "fpga", "short_name": "x"})
        with pytest.raises(InvalidValueError):
            spec_from_dict({**self.MINIMAL, "kind": None} | {"kind": "dsp"})

    def test_no_kind(self):
        with pytest.raises(InvalidValueError):
            spec_from_dict({"short_name": "x"})

    def test_unknown_keys_rejected(self):
        with pytest.raises(InvalidValueError) as err:
            spec_from_dict({**self.MINIMAL, "peak_bandwith_gbs": 20})  # typo
        assert "peak_bandwith_gbs" in str(err.value)
        with pytest.raises(InvalidValueError):
            spec_from_dict({**self.MINIMAL, "dram": {"chanels": 2}})

    def test_custom_device_runs_benchmark(self):
        device = device_from_dict({**self.MINIMAL, "base_fmax_mhz": 280})
        result = BenchmarkRunner(device, ntimes=2).run(
            TuningParameters(array_bytes=1 * MIB, loop=LoopManagement.FLAT)
        )
        assert result.ok and result.validated
        assert 0 < result.bandwidth_gbs < 19.2

    def test_custom_cpu_device(self):
        device = device_from_dict(
            {
                "kind": "cpu",
                "short_name": "laptop",
                "name": "Laptop CPU",
                "vendor": "Intel",
                "peak_bandwidth_gbs": 50.0,
                "compute_units": 8,
            }
        )
        result = BenchmarkRunner(device, ntimes=2).run(
            TuningParameters(array_bytes=1 * MIB)
        )
        assert result.ok
