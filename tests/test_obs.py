"""The unified observability layer: tracing, metrics, events, progress.

The load-bearing invariant tested here is the one the engine promises:
instrumentation *observes* a campaign and never perturbs it —
``RunResult.fingerprint()`` is byte-identical with every sink on or
off, serial or parallel, fresh or resumed.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro import obs
from repro.core import (
    BenchmarkRunner,
    ParameterSweep,
    SweepJournal,
    TuningParameters,
    explore,
    metrics_table,
)
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.ocl import CommandQueue, Context
from repro.ocl.platform import find_device
from repro.units import KIB


def _small_sweep() -> ParameterSweep:
    return ParameterSweep(
        base=TuningParameters(array_bytes=32 * KIB),
        axes={"vector_width": [1, 2]},
    )


def _fingerprints(results) -> list[str]:
    return [r.fingerprint() for r in results]


# --------------------------------------------------------------------------
# metrics registry
# --------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = obs_metrics.MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.5)
        reg.gauge("g").set(7)
        for v in (1.0, 3.0):
            reg.histogram("h").observe(v)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 3.5
        assert snap["gauges"]["g"] == 7.0
        assert snap["histograms"]["h"] == {
            "count": 2,
            "total": 4.0,
            "min": 1.0,
            "max": 3.0,
            "mean": 2.0,
        }

    def test_whole_counters_snapshot_as_ints(self):
        reg = obs_metrics.MetricsRegistry()
        reg.counter("n").inc(3)
        assert reg.snapshot()["counters"]["n"] == 3
        assert isinstance(reg.snapshot()["counters"]["n"], int)

    def test_counter_cannot_decrease(self):
        reg = obs_metrics.MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_kind_clash_raises(self):
        reg = obs_metrics.MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_round_trip(self, tmp_path):
        reg = obs_metrics.MetricsRegistry()
        reg.counter("engine.points").inc(5)
        reg.gauge("load").set(0.5)
        reg.histogram("stage_s").observe(0.25)
        path = tmp_path / "metrics.json"
        reg.to_json(path)
        loaded = obs_metrics.load_snapshot(path)
        assert loaded == reg.snapshot()

    def test_helpers_noop_without_registry(self):
        assert obs_metrics.active_registry() is None
        obs_metrics.count("nothing")  # must not raise, must not create state
        obs_metrics.observe("nothing", 1.0)
        obs_metrics.set_gauge("nothing", 1.0)

    def test_use_registry_scopes_and_restores(self):
        reg = obs_metrics.MetricsRegistry()
        with obs_metrics.use_registry(reg):
            assert obs_metrics.active_registry() is reg
            obs_metrics.count("seen")
        assert obs_metrics.active_registry() is None
        assert reg.snapshot()["counters"]["seen"] == 1

    def test_metrics_table_renders_all_kinds(self):
        reg = obs_metrics.MetricsRegistry()
        reg.counter("engine.points").inc(3)
        reg.histogram("engine.stage_s_per_point.execute").observe(0.1)
        text = metrics_table(reg.snapshot())
        assert "engine.points" in text
        assert "n=1" in text
        assert metrics_table({}) == "(no metrics)"


# --------------------------------------------------------------------------
# tracer
# --------------------------------------------------------------------------


class TestTracer:
    def test_chrome_trace_schema(self, tmp_path):
        tracer = obs_trace.Tracer()
        with obs_trace.use_tracer(tracer):
            with obs_trace.span("outer", "test", label="campaign"):
                with obs_trace.span("inner", "test"):
                    pass
        path = tracer.save(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta and meta[0]["name"] == "thread_name"
        assert {s["name"] for s in spans} == {"outer", "inner"}
        for s in spans:
            assert {"name", "cat", "ts", "dur", "pid", "tid"} <= set(s)
            assert s["dur"] >= 0

    def test_nesting_by_containment(self):
        tracer = obs_trace.Tracer()
        with obs_trace.use_tracer(tracer):
            with obs_trace.span("outer"):
                with obs_trace.span("inner"):
                    pass
        by_name = {e["name"]: e for e in tracer.events}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6

    def test_span_set_attaches_args(self):
        tracer = obs_trace.Tracer()
        with obs_trace.use_tracer(tracer):
            with obs_trace.span("stage") as s:
                s.set(cache="hit")
        assert tracer.events[0]["args"] == {"cache": "hit"}

    def test_disabled_span_is_shared_noop(self):
        assert obs_trace.active_tracer() is None
        a = obs_trace.span("x")
        b = obs_trace.span("y", z=1)
        assert a is b  # one shared null object: no allocation per probe
        with a as s:
            s.set(anything="goes")

    def test_instant_events(self):
        tracer = obs_trace.Tracer()
        tracer.instant("marker", "test", {"k": 1})
        assert tracer.events[0]["ph"] == "i"
        assert len(tracer) == 1


# --------------------------------------------------------------------------
# structured event log
# --------------------------------------------------------------------------


class TestEventLog:
    def test_jsonl_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with obs_events.EventLog(path) as log:
            log.emit("sweep_started", points=4)
            log.emit("point_finished", point="abc123", ok=True)
            assert log.emitted == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [d["event"] for d in lines] == ["sweep_started", "point_finished"]
        assert lines[1]["point"] == "abc123"
        assert all("ts" in d for d in lines)

    def test_emit_after_close_raises(self, tmp_path):
        log = obs_events.EventLog(tmp_path / "e.jsonl")
        log.close()
        with pytest.raises(ValueError):
            log.emit("late")

    def test_module_emit_noop_without_log(self):
        assert obs_events.active_log() is None
        obs_events.emit("nothing", k=1)  # must not raise


# --------------------------------------------------------------------------
# obs.session
# --------------------------------------------------------------------------


class TestSession:
    def test_writes_requested_artifacts(self, tmp_path):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        events = tmp_path / "e.jsonl"
        with obs.session(trace=trace, metrics=metrics, log_json=events) as s:
            with obs_trace.span("work"):
                obs_metrics.count("engine.points")
            obs_events.emit("hello")
        assert {label for label, _ in s.written} == {"trace", "metrics", "events"}
        assert json.loads(trace.read_text())["traceEvents"]
        assert obs_metrics.load_snapshot(metrics)["counters"]["engine.points"] == 1
        assert json.loads(events.read_text().splitlines()[0])["event"] == "hello"

    def test_restores_prior_sinks(self):
        outer = obs_metrics.MetricsRegistry()
        with obs_metrics.use_registry(outer):
            with obs.session(metrics=True):
                assert obs_metrics.active_registry() is not outer
            assert obs_metrics.active_registry() is outer
        assert obs_metrics.active_registry() is None

    def test_in_memory_only_writes_nothing(self):
        with obs.session(trace=True, metrics=True) as s:
            obs_metrics.count("x")
        assert s.written == []
        assert s.registry.snapshot()["counters"]["x"] == 1


# --------------------------------------------------------------------------
# instrumented sweeps
# --------------------------------------------------------------------------


class TestInstrumentedSweep:
    def test_trace_has_nested_sweep_point_stage_spans(self):
        runner = BenchmarkRunner("cpu", ntimes=1)
        with obs.session(trace=True) as s:
            explore(runner, _small_sweep())
        names = {e["name"] for e in s.tracer.events}
        assert {"sweep", "point", "generate", "compile", "plan", "execute"} <= names
        by_name: dict[str, list] = {}
        for e in s.tracer.events:
            by_name.setdefault(e["name"], []).append(e)
        (sweep_ev,) = by_name["sweep"]
        for point in by_name["point"]:
            assert sweep_ev["ts"] <= point["ts"] + 1e-6
            assert (
                point["ts"] + point["dur"]
                <= sweep_ev["ts"] + sweep_ev["dur"] + 1e-6
            )

    def test_metrics_cover_engine_cache_queue_memsim(self):
        runner = BenchmarkRunner("cpu", ntimes=1)
        with obs.session(metrics=True) as s:
            explore(runner, _small_sweep())
        snap = s.registry.snapshot()
        counters = snap["counters"]
        assert counters["engine.points"] == 2
        assert counters["build_cache.frontend_misses"] >= 1
        assert counters["queue.kernel_launches"] >= 2
        assert counters["memsim.dram.requests"] >= 1
        assert "engine.stage_s_per_point.execute" in snap["histograms"]

    def test_event_log_joins_on_point_fingerprint(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        events_path = tmp_path / "events.jsonl"
        runner = BenchmarkRunner("cpu", ntimes=1)
        with obs.session(log_json=events_path):
            explore(runner, _small_sweep(), journal=journal_path)
        events = [
            json.loads(line) for line in events_path.read_text().splitlines()
        ]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "sweep_started"
        assert kinds[-1] == "sweep_finished"
        finished_points = {
            e["point"] for e in events if e["event"] == "point_finished"
        }
        journal_points = {
            json.loads(line)["point"]
            for line in journal_path.read_text().splitlines()
        }
        assert finished_points == journal_points

    def test_resume_emits_point_restored(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        events_path = tmp_path / "events.jsonl"
        runner = BenchmarkRunner("cpu", ntimes=1)
        explore(runner, _small_sweep(), journal=journal_path)
        with obs.session(log_json=events_path):
            explore(runner, _small_sweep(), journal=journal_path, resume=True)
        events = [
            json.loads(line) for line in events_path.read_text().splitlines()
        ]
        assert sum(1 for e in events if e["event"] == "point_restored") == 2
        started = [e for e in events if e["event"] == "sweep_started"]
        assert started[0]["restored"] == 2


# --------------------------------------------------------------------------
# fingerprint invariance — the acceptance criterion
# --------------------------------------------------------------------------


class TestFingerprintInvariance:
    def test_traced_vs_untraced(self, tmp_path):
        runner = BenchmarkRunner("cpu", ntimes=1)
        plain = _fingerprints(explore(runner, _small_sweep()))
        with obs.session(
            trace=True, metrics=True, log_json=tmp_path / "e.jsonl"
        ):
            traced = _fingerprints(explore(runner, _small_sweep()))
        assert plain == traced

    def test_serial_vs_parallel_traced(self):
        runner = BenchmarkRunner("cpu", ntimes=1)
        serial = _fingerprints(explore(runner, _small_sweep()))
        with obs.session(trace=True, metrics=True):
            parallel = _fingerprints(explore(runner, _small_sweep(), jobs=2))
        assert serial == parallel

    def test_resumed_vs_fresh_traced(self, tmp_path):
        runner = BenchmarkRunner("cpu", ntimes=1)
        journal = SweepJournal(tmp_path / "journal.jsonl")
        fresh = _fingerprints(explore(runner, _small_sweep(), journal=journal))
        with obs.session(trace=True, metrics=True):
            resumed = _fingerprints(
                explore(runner, _small_sweep(), journal=journal, resume=True)
            )
        assert fresh == resumed


# --------------------------------------------------------------------------
# cross-process telemetry relay
# --------------------------------------------------------------------------


class TestTelemetryRelay:
    def test_buffered_event_log_accumulates_and_drains(self):
        log = obs.BufferedEventLog()
        log.emit("one", k=1)
        log.emit("two")
        assert log.emitted == 2
        records = log.drain()
        assert [r["event"] for r in records] == ["one", "two"]
        assert records[0]["k"] == 1 and "ts" in records[0]
        assert log.drain() == []  # drained, but still recording
        log.emit("three")
        assert [r["event"] for r in log.drain()] == ["three"]

    def test_tracer_drain_keeps_recording(self):
        tracer = obs_trace.Tracer()
        with obs_trace.use_tracer(tracer):
            with obs_trace.span("a"):
                pass
        batch = tracer.drain()
        assert [e["name"] for e in batch["events"]] == ["a"]
        assert batch["pid"] and "wall_epoch" in batch
        assert len(tracer) == 0
        with obs_trace.use_tracer(tracer):
            with obs_trace.span("b"):
                pass
        assert [e["name"] for e in tracer.drain()["events"]] == ["b"]

    def test_ingest_rebases_and_keeps_worker_pid(self):
        worker = obs_trace.Tracer()
        worker._pid = 99999  # a "remote" process
        with obs_trace.use_tracer(worker):
            with obs_trace.span("stage"):
                pass
        batch = worker.drain()
        batch["wall_epoch"] += 5.0  # worker started 5s after the parent
        parent = obs_trace.Tracer()
        assert parent.ingest(batch, label="worker-0 (pid 99999)") == 1
        (event,) = parent.events
        assert event["pid"] == 99999
        # rebased onto the parent's perf_counter timeline: ~5s later in us
        assert event["ts"] >= 4.9 * 1e6
        doc = parent.to_chrome()
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["pid"]): e["args"]["name"] for e in meta}
        assert names[("process_name", 99999)] == "worker-0 (pid 99999)"

    def test_registry_drain_and_merge(self):
        worker = obs_metrics.MetricsRegistry()
        worker.counter("engine.points").inc(2)
        worker.gauge("depth").set(3)
        worker.histogram("stage_s").observe(0.5)
        delta = worker.drain_snapshot()
        assert worker.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
        parent = obs_metrics.MetricsRegistry()
        parent.counter("engine.points").inc(1)
        parent.histogram("stage_s").observe(1.5)
        parent.merge_snapshot(delta)
        snap = parent.snapshot()
        assert snap["counters"]["engine.points"] == 3
        assert snap["gauges"]["depth"] == 3.0
        assert snap["histograms"]["stage_s"]["count"] == 2
        assert snap["histograms"]["stage_s"]["min"] == 0.5
        assert snap["histograms"]["stage_s"]["max"] == 1.5

    def test_merge_batch_tags_events_with_worker_identity(self):
        telemetry_log = obs.BufferedEventLog()
        telemetry_log.emit("point_finished", point="abc")
        batch = {"pid": 4242, "events": telemetry_log.drain()}
        sink = obs.BufferedEventLog()  # stands in for the parent's log
        with obs_events.use_log(sink):
            obs.merge_batch(batch, worker="worker-1")
        (record,) = sink.drain()
        assert record["event"] == "point_finished"
        assert record["worker"] == "worker-1"
        assert record["worker_pid"] == 4242

    def test_merge_batch_skips_missing_sinks(self):
        # no active tracer/registry/log: merging must be a no-op, not a crash
        batch = {
            "pid": 1,
            "trace": {"pid": 1, "wall_epoch": 0.0, "events": [], "thread_names": {}},
            "metrics": {"counters": {"x": 1}, "gauges": {}, "histograms": {}},
            "events": [{"ts": 0.0, "event": "e"}],
        }
        obs.merge_batch(batch, worker="worker-0")
        obs.merge_batch(None, worker="worker-0")


class TestProcessBackendTelemetry:
    def _process_sweep(self, **obs_kwargs):
        runner = BenchmarkRunner("cpu", ntimes=1)
        sweep = ParameterSweep(
            base=TuningParameters(array_bytes=32 * KIB),
            axes={"vector_width": [1, 2, 4, 8]},
        )
        with obs.session(**obs_kwargs) as s:
            results = explore(runner, sweep, jobs=2, backend="process")
        return results, s

    def test_merged_trace_has_tracks_from_every_worker(self):
        results, s = self._process_sweep(trace=True)
        assert all(r.ok for r in results)
        span_pids = {
            e["pid"]
            for e in s.tracer.events
            if e.get("name") in {"generate", "compile", "plan", "execute"}
        }
        assert len(span_pids) >= 2  # engine stages ran in >= 2 worker pids
        doc = s.tracer.to_chrome()
        labels = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert any(label.startswith("worker-0") for label in labels)
        assert any(label.startswith("worker-1") for label in labels)

    def test_child_metrics_relay_into_parent_registry(self):
        results, s = self._process_sweep(metrics=True)
        counters = s.registry.snapshot()["counters"]
        # engine.points counted exactly once per point (no double count
        # between the stats fold and the relayed registry batches)
        assert counters["engine.points"] == len(results) == 4
        # child-only counters (memsim runs inside the workers) made it home
        assert counters["memsim.dram.requests"] >= 1
        assert counters["queue.kernel_launches"] >= 4

    def test_worker_events_carry_worker_identity(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        self._process_sweep(log_json=events_path)
        events = [
            json.loads(line) for line in events_path.read_text().splitlines()
        ]
        tagged = [e for e in events if "worker" in e and "worker_pid" in e]
        assert tagged, "no relayed worker events in the merged log"
        assert {e["worker"] for e in tagged} <= {"worker-0", "worker-1"}

    def test_fingerprints_invariant_process_traced_untraced_serial(self, tmp_path):
        serial = _fingerprints(
            explore(
                BenchmarkRunner("cpu", ntimes=1),
                ParameterSweep(
                    base=TuningParameters(array_bytes=32 * KIB),
                    axes={"vector_width": [1, 2, 4, 8]},
                ),
            )
        )
        untraced, _ = self._process_sweep()
        traced, _ = self._process_sweep(
            trace=True, metrics=True, log_json=tmp_path / "e.jsonl"
        )
        assert serial == _fingerprints(untraced) == _fingerprints(traced)


# --------------------------------------------------------------------------
# exported Chrome trace structure (all three backends)
# --------------------------------------------------------------------------


class TestChromeTraceStructure:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_exported_trace_is_structurally_valid(self, backend, tmp_path):
        runner = BenchmarkRunner("cpu", ntimes=1)
        path = tmp_path / f"{backend}.json"
        with obs.session(trace=path):
            explore(runner, _small_sweep(), jobs=2, backend=backend)
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {"sweep", "point", "generate", "compile", "plan", "execute"} <= {
            s["name"] for s in spans
        }
        for s in spans:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(s)
            assert s["dur"] >= 0 and s["ts"] >= 0
        # span pairs nest properly: within one (pid, tid) track, any two
        # spans either nest (containment) or are disjoint — never overlap
        tracks: dict[tuple, list] = {}
        for s in spans:
            tracks.setdefault((s["pid"], s["tid"]), []).append(s)
        eps = 1e-3  # us rounding slack
        for track in tracks.values():
            track.sort(key=lambda s: (s["ts"], -s["dur"]))
            for a, b in zip(track, track[1:]):
                a_end = a["ts"] + a["dur"]
                assert (
                    b["ts"] + b["dur"] <= a_end + eps  # nested
                    or b["ts"] >= a_end - eps  # disjoint
                ), f"overlapping spans {a['name']}/{b['name']}"
        for e in doc["traceEvents"]:
            if e["ph"] == "M":
                assert e["name"] in {"process_name", "thread_name"}
                assert e["args"]["name"]


# --------------------------------------------------------------------------
# queue counters and their per-point reset (the satellite fix)
# --------------------------------------------------------------------------


class TestQueueCounters:
    def test_reset_profile_zeroes_counters(self):
        device = find_device("gpu")
        ctx = Context(device)
        q = CommandQueue(ctx, device)
        buf = ctx.create_buffer(size=4096)
        arr = np.zeros(1024, dtype=np.int32)
        q.enqueue_write_buffer(buf, arr)
        q.enqueue_read_buffer(buf, arr)
        assert q.counters["commands"] == 2
        assert q.counters["h2d_bytes"] == 4096
        assert q.counters["d2h_bytes"] == 4096
        assert q.counters["virtual_busy_s"] > 0
        q.reset_profile()
        assert q.counters == CommandQueue._fresh_counters()

    def test_queue_spans_and_metrics(self):
        device = find_device("gpu")
        ctx = Context(device)
        q = CommandQueue(ctx, device)
        buf = ctx.create_buffer(size=4096)
        arr = np.zeros(1024, dtype=np.int32)
        tracer = obs_trace.Tracer()
        reg = obs_metrics.MetricsRegistry()
        with obs_trace.use_tracer(tracer), obs_metrics.use_registry(reg):
            q.enqueue_write_buffer(buf, arr)
            q.enqueue_read_buffer(buf, arr)
        assert {e["name"] for e in tracer.events} == {
            "write_buffer",
            "read_buffer",
        }
        counters = reg.snapshot()["counters"]
        assert counters["queue.h2d_bytes"] == 4096
        assert counters["queue.d2h_bytes"] == 4096


# --------------------------------------------------------------------------
# live progress reporter
# --------------------------------------------------------------------------


class TestSweepProgress:
    def test_default_verbosity_prints_summary_lines(self):
        out, err = io.StringIO(), io.StringIO()
        reporter = obs.SweepProgress(total=2, verbosity=1, out=out, err=err)
        runner = BenchmarkRunner("cpu", ntimes=1)
        explore(runner, _small_sweep(), progress=reporter)
        lines = out.getvalue().splitlines()
        assert len(lines) == 2
        assert all(line.startswith("[cpu]") for line in lines)
        assert reporter.done == 2 and reporter.failed == 0

    def test_quiet_emits_nothing_but_still_counts(self):
        out = io.StringIO()
        reporter = obs.SweepProgress(total=2, verbosity=0, out=out, err=out)
        runner = BenchmarkRunner("cpu", ntimes=1)
        explore(runner, _small_sweep(), progress=reporter)
        assert out.getvalue() == ""
        assert reporter.done == 2

    def test_verbose_adds_stage_breakdown(self):
        out = io.StringIO()
        reporter = obs.SweepProgress(total=2, verbosity=2, out=out, err=out)
        runner = BenchmarkRunner("cpu", ntimes=1)
        explore(runner, _small_sweep(), progress=reporter)
        assert "stages:" in out.getvalue()
        assert "execute" in out.getvalue()

    def test_cached_frontend_tag_and_hit_rate(self):
        out = io.StringIO()
        runner = BenchmarkRunner("cpu", ntimes=1)
        sweep = ParameterSweep(
            base=TuningParameters(array_bytes=32 * KIB),
            axes={"array_bytes": [32 * KIB, 64 * KIB]},  # same source: 2nd hits
        )
        reporter = obs.SweepProgress(total=2, verbosity=1, out=out, err=out)
        explore(runner, sweep, progress=reporter)
        assert "[cached front-end]" in out.getvalue()
        assert reporter.cache_hits == 1
        assert reporter.cache_hit_rate == 0.5

    def test_status_line_and_eta(self):
        ticks = iter([0.0, 10.0, 10.0, 10.0, 10.0, 10.0])
        reporter = obs.SweepProgress(
            total=4,
            verbosity=0,
            out=io.StringIO(),
            err=io.StringIO(),
            clock=lambda: next(ticks),
        )
        reporter.done = 2
        reporter.failed = 1
        line = reporter.status_line()
        assert line.startswith("2/4 points")
        assert "0.2 pt/s" in line
        assert "eta 10.0s" in line
        assert "1 failed" in line
        assert reporter.finish() == line
