"""Kernel reference semantics and STREAM validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DataType, KernelName
from repro.core.kernels import KERNELS, SCALAR_Q, initial_arrays, reference
from repro.core.validate import validate_solution
from repro.errors import ValidationError


class TestSpecs:
    def test_reads_writes(self):
        assert KERNELS[KernelName.COPY].reads == ("a",)
        assert KERNELS[KernelName.COPY].writes == "c"
        assert KERNELS[KernelName.SCALE].reads == ("c",)
        assert KERNELS[KernelName.SCALE].writes == "b"
        assert KERNELS[KernelName.ADD].reads == ("a", "b")
        assert KERNELS[KernelName.TRIAD].reads == ("b", "c")

    def test_scalar_usage(self):
        assert KERNELS[KernelName.SCALE].uses_scalar
        assert KERNELS[KernelName.TRIAD].uses_scalar
        assert not KERNELS[KernelName.COPY].uses_scalar


class TestInitialArrays:
    @pytest.mark.parametrize("dtype", list(DataType))
    def test_stream_initial_values(self, dtype):
        arrays = initial_arrays(64, dtype)
        assert np.all(arrays["a"] == 1)
        assert np.all(arrays["b"] == 2)
        assert np.all(arrays["c"] == 0)
        assert arrays["a"].dtype.itemsize == dtype.size


class TestReference:
    def test_copy(self):
        arrays = initial_arrays(8, DataType.INT)
        out = reference(KernelName.COPY, arrays)
        assert np.all(out["c"] == 1)
        assert np.all(arrays["c"] == 0)  # input untouched

    def test_scale(self):
        out = reference(KernelName.SCALE, initial_arrays(8, DataType.INT))
        assert np.all(out["b"] == 0)  # q * c = 3 * 0

    def test_add(self):
        out = reference(KernelName.ADD, initial_arrays(8, DataType.INT))
        assert np.all(out["c"] == 3)

    def test_triad(self):
        out = reference(KernelName.TRIAD, initial_arrays(8, DataType.DOUBLE))
        assert np.all(out["a"] == 2 + SCALAR_Q * 0)

    def test_touched_words_limits_region(self):
        arrays = initial_arrays(8, DataType.INT)
        out = reference(KernelName.COPY, arrays, touched_words=4)
        assert np.all(out["c"][:4] == 1)
        assert np.all(out["c"][4:] == 0)


class TestValidate:
    def test_accepts_exact_match(self):
        initial = initial_arrays(16, DataType.INT)
        observed = reference(KernelName.ADD, initial)
        validate_solution(KernelName.ADD, DataType.INT, initial, observed)

    def test_rejects_single_wrong_word(self):
        initial = initial_arrays(16, DataType.INT)
        observed = reference(KernelName.ADD, initial)
        observed["c"][7] += 1
        with pytest.raises(ValidationError) as err:
            validate_solution(KernelName.ADD, DataType.INT, initial, observed)
        assert "word 7" in str(err.value)

    def test_double_epsilon_tolerates_rounding(self):
        initial = initial_arrays(16, DataType.DOUBLE)
        observed = reference(KernelName.TRIAD, initial)
        observed["a"] *= 1.0 + 1e-15  # below epsilon
        validate_solution(KernelName.TRIAD, DataType.DOUBLE, initial, observed)

    def test_double_epsilon_rejects_drift(self):
        initial = initial_arrays(16, DataType.DOUBLE)
        observed = reference(KernelName.TRIAD, initial)
        observed["a"] *= 1.0 + 1e-6
        with pytest.raises(ValidationError):
            validate_solution(KernelName.TRIAD, DataType.DOUBLE, initial, observed)

    def test_shape_mismatch(self):
        initial = initial_arrays(16, DataType.INT)
        observed = {k: v[:8].copy() for k, v in reference(KernelName.COPY, initial).items()}
        with pytest.raises(ValidationError):
            validate_solution(KernelName.COPY, DataType.INT, initial, observed)

    def test_partial_region_validation(self):
        initial = initial_arrays(16, DataType.INT)
        observed = reference(KernelName.COPY, initial, touched_words=10)
        validate_solution(
            KernelName.COPY, DataType.INT, initial, observed, touched_words=10
        )
        # but claiming full coverage fails: the tail was never written
        with pytest.raises(ValidationError):
            validate_solution(KernelName.COPY, DataType.INT, initial, observed)
