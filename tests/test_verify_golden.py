"""Golden regression corpus: determinism, round-trips, drift detection,
and agreement of the checked-in corpus with current behaviour."""

import json
from pathlib import Path

import pytest

from repro.core.history import point_fingerprint
from repro.core.runner import BenchmarkRunner
from repro.errors import BenchmarkError
from repro.verify import (
    DEFAULT_GOLDEN_PATH,
    compute_corpus,
    corpus_grid,
    diff_corpus,
    format_drift,
    interpret_point,
    load_corpus,
    output_checksum,
    save_corpus,
)
from repro.verify.golden import GOLDEN_SCHEMA, _result_sha

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestCorpusGrid:
    def test_grid_covers_all_targets_and_both_dtypes(self):
        grid = corpus_grid()
        targets = {t for t, _ in grid}
        assert targets == {"cpu", "gpu", "aocl", "sdaccel"}
        assert len(grid) == 32
        assert {p.dtype.cname for _, p in grid} == {"int", "double"}
        assert {p.vector_width for _, p in grid} == {1, 4}

    def test_grid_keys_are_unique(self):
        grid = corpus_grid()
        keys = [point_fingerprint(t, p) for t, p in grid]
        assert len(set(keys)) == len(keys)


class TestComputeAndRoundTrip:
    def test_corpus_is_deterministic(self):
        small = corpus_grid(("cpu",))
        a = compute_corpus(small)
        b = compute_corpus(small)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_save_load_round_trip(self, tmp_path):
        corpus = compute_corpus(corpus_grid(("cpu",)))
        path = tmp_path / "corpus.json"
        save_corpus(path, corpus)
        assert load_corpus(path) == corpus
        # byte-stable serialization
        first = path.read_bytes()
        save_corpus(path, load_corpus(path))
        assert path.read_bytes() == first

    def test_load_missing_corpus_explains_the_fix(self, tmp_path):
        with pytest.raises(BenchmarkError, match="update-golden"):
            load_corpus(tmp_path / "absent.json")

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "corpus.json"
        path.write_text(json.dumps({"schema": GOLDEN_SCHEMA + 1, "entries": {}}))
        with pytest.raises(BenchmarkError, match="schema"):
            load_corpus(path)

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "corpus.json"
        path.write_text("{not json")
        with pytest.raises(BenchmarkError, match="not valid JSON"):
            load_corpus(path)


class TestDrift:
    def _two(self):
        grid = corpus_grid(("cpu",))
        return compute_corpus(grid), compute_corpus(grid)

    def test_identical_corpora_are_clean(self):
        a, b = self._two()
        diff = diff_corpus(a, b)
        assert diff.clean
        assert "clean" in format_drift(diff, a, b)

    def test_changed_field_is_reported_with_old_and_new(self):
        a, b = self._two()
        key = next(iter(b["entries"]))
        b["entries"][key]["bandwidth_gbs"] = 123.456
        diff = diff_corpus(a, b)
        assert not diff.clean and list(diff.changed) == [key]
        (field, old, new), *_ = diff.changed[key]
        assert field == "bandwidth_gbs" and new == 123.456 and old != new
        drift = format_drift(diff, a, b)
        assert f"-   bandwidth_gbs = {old}" in drift
        assert "+   bandwidth_gbs = 123.456" in drift

    def test_added_and_removed_entries_are_reported(self):
        a, b = self._two()
        key = next(iter(b["entries"]))
        moved = b["entries"].pop(key)
        b["entries"]["ffffffffffffffff"] = moved
        diff = diff_corpus(a, b)
        assert diff.removed == (key,)
        assert diff.added == ("ffffffffffffffff",)
        drift = format_drift(diff, a, b)
        assert "entry removed" in drift and "not in corpus" in drift


class TestCheckedInCorpus:
    """The committed tests/golden/corpus.json matches current behaviour."""

    @pytest.fixture(scope="class")
    def pinned(self):
        return load_corpus(REPO_ROOT / DEFAULT_GOLDEN_PATH)

    def test_corpus_exists_with_expected_schema_and_size(self, pinned):
        assert pinned["schema"] == GOLDEN_SCHEMA
        assert len(pinned["entries"]) == 32

    def test_cpu_entries_match_recomputation(self, pinned):
        # recompute just the cpu slice (keeps the test fast); the CI
        # verify job covers the full grid
        grid = corpus_grid(("cpu",))
        current = compute_corpus(grid)
        for key, entry in current["entries"].items():
            assert key in pinned["entries"], f"{entry['params']} not pinned"
            assert pinned["entries"][key] == entry, (
                f"drift at {entry['params']}: "
                f"{pinned['entries'][key]} != {entry}"
            )

    def test_result_sha_tracks_fingerprint(self, pinned):
        target, params = corpus_grid(("cpu",))[0]
        result = BenchmarkRunner(target, ntimes=2).run(params)
        key = point_fingerprint(target, params)
        assert pinned["entries"][key]["result_sha"] == _result_sha(
            result.fingerprint()
        )
        assert pinned["entries"][key]["output_sha"] == output_checksum(
            interpret_point(params)
        )


class TestCorpusMutation:
    """Byte-level tamper detection on the checked-in corpus.

    Flip a single byte of one pinned checksum in a tmp copy and demand
    ``diff_corpus`` reports exactly that entry, exactly that field —
    proof the drift detector's resolution is one field of one entry.
    """

    def test_single_flipped_checksum_byte_is_pinpointed(self, tmp_path):
        pinned_path = REPO_ROOT / DEFAULT_GOLDEN_PATH
        pinned = load_corpus(pinned_path)

        # pick a deterministic victim and flip one byte of its
        # result_sha in the serialized file, not the parsed dict
        victim = sorted(pinned["entries"])[0]
        sha = pinned["entries"][victim]["result_sha"]
        flipped = ("0" if sha[0] != "0" else "1") + sha[1:]
        assert flipped != sha

        text = pinned_path.read_text()
        assert text.count(f'"{sha}"') >= 1
        mutated_path = tmp_path / "corpus.json"
        mutated_path.write_text(text.replace(f'"{sha}"', f'"{flipped}"', 1))

        mutated = load_corpus(mutated_path)
        diff = diff_corpus(pinned, mutated)
        assert not diff.clean
        assert diff.added == () and diff.removed == ()
        assert list(diff.changed) == [victim]
        assert diff.changed[victim] == [("result_sha", sha, flipped)]

        drift = format_drift(diff, pinned, mutated)
        assert victim in drift
        assert f"-   result_sha = {sha}" in drift
        assert f"+   result_sha = {flipped}" in drift

    def test_flip_in_any_entry_is_isolated_to_that_entry(self, tmp_path):
        pinned = load_corpus(REPO_ROOT / DEFAULT_GOLDEN_PATH)
        keys = sorted(pinned["entries"])
        for victim in (keys[1], keys[-1]):
            mutated = json.loads(json.dumps(pinned))
            sha = mutated["entries"][victim]["output_sha"]
            mutated["entries"][victim]["output_sha"] = sha[:-1] + (
                "f" if sha[-1] != "f" else "e"
            )
            path = tmp_path / f"{victim}.json"
            save_corpus(path, mutated)
            diff = diff_corpus(pinned, load_corpus(path))
            assert list(diff.changed) == [victim]
            assert [f for f, *_ in diff.changed[victim]] == ["output_sha"]
