"""ExecutionEngine: staged pipeline, artifact caching, parallel sweeps.

Covers the engine's contract:

* cached and cold runs produce byte-identical measurements
  (:meth:`RunResult.fingerprint` — everything except the
  ``detail["engine"]`` instrumentation);
* a sweep performs the oclc front-end at most once per distinct
  ``(source, defines, device)`` triple, verified by the cache counters;
* ``explore(..., jobs=4)`` equals the serial path, in the same order;
* the cache is invalidated when source-relevant defines change;
* failures (FPGA resource overflow) are cached and replayed.
"""

from __future__ import annotations

import pytest

from repro.core import (
    BenchmarkRunner,
    BuildCache,
    ExecutionEngine,
    KernelName,
    LoopManagement,
    ParameterSweep,
    StreamLocus,
    TuningParameters,
    explore,
    generate,
)
from repro.errors import BenchmarkError, SweepError
from repro.oclc import effective_defines, frontend_key
from repro.units import KIB, MIB


def _engine(target: str = "cpu", **kw) -> ExecutionEngine:
    kw.setdefault("ntimes", 2)
    return ExecutionEngine(target, **kw)


class TestStagedPipeline:
    def test_run_matches_legacy_runner_contract(self, small_params):
        result = _engine("cpu").run(small_params)
        assert result.ok and result.validated
        assert len(result.times) == 2
        assert result.moved_bytes == 2 * small_params.array_bytes
        assert "mpstream_copy" in str(result.detail["generated_source"])
        assert result.detail["build_log"]

    def test_detail_carries_stage_instrumentation(self, small_params):
        result = _engine("aocl").run(small_params)
        engine_info = result.detail["engine"]
        assert set(engine_info["stage_s"]) == {
            "generate",
            "compile",
            "plan",
            "execute",
            "verify",
        }
        assert engine_info["frontend_cache"] == "miss"
        assert engine_info["plan_cache"] == "miss"
        assert engine_info["stage_s"]["execute"] > 0
        # the verify stage only accrues time when enabled
        assert engine_info["stage_s"]["verify"] == 0.0

    def test_second_run_hits_both_caches(self, small_params):
        engine = _engine("gpu")
        cold = engine.run(small_params)
        warm = engine.run(small_params)
        assert cold.detail["engine"]["frontend_cache"] == "miss"
        assert warm.detail["engine"]["frontend_cache"] == "hit"
        assert warm.detail["engine"]["plan_cache"] == "hit"

    def test_cache_disabled_marks_stages_off(self, small_params):
        engine = _engine("cpu", cache=False)
        result = engine.run(small_params)
        assert result.ok
        assert result.detail["engine"]["frontend_cache"] == "off"
        assert result.detail["engine"]["plan_cache"] == "off"
        stats = engine.stats_snapshot()
        assert stats["frontend_hits"] == stats["frontend_misses"] == 0

    def test_ntimes_validation(self):
        with pytest.raises(BenchmarkError):
            ExecutionEngine("cpu", ntimes=0)

    def test_host_stream_through_engine(self):
        params = TuningParameters(array_bytes=1 * MIB, locus=StreamLocus.HOST)
        result = _engine("gpu").run(params)
        assert result.ok and result.validated
        assert result.detail["engine"]["frontend_cache"] == "off"

    def test_stats_accumulate_across_points(self, small_params):
        engine = _engine("cpu")
        for _ in range(3):
            engine.run(small_params)
        stats = engine.stats_snapshot()
        assert stats["points"] == 3
        assert stats["failures"] == 0
        assert stats["frontend_misses"] == 1
        assert stats["frontend_hits"] == 2


class TestByteIdenticalResults:
    def test_cached_vs_cold_fingerprints_match(self, small_params):
        cold = ExecutionEngine("aocl", ntimes=3, cache=False).run(small_params)
        engine = ExecutionEngine("aocl", ntimes=3)
        engine.run(small_params)  # populate the cache
        cached = engine.run(small_params)  # pure cache-hit run
        assert cached.detail["engine"]["frontend_cache"] == "hit"
        assert cold.fingerprint() == cached.fingerprint()

    def test_engine_matches_runner_results(self, small_params):
        via_runner = BenchmarkRunner("sdaccel", ntimes=2).run(small_params)
        via_engine = _engine("sdaccel").run(small_params)
        assert via_runner.fingerprint() == via_engine.fingerprint()

    def test_fingerprint_ignores_instrumentation_only(self, small_params):
        import dataclasses

        result = _engine("cpu").run(small_params)
        # changing instrumentation does not change identity
        detail = dict(result.detail)
        detail["engine"] = {"stage_s": {}, "frontend_cache": "???"}
        same = dataclasses.replace(result, detail=detail)
        assert same.fingerprint() == result.fingerprint()
        # changing a measurement does
        different = dataclasses.replace(result, times=tuple(2 * t for t in result.times))
        assert different.fingerprint() != result.fingerprint()

    def test_repeat_points_late_in_campaign_identical(self):
        """The long-lived queue must not leak virtual-clock offsets into
        latencies (float subtraction late in a campaign)."""
        engine = _engine("gpu", ntimes=3)
        p = TuningParameters(array_bytes=128 * KIB)
        first = engine.run(p)
        for size in (64 * KIB, 256 * KIB, 512 * KIB):
            engine.run(TuningParameters(array_bytes=size))
        again = engine.run(p)
        assert first.times == again.times
        assert first.fingerprint() == again.fingerprint()


class TestFrontendSharing:
    def test_size_sweep_compiles_once(self):
        """100 NDRange points differing only in array size share one
        front-end pass — the tentpole's acceptance criterion."""
        engine = _engine("cpu", ntimes=1)
        sweep = ParameterSweep(
            base=TuningParameters(array_bytes=4 * KIB),
            axes={"array_bytes": [4 * KIB * (i + 1) for i in range(100)]},
        )
        results = explore(engine, sweep)
        assert len(results) == 100
        stats = engine.stats_snapshot()
        # distinct (source, effective defines, device) triples in the sweep:
        triples = {
            frontend_key(g.source, {k: str(v) for k, v in g.defines.items()})
            for g in (generate(p) for p in sweep.points())
        }
        assert len(triples) == 1  # NDRange source never mentions N
        assert stats["frontend_misses"] == len(triples)
        assert stats["frontend_hits"] == 100 - len(triples)
        assert stats["plan_misses"] == len(triples)

    def test_flat_loop_sizes_are_distinct_triples(self):
        """FLAT-loop kernels bake N into the compile; sizes must miss."""
        engine = _engine("aocl", ntimes=1)
        sizes = [32 * KIB, 64 * KIB, 128 * KIB]
        for size in sizes:
            engine.run(
                TuningParameters(array_bytes=size, loop=LoopManagement.FLAT)
            )
        stats = engine.stats_snapshot()
        assert stats["frontend_misses"] == len(sizes)
        assert stats["frontend_hits"] == 0

    def test_cache_invalidated_when_defines_change(self):
        source = "__kernel void k(__global int *a) { a[0] = N; }\n"
        assert effective_defines(source, {"N": 1}) == (("N", "1"),)
        cache = BuildCache()
        checked_1, hit_1 = cache.frontend(source, {"N": 1})
        checked_2, hit_2 = cache.frontend(source, {"N": 2})
        checked_1b, hit_1b = cache.frontend(source, {"N": 1})
        assert not hit_1 and not hit_2 and hit_1b
        assert checked_1 is not checked_2
        assert checked_1 is checked_1b

    def test_unreferenced_defines_do_not_invalidate(self):
        source = "__kernel void k(__global int *a) { a[0] = 1; }\n"
        assert effective_defines(source, {"N": 64}) == ()
        cache = BuildCache()
        _, hit_1 = cache.frontend(source, {"N": 64})
        _, hit_2 = cache.frontend(source, {"N": 128})
        assert not hit_1 and hit_2

    def test_sources_with_directives_keep_all_defines(self):
        source = "#ifdef FAST\n#endif\n__kernel void k(__global int *a) { a[0] = 1; }\n"
        assert ("FAST", "1") in effective_defines(source, {"FAST": 1})


class TestFailureCaching:
    def test_build_failure_cached_and_replayed(self):
        # int16 x 3 arrays overflows the Virtex-7 in our resource model
        params = TuningParameters(
            array_bytes=64 * KIB,
            kernel=KernelName.ADD,
            vector_width=16,
            loop=LoopManagement.NESTED,
        )
        engine = _engine("sdaccel", ntimes=1)
        cold = engine.run(params)
        warm = engine.run(params)
        assert not cold.ok and not warm.ok
        assert "does not fit" in cold.error
        assert cold.error == warm.error
        assert cold.fingerprint() == warm.fingerprint()
        stats = engine.stats_snapshot()
        assert stats["plan_misses"] == 1
        assert stats["plan_hits"] == 1  # the replayed failure
        assert stats["failures"] == 2


class TestParallelExplore:
    def _sweep(self) -> ParameterSweep:
        return ParameterSweep(
            base=TuningParameters(array_bytes=64 * KIB),
            axes={
                "vector_width": [1, 2, 4, 8],
                "array_bytes": [32 * KIB, 64 * KIB, 128 * KIB],
            },
        )

    def test_parallel_equals_serial_in_order(self):
        serial = explore(BenchmarkRunner("gpu", ntimes=2), self._sweep())
        parallel = explore(
            BenchmarkRunner("gpu", ntimes=2), self._sweep(), jobs=4
        )
        assert len(serial) == len(parallel) == 12
        assert [r.params for r in serial] == [r.params for r in parallel]
        assert [r.fingerprint() for r in serial] == [
            r.fingerprint() for r in parallel
        ]

    def test_parallel_tolerates_failures(self):
        sweep = ParameterSweep(
            base=TuningParameters(
                array_bytes=64 * KIB,
                kernel=KernelName.ADD,
                loop=LoopManagement.NESTED,
            ),
            axes={"vector_width": [1, 2, 16]},  # 16 overflows sdaccel
        )
        results = explore(BenchmarkRunner("sdaccel", ntimes=1), sweep, jobs=3)
        assert len(results) == 3
        assert [r.ok for r in results] == [True, True, False]

    def test_parallel_progress_fires_per_point(self):
        seen: list[str] = []

        def progress(result) -> None:
            # explore serializes progress under a lock, so a plain list is safe
            seen.append(result.params.describe())

        explore(BenchmarkRunner("cpu", ntimes=1), self._sweep(), jobs=4, progress=progress)
        assert len(seen) == 12

    def test_workers_share_one_cache(self):
        runner = BenchmarkRunner("cpu", ntimes=1)
        explore(runner, self._sweep(), jobs=4)
        warm_start = runner.engine.stats_snapshot()
        explore(runner, self._sweep(), jobs=4)
        warm_end = runner.engine.stats_snapshot()
        assert warm_end["points"] == 24
        # the second campaign is satisfied entirely from the shared cache
        assert warm_end["frontend_misses"] == warm_start["frontend_misses"]
        assert warm_end["frontend_hits"] == warm_start["frontend_hits"] + 12

    def test_jobs_validation(self):
        with pytest.raises(SweepError):
            explore(BenchmarkRunner("cpu", ntimes=1), self._sweep(), jobs=0)


class TestWorkerClone:
    def test_clone_shares_cache_and_stats(self, small_params):
        engine = _engine("aocl")
        clone = engine.worker_clone()
        assert clone.cache is engine.cache
        assert clone.stats is engine.stats
        assert clone.device is engine.device
        engine.run(small_params)
        cloned_result = clone.run(small_params)
        assert cloned_result.detail["engine"]["frontend_cache"] == "hit"

    def test_clone_of_uncached_engine_stays_uncached(self):
        engine = _engine("cpu", cache=False)
        assert engine.worker_clone().cache is None
