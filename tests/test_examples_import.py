"""Examples are importable and expose a main() (cheap smoke check).

Full example runs take minutes; importing them catches syntax errors,
missing modules and API drift without executing the workloads (every
example guards execution behind ``if __name__ == "__main__"``).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parents[1] / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    assert callable(getattr(module, "main", None)), f"{path.name} needs a main()"


def test_there_are_at_least_seven_examples():
    assert len(EXAMPLES) >= 7
