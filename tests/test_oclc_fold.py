"""Constant folding and algebraic simplification."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oclc import BufferArg, parse, run_kernel, to_source
from repro.oclc import cast
from repro.oclc.fold import fold_expr, fold_unit


def expr_of(text: str) -> cast.Expr:
    """Parse a standalone expression via a wrapper kernel."""
    unit = parse(
        f"__kernel void k(__global int *a, __global double *d) {{ a[0] = {text}; }}"
    )
    stmt = unit.kernel().body.body[0]
    assert isinstance(stmt, cast.ExprStmt)
    return stmt.expr.value  # type: ignore[union-attr]


def folded(text: str) -> cast.Expr:
    return fold_expr(expr_of(text))


class TestLiteralFolding:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("1 + 2 * 3", 7),
            ("(10 - 4) / 2", 3),
            ("-7 / 2", -3),       # C truncation
            ("-7 % 3", -1),
            ("1 << 4", 16),
            ("255 & 15", 15),
            ("3 < 5", 1),
            ("3 == 4", 0),
            ("1 && 0", 0),
            ("0 || 7", 1),
            ("!0", 1),
            ("-(-5)", 5),
        ],
    )
    def test_int_expressions(self, text, value):
        e = folded(text)
        assert isinstance(e, cast.IntLiteral) and e.value == value

    def test_float_fold(self):
        e = folded("1.5 + 2.5")
        assert isinstance(e, cast.FloatLiteral) and e.value == 4.0

    def test_division_by_zero_stays_symbolic(self):
        e = folded("1 / 0")
        assert isinstance(e, cast.Binary)

    def test_overflow_stays_symbolic(self):
        e = folded("2000000000 + 2000000000")
        assert isinstance(e, cast.Binary)

    def test_huge_shift_stays_symbolic(self):
        e = folded("1 << 40")
        assert isinstance(e, cast.Binary)


class TestIdentities:
    def test_mul_one(self):
        e = folded("a[0] * 1")
        assert isinstance(e, cast.Index)

    def test_add_zero(self):
        e = folded("0 + a[0]")
        assert isinstance(e, cast.Index)

    def test_mul_zero_effect_free(self):
        e = folded("a[0] * 0")
        assert isinstance(e, cast.IntLiteral) and e.value == 0

    def test_mul_zero_with_side_effect_kept(self):
        unit = parse(
            "__kernel void k(__global int *a) { int i = 0; a[0] = (i++) * 0; }"
        )
        f = fold_unit(unit)
        stmt = f.kernel().body.body[1]
        assert isinstance(stmt.expr.value, cast.Binary)  # not folded away

    def test_shift_zero(self):
        assert isinstance(folded("a[0] << 0"), cast.Index)

    def test_div_one(self):
        assert isinstance(folded("a[0] / 1"), cast.Index)


class TestStatementFolding:
    def test_if_true_keeps_then(self):
        unit = parse(
            "__kernel void k(__global int *a) { if (1) a[0] = 1; else a[0] = 2; }"
        )
        body = fold_unit(unit).kernel().body.body
        assert len(body) == 1
        assert isinstance(body[0], cast.ExprStmt)

    def test_if_false_keeps_else(self):
        unit = parse(
            "__kernel void k(__global int *a) { if (2 > 3) a[0] = 1; else a[0] = 2; }"
        )
        body = fold_unit(unit).kernel().body.body
        stmt = body[0]
        assert isinstance(stmt.expr.value, cast.IntLiteral)
        assert stmt.expr.value.value == 2

    def test_if_false_no_else_vanishes(self):
        unit = parse("__kernel void k(__global int *a) { if (0) a[0] = 1; a[1] = 2; }")
        body = fold_unit(unit).kernel().body.body
        assert len(body) == 1

    def test_zero_trip_loop_vanishes(self):
        unit = parse(
            "__kernel void k(__global int *a) { for (int i = 0; i < 0; i++) a[i] = 1; }"
        )
        assert fold_unit(unit).kernel().body.body == ()

    def test_false_while_vanishes(self):
        unit = parse("__kernel void k(__global int *a) { while (0) a[0] = 1; a[1] = 1; }")
        assert len(fold_unit(unit).kernel().body.body) == 1

    def test_ternary_literal_condition(self):
        e = folded("1 ? a[0] : a[1]")
        assert isinstance(e, cast.Index)

    def test_folded_source_parses(self):
        unit = parse(
            "__kernel void k(__global int *a) {"
            " for (int i = 0; i < 4 * 4; i++) a[i] = i * 1 + 0; }"
        )
        text = to_source(fold_unit(unit))
        assert "16" in text
        parse(text)  # round-trips


@settings(max_examples=40, deadline=None)
@given(
    x=st.integers(-100, 100),
    y=st.integers(-100, 100),
    z=st.integers(1, 10),
)
def test_folding_preserves_semantics(x, y, z):
    """Property: folded and unfolded kernels compute identical results."""
    src = (
        "__kernel void k(__global int *a) {"
        f" a[0] = ({x} + {y}) * {z} + {x} / {z} - ({y} % {z});"
        f" if (({x}) < ({y})) a[1] = 1 * a[0]; else a[1] = a[0] + 0;"
        " }"
    )
    unit = parse(src)
    folded_unit = fold_unit(unit)

    def run_unit(u):
        from repro.oclc.semantic import check

        program = check(u)
        out = np.zeros(2, dtype=np.int32)
        run_kernel(program, "k", (1,), {"a": BufferArg(out)})
        return out

    np.testing.assert_array_equal(run_unit(unit), run_unit(folded_unit))


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 3), st.integers(0, 5))
def test_fold_is_idempotent(a, b):
    e = expr_of(f"a[0] * {a} + {b} * 1")
    once = fold_expr(e)
    twice = fold_expr(once)
    assert to_source(once) == to_source(twice)
