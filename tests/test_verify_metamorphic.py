"""Metamorphic invariants: the laws hold, and violations are reported
as structured pairs of grid points rather than raised exceptions.

The negative-path tests deliberately break the model under each law
(monkeypatched service times, hit rates, launch latencies, fake engine
results) and demand the law *fires* — a law that cannot catch a broken
model is not a check, it is decoration."""

from dataclasses import dataclass

import numpy as np

from repro.core.params import AccessPattern, TuningParameters
from repro.memsim import CacheConfig
from repro.verify import metamorphic
from repro.verify.metamorphic import (
    ALL_TARGETS,
    LawReport,
    Violation,
    check_all,
    check_bytes_linear,
    check_content_invariance,
    check_contiguous_vs_strided,
    check_hit_rate_passes,
    check_hit_rate_stride,
    check_service_time_stride,
)


class TestLaws:
    def test_content_invariance_holds_on_every_target(self):
        report = check_content_invariance(ALL_TARGETS)
        assert report.ok, report.describe()
        assert report.checked == len(ALL_TARGETS)

    def test_contiguous_never_loses_to_strided(self):
        report = check_contiguous_vs_strided(ALL_TARGETS)
        assert report.ok, report.describe()

    def test_bytes_scale_linearly(self):
        report = check_bytes_linear(("cpu", "aocl"), factors=(2, 4, 8))
        assert report.ok, report.describe()
        assert report.checked == 6

    def test_service_time_monotone_in_stride(self):
        report = check_service_time_stride()
        assert report.ok, report.describe()

    def test_hit_rate_monotone_in_stride(self):
        report = check_hit_rate_stride()
        assert report.ok, report.describe()

    def test_hit_rate_monotone_in_stride_tiny_cache(self):
        report = check_hit_rate_stride(
            footprint_bytes=64 * 1024, config=CacheConfig(4 * 1024, 32, 2)
        )
        assert report.ok, report.describe()

    def test_second_pass_never_lowers_hit_rate(self):
        report = check_hit_rate_passes()
        assert report.ok, report.describe()

    def test_check_all_runs_every_law(self):
        reports = check_all(quick=True)
        assert len(reports) == 6
        assert all(isinstance(r, LawReport) for r in reports)
        assert all(r.ok for r in reports), [r.describe() for r in reports]
        assert len({r.law for r in reports}) == 6


class TestViolationReporting:
    def test_violation_names_the_offending_pair(self):
        v = Violation(
            law="hit_rate_stride",
            left="stride=8B over 262144B",
            right="stride=16B over 262144B",
            left_value=0.5,
            right_value=0.75,
            detail="larger stride hit more often",
        )
        text = v.describe()
        assert "stride=8B" in text and "stride=16B" in text
        assert "0.5" in text and "0.75" in text
        assert "larger stride hit more often" in text

    def test_law_report_describe_counts_violations(self):
        clean = LawReport(law="x", checked=3, violations=())
        assert clean.ok and "ok" in clean.describe()
        dirty = LawReport(
            law="x",
            checked=3,
            violations=(
                Violation(law="x", left="a", right="b", left_value=1, right_value=2),
            ),
        )
        assert not dirty.ok and "1 violation" in dirty.describe()

    def test_broken_model_produces_violation_not_crash_reversed_strides(self):
        # feed the stride law a deliberately nonsensical stride order by
        # checking a decreasing stride sequence against an analytic
        # function that *is* monotone: reversing the strides makes every
        # adjacent pair look like a regression, exercising the
        # violation-construction path end to end
        report = check_hit_rate_stride(strides=(512, 256, 128, 64, 8))
        assert not report.ok
        assert report.violations  # structured, not raised
        first = report.violations[0]
        assert first.law == "hit_rate_stride"
        assert "stride=" in first.left and "stride=" in first.right
        assert first.right_value > first.left_value


@dataclass
class _FakeResult:
    """The minimal result surface the engine-backed laws consume."""

    params: TuningParameters
    bandwidth_gbs: float = 1.0
    moved_bytes: int = 0
    ok: bool = True
    error: str | None = None


class TestNegativePaths:
    """Every law must fire on a deliberately broken model."""

    def test_content_invariance_fires_on_value_dependent_latency(
        self, monkeypatch
    ):
        # a model whose launch latency leaks the array *contents* — the
        # cardinal sin the law exists to catch
        def leaky(target, params, contents, *, ntimes):
            return (float(np.abs(contents["a"]).sum()),) * ntimes

        monkeypatch.setattr(metamorphic, "_device_latencies", leaky)
        report = check_content_invariance(("cpu",))
        assert not report.ok
        assert report.violations[0].law == "content_invariance"
        assert "contents=random" in report.violations[0].right

    def test_contiguous_vs_strided_fires_when_strided_wins(self, monkeypatch):
        class BrokenRunner:
            def __init__(self, target, ntimes):
                pass

            def run(self, params):
                fast = params.pattern is AccessPattern.STRIDED
                return _FakeResult(params, bandwidth_gbs=9.0 if fast else 1.0)

        monkeypatch.setattr(metamorphic, "BenchmarkRunner", BrokenRunner)
        report = check_contiguous_vs_strided(("cpu",))
        assert not report.ok
        first = report.violations[0]
        assert first.law == "contiguous_vs_strided"
        assert first.right_value > first.left_value
        assert "strided beat contiguous" in first.detail

    def test_contiguous_vs_strided_fires_on_failing_point(self, monkeypatch):
        class FailingRunner:
            def __init__(self, target, ntimes):
                pass

            def run(self, params):
                return _FakeResult(params, ok=False, error="device exploded")

        monkeypatch.setattr(metamorphic, "BenchmarkRunner", FailingRunner)
        report = check_contiguous_vs_strided(("cpu",))
        assert not report.ok
        assert "device exploded" in report.violations[0].detail

    def test_bytes_linear_fires_on_sublinear_byte_counting(self, monkeypatch):
        class SublinearRunner:
            def __init__(self, target, ntimes):
                pass

            def run(self, params):
                # bytes saturate instead of scaling with the array
                return _FakeResult(
                    params, moved_bytes=min(params.array_bytes, 20000)
                )

        monkeypatch.setattr(metamorphic, "BenchmarkRunner", SublinearRunner)
        report = check_bytes_linear(("cpu",), base_bytes=16384, factors=(2,))
        assert not report.ok
        assert report.violations[0].law == "bytes_linear"
        assert "expected exactly 2x" in report.violations[0].detail

    def test_service_time_fires_on_decreasing_service_time(self, monkeypatch):
        class BrokenHierarchy:
            # service time *falls* as stride grows: physically absurd
            def streaming_service_time(
                self, *, footprint_bytes, stride_bytes, element_bytes
            ):
                return 1.0 / stride_bytes

        monkeypatch.setattr(
            metamorphic, "_canonical_hierarchy", lambda: BrokenHierarchy()
        )
        report = check_service_time_stride(strides=(8, 16, 32))
        assert not report.ok
        assert len(report.violations) == 2  # every adjacent pair breaks
        assert report.violations[0].law == "service_time_stride"
        assert "larger stride finished faster" in report.violations[0].detail

    def test_hit_rate_stride_fires_on_increasing_hit_rate(self, monkeypatch):
        monkeypatch.setattr(
            metamorphic,
            "streaming_hit_ratio",
            lambda **kw: kw["stride_bytes"] / 1024.0,
        )
        report = check_hit_rate_stride(strides=(8, 64, 512))
        assert not report.ok
        assert report.violations[0].law == "hit_rate_stride"
        assert "larger stride hit more often" in report.violations[0].detail

    def test_hit_rate_passes_fires_when_second_pass_hits_less(
        self, monkeypatch
    ):
        monkeypatch.setattr(
            metamorphic,
            "streaming_hit_ratio",
            lambda **kw: 1.0 / kw.get("passes", 1),
        )
        report = check_hit_rate_passes(footprints=(16 * 1024,), strides=(8,))
        assert not report.ok
        assert report.violations[0].law == "hit_rate_passes"
        assert "second pass lowered" in report.violations[0].detail

    def test_broken_reports_surface_through_check_all(self, monkeypatch):
        # check_all must carry a firing law outward, not swallow it
        monkeypatch.setattr(
            metamorphic,
            "streaming_hit_ratio",
            lambda **kw: kw["stride_bytes"] / 1024.0,
        )
        reports = {r.law: r for r in metamorphic.check_all(quick=True)}
        assert not reports["hit_rate_stride"].ok
        assert reports["service_time_stride"].ok  # untouched laws still pass
