"""Metamorphic invariants: the laws hold, and violations are reported
as structured pairs of grid points rather than raised exceptions."""

import numpy as np

from repro.memsim import CacheConfig
from repro.verify.metamorphic import (
    ALL_TARGETS,
    LawReport,
    Violation,
    check_all,
    check_bytes_linear,
    check_content_invariance,
    check_contiguous_vs_strided,
    check_hit_rate_passes,
    check_hit_rate_stride,
    check_service_time_stride,
)


class TestLaws:
    def test_content_invariance_holds_on_every_target(self):
        report = check_content_invariance(ALL_TARGETS)
        assert report.ok, report.describe()
        assert report.checked == len(ALL_TARGETS)

    def test_contiguous_never_loses_to_strided(self):
        report = check_contiguous_vs_strided(ALL_TARGETS)
        assert report.ok, report.describe()

    def test_bytes_scale_linearly(self):
        report = check_bytes_linear(("cpu", "aocl"), factors=(2, 4, 8))
        assert report.ok, report.describe()
        assert report.checked == 6

    def test_service_time_monotone_in_stride(self):
        report = check_service_time_stride()
        assert report.ok, report.describe()

    def test_hit_rate_monotone_in_stride(self):
        report = check_hit_rate_stride()
        assert report.ok, report.describe()

    def test_hit_rate_monotone_in_stride_tiny_cache(self):
        report = check_hit_rate_stride(
            footprint_bytes=64 * 1024, config=CacheConfig(4 * 1024, 32, 2)
        )
        assert report.ok, report.describe()

    def test_second_pass_never_lowers_hit_rate(self):
        report = check_hit_rate_passes()
        assert report.ok, report.describe()

    def test_check_all_runs_every_law(self):
        reports = check_all(quick=True)
        assert len(reports) == 6
        assert all(isinstance(r, LawReport) for r in reports)
        assert all(r.ok for r in reports), [r.describe() for r in reports]
        assert len({r.law for r in reports}) == 6


class TestViolationReporting:
    def test_violation_names_the_offending_pair(self):
        v = Violation(
            law="hit_rate_stride",
            left="stride=8B over 262144B",
            right="stride=16B over 262144B",
            left_value=0.5,
            right_value=0.75,
            detail="larger stride hit more often",
        )
        text = v.describe()
        assert "stride=8B" in text and "stride=16B" in text
        assert "0.5" in text and "0.75" in text
        assert "larger stride hit more often" in text

    def test_law_report_describe_counts_violations(self):
        clean = LawReport(law="x", checked=3, violations=())
        assert clean.ok and "ok" in clean.describe()
        dirty = LawReport(
            law="x",
            checked=3,
            violations=(
                Violation(law="x", left="a", right="b", left_value=1, right_value=2),
            ),
        )
        assert not dirty.ok and "1 violation" in dirty.describe()

    def test_broken_model_produces_violation_not_crash(self):
        # feed the stride law a deliberately nonsensical stride order by
        # checking a decreasing stride sequence against an analytic
        # function that *is* monotone: reversing the strides makes every
        # adjacent pair look like a regression, exercising the
        # violation-construction path end to end
        report = check_hit_rate_stride(strides=(512, 256, 128, 64, 8))
        assert not report.ok
        assert report.violations  # structured, not raised
        first = report.violations[0]
        assert first.law == "hit_rate_stride"
        assert "stride=" in first.left and "stride=" in first.right
        assert first.right_value > first.left_value
