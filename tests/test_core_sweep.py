"""Design-space exploration end to end."""

from __future__ import annotations

from repro.core import (
    BenchmarkRunner,
    LoopManagement,
    ParameterSweep,
    TuningParameters,
    best_configuration,
    explore,
)
from repro.units import KIB


class TestExplore:
    def test_sweep_runs_every_point(self):
        runner = BenchmarkRunner("aocl", ntimes=1)
        sweep = ParameterSweep(
            base=TuningParameters(array_bytes=32 * KIB, loop=LoopManagement.FLAT),
            axes={"vector_width": [1, 2, 4]},
        )
        results = explore(runner, sweep)
        assert len(results) == 3
        assert all(r.ok for r in results)

    def test_progress_callback(self):
        seen = []
        runner = BenchmarkRunner("cpu", ntimes=1)
        sweep = ParameterSweep(
            base=TuningParameters(array_bytes=32 * KIB),
            axes={"vector_width": [1, 2]},
        )
        explore(runner, sweep, progress=seen.append)
        assert len(seen) == 2

    def test_failures_recorded_not_raised(self):
        runner = BenchmarkRunner("sdaccel", ntimes=1)
        sweep = ParameterSweep(
            base=TuningParameters(array_bytes=32 * KIB, loop=LoopManagement.NESTED),
            axes={"vector_width": [1, 16]},  # 16 overflows with 2 LSUs? copy fits;
        )
        results = explore(runner, sweep)
        assert len(results) == 2  # both points attempted

    def test_best_configuration_dse(self):
        """The automated-DSE loop the paper motivates: vectorization wins
        on the FPGA target."""
        runner = BenchmarkRunner("aocl", ntimes=1)
        sweep = ParameterSweep(
            base=TuningParameters(array_bytes=256 * KIB, loop=LoopManagement.FLAT),
            axes={"vector_width": [1, 4, 16]},
        )
        best, results = best_configuration(runner, sweep)
        assert best is not None
        assert best.params.vector_width == 16
        assert len(results) == 3

    def test_multi_axis_sweep(self):
        runner = BenchmarkRunner("cpu", ntimes=1)
        sweep = ParameterSweep(
            base=TuningParameters(array_bytes=32 * KIB),
            axes={
                "vector_width": [1, 4],
                "loop": [LoopManagement.NDRANGE, LoopManagement.FLAT],
            },
        )
        results = explore(runner, sweep)
        assert len(results) == 4
        best = results.best()
        assert best.params.loop is LoopManagement.NDRANGE  # CPU prefers NDRange
