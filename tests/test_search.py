"""Multi-fidelity search: the search-vs-sweep differential harness.

The headline guarantee of :mod:`repro.core.search`: on the paper's
per-device tuning grids, model-guided successive halving finds the
*exhaustive sweep's* optimum while measuring under 10% of the grid.
A search that silently finds a worse optimum is the failure mode, so
every device model gets the full differential treatment, and the
halving/promotion helpers carry hypothesis property tests for the
invariants the golden trajectories then pin end-to-end.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BenchmarkRunner,
    KernelName,
    LoopManagement,
    ParameterSweep,
    StreamLocus,
    TuningParameters,
    explore,
    multifidelity_search,
)
from repro.core.search import LowFidelityScorer, halving_widths, promote
from repro.errors import SweepError
from repro.units import KIB

#: the paper's tuning axes: kernel x loop management x vector width x
#: unroll — 90 combinations, 70 valid points per device
PAPER_AXES = {
    "kernel": [KernelName.COPY, KernelName.TRIAD],
    "loop": list(LoopManagement),
    "vector_width": [1, 2, 4, 8, 16],
    "unroll": [1, 2, 4],
}

SMALL_AXES = {
    "loop": [LoopManagement.FLAT, LoopManagement.NESTED, LoopManagement.NDRANGE],
    "vector_width": [1, 2, 4, 8],
    "unroll": [1, 2],
}

SEED = TuningParameters(array_bytes=64 * KIB)


# ---------------------------------------------------------------------------
# the differential harness: search vs exhaustive explore()
# ---------------------------------------------------------------------------


class TestSearchVsSweepDifferential:
    @pytest.mark.parametrize("target", ["cpu", "gpu", "aocl", "sdaccel"])
    def test_finds_exhaustive_optimum_under_tenth_budget(self, target):
        """The core acceptance criterion, per device model.

        One shared runner: the sweep rides the caches the search
        warmed, so the comparison is about *evaluations*, not wall
        time. Budget 6 over a 70-point pool is 8.6% of the grid.
        """
        runner = BenchmarkRunner(target, ntimes=1)
        out = multifidelity_search(runner, PAPER_AXES, seed=SEED, budget=6)
        grid = explore(runner, ParameterSweep(base=SEED, axes=PAPER_AXES))
        grid_best = grid.best()

        assert grid_best is not None and out.best.ok
        assert out.spent < 0.1 * out.pool_size, (
            f"{target}: spent {out.spent} of pool {out.pool_size}"
        )
        # same optimum — identical point, or (tie tolerance) identical
        # bandwidth to within 1e-6 relative
        if out.best.fingerprint() != grid_best.fingerprint():
            assert out.best.bandwidth_gbs == pytest.approx(
                grid_best.bandwidth_gbs, rel=1e-6
            ), (
                f"{target}: search found {out.best.params.describe()} "
                f"({out.best.bandwidth_gbs:.6f}), sweep found "
                f"{grid_best.params.describe()} "
                f"({grid_best.bandwidth_gbs:.6f})"
            )

    def test_budget_respected_and_accounted(self):
        runner = BenchmarkRunner("cpu", ntimes=1)
        out = multifidelity_search(runner, SMALL_AXES, seed=SEED, budget=4)
        assert out.spent <= 4
        assert out.evaluations_used == out.spent
        assert out.rungs[-1].spent == out.spent

    def test_rung_structure(self):
        """Rung 0 is the free model tier over the whole pool; measured
        rungs admit prefixes of the model ranking."""
        runner = BenchmarkRunner("aocl", ntimes=1)
        out = multifidelity_search(runner, SMALL_AXES, seed=SEED, budget=6)
        model = out.rungs[0]
        assert model.tier == "model"
        assert len(model.candidates) == out.pool_size
        assert model.spent == 0
        assert all(r.tier in ("measured", "refine") for r in out.rungs[1:])
        # the model ranking orders its survivors best-first
        scores = dict(zip(model.candidates, model.scores))
        ranked = [scores[key] for key in model.survivors]
        assert ranked == sorted(ranked, reverse=True)

    def test_no_admission_below_an_unadmitted_candidate(self):
        """Successive halving admits the model ranking in prefix order:
        no measured candidate was ranked strictly below a never-measured
        one by the low-fidelity tier."""
        runner = BenchmarkRunner("gpu", ntimes=1)
        out = multifidelity_search(
            runner, SMALL_AXES, seed=SEED, budget=6, refine=False
        )
        model = out.rungs[0]
        scores = dict(zip(model.candidates, model.scores))
        measured = {
            key for rung in out.rungs[1:] for key in rung.candidates
        }
        unmeasured = set(model.survivors) - measured
        if measured and unmeasured:
            worst_measured = min(scores[k] for k in measured)
            best_unmeasured = max(scores[k] for k in unmeasured)
            assert worst_measured >= best_unmeasured

    def test_trajectory_fingerprint_is_stable(self):
        runner = BenchmarkRunner("cpu", ntimes=1)
        a = multifidelity_search(runner, SMALL_AXES, seed=SEED, budget=6)
        b = multifidelity_search(runner, SMALL_AXES, seed=SEED, budget=6)
        assert a.trajectory_fingerprint() == b.trajectory_fingerprint()
        assert a.rung_fingerprints() == b.rung_fingerprints()


# ---------------------------------------------------------------------------
# validation: uniform SweepError at entry
# ---------------------------------------------------------------------------


class TestSearchValidation:
    def runner(self):
        return BenchmarkRunner("cpu", ntimes=1)

    def test_budget_below_one(self):
        with pytest.raises(SweepError, match="budget must be >= 1"):
            multifidelity_search(self.runner(), SMALL_AXES, budget=0)

    def test_eta_below_two(self):
        with pytest.raises(SweepError, match="eta must be >= 2"):
            multifidelity_search(self.runner(), SMALL_AXES, eta=1)

    def test_no_axes(self):
        with pytest.raises(SweepError, match="at least one axis"):
            multifidelity_search(self.runner(), {})

    def test_empty_axis_values(self):
        with pytest.raises(SweepError, match="has no values"):
            multifidelity_search(self.runner(), {"vector_width": []})

    def test_unknown_axis(self):
        with pytest.raises(SweepError, match="unknown sweep axes"):
            multifidelity_search(self.runner(), {"warp_size": [32]})

    def test_autotune_empty_axis_values(self):
        from repro.core import autotune

        with pytest.raises(SweepError, match="has no values"):
            autotune(self.runner(), {"vector_width": []})

    def test_host_locus_not_scorable(self):
        axes = {"locus": [StreamLocus.DEVICE, StreamLocus.HOST]}
        with pytest.raises(SweepError, match="host-locus"):
            multifidelity_search(self.runner(), axes, seed=SEED, budget=4)

    def test_model_without_lowfi_support(self, monkeypatch):
        runner = self.runner()
        monkeypatch.setattr(
            type(runner.device.model), "supports_lowfi", False
        )
        with pytest.raises(SweepError, match="supports_lowfi"):
            multifidelity_search(runner, SMALL_AXES, seed=SEED, budget=4)

    def test_scorer_rejects_unsupported_model(self, monkeypatch):
        runner = self.runner()
        monkeypatch.setattr(
            type(runner.device.model), "supports_lowfi", False
        )
        with pytest.raises(SweepError, match="low-fidelity"):
            LowFidelityScorer(runner)


# ---------------------------------------------------------------------------
# the low-fidelity tier
# ---------------------------------------------------------------------------


class TestLowFidelityScorer:
    def test_scores_match_model_ordering_currency(self):
        """Scores are GB/s: positive for buildable points, None for
        build failures, memoized per point."""
        runner = BenchmarkRunner("aocl", ntimes=1)
        scorer = LowFidelityScorer(runner)
        ok = SEED
        score = scorer.score(ok)
        assert score is not None and score > 0
        assert scorer.score(ok) == score  # memo

    def test_build_failure_scores_none(self):
        """An FPGA resource overflow in the model tier is a None score,
        not an exception — mirrors failed points in a sweep."""
        runner = BenchmarkRunner("aocl", ntimes=1)
        scorer = LowFidelityScorer(runner)
        monster = TuningParameters(
            array_bytes=64 * KIB,
            loop=LoopManagement.FLAT,
            vector_width=16,
            unroll=16,
            num_compute_units=8,
        )
        assert scorer.score(monster) is None

    def test_cached_failure_identical_to_engine_failure(self):
        """The scorer shares the engine's plan cache, so the failure it
        caches must classify exactly like an engine-run failure."""
        monster = TuningParameters(
            array_bytes=64 * KIB,
            loop=LoopManagement.FLAT,
            vector_width=16,
            unroll=16,
            num_compute_units=8,
        )
        # scorer first: poisons the shared plan cache if wrapping differs
        runner = BenchmarkRunner("aocl", ntimes=1)
        LowFidelityScorer(runner).score(monster)
        via_scorer_first = runner.run(monster)
        # fresh engine, engine first
        control = BenchmarkRunner("aocl", ntimes=1, cache=False).run(monster)
        assert not via_scorer_first.ok and not control.ok
        assert via_scorer_first.failure_kind == control.failure_kind


# ---------------------------------------------------------------------------
# hypothesis properties over the pure halving/promotion helpers
# ---------------------------------------------------------------------------


scores_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=63),
    st.one_of(st.none(), st.floats(min_value=0, max_value=1e3)),
    min_size=1,
    max_size=24,
)


class TestHalvingProperties:
    @given(scores=scores_strategy, keep=st.integers(min_value=1, max_value=24))
    @settings(max_examples=200, deadline=None)
    def test_promote_never_picks_below_an_eliminated(self, scores, keep):
        """The satellite property: promotion never keeps a candidate
        scored strictly below an eliminated one at the same rung."""
        candidates = sorted(scores)
        kept = promote(candidates, scores, keep)
        eliminated = [c for c in candidates if c not in kept]

        def rank(i):
            s = scores.get(i)
            return s if s is not None else 0.0

        for k in kept:
            for e in eliminated:
                assert not rank(k) < rank(e)

    @given(scores=scores_strategy, keep=st.integers(min_value=1, max_value=24))
    @settings(max_examples=200, deadline=None)
    def test_promote_tie_break_keeps_earlier_pool_index(self, scores, keep):
        candidates = sorted(scores)
        kept = promote(candidates, scores, keep)

        def rank(i):
            s = scores.get(i)
            return s if s is not None else 0.0

        for e in (c for c in candidates if c not in kept):
            for k in kept:
                if rank(k) == rank(e):
                    assert k < e  # equal score: earlier index survives

    @given(scores=scores_strategy, keep=st.integers(min_value=0, max_value=24))
    @settings(max_examples=100, deadline=None)
    def test_promote_is_deterministic_and_bounded(self, scores, keep):
        candidates = sorted(scores)
        a = promote(candidates, scores, keep)
        b = promote(list(reversed(candidates)), scores, keep)
        assert a == b  # input order never matters
        assert len(a) == min(keep, len(candidates))

    @given(
        budget=st.integers(min_value=1, max_value=200),
        eta=st.integers(min_value=2, max_value=5),
        pool=st.integers(min_value=1, max_value=500),
        refine=st.booleans(),
    )
    @settings(max_examples=300, deadline=None)
    def test_halving_widths_fit_the_budget(self, budget, eta, pool, refine):
        widths = halving_widths(budget, eta, pool, refine)
        assert widths, "at least one rung"
        assert widths[0] <= pool or pool == 0
        assert sum(widths) <= max(budget, 1)
        assert widths[-1] == 1
        # geometric: each tranche is the previous over eta (floored, min 1)
        for a, b in zip(widths, widths[1:]):
            assert b == max(1, a // eta)
        if refine and budget >= 2:
            # refinement held back at least one evaluation
            assert sum(widths) < budget or sum(widths) == 1


# ---------------------------------------------------------------------------
# golden trajectory corpus
# ---------------------------------------------------------------------------


class TestGoldenSearchTrajectories:
    def test_pinned_trajectories_have_no_drift(self):
        """Every pinned scenario replays to the identical rung-by-rung
        trajectory; drift is reported by name, not just failed."""
        from repro import verify as V

        pinned = V.load_corpus(V.DEFAULT_SEARCH_GOLDEN_PATH)
        current = V.compute_search_corpus()
        diff = V.diff_corpus(pinned, current, fields=V.SEARCH_COMPARED_FIELDS)
        assert diff.clean, V.format_drift(diff, pinned, current)

    def test_corpus_covers_every_target(self):
        from repro import verify as V

        pinned = V.load_corpus(V.DEFAULT_SEARCH_GOLDEN_PATH)
        targets = {e["target"] for e in pinned["entries"].values()}
        assert targets == {"cpu", "gpu", "aocl", "sdaccel"}
        for entry in pinned["entries"].values():
            assert entry["spent"] <= entry["budget"]
            assert len(entry["rung_fingerprints"]) >= 2
