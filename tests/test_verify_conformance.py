"""Differential conformance: interpreter vs reference vs device, plus
the pinned ULP tolerance policy and the seeded-random fuzz loop."""

import json

import numpy as np
import pytest

from repro.core.generator import generate
from repro.core.kernels import initial_arrays
from repro.core.params import (
    AccessPattern,
    DataType,
    KernelName,
    LoopManagement,
    TuningParameters,
)
from repro.rng import make_rng
from repro.verify import (
    INTERP_WORD_LIMIT,
    ULP_TOLERANCE,
    check_point,
    check_variants,
    interpret_point,
    max_ulp_diff,
    output_checksum,
    random_point,
    reduction_ulps,
    shrink_failure,
    ulp_diff,
    variant_grid,
    verify_device_outputs,
    within_tolerance,
)


class TestUlpDiff:
    def test_identical_arrays_are_zero_ulp(self):
        x = np.array([0.0, 1.5, -2.25, 1e300], dtype=np.float64)
        assert max_ulp_diff(x, x.copy()) == 0.0

    def test_adjacent_floats_are_one_ulp(self):
        x = np.array([1.0], dtype=np.float64)
        y = np.nextafter(x, np.inf)
        assert max_ulp_diff(x, y) == 1.0
        assert max_ulp_diff(y, x) == 1.0

    def test_signed_zero_coincides(self):
        neg = np.array([-0.0], dtype=np.float64)
        pos = np.array([0.0], dtype=np.float64)
        assert max_ulp_diff(neg, pos) == 0.0

    def test_crossing_zero_counts_both_sides(self):
        x = np.array([np.nextafter(0.0, -1.0)], dtype=np.float64)
        y = np.array([np.nextafter(0.0, 1.0)], dtype=np.float64)
        assert max_ulp_diff(x, y) == 2.0

    def test_float32_supported(self):
        x = np.array([1.0], dtype=np.float32)
        y = np.nextafter(x, np.float32(np.inf))
        assert max_ulp_diff(x, y) == 1.0

    def test_integer_dtype_is_absolute_difference(self):
        x = np.array([5, -3], dtype=np.int32)
        y = np.array([5, -1], dtype=np.int32)
        assert max_ulp_diff(x, y) == 2.0

    def test_matching_nans_are_zero_one_sided_nan_is_inf(self):
        both = np.array([np.nan], dtype=np.float64)
        assert max_ulp_diff(both, both.copy()) == 0.0
        one = np.array([1.0], dtype=np.float64)
        assert max_ulp_diff(both, one) == np.inf

    def test_dtype_mismatch_rejected(self):
        with pytest.raises(ValueError, match="dtype mismatch"):
            ulp_diff(
                np.zeros(2, dtype=np.float32), np.zeros(2, dtype=np.float64)
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            ulp_diff(
                np.zeros(2, dtype=np.float64), np.zeros(3, dtype=np.float64)
            )

    def test_within_tolerance_applies_pinned_budget(self):
        x = np.array([1.0], dtype=np.float64)
        drifted = x.copy()
        for _ in range(ULP_TOLERANCE[DataType.DOUBLE] + 1):
            drifted = np.nextafter(drifted, np.inf)
        ok, worst = within_tolerance(DataType.DOUBLE, x, x.copy())
        assert ok and worst == 0.0
        ok, worst = within_tolerance(DataType.DOUBLE, drifted, x)
        assert not ok and worst == ULP_TOLERANCE[DataType.DOUBLE] + 1

    def test_int_budget_is_exactness(self):
        assert ULP_TOLERANCE[DataType.INT] == 0

    def test_reduction_budget_scales_with_terms_and_has_floor(self):
        assert reduction_ulps(1) == 8
        assert reduction_ulps(1024) == 2048


class TestCheckPoint:
    @pytest.mark.parametrize("kernel", list(KernelName))
    @pytest.mark.parametrize("dtype", list(DataType))
    def test_every_kernel_dtype_conforms(self, kernel, dtype):
        verdict = check_point(
            TuningParameters(kernel=kernel, dtype=dtype, array_bytes=2048)
        )
        assert verdict.ok, verdict.describe()
        assert verdict.max_ulp == 0.0  # interpreter matches numpy bitwise today

    def test_strided_and_unrolled_variants_conform(self):
        verdict = check_point(
            TuningParameters(
                kernel=KernelName.TRIAD,
                dtype=DataType.DOUBLE,
                array_bytes=2048,
                pattern=AccessPattern.STRIDED,
                loop=LoopManagement.FLAT,
                unroll=4,
            )
        )
        assert verdict.ok, verdict.describe()

    def test_checksum_is_content_sensitive(self):
        params = TuningParameters(array_bytes=1024)
        out = interpret_point(params)
        base = output_checksum(out)
        out["c"][3] += 1
        assert output_checksum(out) != base

    def test_checksum_is_dtype_sensitive(self):
        a = {n: np.zeros(4, dtype=np.int32) for n in ("a", "b", "c")}
        b = {n: np.zeros(4, dtype=np.float32) for n in ("a", "b", "c")}
        assert output_checksum(a) != output_checksum(b)


class TestVariantConformance:
    def test_variant_grid_covers_loops_widths_and_patterns(self):
        points = variant_grid(KernelName.COPY, DataType.INT, 4096)
        assert len(points) >= 10
        assert {p.loop for p in points} == set(LoopManagement)
        assert {p.vector_width for p in points} >= {1, 2, 4, 8}
        assert AccessPattern.STRIDED in {p.pattern for p in points}

    @pytest.mark.parametrize("dtype", [DataType.INT, DataType.DOUBLE])
    def test_all_variants_agree(self, dtype):
        report = check_variants(KernelName.TRIAD, dtype, 4096)
        assert report.ok, report.describe()
        assert report.agree
        # unanimity means one checksum across every variant
        assert len({v.checksum for v in report.verdicts}) == 1


class TestVerifyDeviceOutputs:
    def _observed(self, params):
        initial = initial_arrays(params.word_count, params.dtype)
        return generate(params), interpret_point(params, initial=initial)

    def test_clean_point_passes_differential_mode(self):
        params = TuningParameters(
            kernel=KernelName.SCALE, dtype=DataType.DOUBLE, array_bytes=2048
        )
        gen, observed = self._observed(params)
        verdict = verify_device_outputs(params, gen, observed)
        assert verdict["ok"] and verdict["mode"] == "differential"
        assert verdict["error"] == ""

    def test_large_point_uses_reference_mode(self):
        params = TuningParameters(array_bytes=(INTERP_WORD_LIMIT + 1) * 4)
        gen = generate(params)
        initial = initial_arrays(params.word_count, params.dtype)
        observed = {"a": initial["a"], "b": initial["b"], "c": initial["a"].copy()}
        verdict = verify_device_outputs(params, gen, observed)
        assert verdict["ok"] and verdict["mode"] == "reference"

    def test_corrupted_device_output_is_flagged(self):
        params = TuningParameters(
            kernel=KernelName.ADD, dtype=DataType.INT, array_bytes=2048
        )
        gen, observed = self._observed(params)
        observed["c"][7] ^= 1
        verdict = verify_device_outputs(params, gen, observed)
        assert not verdict["ok"]
        assert "device array" in verdict["error"]

    def test_miscompile_hook_corrupts_derived_side(self):
        params = TuningParameters(array_bytes=2048)
        gen, observed = self._observed(params)

        def corrupt(arrays):
            arrays["c"][0] ^= np.int32(255)
            return True

        verdict = verify_device_outputs(params, gen, observed, corrupt=corrupt)
        assert not verdict["ok"] and verdict["corrupted"]

    def test_verdict_is_deterministic_json(self):
        params = TuningParameters(array_bytes=2048)
        gen, observed = self._observed(params)
        a = verify_device_outputs(params, gen, observed)
        b = verify_device_outputs(params, gen, observed)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        # every value survives a JSON round trip unchanged
        assert json.loads(json.dumps(a)) == a


class TestFuzz:
    pytestmark = pytest.mark.slow

    def test_seeded_random_points_all_conform(self):
        rng = make_rng(2024)
        for _ in range(25):
            params = random_point(rng)
            verdict = check_point(params)
            if not verdict.ok:  # pragma: no cover - only on regression
                shrunk = shrink_failure(
                    params, lambda p: not check_point(p).ok
                )
                pytest.fail(
                    "conformance fuzz failure; offending ParamPoint "
                    f"(shrunk): {shrunk.describe()!r} "
                    f"from {params.describe()!r}: {verdict.describe()}"
                )

    def test_random_points_are_always_valid(self):
        rng = make_rng(7)
        for _ in range(50):
            random_point(rng)  # TuningParameters validates on construction

    def test_shrink_reaches_minimal_point_when_everything_fails(self):
        start = TuningParameters(
            kernel=KernelName.TRIAD,
            dtype=DataType.DOUBLE,
            array_bytes=16384,
            vector_width=8,
            pattern=AccessPattern.STRIDED,
            loop=LoopManagement.FLAT,
            unroll=4,
            use_vload=True,
        )
        shrunk = shrink_failure(start, lambda p: True)
        assert shrunk.array_bytes == 1024
        assert shrunk.vector_width == 1
        assert shrunk.unroll == 1
        assert shrunk.pattern is AccessPattern.CONTIGUOUS
        assert shrunk.loop is LoopManagement.NDRANGE
        assert not shrunk.use_vload

    def test_shrink_preserves_the_failing_property(self):
        start = TuningParameters(
            kernel=KernelName.TRIAD,
            dtype=DataType.DOUBLE,
            array_bytes=8192,
            vector_width=4,
            loop=LoopManagement.FLAT,
            unroll=2,
        )
        # a "bug" that only reproduces on FLAT loops: the shrink must
        # simplify everything else but keep the loop mode
        shrunk = shrink_failure(start, lambda p: p.loop is LoopManagement.FLAT)
        assert shrunk.loop is LoopManagement.FLAT
        assert shrunk.array_bytes == 1024
        assert shrunk.vector_width == 1

    def test_shrink_skips_invalid_intermediate_combinations(self):
        start = TuningParameters(
            loop=LoopManagement.NESTED, unroll=4, array_bytes=4096
        )
        shrunk = shrink_failure(start, lambda p: p.unroll == 4)
        # unroll=4 must survive, which rules out the NDRANGE step
        # (NDRange kernels cannot unroll)
        assert shrunk.unroll == 4
        assert shrunk.loop is not LoopManagement.NDRANGE
