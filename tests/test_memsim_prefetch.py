"""Stride-prefetcher simulation: validating the CPU model's assumption."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidValueError
from repro.memsim.access import (
    column_major_stream,
    contiguous_stream,
    strided_stream,
    to_byte_addresses,
)
from repro.memsim.prefetch import PrefetcherConfig, StridePrefetcher


def run(addresses, **cfg):
    return StridePrefetcher(PrefetcherConfig(**cfg)).run(addresses)


class TestUnitStride:
    def test_contiguous_high_coverage(self):
        trace = to_byte_addresses(contiguous_stream(16384), 4)
        stats = run(trace)
        assert stats.coverage > 0.9
        assert stats.accuracy > 0.9

    def test_small_stride_trains(self):
        trace = to_byte_addresses(strided_stream(4096, 4), 4)  # 16B stride
        stats = run(trace)
        assert stats.coverage > 0.8

    def test_descending_stream_trains(self):
        trace = to_byte_addresses(contiguous_stream(4096), 4)[::-1].copy()
        stats = run(trace)
        assert stats.coverage > 0.8


class TestDefeat:
    def test_column_walk_defeats_prefetcher(self):
        """The paper's strided pattern: 4 KiB-class strides never train
        (each access lands on a different page)."""
        trace = to_byte_addresses(column_major_stream(1024, 1024), 4)
        stats = run(trace[:16384])
        assert stats.coverage < 0.05

    def test_random_accesses_defeat_prefetcher(self):
        rng = np.random.default_rng(3)
        trace = rng.integers(0, 1 << 28, 8192) * 64
        stats = run(trace)
        assert stats.coverage < 0.05

    def test_page_boundary_not_crossed(self):
        # a trained stream at the end of a page must not prefetch beyond
        trace = to_byte_addresses(contiguous_stream(64, start=960), 4)
        pf = StridePrefetcher()
        pf.run(trace)  # bytes 3840..4096: the last lines of page 0
        pages = {(ln * 64) // 4096 for ln in pf._prefetched}
        assert pages <= {0}


class TestMechanics:
    def test_training_threshold(self):
        # only two accesses: not yet trained -> nothing prefetched
        trace = to_byte_addresses(contiguous_stream(2), 4)
        pf = StridePrefetcher()
        stats = pf.run(trace)
        assert stats.issued == 0

    def test_table_eviction_limits_tracking(self):
        """Touching more pages than the table tracks round-robin evicts
        entries, so a huge multi-stream workload trains poorly."""
        streams = [
            to_byte_addresses(contiguous_stream(4, start=p * 1024), 4)
            for p in range(64)
        ]
        interleaved = np.stack(streams, axis=1).reshape(-1)
        stats = run(interleaved, table_entries=4)
        small = stats.coverage
        stats_big = run(interleaved, table_entries=64)
        assert stats_big.coverage >= small

    def test_invalid_config(self):
        with pytest.raises(InvalidValueError):
            PrefetcherConfig(degree=0)
        with pytest.raises(InvalidValueError):
            PrefetcherConfig(train_threshold=0)

    def test_stats_consistency(self):
        trace = to_byte_addresses(contiguous_stream(1000), 4)
        stats = run(trace)
        assert stats.accesses == 1000
        assert 0 <= stats.covered <= stats.demand_lines
        assert 0.0 <= stats.coverage <= 1.0
        assert 0.0 <= stats.accuracy <= 1.0


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(64, 2048),
    stride_words=st.sampled_from([1, 2, 4, 16, 1024, 4096]),
)
def test_coverage_justifies_cpu_model_split(n, stride_words):
    """Property behind the CPU model: sub-page strides are prefetchable,
    page-plus strides are not."""
    trace = to_byte_addresses(strided_stream(n, stride_words), 4)
    stats = run(trace)
    stride_bytes = stride_words * 4
    if stride_bytes <= 64:
        assert stats.coverage > 0.5
    elif stride_bytes >= 4096:
        assert stats.coverage < 0.1
