"""Property-based scheduling invariants for command queues (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ocl import CommandQueue, Context
from repro.ocl.platform import find_device


@st.composite
def command_dags(draw):
    """A random sequence of transfers with random backward dependencies."""
    n = draw(st.integers(2, 12))
    ops = []
    for i in range(n):
        direction = draw(st.sampled_from(["h2d", "d2h"]))
        nbytes = draw(st.sampled_from([4096, 65536, 1 << 20]))
        deps = draw(
            st.lists(st.integers(0, i - 1), max_size=min(3, i), unique=True)
            if i
            else st.just([])
        )
        ops.append((direction, nbytes, deps))
    return ops


def run_dag(ops, out_of_order):
    device = find_device("gpu")
    ctx = Context(device)
    q = CommandQueue(ctx, device, out_of_order=out_of_order)
    buf = ctx.create_buffer(size=1 << 20)
    events = []
    for direction, nbytes, deps in ops:
        arr = np.zeros(nbytes // 4, dtype=np.int32)
        wait = [events[d] for d in deps] or None
        if direction == "h2d":
            ev = q.enqueue_write_buffer(buf, arr, wait_for=wait)
        else:
            ev = q.enqueue_read_buffer(buf, arr, wait_for=wait)
        events.append(ev)
    return q, events


@settings(max_examples=40, deadline=None)
@given(command_dags())
def test_dependencies_respected(ops):
    """No command starts before all of its wait-list events complete."""
    _, events = run_dag(ops, out_of_order=True)
    for (direction, nbytes, deps), ev in zip(ops, events):
        for d in deps:
            assert ev.start >= events[d].end - 1e-15


@settings(max_examples=40, deadline=None)
@given(command_dags())
def test_engines_serialize(ops):
    """Commands on one engine never overlap each other."""
    _, events = run_dag(ops, out_of_order=True)
    by_engine: dict[str, list] = {"h2d": [], "d2h": []}
    for (direction, _, _), ev in zip(ops, events):
        by_engine[direction].append(ev)
    for engine_events in by_engine.values():
        for first, second in zip(engine_events, engine_events[1:]):
            assert second.start >= first.end - 1e-15


@settings(max_examples=40, deadline=None)
@given(command_dags())
def test_timestamps_well_formed(ops):
    for _, ev in zip(ops, run_dag(ops, out_of_order=True)[1]):
        prof = ev.profile()
        assert prof["queued"] <= prof["submit"] <= prof["start"] <= prof["end"]


@settings(max_examples=30, deadline=None)
@given(command_dags())
def test_in_order_is_never_faster_with_same_commands(ops):
    """Out-of-order completion time <= in-order completion time."""
    q_in, _ = run_dag(ops, out_of_order=False)
    q_ooo, _ = run_dag(ops, out_of_order=True)
    assert q_ooo.finish() <= q_in.finish() + 1e-15


@settings(max_examples=30, deadline=None)
@given(command_dags())
def test_in_order_equals_sum_of_durations(ops):
    """In-order queues fully serialize: completion = sum of durations."""
    q, events = run_dag(ops, out_of_order=False)
    total = sum(ev.duration for ev in events)
    assert q.finish() == pytest.approx(total, rel=1e-9)
