"""Pretty-printer coverage: every node shape prints and reparses."""

from __future__ import annotations

import pytest

from repro.oclc import compile_source, parse, to_source
from repro.oclc import cast

ROUND_TRIP_SOURCES = [
    # while / break / continue
    """
__kernel void k(__global int *a) {
    int i = 0;
    while (i < 10) {
        i++;
        if (i == 3) continue;
        if (i == 7) break;
        a[i] = i;
    }
}
""",
    # conditional expression and compound assignment
    """
__kernel void k(__global int *a) {
    size_t i = get_global_id(0);
    a[i] = a[i] > 0 ? a[i] : -a[i];
    a[i] += 2;
    a[i] <<= 1;
}
""",
    # vector literals, swizzles, casts
    """
__kernel void k(__global int4 *a, __global double *d) {
    int4 v = (int4)(1, 2, 3, 4);
    v.s01 = v.hi;
    a[0] = v * (int4)(2);
    d[0] = (double)v.x;
}
""",
    # attributes and unroll pragma
    """
__kernel __attribute__((reqd_work_group_size(64, 1, 1))) __attribute__((num_simd_work_items(4)))
void k(__global const int *a, __global int *c) {
    size_t i = get_global_id(0);
    c[i] = a[i];
}
""",
    # helper function with return value
    """
int helper(const int x) {
    return x * 2 + 1;
}
__kernel void k(__global int *a) {
    a[0] = helper(a[1]);
}
""",
    # vload/vstore calls
    """
__kernel void k(__global const int *a, __global int *c) {
    size_t i = get_global_id(0);
    vstore4(vload4(i, a), i, c);
}
""",
    # unroll pragma on inner loop of a nest
    """
__kernel void k(__global int *c) {
    for (int i = 0; i < 4; i++) {
#pragma unroll 2
        for (int j = 0; j < 8; j++) {
            c[i * 8 + j] = i + j;
        }
    }
}
""",
]


@pytest.mark.parametrize("src", ROUND_TRIP_SOURCES, ids=range(len(ROUND_TRIP_SOURCES)))
def test_print_reparse_fixed_point(src):
    unit = parse(src)
    printed = to_source(unit)
    reparsed = parse(printed)
    assert to_source(reparsed) == printed
    # the printed form is valid input for the whole front-end
    compile_source(printed)


def test_precedence_parenthesization():
    unit = parse(
        "__kernel void k(__global int *a) { a[0] = (1 + 2) * (3 - 4); }"
    )
    text = to_source(unit)
    assert "(1 + 2) * (3 - 4)" in text


def test_right_associative_nesting_preserved():
    unit = parse("__kernel void k(__global int *a) { a[0] = 8 - (4 - 2); }")
    text = to_source(unit)
    reparsed = parse(text)
    # evaluating both trees must agree (8 - (4-2)) = 6, not (8-4)-2 = 2
    import numpy as np

    from repro.oclc import BufferArg, run_kernel
    from repro.oclc.semantic import check

    for u in (unit, reparsed):
        out = np.zeros(1, dtype=np.int32)
        run_kernel(check(u), "k", (1,), {"a": BufferArg(out)})
        assert out[0] == 6


def test_unroll_pragma_printed():
    unit = parse(
        "__kernel void k(__global int *a) {\n#pragma unroll 4\n"
        "for (int i = 0; i < 8; i++) a[i] = i; }"
    )
    assert "#pragma unroll 4" in to_source(unit)


def test_standalone_pragma_statement():
    stmt = cast.Pragma("ivdep", line=1)
    assert "ivdep" in to_source(stmt)


def test_empty_kernel_prints():
    unit = parse("__kernel void k(__global int *a) { }")
    assert "{" in to_source(unit)
    parse(to_source(unit))
