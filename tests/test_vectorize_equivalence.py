"""Differential gate for the whole-NDRange vectorized execution lane.

One kernel semantics, three drivers: the work-item interpreter
(``repro.oclc.interp``, the oracle), the compiled scalar lane
(``repro.oclc.compile``) and the vectorized whole-array lane
(``repro.oclc.vectorize``). The acceptance criterion throughout this
file is *bitwise* identity — ``output_checksum`` hashes raw array
bytes and :meth:`RunResult.fingerprint` hashes the full result row —
never tolerance-based closeness. The array lane either produces the
exact same bits as the other two lanes or it must refuse the kernel
with :class:`UnsupportedKernelError` (which the queue turns into a
silent per-kernel fallback); silent divergence is the one outcome
these tests exist to make impossible.

Covers: the full 13-variant conformance grid x 4 kernels x 3 dtypes,
ragged tails (sizes that leave unroll/nested-loop remainders), the
grid-point-stacked batch path (``VectorKernel.run_batch`` and
``ExecutionEngine.run_batch``), lane selection/fallback plumbing,
hypothesis fuzzing with greedy shrinking, golden-corpus pinning, and
the ``vectorize`` fault site's negative path on all three scheduler
backends.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import explore
from repro.core.engine import ExecutionEngine
from repro.core.generator import generate
from repro.core.history import point_fingerprint
from repro.core.kernels import KERNELS, SCALAR_Q, initial_arrays
from repro.core.params import (
    AccessPattern,
    DataType,
    KernelName,
    LoopManagement,
    TuningParameters,
)
from repro.core.runner import BenchmarkRunner
from repro.core.sweep import ParameterSweep
from repro.errors import (
    BenchmarkError,
    SweepError,
    UnsupportedKernelError,
)
from repro.faults import FAULT_SITES, FaultPlan, FaultSpec
from repro.obs import metrics as obs_metrics
from repro.ocl.queue import EXEC_LANES
from repro.oclc import (
    VectorKernel,
    compile_kernel,
    compile_source_cached,
    vectorize_kernel,
)
from repro.oclc.interp import BufferArg
from repro.verify.conformance import (
    _VARIANT_AXES,
    interpret_point,
    output_checksum,
    random_point,
    shrink_failure,
    variant_grid,
)
from repro.verify.golden import DEFAULT_GOLDEN_PATH, corpus_grid, load_corpus
from repro.units import KIB

ARRAY_BYTES = 4096
ALL_KERNELS = tuple(KernelName)
ALL_DTYPES = tuple(DataType)


def _run_lane(params: TuningParameters, factory) -> dict[str, np.ndarray]:
    """Run one point through a driver factory on fresh STREAM arrays."""
    gen = generate(params)
    checked = compile_source_cached(
        gen.source, {k: str(v) for k, v in gen.defines.items()}
    )
    initial = initial_arrays(params.word_count, params.dtype)
    arrays = {name: initial[name].copy() for name in ("a", "b", "c")}
    spec = KERNELS[params.kernel]
    call = {name: BufferArg(arrays[name]) for name in (*spec.reads, spec.writes)}
    if spec.uses_scalar:
        call["q"] = SCALAR_Q
    factory(checked, gen.kernel_name).run(gen.global_size, call, gen.local_size)
    return arrays


def _checksum(params: TuningParameters, factory) -> str:
    return output_checksum(_run_lane(params, factory))


# -- full conformance grid: vectorized == compiled, bit for bit ---------------


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.value)
@pytest.mark.parametrize("dtype", ALL_DTYPES, ids=lambda d: d.value)
def test_vectorized_matches_compiled_full_grid(kernel, dtype):
    """Every conformance variant vectorizes — no fallback — bit-exactly."""
    points = variant_grid(kernel, dtype, ARRAY_BYTES)
    assert len(points) == len(_VARIANT_AXES)
    for params in points:
        # the conformance grid is the supported envelope: a refusal
        # here is a regression in the eligibility gate, not a fallback
        got = _checksum(params, vectorize_kernel)
        want = _checksum(params, compile_kernel)
        assert got == want, params.describe()


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.value)
def test_vectorized_matches_interpreter_subset(kernel):
    """Tier-1 oracle leg: a representative slice against the interpreter."""
    for dtype in (DataType.INT, DataType.DOUBLE):
        for params in variant_grid(kernel, dtype, ARRAY_BYTES)[::4]:
            got = _checksum(params, vectorize_kernel)
            want = output_checksum(interpret_point(params))
            assert got == want, params.describe()


@pytest.mark.slow
@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.value)
@pytest.mark.parametrize("dtype", ALL_DTYPES, ids=lambda d: d.value)
def test_vectorized_matches_interpreter_full_grid(kernel, dtype):
    """The full three-lane cross (interpreter leg is slow: --runslow)."""
    for params in variant_grid(kernel, dtype, ARRAY_BYTES):
        interp = output_checksum(interpret_point(params))
        assert _checksum(params, vectorize_kernel) == interp, params.describe()
        assert _checksum(params, compile_kernel) == interp, params.describe()


# -- ragged tails -------------------------------------------------------------

#: sizes chosen so the generated loops carry remainders: unroll factors
#: that do not divide the trip count, nested loops over awkward totals,
#: strided re-indexing, and an odd element count at width 8
RAGGED_VARIANTS = (
    dict(array_bytes=1020, loop=LoopManagement.FLAT, unroll=4),
    dict(array_bytes=1008, vector_width=4, loop=LoopManagement.FLAT, unroll=2),
    dict(array_bytes=1016, vector_width=2, loop=LoopManagement.NESTED),
    dict(array_bytes=1012, loop=LoopManagement.NESTED, unroll=2),
    dict(array_bytes=1020, pattern=AccessPattern.STRIDED, loop=LoopManagement.FLAT),
    dict(
        array_bytes=1056,
        vector_width=8,
        use_vload=True,
        loop=LoopManagement.NDRANGE,
    ),
)


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.value)
def test_ragged_tails_bit_identical(kernel):
    for changes in RAGGED_VARIANTS:
        params = TuningParameters(
            kernel=kernel, dtype=DataType.FLOAT, **changes
        )
        got = _checksum(params, vectorize_kernel)
        assert got == _checksum(params, compile_kernel), params.describe()


# -- batch path: stacked grid points == one-at-a-time -------------------------


def _batch_fixture(params: TuningParameters, n: int):
    """(kernel, gen, n calls with distinct initial arrays, copies)."""
    gen = generate(params)
    checked = compile_source_cached(
        gen.source, {k: str(v) for k, v in gen.defines.items()}
    )
    vk = vectorize_kernel(checked, gen.kernel_name)
    assert isinstance(vk, VectorKernel)
    spec = KERNELS[params.kernel]
    rng = np.random.default_rng(17)
    calls, mirrors = [], []
    for _ in range(n):
        base = initial_arrays(params.word_count, params.dtype)
        arrays = {
            name: (base[name] + rng.integers(1, 5)).astype(base[name].dtype)
            for name in ("a", "b", "c")
        }
        mirrors.append({name: arr.copy() for name, arr in arrays.items()})
        call = {
            name: BufferArg(arrays[name]) for name in (*spec.reads, spec.writes)
        }
        if spec.uses_scalar:
            call["q"] = SCALAR_Q
        calls.append((arrays, call))
    return gen, vk, spec, calls, mirrors


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.value)
def test_run_batch_matches_per_run(kernel):
    params = TuningParameters(
        kernel=kernel, array_bytes=ARRAY_BYTES, vector_width=4
    )
    gen, vk, spec, calls, mirrors = _batch_fixture(params, 4)
    vk.run_batch(gen.global_size, [c for _, c in calls], gen.local_size)
    for (arrays, _), mirror in zip(calls, mirrors):
        call = {
            name: BufferArg(mirror[name]) for name in (*spec.reads, spec.writes)
        }
        if spec.uses_scalar:
            call["q"] = SCALAR_Q
        vk.run(gen.global_size, call, gen.local_size)
        for name in ("a", "b", "c"):
            assert np.array_equal(arrays[name], mirror[name]), (
                f"{kernel.value}: batched {name} diverges from per-run"
            )


def test_run_batch_refuses_mixed_shapes():
    params = TuningParameters(array_bytes=ARRAY_BYTES)
    gen, vk, spec, calls, _ = _batch_fixture(params, 2)
    small = initial_arrays(params.word_count // 2, params.dtype)
    calls[1][1]["a"] = BufferArg(small["a"])
    with pytest.raises(UnsupportedKernelError, match="shape"):
        vk.run_batch(gen.global_size, [c for _, c in calls], gen.local_size)


def test_run_batch_refuses_mixed_scalars():
    params = TuningParameters(kernel=KernelName.TRIAD, array_bytes=ARRAY_BYTES)
    gen, vk, spec, calls, _ = _batch_fixture(params, 2)
    calls[1][1]["q"] = SCALAR_Q + 1
    with pytest.raises(UnsupportedKernelError, match="scalar"):
        vk.run_batch(gen.global_size, [c for _, c in calls], gen.local_size)


def test_run_batch_single_and_empty_degenerate():
    params = TuningParameters(array_bytes=ARRAY_BYTES)
    gen, vk, spec, calls, mirrors = _batch_fixture(params, 1)
    vk.run_batch(gen.global_size, [])  # no-op
    vk.run_batch(gen.global_size, [calls[0][1]], gen.local_size)
    call = {
        name: BufferArg(mirrors[0][name]) for name in (*spec.reads, spec.writes)
    }
    vk.run(gen.global_size, call, gen.local_size)
    for name in ("a", "b", "c"):
        assert np.array_equal(calls[0][0][name], mirrors[0][name])


# -- engine + scheduler integration -------------------------------------------

#: a batchable slot: the simd attribute changes the device build but
#: not the kernel body, so all three points share one batch signature
BATCH_POINTS = [
    TuningParameters(
        array_bytes=64 * KIB, reqd_work_group_size=64, num_simd_work_items=s
    )
    for s in (1, 2, 4)
]


def _engine(**kw) -> ExecutionEngine:
    kw.setdefault("ntimes", 2)
    return ExecutionEngine("cpu", **kw)


class TestEngineLanes:
    def test_fingerprints_identical_across_exec_lanes(self):
        params = TuningParameters(array_bytes=64 * KIB, vector_width=4)
        prints = {
            lane: _engine(exec_lane=lane).run(params).fingerprint()
            for lane in EXEC_LANES
        }
        assert len(set(prints.values())) == 1, prints

    def test_unknown_lane_rejected(self):
        with pytest.raises(BenchmarkError, match="exec_lane"):
            _engine(exec_lane="simd")
        with pytest.raises(BenchmarkError, match="exec_lane"):
            BenchmarkRunner("cpu", exec_lane="turbo")

    def test_run_batch_matches_run_fingerprints(self):
        reg = obs_metrics.MetricsRegistry()
        with obs_metrics.use_registry(reg):
            batched = ExecutionEngine("aocl", ntimes=2).run_batch(BATCH_POINTS)
        single = [
            ExecutionEngine("aocl", ntimes=2).run(p) for p in BATCH_POINTS
        ]
        assert [r.fingerprint() for r in batched] == [
            r.fingerprint() for r in single
        ]
        counters = reg.snapshot()["counters"]
        assert counters.get("engine.batched_points", 0) == len(BATCH_POINTS)
        assert counters.get("fastpath.runs.primed", 0) > 0

    def test_run_batch_heterogeneous_points_still_identical(self):
        # differing kernels / dtypes split into singleton groups: no
        # priming happens, results still match the unbatched path
        points = [
            TuningParameters(array_bytes=32 * KIB),
            TuningParameters(
                array_bytes=32 * KIB, kernel=KernelName.TRIAD
            ),
            TuningParameters(array_bytes=32 * KIB, dtype=DataType.DOUBLE),
        ]
        batched = _engine().run_batch(points)
        single = [_engine().run(p) for p in points]
        assert [r.fingerprint() for r in batched] == [
            r.fingerprint() for r in single
        ]

    def test_run_batch_respects_compiled_lane_opt_out(self):
        # exec_lane="compiled" opts out of the array lane, so batching
        # must quietly degrade to the per-point path
        engine = ExecutionEngine("aocl", ntimes=2, exec_lane="compiled")
        reg = obs_metrics.MetricsRegistry()
        with obs_metrics.use_registry(reg):
            batched = engine.run_batch(BATCH_POINTS)
        assert all(r.ok for r in batched)
        assert "engine.batched_points" not in reg.snapshot()["counters"]


class TestSlotBatchScheduler:
    def _sweep(self):
        return ParameterSweep(
            base=TuningParameters(array_bytes=32 * KIB),
            axes={"vector_width": [1, 2, 4], "array_bytes": [32 * KIB, 64 * KIB]},
        )

    def test_slot_batched_sweep_fingerprint_identical(self):
        plain = explore(_engine(ntimes=1), self._sweep())
        batched = explore(_engine(ntimes=1), self._sweep(), slot_batch=4)
        assert len(plain) == len(batched) == 6
        assert [r.fingerprint() for r in plain] == [
            r.fingerprint() for r in batched
        ]

    def test_slot_batch_validated(self):
        with pytest.raises(SweepError, match="slot_batch"):
            explore(_engine(ntimes=1), self._sweep(), slot_batch=0)


# -- hypothesis: vectorize exactly or refuse loudly ---------------------------


def _vectorize_diverges(params: TuningParameters) -> bool:
    """True when the array lane silently produces different bits."""
    try:
        got = _checksum(params, vectorize_kernel)
    except UnsupportedKernelError:
        return False  # a loud refusal is the allowed escape hatch
    return got != _checksum(params, compile_kernel)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_random_points_vectorize_exactly_or_refuse(seed):
    params = random_point(np.random.default_rng(seed), max_bytes=4096)
    if _vectorize_diverges(params):
        shrunk = shrink_failure(params, _vectorize_diverges)
        pytest.fail(
            f"array lane silently diverged; shrunk repro: {shrunk.describe()}"
        )


@pytest.mark.slow
@settings(max_examples=250, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_random_points_vectorize_exactly_or_refuse_deep(seed):
    params = random_point(np.random.default_rng(seed), max_bytes=16384)
    if _vectorize_diverges(params):
        shrunk = shrink_failure(params, _vectorize_diverges)
        pytest.fail(
            f"array lane silently diverged; shrunk repro: {shrunk.describe()}"
        )


# -- golden corpus pinning ----------------------------------------------------


def test_vectorized_outputs_match_golden_corpus():
    """The array lane reproduces every pinned interpreter checksum.

    The corpus pins ``output_sha`` per (target, point); divergence the
    fuzz loop might one day find gets pinned here by the resulting
    corpus diff, so a behavioural change cannot land silently.
    """
    corpus = load_corpus(DEFAULT_GOLDEN_PATH)["entries"]
    checked_entries = 0
    for target, params in corpus_grid():
        entry = corpus.get(point_fingerprint(target, params))
        if entry is None:  # corpus grid drifted: the golden test owns that
            continue
        assert _checksum(params, vectorize_kernel) == entry["output_sha"], (
            f"{target} {params.describe()}"
        )
        checked_entries += 1
    assert checked_entries >= 16


# -- negative path: the vectorize fault site ----------------------------------

SMALL = TuningParameters(array_bytes=16 * KIB)


class TestVectorizeFaultSite:
    def test_site_registered(self):
        assert "vectorize" in FAULT_SITES
        spec = FaultSpec.parse("vectorize=0.5,seed=3")
        assert dict(spec.rates) == {"vectorize": 0.5}

    def test_corruption_deterministic_and_single_word(self):
        plan = FaultPlan.parse("vectorize=0.5,seed=21")
        draws = []
        for i in range(20):
            arrays = {n: np.ones(16, dtype=np.int32) for n in ("a", "b", "c")}
            fired = plan.corrupt_vectorize(f"k{i}", 0, arrays)
            flipped = sum(int((arrays[n] != 1).sum()) for n in arrays)
            assert flipped == (1 if fired else 0)
            draws.append(fired)
        assert any(draws) and not all(draws)
        replay = FaultPlan.parse("vectorize=0.5,seed=21")
        assert draws == [
            replay.corrupt_vectorize(
                f"k{i}", 0, {n: np.ones(16, dtype=np.int32) for n in ("a", "b", "c")}
            )
            for i in range(20)
        ]

    def test_array_lane_miscompile_caught_by_verify_only(self):
        # validation passed before the corruption fires, so only the
        # strict differential verify stage can catch it — as a
        # permanent verify_mismatch, with no retry budget burned
        plan = FaultPlan.parse("vectorize=1.0,seed=7")
        engine = _engine(ntimes=1, verify=True, validate=True, faults=plan)
        result = engine.run(SMALL)
        assert not result.ok
        assert result.failure_kind == "verify_mismatch"
        assert result.detail["engine"]["attempts"] == 1

    def test_unverified_run_lets_corruption_through(self):
        # documents why the verify stage gates the array lane: without
        # it the below-tolerance flip sails through validation
        plan = FaultPlan.parse("vectorize=1.0,seed=7")
        result = _engine(ntimes=1, verify=False, faults=plan).run(SMALL)
        assert result.ok

    def test_surfaces_identically_on_every_backend(self):
        def campaign(backend: str):
            return explore(
                _engine(
                    ntimes=1,
                    verify=True,
                    faults=FaultPlan.parse("vectorize=1.0,seed=7"),
                ),
                ParameterSweep(base=SMALL, axes={"vector_width": [1, 4]}),
                jobs=1 if backend == "serial" else 2,
                backend=backend,
            )

        runs = {b: campaign(b) for b in ("serial", "thread", "process")}
        for backend, results in runs.items():
            assert [r.failure_kind for r in results] == (
                ["verify_mismatch"] * 2
            ), backend
        baseline = [r.fingerprint() for r in runs["serial"]]
        assert [r.fingerprint() for r in runs["thread"]] == baseline
        assert [r.fingerprint() for r in runs["process"]] == baseline
