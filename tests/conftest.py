"""Shared fixtures for the MP-STREAM reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TuningParameters
from repro.ocl.platform import find_device
from repro.units import KIB


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked @pytest.mark.slow",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture(scope="session")
def cpu_device():
    return find_device("cpu")


@pytest.fixture(scope="session")
def gpu_device():
    return find_device("gpu")


@pytest.fixture(scope="session")
def aocl_device():
    return find_device("aocl")


@pytest.fixture(scope="session")
def sdaccel_device():
    return find_device("sdaccel")


@pytest.fixture(params=["aocl", "sdaccel", "cpu", "gpu"])
def any_device(request):
    """Parametrized over all four paper targets."""
    return find_device(request.param)


@pytest.fixture
def small_params() -> TuningParameters:
    """A parameter point small enough for fast functional execution."""
    return TuningParameters(array_bytes=64 * KIB)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(2018)
