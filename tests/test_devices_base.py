"""Shared device-model machinery: profiles, launches, builds."""

from __future__ import annotations

from repro.devices.base import (
    BuildOptions,
    Launch,
    domain_size,
    profile_accesses,
)
from repro.oclc import LoopMode, analyze, compile_source


def ir_of(src, defines=None):
    return analyze(compile_source(src, defines))


def launch_for(ir, n_items=1, buffer_bytes=None):
    return Launch(
        global_size=(n_items,),
        buffer_bytes=buffer_bytes or {},
    )


class TestDomainSize:
    def test_ndrange(self):
        ir = ir_of(
            "__kernel void k(__global int *c) { size_t i = get_global_id(0); c[i] = 1; }"
        )
        assert domain_size(ir, launch_for(ir, 1024)) == 1024

    def test_flat(self):
        ir = ir_of(
            "__kernel void k(__global int *c) { for (int i = 0; i < 256; i++) c[i] = i; }"
        )
        assert domain_size(ir, launch_for(ir, 1)) == 256

    def test_nested(self):
        ir = ir_of(
            "__kernel void k(__global int *c)"
            "{ for (int i = 0; i < 8; i++) for (int j = 0; j < 32; j++) c[i*32+j] = 0; }"
        )
        assert domain_size(ir, launch_for(ir, 1)) == 256


class TestProfiles:
    def test_contiguous_profile(self):
        ir = ir_of(
            "__kernel void k(__global const int *a, __global int *c)"
            "{ size_t i = get_global_id(0); c[i] = a[i]; }"
        )
        profiles = profile_accesses(
            ir, launch_for(ir, 1024, {"a": 4096, "c": 4096})
        )
        assert len(profiles) == 2
        for p in profiles:
            assert p.pattern == "contiguous"
            assert p.stride_bytes == 4
            assert p.n_accesses == 1024
            assert p.useful_bytes == 4096
            assert p.footprint_bytes == 4096
            assert p.reuse_window_bytes is None
        assert {p.param: p.is_write for p in profiles} == {"a": False, "c": True}

    def test_strided_profile(self):
        ir = ir_of(
            "__kernel void k(__global int *c)"
            "{ for (int j = 0; j < 32; j++) for (int i = 0; i < 32; i++)"
            "  c[i * 32 + j] = i; }"
        )
        [p] = profile_accesses(ir, launch_for(ir, 1, {"c": 4096}))
        assert p.pattern == "strided"
        assert p.stride_bytes == 32 * 4
        # column of 32 rows -> 32 lines needed to catch the reuse
        assert p.reuse_window_bytes == 32 * 64

    def test_modulo_strided_profile(self):
        ir = ir_of(
            "__kernel void k(__global int *c) {"
            " size_t g = get_global_id(0);"
            " size_t idx = (g % 64) * 64 + g / 64;"
            " c[idx] = 1; }"
        )
        [p] = profile_accesses(ir, launch_for(ir, 4096, {"c": 16384}))
        assert p.pattern == "strided"
        assert p.stride_bytes == 64 * 4

    def test_vector_element_width(self):
        ir = ir_of(
            "__kernel void k(__global const int8 *a, __global int8 *c)"
            "{ size_t i = get_global_id(0); c[i] = a[i]; }"
        )
        profiles = profile_accesses(ir, launch_for(ir, 128, {"a": 4096, "c": 4096}))
        assert all(p.element_bytes == 32 for p in profiles)
        assert all(p.pattern == "contiguous" for p in profiles)

    def test_repeated_access_zero_stride(self):
        ir = ir_of(
            "__kernel void k(__global const int *a, __global int *c)"
            "{ for (int i = 0; i < 16; i++) c[i] = a[0]; }"
        )
        by_param = {
            p.param: p
            for p in profile_accesses(ir, launch_for(ir, 1, {"a": 64, "c": 64}))
        }
        assert by_param["a"].stride_bytes == 0
        assert by_param["c"].stride_bytes == 4


class TestBuildMachinery:
    def test_build_options_merge(self):
        opts = BuildOptions(defines={"A": "1"})
        merged = opts.with_defines({"B": "2"})
        assert merged.defines == {"A": "1", "B": "2"}
        assert opts.defines == {"A": "1"}  # original untouched

    def test_plan_for_sibling_kernel(self, aocl_device):
        src = (
            "__kernel void k1(__global int *c) { for (int i = 0; i < 8; i++) c[i] = 1; }\n"
            "__kernel void k2(__global int *c) { size_t i = get_global_id(0); c[i] = 2; }"
        )
        checked = compile_source(src)
        plan1 = aocl_device.model.build(checked, BuildOptions())
        assert plan1.ir.name == "k1"
        plan2 = aocl_device.model.plan_for_kernel(plan1, "k2")
        assert plan2.ir.name == "k2"
        assert plan2.ir.loop_mode is LoopMode.NDRANGE

    def test_every_model_reports_transfer_time(self, any_device):
        t_small = any_device.model.transfer_time(4096, "h2d")
        t_big = any_device.model.transfer_time(64 * 1024 * 1024, "h2d")
        assert 0 < t_small < t_big

    def test_copy_time_positive(self, any_device):
        assert any_device.model.copy_time(1 << 20) > 0


class TestAccessCounts:
    def test_epilogue_store_counted_once(self):
        from repro.devices.base import access_count

        ir = ir_of(
            "__kernel void k(__global const double *a, __global double *c) {"
            " double acc = 0.0;"
            " for (int i = 0; i < 1024; i++) { acc += a[i]; }"
            " c[0] = acc; }"
        )
        launch = launch_for(ir, 1, {"a": 8192, "c": 8})
        by_param = {a.param: a for a in ir.accesses}
        assert by_param["a"].depth == 1
        assert by_param["c"].depth == 0
        assert access_count(ir, by_param["a"], launch) == 1024
        assert access_count(ir, by_param["c"], launch) == 1

    def test_dot_timing_is_stream_class(self, aocl_device):
        """A reduction kernel's memory time must be driven by its two
        read streams, not by a phantom store-per-iteration."""
        from repro.devices.base import BuildOptions, Launch

        src = (
            "__kernel void k(__global const double *a, __global const double *b,"
            " __global double *c) {"
            " double acc = 0.0;"
            " for (int i = 0; i < N; i++) { acc += a[i] * b[i]; }"
            " c[0] = acc; }"
        )
        n = 1 << 18
        checked_dot = compile_source(src, {"N": str(n)})
        plan = aocl_device.model.build(checked_dot, BuildOptions())
        launch = Launch(
            global_size=(1,), buffer_bytes={"a": 8 * n, "b": 8 * n, "c": 8}
        )
        t_dot = aocl_device.model.kernel_timing(plan, launch).execution_s

        copy_src = (
            "__kernel void k(__global const double *a, __global double *c)"
            "{ for (int i = 0; i < N; i++) c[i] = a[i]; }"
        )
        checked_copy = compile_source(copy_src, {"N": str(n)})
        plan_c = aocl_device.model.build(checked_copy, BuildOptions())
        t_copy = aocl_device.model.kernel_timing(
            plan_c, Launch(global_size=(1,), buffer_bytes={"a": 8 * n, "c": 8 * n})
        ).execution_s
        # same iteration count, same bytes read+written per cycle class:
        # times within 2x of each other
        assert t_dot < 2 * t_copy
