"""Sum reductions in the specializer (dot products and friends).

Float comparisons here pit one summation order against another (the
specializer's partial-sum vectorization vs NumPy's pairwise ``dot`` or
the interpreter's sequential loop), so they use the pinned reduction
budget from :mod:`repro.verify.tolerance` instead of ad-hoc
``pytest.approx`` epsilons.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import UnsupportedKernelError
from repro.gpustream import run_gpu_stream
from repro.oclc import BufferArg, compile_source, run_kernel, specialize
from repro.verify import max_ulp_diff, reduction_ulps


def assert_reduction_close(got: float, want: float, terms: int) -> None:
    """Two orderings of the same ``terms``-long sum agree within budget."""
    pair = np.asarray([got, want], dtype=np.float64)
    worst = max_ulp_diff(pair[:1], pair[1:])
    assert worst <= reduction_ulps(terms), (
        f"{got!r} vs {want!r}: {worst} ULPs exceeds the "
        f"{reduction_ulps(terms)}-ULP budget for a {terms}-term reduction"
    )

DOT_SRC = """
__kernel void dot_k(__global const double *a, __global const double *b,
                    __global double *c) {
    double acc = 0.0;
    for (int i = 0; i < N; i++) {
        acc += a[i] * b[i];
    }
    c[0] = acc;
}
"""


class TestReductions:
    def test_dot_product(self, rng):
        p = compile_source(DOT_SRC, {"N": "512"})
        a = rng.random(512)
        b = rng.random(512)
        c = np.zeros(1)
        specialize(p).run((1,), {"a": BufferArg(a), "b": BufferArg(b), "c": BufferArg(c)})
        assert_reduction_close(c[0], np.dot(a, b), terms=512)

    def test_matches_interpreter(self, rng):
        p = compile_source(DOT_SRC, {"N": "128"})
        a = rng.random(128)
        b = rng.random(128)
        c_fast = np.zeros(1)
        c_ref = np.zeros(1)
        specialize(p).run(
            (1,), {"a": BufferArg(a), "b": BufferArg(b), "c": BufferArg(c_fast)}
        )
        run_kernel(
            p, "dot_k", (1,), {"a": BufferArg(a), "b": BufferArg(b), "c": BufferArg(c_ref)}
        )
        assert_reduction_close(c_fast[0], c_ref[0], terms=128)

    def test_assignment_form(self):
        src = """
__kernel void sum_k(__global const int *a, __global int *c) {
    int acc = 10;
    for (int i = 0; i < 16; i++)
        acc = acc + a[i];
    c[0] = acc;
}
"""
        p = compile_source(src)
        a = np.arange(16, dtype=np.int32)
        c = np.zeros(1, np.int32)
        specialize(p).run((1,), {"a": BufferArg(a), "c": BufferArg(c)})
        assert c[0] == 10 + np.arange(16).sum()

    def test_commuted_assignment_form(self):
        src = """
__kernel void sum_k(__global const int *a, __global int *c) {
    int acc = 0;
    for (int i = 0; i < 8; i++)
        acc = a[i] + acc;
    c[0] = acc;
}
"""
        p = compile_source(src)
        a = np.arange(8, dtype=np.int32)
        c = np.zeros(1, np.int32)
        specialize(p).run((1,), {"a": BufferArg(a), "c": BufferArg(c)})
        assert c[0] == 28

    def test_integer_wraparound_matches_sequential(self):
        src = """
__kernel void sum_k(__global const int *a, __global int *c) {
    int acc = 0;
    for (int i = 0; i < 64; i++)
        acc += a[i];
    c[0] = acc;
}
"""
        p = compile_source(src)
        a = np.full(64, 2**26, dtype=np.int32)
        fast = np.zeros(1, np.int32)
        ref = np.zeros(1, np.int32)
        specialize(p).run((1,), {"a": BufferArg(a), "c": BufferArg(fast)})
        run_kernel(p, "sum_k", (1,), {"a": BufferArg(a), "c": BufferArg(ref)})
        assert fast[0] == ref[0]

    def test_two_independent_reductions(self, rng):
        src = """
__kernel void k(__global const double *a, __global double *c) {
    double s = 0.0;
    double sq = 0.0;
    for (int i = 0; i < 64; i++) {
        s += a[i];
        sq += a[i] * a[i];
    }
    c[0] = s;
    c[1] = sq;
}
"""
        p = compile_source(src)
        a = rng.random(64)
        c = np.zeros(2)
        specialize(p).run((1,), {"a": BufferArg(a), "c": BufferArg(c)})
        assert_reduction_close(c[0], a.sum(), terms=64)
        assert_reduction_close(c[1], (a * a).sum(), terms=64)


class TestReductionRefusals:
    def test_prefix_sum_still_refused(self):
        """acc used by another statement in the body is not a pure
        reduction — vectorizing it would be wrong."""
        src = """
__kernel void k(__global const int *a, __global int *c) {
    int acc = 0;
    for (int i = 0; i < 8; i++) {
        acc = acc + a[i];
        c[i] = acc;
    }
}
"""
        with pytest.raises(UnsupportedKernelError):
            specialize(compile_source(src))

    def test_multiplicative_accumulation_refused(self):
        src = """
__kernel void k(__global const int *a, __global int *c) {
    int acc = 1;
    for (int i = 0; i < 8; i++)
        acc = acc * a[i];
    c[0] = acc;
}
"""
        with pytest.raises(UnsupportedKernelError):
            specialize(compile_source(src))

    def test_double_accumulation_statement_refused(self):
        src = """
__kernel void k(__global const int *a, __global int *c) {
    int acc = 0;
    for (int i = 0; i < 8; i++) {
        acc += a[i];
        acc += a[i];
    }
    c[0] = acc;
}
"""
        with pytest.raises(UnsupportedKernelError):
            specialize(compile_source(src))

    def test_self_referencing_rhs_refused(self):
        src = """
__kernel void k(__global const int *a, __global int *c) {
    int acc = 0;
    for (int i = 0; i < 8; i++)
        acc += acc + a[i];
    c[0] = acc;
}
"""
        with pytest.raises(UnsupportedKernelError):
            specialize(compile_source(src))


class TestGpuStreamDot:
    def test_dot_runs_and_validates(self):
        res = run_gpu_stream("gpu", array_bytes=1 << 20, ntimes=2, with_dot=True)
        assert "dot" in res
        assert res["dot"].moved_bytes == 2 * (1 << 20)
        assert res["dot"].bandwidth_gbs > 0

    def test_without_dot_by_default(self):
        res = run_gpu_stream("gpu", array_bytes=1 << 18, ntimes=1)
        assert "dot" not in res
