"""Fuzzing the front-end: oracle equivalence and crash-freedom."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OclcError, ReproError
from repro.oclc import BufferArg, compile_source, parse, run_kernel

# hypothesis fuzzing is the long tail of the suite; tier-1 runs skip it
pytestmark = pytest.mark.slow

# ---------------------------------------------------------------------------
# oracle: random integer expressions evaluated by the interpreter must
# match a numpy int32 evaluation of the same tree
# ---------------------------------------------------------------------------

_INT_BIN_OPS = ["+", "-", "*", "&", "|", "^"]


@st.composite
def int_exprs(draw, depth=0):
    """(source_text, python_eval_fn) pairs over variables x, y."""
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            v = draw(st.integers(-100, 100))
            if v < 0:
                return f"({v})", (lambda env, v=v: np.int32(v))
            return str(v), (lambda env, v=v: np.int32(v))
        name = "x" if choice == 1 else "y"
        return name, (lambda env, name=name: env[name])
    op = draw(st.sampled_from(_INT_BIN_OPS))
    lt, lf = draw(int_exprs(depth=depth + 1))
    rt, rf = draw(int_exprs(depth=depth + 1))

    def fn(env, op=op, lf=lf, rf=rf):
        a, b = lf(env), rf(env)
        with np.errstate(over="ignore"):
            return {
                "+": lambda: np.int32(a + b),
                "-": lambda: np.int32(a - b),
                "*": lambda: np.int32(a * b),
                "&": lambda: np.int32(a & b),
                "|": lambda: np.int32(a | b),
                "^": lambda: np.int32(a ^ b),
            }[op]()

    return f"({lt} {op} {rt})", fn


@settings(max_examples=60, deadline=None)
@given(int_exprs(), st.integers(-1000, 1000), st.integers(-1000, 1000))
def test_interpreter_matches_numpy_oracle(expr, x, y):
    text, fn = expr
    src = (
        "__kernel void k(__global int *out, const int x, const int y)"
        f"{{ out[0] = {text}; }}"
    )
    program = compile_source(src)
    out = np.zeros(1, dtype=np.int32)
    run_kernel(
        program, "k", (1,),
        {"out": BufferArg(out), "x": np.int32(x), "y": np.int32(y)},
    )
    want = fn({"x": np.int32(x), "y": np.int32(y)})
    assert out[0] == want, f"{text} with x={x} y={y}"


@settings(max_examples=60, deadline=None)
@given(int_exprs(), st.integers(-50, 50), st.integers(-50, 50))
def test_specializer_matches_interpreter_on_fuzzed_exprs(expr, x, y):
    from repro.oclc import specialize

    text, _ = expr
    src = (
        "__kernel void k(__global int *out, const int x, const int y)"
        f"{{ size_t i = get_global_id(0); out[i] = {text} + (int)i; }}"
    )
    program = compile_source(src)
    a = np.zeros(8, dtype=np.int32)
    b = np.zeros(8, dtype=np.int32)
    args_a = {"out": BufferArg(a), "x": np.int32(x), "y": np.int32(y)}
    args_b = {"out": BufferArg(b), "x": np.int32(x), "y": np.int32(y)}
    run_kernel(program, "k", (8,), args_a)
    specialize(program).run((8,), args_b)
    np.testing.assert_array_equal(a, b)


# ---------------------------------------------------------------------------
# crash-freedom: arbitrary garbage must raise a *front-end* error, never
# an unhandled exception
# ---------------------------------------------------------------------------

_TOKENS = [
    "__kernel", "void", "int", "double", "for", "if", "else", "return",
    "(", ")", "{", "}", "[", "]", ";", ",", "+", "-", "*", "/", "=", "<",
    ">", "a", "b", "i", "0", "1", "42", "1.5", "get_global_id",
    "__global", "const", "#pragma unroll", "++", "&&",
]


@settings(max_examples=120, deadline=None)
@given(st.lists(st.sampled_from(_TOKENS), min_size=1, max_size=40))
def test_parser_never_crashes_on_token_soup(tokens):
    source = " ".join(tokens)
    try:
        parse(source)
    except OclcError:
        pass  # rejecting garbage is correct
    except ValueError as exc:
        # TranslationUnit.kernel() style errors only surface later; the
        # parser itself may legitimately raise nothing at all here
        pytest.fail(f"unexpected ValueError: {exc}")


@settings(max_examples=80, deadline=None)
@given(st.text(max_size=60))
def test_compiler_never_crashes_on_arbitrary_text(text):
    try:
        compile_source(text)
    except ReproError:
        pass
    except RecursionError:  # pragma: no cover
        pytest.fail("parser recursion blow-up")


# ---------------------------------------------------------------------------
# float oracle: double-precision arithmetic matches numpy bit-for-bit
# ---------------------------------------------------------------------------

_FLOAT_OPS = ["+", "-", "*", "/"]


@st.composite
def float_exprs(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            v = draw(
                st.floats(
                    min_value=-100, max_value=100, allow_nan=False, width=32
                )
            )
            return f"({v!r})", (lambda env, v=v: np.float64(v))
        name = draw(st.sampled_from(["x", "y"]))
        return name, (lambda env, name=name: env[name])
    op = draw(st.sampled_from(_FLOAT_OPS))
    lt, lf = draw(float_exprs(depth=depth + 1))
    rt, rf = draw(float_exprs(depth=depth + 1))

    def fn(env, op=op, lf=lf, rf=rf):
        a, b = lf(env), rf(env)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            return {
                "+": lambda: np.float64(a + b),
                "-": lambda: np.float64(a - b),
                "*": lambda: np.float64(a * b),
                "/": lambda: np.float64(a / b),
            }[op]()

    return f"({lt} {op} {rt})", fn


@settings(max_examples=50, deadline=None)
@given(
    float_exprs(),
    st.floats(min_value=-50, max_value=50, allow_nan=False, width=32),
    st.floats(min_value=0.5, max_value=50, allow_nan=False, width=32),
)
def test_interpreter_matches_numpy_float_oracle(expr, x, y):
    text, fn = expr
    src = (
        "__kernel void k(__global double *out, const double x, const double y)"
        f"{{ out[0] = {text}; }}"
    )
    program = compile_source(src)
    out = np.zeros(1, dtype=np.float64)
    run_kernel(
        program, "k", (1,),
        {"out": BufferArg(out), "x": np.float64(x), "y": np.float64(y)},
    )
    want = fn({"x": np.float64(x), "y": np.float64(y)})
    if np.isnan(want):
        assert np.isnan(out[0]), text
    else:
        np.testing.assert_array_equal(out[0], want, err_msg=text)
