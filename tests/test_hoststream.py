"""Real-host numpy STREAM."""

from __future__ import annotations

import pytest

from repro.core.params import KernelName
from repro.errors import BenchmarkError
from repro.hoststream import run_host_stream
from repro.units import MIB


class TestHostStream:
    def test_runs_all_kernels(self):
        results = run_host_stream(array_bytes=1 * MIB, ntimes=2)
        assert set(results) == set(KernelName)
        for r in results.values():
            assert r.bandwidth_gbs > 0
            assert len(r.times) == 2
            assert r.min_time <= r.avg_time <= r.max_time

    def test_byte_counting_convention(self):
        results = run_host_stream(array_bytes=1 * MIB, ntimes=1)
        assert results[KernelName.COPY].moved_bytes == 2 * MIB
        assert results[KernelName.TRIAD].moved_bytes == 3 * MIB

    def test_plausible_magnitude(self):
        """Any machine running this suite moves > 0.1 GB/s and < 10 TB/s."""
        results = run_host_stream(array_bytes=4 * MIB, ntimes=3)
        for r in results.values():
            assert 0.1 < r.bandwidth_gbs < 10_000

    def test_dtype_option(self):
        results = run_host_stream(array_bytes=1 * MIB, ntimes=1, dtype="float32")
        assert results[KernelName.COPY].array_bytes == 1 * MIB

    def test_rejects_bad_args(self):
        with pytest.raises(BenchmarkError):
            run_host_stream(ntimes=0)
        with pytest.raises(BenchmarkError):
            run_host_stream(array_bytes=1)


class TestClassicReport:
    def test_checktick_positive(self):
        from repro.hoststream import checktick

        tick = checktick()
        assert 0 < tick < 1e-3  # any sane clock

    def test_report_contents(self):
        from repro.hoststream import classic_report

        results = run_host_stream(array_bytes=1 * MIB, ntimes=2)
        text = classic_report(results, tick=1e-9)
        assert "STREAM" in text
        assert "copy" in text and "triad" in text
        assert "Best Rate" in text

    def test_report_flags_sub_tick_timings(self):
        from repro.hoststream import classic_report

        results = run_host_stream(array_bytes=1 * MIB, ntimes=2)
        text = classic_report(results, tick=10.0)  # absurd tick
        assert "(*)" in text

    def test_report_rejects_empty(self):
        from repro.hoststream import classic_report

        with pytest.raises(BenchmarkError):
            classic_report({})

    def test_validation_runs(self):
        # run_host_stream validates internally; a normal run passes
        run_host_stream(array_bytes=1 * MIB, ntimes=1)
