"""The campaign scheduler/executor layer (repro.core.scheduler).

The acceptance criterion for the whole layer is *differential*: a
campaign's :class:`ResultSet` must be fingerprint-identical whichever
backend ran it — serial, thread pool, or a process pool whose workers
are being killed mid-point by injected ``worker_crash`` faults — and
across a mid-sweep kill/resume. Everything else here (restart budgets,
dedup, durable journals, progress-error containment, stats merge) is
the supporting machinery that makes that invariant hold.
"""

from __future__ import annotations

import json

import pytest

from repro.core import (
    BenchmarkRunner,
    CampaignScheduler,
    ExecutionEngine,
    LoopManagement,
    ParameterSweep,
    SweepJournal,
    TuningParameters,
    autotune,
    explore,
    make_executor,
)
from repro.core.scheduler import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.errors import SweepError, WorkerCrashError, failure_kind
from repro.faults import FaultPlan
from repro.units import KIB

AXES = {
    "vector_width": [1, 2, 4],
    "array_bytes": [32 * KIB, 64 * KIB],
}


def _sweep() -> ParameterSweep:
    return ParameterSweep(
        base=TuningParameters(array_bytes=32 * KIB), axes=AXES
    )


def _engine(faults: str | None = None, **kw) -> ExecutionEngine:
    kw.setdefault("ntimes", 1)
    if faults is not None:
        kw["faults"] = FaultPlan.parse(faults)
    return ExecutionEngine("gpu", **kw)


def _fps(results) -> list[str]:
    return [r.fingerprint() for r in results]


def _crash_schedule(plan: FaultPlan, keys: list[str], budget: int) -> list[int]:
    """How many times each point crashes before running (or gives up)."""
    out = []
    for key in keys:
        crashes = 0
        while crashes <= budget and plan.should_fire("worker_crash", key, crashes):
            crashes += 1
        out.append(crashes)
    return out


def _find_requeue_seed() -> str:
    """A fault spec where >= 1 point crashes once then succeeds, and no
    point exhausts the default restart budget — deterministically."""
    from repro.core import point_fingerprint

    keys = [
        point_fingerprint("gpu", p) for p in _sweep().points()
    ]
    for seed in range(200):
        spec = f"worker_crash=0.5,seed={seed}"
        sched = _crash_schedule(FaultPlan.parse(spec), keys, budget=2)
        if any(c == 1 for c in sched) and all(c <= 2 for c in sched):
            return spec
    raise AssertionError("no suitable seed in range")  # pragma: no cover


class TestDifferentialBackends:
    def test_serial_thread_process_identical(self):
        serial = explore(_engine(), _sweep(), backend="serial")
        thread = explore(_engine(), _sweep(), jobs=3, backend="thread")
        process = explore(_engine(), _sweep(), jobs=2, backend="process")
        assert len(serial) == len(thread) == len(process) == 6
        assert _fps(serial) == _fps(thread) == _fps(process)
        assert [r.params for r in serial] == [r.params for r in process]

    def test_identical_under_injected_crashes(self):
        spec = "worker_crash=0.5,seed=3"
        runs = {
            backend: explore(
                _engine(spec), _sweep(), jobs=2, backend=backend
            )
            for backend in ("serial", "thread", "process")
        }
        baseline = _fps(runs["serial"])
        assert _fps(runs["thread"]) == baseline
        assert _fps(runs["process"]) == baseline

    def test_crash_survivors_match_faultless_run(self):
        """A point that crashes then succeeds measures exactly what it
        would have measured with no fault at all."""
        spec = _find_requeue_seed()
        clean = explore(_engine(), _sweep())
        scheduler = CampaignScheduler(_engine(spec), backend="process", jobs=2)
        crashed = scheduler.run(list(_sweep().points()))
        assert scheduler.crashes >= 1
        assert scheduler.requeues >= 1
        assert scheduler.crash_failures == 0
        assert all(r.ok for r in crashed)
        assert _fps(crashed) == _fps(clean)

    def test_restart_budget_exhaustion_is_deterministic_data(self):
        spec = "worker_crash=1.0,seed=9"
        serial = explore(_engine(spec), _sweep(), max_worker_restarts=1)
        process = explore(
            _engine(spec), _sweep(), jobs=2, backend="process",
            max_worker_restarts=1,
        )
        for results in (serial, process):
            assert len(results) == 6
            assert all(r.failure_kind == "worker_crash" for r in results)
            assert all("restart budget" in r.error for r in results)
            assert all(not r.times for r in results)
        assert _fps(serial) == _fps(process)

    def test_crash_detail_is_provenance_not_measurement(self):
        spec = "worker_crash=1.0,seed=9"
        result = explore(_engine(spec), _sweep(), max_worker_restarts=0)[0]
        assert result.detail["scheduler"]["restarts"] == 0
        assert "scheduler" not in result.fingerprint()


class TestResume:
    def test_mid_sweep_resume_per_backend(self, tmp_path):
        fresh = explore(_engine(), _sweep())
        for backend in ("serial", "thread", "process"):
            journal = SweepJournal(tmp_path / f"{backend}.jsonl")
            partial = ParameterSweep(
                base=TuningParameters(array_bytes=32 * KIB),
                axes={"vector_width": [1, 2, 4]},
            )
            explore(_engine(), partial, jobs=2, backend=backend,
                    journal=journal)
            assert journal.executed == 3
            resumed = explore(_engine(), _sweep(), jobs=2, backend=backend,
                              journal=journal, resume=True)
            assert journal.reused == 3
            assert _fps(resumed) == _fps(fresh)

    def test_resume_after_crash_failures_restores_them(self, tmp_path):
        spec = "worker_crash=1.0,seed=9"
        journal = SweepJournal(tmp_path / "crashes.jsonl")
        first = explore(_engine(spec), _sweep(), max_worker_restarts=0,
                        journal=journal)
        resumed = explore(_engine(spec), _sweep(), max_worker_restarts=0,
                          journal=journal, resume=True)
        assert journal.reused == 6 and journal.discarded == 0
        assert _fps(resumed) == _fps(first)

    def test_resume_requires_journal(self):
        with pytest.raises(SweepError, match="requires a journal"):
            explore(_engine(), _sweep(), resume=True)


class TestJournalDurability:
    def test_durable_journal_fsyncs_every_record(self, tmp_path, monkeypatch):
        import repro.core.history as history

        synced: list[int] = []
        monkeypatch.setattr(history.os, "fsync", lambda fd: synced.append(fd))
        journal = SweepJournal(tmp_path / "durable.jsonl", durable=True)
        explore(_engine(), _sweep(), journal=journal)
        # one fsync per record, plus the parent-directory fsync on first
        # append — without it a crash after creation can lose the file
        assert len(synced) == 7

    def test_default_journal_does_not_fsync(self, tmp_path, monkeypatch):
        import repro.core.history as history

        synced: list[int] = []
        monkeypatch.setattr(history.os, "fsync", lambda fd: synced.append(fd))
        journal = SweepJournal(tmp_path / "plain.jsonl")
        explore(_engine(), _sweep(), journal=journal)
        assert synced == []
        assert journal.durable is False


class TestSchedulerPolicy:
    def test_jobs_validation(self):
        for jobs in (0, -2):
            with pytest.raises(SweepError, match="jobs must be >= 1"):
                CampaignScheduler(_engine(), jobs=jobs)
        with pytest.raises(SweepError, match="jobs must be >= 1"):
            make_executor("thread", jobs=0)

    def test_restart_budget_validation(self):
        with pytest.raises(SweepError, match="max_worker_restarts"):
            CampaignScheduler(_engine(), max_worker_restarts=-1)

    def test_backend_validation(self):
        with pytest.raises(SweepError, match="unknown execution backend"):
            CampaignScheduler(_engine(), backend="mpi")
        with pytest.raises(SweepError, match="unknown execution backend"):
            make_executor("mpi")
        with pytest.raises(SweepError, match="not both"):
            CampaignScheduler(
                _engine(), backend="serial", executor=SerialExecutor()
            )

    def test_auto_backend_selection(self):
        sched = CampaignScheduler(_engine(), jobs=4)
        sched.run(list(_sweep().points()))
        assert sched.backend_used == "thread"
        sched = CampaignScheduler(_engine())
        sched.run(list(_sweep().points()))
        assert sched.backend_used == "serial"
        # a single point never pays for a pool
        sched = CampaignScheduler(_engine(), jobs=4)
        sched.run([TuningParameters(array_bytes=32 * KIB)])
        assert sched.backend_used == "serial"

    def test_dedup_by_fingerprint(self, tmp_path):
        journal = SweepJournal(tmp_path / "dedup.jsonl")
        sweep = ParameterSweep(
            base=TuningParameters(array_bytes=32 * KIB),
            axes={"vector_width": [1, 1]},
        )
        seen: list = []
        scheduler = CampaignScheduler(
            _engine(), journal=journal, progress=seen.append
        )
        results = scheduler.run(list(sweep.points()))
        assert len(results) == 2
        assert results[0].fingerprint() == results[1].fingerprint()
        assert scheduler.deduped == 1
        assert journal.executed == 1  # the twin never re-ran
        assert len(seen) == 2  # but progress still saw both grid points

    def test_progress_error_does_not_kill_campaign(self):
        calls: list[int] = []

        def bad_progress(result) -> None:
            calls.append(1)
            raise RuntimeError("reporter bug")

        scheduler = CampaignScheduler(_engine(), progress=bad_progress)
        results = scheduler.run(list(_sweep().points()))
        assert len(results) == 6
        assert len(calls) == 6  # still called for every point
        assert scheduler.progress_errors == 6

    def test_engine_bug_still_aborts_campaign(self):
        class BombEngine:
            target = "gpu"

            def worker_clone(self):
                return self

            def run(self, params, *, watchdog=None):
                raise RuntimeError("engine bug")

        with pytest.raises(SweepError, match=r"grid point \d+ .*engine bug"):
            CampaignScheduler(BombEngine(), backend="serial").run(
                list(_sweep().points())
            )

    def test_worker_crash_failure_kind_taxonomy(self):
        assert failure_kind(WorkerCrashError("boom")) == "worker_crash"


class TestProcessExecutor:
    def test_requires_a_real_engine(self):
        class DuckEngine:
            target = "gpu"

        with pytest.raises(SweepError, match="process backend"):
            with ProcessExecutor(jobs=1).session(DuckEngine()):
                pass  # pragma: no cover

    def test_worker_stats_merged_into_parent(self):
        engine = _engine()
        explore(engine, _sweep(), jobs=2, backend="process")
        stats = engine.stats_snapshot()
        assert stats["points"] == 6
        assert stats["failures"] == 0
        assert stats["stage_s"]["execute"] > 0

    def test_stats_fold_incrementally_and_survive_worker_kills(self):
        """Child EngineStats arrive as per-point deltas, not only at
        clean shutdown — a kill -9'd worker loses at most its in-flight
        point, so serial and process stats agree even under injected
        ``worker_crash`` faults."""
        spec = _find_requeue_seed()
        serial_engine = _engine(spec)
        explore(serial_engine, _sweep(), backend="serial")
        process_engine = _engine(spec)
        scheduler = CampaignScheduler(process_engine, backend="process", jobs=2)
        scheduler.run(list(_sweep().points()))
        assert scheduler.crashes >= 1  # workers actually died mid-campaign
        serial_stats = serial_engine.stats_snapshot()
        process_stats = process_engine.stats_snapshot()
        for counter in ("points", "failures", "retries"):
            assert process_stats[counter] == serial_stats[counter], counter
        assert process_stats["points"] == 6

    def test_worker_status_reports_liveness(self):
        engine = _engine()
        executor = ProcessExecutor(jobs=2)
        with executor.session(engine) as session:
            status = session.worker_status()
            assert len(status) == 2
            assert {w["worker"] for w in status} == {"worker-0", "worker-1"}
            assert all(w["alive"] for w in status)
            assert all(isinstance(w["pid"], int) for w in status)

    def test_journal_written_by_parent_survives_worker_kills(self, tmp_path):
        spec = _find_requeue_seed()
        journal = SweepJournal(tmp_path / "j.jsonl", durable=True)
        results = explore(_engine(spec), _sweep(), jobs=2, backend="process",
                          journal=journal)
        records = [
            json.loads(line)
            for line in journal.path.read_text().splitlines()
        ]
        assert len(records) == len(results) == 6
        assert {r["fingerprint"] for r in records} == set(_fps(results))

    def test_executor_names_and_factory(self):
        assert make_executor("serial").name == "serial"
        assert isinstance(make_executor("thread", jobs=3), ThreadExecutor)
        assert make_executor("process", jobs=2).jobs == 2


class TestAutotuneThroughScheduler:
    AXES = {
        "loop": list(LoopManagement),
        "vector_width": [1, 2, 4, 8],
        "unroll": [1, 2],
    }

    def _seed(self) -> TuningParameters:
        return TuningParameters(array_bytes=128 * KIB)

    def test_parallel_scan_keeps_serial_trajectory(self):
        serial = autotune(
            BenchmarkRunner("aocl", ntimes=1), self.AXES,
            seed=self._seed(), budget=20,
        )
        threaded = autotune(
            BenchmarkRunner("aocl", ntimes=1), self.AXES,
            seed=self._seed(), budget=20, jobs=3,
        )
        process = autotune(
            BenchmarkRunner("aocl", ntimes=1), self.AXES,
            seed=self._seed(), budget=20, jobs=2, backend="process",
        )
        assert serial.trajectory == threaded.trajectory == process.trajectory
        assert serial.best.fingerprint() == threaded.best.fingerprint()
        assert serial.best.fingerprint() == process.best.fingerprint()
        assert serial.evaluations_used == threaded.evaluations_used
        assert serial.evaluations_used == process.evaluations_used

    def test_journal_resume_replays_trajectory(self, tmp_path):
        journal_path = tmp_path / "tune.jsonl"
        first = autotune(
            BenchmarkRunner("aocl", ntimes=1), self.AXES,
            seed=self._seed(), budget=20, journal=journal_path,
        )
        journal = SweepJournal(journal_path)
        resumed = autotune(
            BenchmarkRunner("aocl", ntimes=1), self.AXES,
            seed=self._seed(), budget=20, journal=journal, resume=True,
        )
        assert journal.reused == first.evaluations_used
        assert journal.executed == 0  # nothing re-ran
        assert resumed.trajectory == first.trajectory
        assert resumed.best.fingerprint() == first.best.fingerprint()
        assert resumed.evaluations_used == first.evaluations_used


class TestSearchThroughScheduler:
    """Multi-fidelity search as a scheduler client: every rung is a
    scheduler batch, so its trajectory must be bit-identical whichever
    backend measured it, under injected faults, and across resume."""

    AXES = {
        "loop": list(LoopManagement),
        "vector_width": [1, 2, 4, 8],
        "unroll": [1, 2],
    }

    def _seed(self) -> TuningParameters:
        return TuningParameters(array_bytes=64 * KIB)

    def _search(self, runner, **kw):
        from repro.core import multifidelity_search

        return multifidelity_search(
            runner, self.AXES, seed=self._seed(), budget=6, **kw
        )

    def test_trajectory_identical_across_backends(self):
        serial = self._search(BenchmarkRunner("aocl", ntimes=1))
        threaded = self._search(
            BenchmarkRunner("aocl", ntimes=1), jobs=3, backend="thread"
        )
        process = self._search(
            BenchmarkRunner("aocl", ntimes=1), jobs=2, backend="process"
        )
        assert (
            serial.trajectory_fingerprint()
            == threaded.trajectory_fingerprint()
            == process.trajectory_fingerprint()
        )
        assert serial.rung_fingerprints() == process.rung_fingerprints()
        assert serial.best.fingerprint() == threaded.best.fingerprint()
        assert serial.best.fingerprint() == process.best.fingerprint()
        assert serial.spent == threaded.spent == process.spent

    def test_trajectory_identical_under_injected_faults(self):
        """Crash-killed workers and transient compile faults requeue/
        retry inside the scheduler; the search trajectory cannot see
        them."""
        clean = self._search(BenchmarkRunner("aocl", ntimes=1))
        faults = FaultPlan.parse("worker_crash=0.4,compile=0.3,seed=5")
        faulty = self._search(
            BenchmarkRunner("aocl", ntimes=1, faults=faults),
            jobs=2,
            backend="process",
            max_worker_restarts=3,
        )
        assert faulty.trajectory_fingerprint() == clean.trajectory_fingerprint()
        assert faulty.rung_fingerprints() == clean.rung_fingerprints()
        assert faulty.best.fingerprint() == clean.best.fingerprint()

    def test_journal_resume_replays_trajectory(self, tmp_path):
        journal_path = tmp_path / "search.jsonl"
        first = self._search(
            BenchmarkRunner("aocl", ntimes=1), journal=journal_path
        )
        journal = SweepJournal(journal_path)
        resumed = self._search(
            BenchmarkRunner("aocl", ntimes=1), journal=journal, resume=True
        )
        assert journal.reused == first.spent
        assert journal.executed == 0  # nothing re-ran
        assert resumed.trajectory_fingerprint() == first.trajectory_fingerprint()
        assert resumed.rung_fingerprints() == first.rung_fingerprints()
        assert resumed.best.fingerprint() == first.best.fingerprint()
        assert resumed.spent == first.spent
