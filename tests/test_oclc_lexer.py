"""Tokenizer and mini-preprocessor."""

from __future__ import annotations

import pytest

from repro.errors import LexError
from repro.oclc.lexer import tokenize


def kinds(tokens):
    return [t.kind for t in tokens]


def texts(tokens):
    return [t.text for t in tokens if t.kind != "eof"]


class TestBasicTokens:
    def test_identifiers_and_keywords(self):
        toks = tokenize("__kernel void f(int x)")
        assert toks[0].is_keyword("__kernel")
        assert toks[1].is_keyword("void")
        assert toks[2].kind == "ident" and toks[2].text == "f"

    def test_int_literals(self):
        toks = tokenize("42 0x1F 7u 9l")
        assert [t.value for t in toks[:-1]] == [42, 31, 7, 9]

    def test_float_literals(self):
        toks = tokenize("1.5 2e3 3.0f 1E-2")
        assert toks[0].kind == "float" and toks[0].value == 1.5
        assert toks[1].value == 2000.0
        assert toks[2].value == 3.0
        assert toks[3].value == pytest.approx(0.01)

    def test_leading_dot_float(self):
        toks = tokenize("x = .5;")
        assert toks[2].kind == "float" and toks[2].value == 0.5

    def test_operators_longest_match(self):
        assert texts(tokenize("a <<= b >> c != d")) == ["a", "<<=", "b", ">>", "c", "!=", "d"]
        assert texts(tokenize("i++ + ++j")) == ["i", "++", "+", "++", "j"]

    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  bb")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)

    def test_invalid_character(self):
        with pytest.raises(LexError):
            tokenize("int a = `1`;")

    def test_bad_suffix(self):
        with pytest.raises(LexError):
            tokenize("1.5x")


class TestComments:
    def test_line_comment(self):
        assert texts(tokenize("a // comment\nb")) == ["a", "b"]

    def test_block_comment(self):
        assert texts(tokenize("a /* multi\nline */ b")) == ["a", "b"]

    def test_block_comment_preserves_lines(self):
        toks = tokenize("/* one\ntwo */\nx")
        assert toks[0].line == 3

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")


class TestPreprocessor:
    def test_define_substitution(self):
        toks = tokenize("#define N 128\nint x = N;")
        assert any(t.kind == "int" and t.value == 128 for t in toks)

    def test_define_from_build_options(self):
        toks = tokenize("int x = ARRAY_SIZE;", defines={"ARRAY_SIZE": "4096"})
        assert any(t.kind == "int" and t.value == 4096 for t in toks)

    def test_chained_defines(self):
        toks = tokenize("#define A B\n#define B 7\nint x = A;")
        assert any(t.kind == "int" and t.value == 7 for t in toks)

    def test_undef(self):
        toks = tokenize("#define N 1\n#undef N\nint N;")
        assert any(t.kind == "ident" and t.text == "N" for t in toks)

    def test_ifdef_taken_and_skipped(self):
        src = "#ifdef FOO\nint yes;\n#else\nint no;\n#endif\n"
        toks = tokenize(src, defines={"FOO": "1"})
        assert "yes" in texts(toks) and "no" not in texts(toks)
        toks = tokenize(src)
        assert "no" in texts(toks) and "yes" not in texts(toks)

    def test_ifndef(self):
        src = "#ifndef FOO\nint absent;\n#endif\n"
        assert "absent" in texts(tokenize(src))
        assert "absent" not in texts(tokenize(src, defines={"FOO": "1"}))

    def test_unbalanced_endif(self):
        with pytest.raises(LexError):
            tokenize("#endif\n")
        with pytest.raises(LexError):
            tokenize("#else\n")
        with pytest.raises(LexError):
            tokenize("#ifdef X\nint a;\n")

    def test_function_macro_rejected(self):
        with pytest.raises(LexError):
            tokenize("#define SQ(x) ((x)*(x))\n")

    def test_macro_recursion_detected(self):
        with pytest.raises(LexError):
            tokenize("int x = A;", defines={"A": "B", "B": "A"})

    def test_pragma_token(self):
        toks = tokenize("#pragma unroll 4\nfor")
        assert toks[0].kind == "pragma"
        assert toks[0].value == "unroll 4"

    def test_pragma_with_macro_expansion(self):
        toks = tokenize("#pragma unroll U\nfor", defines={"U": "8"})
        assert toks[0].value == "unroll 8"

    def test_include_ignored(self):
        assert texts(tokenize('#include "x.h"\nint a;')) == ["int", "a", ";"]

    def test_unknown_directive(self):
        with pytest.raises(LexError):
            tokenize("#banana\n")

    def test_eof_token_always_present(self):
        toks = tokenize("")
        assert toks[-1].kind == "eof"
        assert len(toks) == 1
