#!/usr/bin/env python
"""The paper's outlook, made runnable: energy efficiency and new memory.

§IV of the paper names two things it did *not* evaluate:

1. energy efficiency — "one area where FPGAs can still win in spite of
   the higher achievable bandwidths on GPUs";
2. Hybrid Memory Cube FPGA boards and maturing OpenCL toolchains —
   which "can change the picture we present in this paper considerably".

This example quantifies both with the reproduction's models:

* bytes-per-joule for each target at its best configuration (and at the
  naive one — efficiency needs tuning too);
* the same benchmark on two hypothetical targets: the Stratix V behind
  an HMC stack, and the Virtex-7 behind a 2018-class toolchain;
* a roofline placement for every configuration, confirming that all of
  this is (and stays) memory-bound.

Run:  python examples/energy_and_future_targets.py
"""

from __future__ import annotations

from repro import BenchmarkRunner, TuningParameters, find_device
from repro.core import (
    AccessPattern,
    LoopManagement,
    generate,
    optimal_loop_for,
    roofline_point,
)
from repro.devices.energy import ENERGY_SPECS, EnergySpec, energy_report
from repro.oclc import analyze, compile_source
from repro.units import MIB

ARRAY = 4 * MIB


def best_params(target: str) -> TuningParameters:
    loop = optimal_loop_for(target.split("-")[0])
    width = 16 if target.startswith(("aocl", "sdaccel")) else 1
    return TuningParameters(array_bytes=ARRAY, loop=loop, vector_width=width)


def energy_section() -> None:
    print("1. energy efficiency (GB moved per joule), 4 MiB COPY")
    print("-" * 64)
    print(f"{'target':9s} {'naive GB/s':>11} {'naive GB/J':>11} "
          f"{'tuned GB/s':>11} {'tuned GB/J':>11}")
    for target in ("aocl", "sdaccel", "cpu", "gpu"):
        runner = BenchmarkRunner(target, ntimes=3)
        naive = runner.run(
            TuningParameters(array_bytes=ARRAY, loop=optimal_loop_for(target))
        )
        tuned = runner.run(best_params(target))
        e_naive = energy_report(naive)
        e_tuned = energy_report(tuned)
        print(
            f"{target:9s} {naive.bandwidth_gbs:>11.2f} {e_naive.gb_per_joule:>11.3f} "
            f"{tuned.bandwidth_gbs:>11.2f} {e_tuned.gb_per_joule:>11.3f}"
        )
    print(
        "\n-> the GPU moves bytes fastest, but the *vectorized* FPGA moves\n"
        "   them cheapest — and an unvectorized FPGA wins nothing at all.\n"
    )


def future_section() -> None:
    print("2. future targets: HMC memory and a matured toolchain")
    print("-" * 64)
    rows = [
        ("aocl", "today: DDR3 board"),
        ("aocl-hmc", "hypothetical: 4-link HMC board"),
        ("sdaccel", "today: 2015.1 toolchain"),
        ("sdaccel-mature", "hypothetical: matured toolchain"),
    ]
    for target, label in rows:
        base = target.split("-")[0]
        runner = BenchmarkRunner(target, ntimes=3)
        peak = float(find_device(target).info()["peak_global_bandwidth_gbs"])
        tuned = runner.run(best_params(base))
        strided = runner.run(
            best_params(base).with_(
                pattern=AccessPattern.STRIDED, vector_width=1
            )
        )
        flat = runner.run(
            TuningParameters(array_bytes=ARRAY, loop=LoopManagement.FLAT)
        )
        print(
            f"{target:15s} ({label})\n"
            f"   tuned {tuned.bandwidth_gbs:7.2f} GB/s of {peak} peak | "
            f"flat w=1 {flat.bandwidth_gbs:6.2f} | "
            f"strided {strided.bandwidth_gbs:6.3f}"
        )
    print(
        "\n-> HMC triples the tuned bandwidth and softens the strided\n"
        "   collapse (vault parallelism); the matured toolchain erases the\n"
        "   coding-style sensitivity that Fig 3 documents.\n"
    )


def roofline_section() -> None:
    from repro.core import KernelName

    print("3. roofline placement (is anything compute-bound?)")
    print("-" * 64)
    for target in ("aocl", "sdaccel", "cpu", "gpu"):
        params = best_params(target).with_(kernel=KernelName.TRIAD)
        if target in ("aocl", "sdaccel"):
            # three wide LSUs of a 3-array kernel overflow the fabric at
            # width 16; width 8 is the widest TRIAD that fits both parts
            params = params.with_(vector_width=8)
        result = BenchmarkRunner(target, ntimes=3).run(params)
        gen = generate(params)
        ir = analyze(
            compile_source(gen.source, {k: str(v) for k, v in gen.defines.items()}),
            gen.kernel_name,
        )
        spec = find_device(target).model.spec
        print("  " + roofline_point(result, ir, spec).summary())
    print(
        "\n-> every STREAM configuration sits on the memory roof on every\n"
        "   target: exactly why a *memory* benchmark drives this DSE."
    )


def main() -> None:
    # register energy specs for the hypothetical boards too
    ENERGY_SPECS.setdefault(
        "aocl-hmc",
        EnergySpec("aocl-hmc", static_w=22.0, transfer_j_per_byte=11e-12,
                   alu_j_per_op=5e-12),  # HMC's famous pJ/bit advantage
    )
    ENERGY_SPECS.setdefault(
        "sdaccel-mature",
        EnergySpec("sdaccel-mature", static_w=10.0, transfer_j_per_byte=62e-12,
                   alu_j_per_op=5e-12),
    )
    energy_section()
    future_section()
    roofline_section()


if __name__ == "__main__":
    main()
