#!/usr/bin/env python
"""Render a stage-time breakdown from a ``--trace`` file.

The Chrome trace JSON that ``mp-stream sweep --trace trace.json``
writes is built for https://ui.perfetto.dev, but it is also plain
data: complete spans (``ph: "X"``) named after the work they timed —
``sweep``, ``point``, the engine stages (``generate`` / ``compile`` /
``plan`` / ``execute``) and the queue commands under them. This
example aggregates those spans into the terminal answer to "where did
the campaign's wall time go?", no browser required:

* per-stage totals — count, total/mean/max wall milliseconds, and the
  share of summed point time;
* the slowest points, with their per-stage split and cache outcomes
  (span args record front-end/plan hits and misses).

Run:  python examples/trace_stage_breakdown.py [trace.json]

Without an argument it traces a small CPU sweep in-memory first — via
``repro.obs.session`` — and then analyses its own trace.
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict
from pathlib import Path

from repro import obs
from repro.core import BenchmarkRunner, ParameterSweep, TuningParameters, explore
from repro.units import KIB

#: engine stages, in pipeline order (queue spans nest under execute)
STAGES = ("generate", "compile", "plan", "execute")


def load_spans(trace: dict) -> list[dict]:
    """The complete spans (``ph: "X"``) of a Chrome trace-event doc."""
    return [e for e in trace.get("traceEvents", []) if e.get("ph") == "X"]


def stage_breakdown(spans: list[dict]) -> str:
    """Aggregate per-stage span durations into an aligned table."""
    durs: dict[str, list[float]] = defaultdict(list)
    for span in spans:
        if span["name"] in STAGES:
            durs[span["name"]].append(span["dur"] / 1e3)  # us -> ms
    total_all = sum(sum(v) for v in durs.values())
    lines = [
        f"{'stage':<10}{'spans':>7}{'total ms':>12}{'mean ms':>10}"
        f"{'max ms':>10}{'share':>8}",
        "-" * 57,
    ]
    for stage in STAGES:
        values = durs.get(stage, [])
        total = sum(values)
        share = total / total_all if total_all else 0.0
        lines.append(
            f"{stage:<10}{len(values):>7}{total:>12.3f}"
            f"{(total / len(values) if values else 0.0):>10.3f}"
            f"{(max(values) if values else 0.0):>10.3f}{share:>8.1%}"
        )
    return "\n".join(lines)


def slowest_points(spans: list[dict], limit: int = 3) -> str:
    """The ``limit`` longest points with their per-stage split."""
    points = sorted(
        (s for s in spans if s["name"] == "point"),
        key=lambda s: s["dur"],
        reverse=True,
    )[:limit]
    stage_spans = [s for s in spans if s["name"] in STAGES]
    lines = []
    for point in points:
        args = point.get("args", {})
        label = args.get("params", args.get("point", "?"))
        inside = [
            s
            for s in stage_spans
            if s["tid"] == point["tid"]
            and point["ts"] <= s["ts"]
            and s["ts"] + s["dur"] <= point["ts"] + point["dur"] + 1e-6
        ]
        split = "  ".join(
            f"{s['name']} {s['dur'] / 1e3:.2f}ms"
            + (f" [{s['args']['cache']}]" if "cache" in s.get("args", {}) else "")
            for s in sorted(inside, key=lambda s: s["ts"])
        )
        lines.append(f"{point['dur'] / 1e3:9.3f}ms  {label}\n           {split}")
    return "\n".join(lines) or "(no point spans in trace)"


def demo_trace() -> dict:
    """Trace a small CPU sweep in-memory and return the Chrome doc."""
    runner = BenchmarkRunner("cpu", ntimes=2)
    sweep = ParameterSweep(
        base=TuningParameters(array_bytes=64 * KIB),
        axes={"vector_width": [1, 2, 4, 8]},
    )
    with obs.session(trace=True) as session:
        explore(runner, sweep)
    return session.tracer.to_chrome()


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
        print(f"reading {path}")
        trace = json.loads(path.read_text())
    else:
        print("no trace file given; tracing a small cpu sweep in-memory")
        trace = demo_trace()
    spans = load_spans(trace)
    print(f"\n{len(spans)} spans\n")
    print(stage_breakdown(spans))
    print("\nslowest points")
    print("-" * 57)
    print(slowest_points(spans))


if __name__ == "__main__":
    main()
