#!/usr/bin/env python
"""Quickstart: run the four STREAM kernels on every simulated target.

This is the MP-STREAM "hello world": enumerate the simulated platforms,
run COPY/SCALE/ADD/TRIAD at 4 MB per array with each target's optimal
loop management, and print the classic STREAM table per device.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import BenchmarkRunner, TuningParameters, get_platforms, optimal_loop_for
from repro.core import stream_table
from repro.units import MIB


def main() -> None:
    print("Simulated OpenCL platforms")
    print("=" * 64)
    for platform in get_platforms():
        for device in platform.devices:
            info = device.info()
            print(
                f"  [{device.short_name:8s}] {info['name']}\n"
                f"             peak {info['peak_global_bandwidth_gbs']} GB/s, "
                f"{info['max_compute_units']} compute unit(s)"
            )
    print()

    for platform in get_platforms():
        for device in platform.devices:
            params = TuningParameters(
                array_bytes=4 * MIB,
                loop=optimal_loop_for(device),
            )
            runner = BenchmarkRunner(device, ntimes=5)
            results = runner.run_all_kernels(params)
            print(f"--- {device.short_name}: {device.name}")
            print(f"    ({params.describe()})")
            print(stream_table(results))
            print()


if __name__ == "__main__":
    main()
