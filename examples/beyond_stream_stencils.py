#!/usr/bin/env python
"""Beyond STREAM: stencils and reductions through the same stack.

The paper motivates MP-STREAM with the Berkeley dwarfs — seven of the
thirteen are memory-bound, and most of those look like stencils or
sparse sweeps, not pure copies. This example shows the reproduction's
stack is not hard-wired to the four STREAM kernels: it writes three
richer kernels directly against the OpenCL-like API, runs them on every
target, and relates their bandwidth to the COPY roofline.

* a 3-point 1-D stencil (``c[i] = (a[i-1] + a[i] + a[i+1]) / 3``),
* a 5-point 2-D stencil on an NxN grid,
* a dot-product reduction (vectorized by the specializer's
  sum-reduction support).

Run:  python examples/beyond_stream_stencils.py
"""

from __future__ import annotations

import numpy as np

from repro import find_device
from repro.ocl import CommandQueue, Context, Program

N1D = 1 << 20  # 4 MiB of int32
N2D = 1 << 10  # 1024 x 1024 grid

STENCIL_1D = """
__kernel void stencil3(__global const int *a, __global int *c) {
    for (int i = 1; i < N - 1; i++) {
        c[i] = (a[i - 1] + a[i] + a[i + 1]) / 3;
    }
}
"""

STENCIL_2D = """
__kernel void stencil5(__global const int *a, __global int *c) {
    for (int i = 1; i < NI - 1; i++) {
        for (int j = 1; j < NJ - 1; j++) {
            int idx = i * NJ + j;
            c[idx] = (a[idx] + a[idx - 1] + a[idx + 1]
                      + a[idx - NJ] + a[idx + NJ]) / 5;
        }
    }
}
"""

DOT = """
__kernel void dot_k(__global const double *a, __global const double *b,
                    __global double *c) {
    double acc = 0.0;
    for (int i = 0; i < N; i++) {
        acc += a[i] * b[i];
    }
    c[0] = acc;
}
"""


def run_kernel(target, src, name, defines, buffers, moved_bytes, reps=3):
    device = find_device(target)
    ctx = Context(device)
    queue = CommandQueue(ctx, device)
    program = Program(ctx, src).build(defines=defines)
    kernel = program.create_kernel(name)
    devbufs = {}
    for arg, host in buffers.items():
        devbufs[arg] = ctx.create_buffer(hostbuf=host)
        devbufs[arg].residency = "device"
    kernel.set_args(**devbufs)
    best = None
    for _ in range(1 + reps):  # one warm-up
        ev = queue.enqueue_nd_range_kernel(kernel, (1,))
        best = ev.latency if best is None else min(best, ev.latency)
    return moved_bytes / best / 1e9, devbufs


def check_stencil3(devbufs, a):
    got = devbufs["c"].view(np.int32)
    want = ((a[:-2].astype(np.int64) + a[1:-1] + a[2:]) // 3).astype(np.int32)
    # C division truncates toward zero; inputs here are non-negative
    assert np.array_equal(got[1:-1], want)


def main() -> None:
    rng = np.random.default_rng(7)
    a1 = rng.integers(0, 1000, N1D).astype(np.int32)
    a2 = rng.integers(0, 1000, N2D * N2D).astype(np.int32)
    ad = rng.random(N1D)
    bd = rng.random(N1D)

    print(f"{'target':9s} {'copy GB/s':>10} {'stencil3':>10} "
          f"{'stencil5':>10} {'dot':>10}")
    print("-" * 55)
    for target in ("aocl", "sdaccel", "cpu", "gpu"):
        # COPY reference at the same footprint (single work-item flat loop)
        copy_bw, _ = run_kernel(
            target,
            "__kernel void k(__global const int *a, __global int *c)"
            "{ for (int i = 0; i < N; i++) c[i] = a[i]; }",
            "k",
            {"N": N1D},
            {"a": a1, "c": np.zeros(N1D, np.int32)},
            moved_bytes=2 * 4 * N1D,
        )
        s3_bw, bufs3 = run_kernel(
            target,
            STENCIL_1D,
            "stencil3",
            {"N": N1D},
            {"a": a1, "c": np.zeros(N1D, np.int32)},
            moved_bytes=2 * 4 * N1D,  # each element read ~once (reuse), written once
        )
        check_stencil3(bufs3, a1)
        s5_bw, _ = run_kernel(
            target,
            STENCIL_2D,
            "stencil5",
            {"NI": N2D, "NJ": N2D},
            {"a": a2, "c": np.zeros(N2D * N2D, np.int32)},
            moved_bytes=2 * 4 * N2D * N2D,
        )
        dot_bw, dotbufs = run_kernel(
            target,
            DOT,
            "dot_k",
            {"N": N1D},
            {"a": ad, "b": bd, "c": np.zeros(1)},
            moved_bytes=2 * 8 * N1D,
        )
        got = dotbufs["c"].view(np.float64)[0]
        assert abs(got - np.dot(ad, bd)) < 1e-6 * abs(np.dot(ad, bd))
        print(
            f"{target:9s} {copy_bw:>10.3f} {s3_bw:>10.3f} "
            f"{s5_bw:>10.3f} {dot_bw:>10.3f}"
        )
    print(
        "\ntakeaway: stencils and reductions run at COPY-class bandwidth on\n"
        "every target — memory-bound, exactly as the dwarfs taxonomy says —\n"
        "so the COPY-based design-space conclusions carry over to them."
    )


if __name__ == "__main__":
    main()
