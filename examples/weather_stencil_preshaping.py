#!/usr/bin/env python
"""Data pre-shaping for a time-stepping scientific workload.

The paper's §IV observation: "if data is accessed repeatedly across
many iterations, as is common [in] scientific applications e.g. in case
of a time loop over space in a weather model, then there is a strong
case ... for pre-shaping that data."

We model exactly that: a weather-like kernel sweeps a 2-D field once
per time step. The field's layout is row-major, but this phase of the
model consumes it column-by-column (think: a vertical-physics sweep
after a horizontal-dynamics phase wrote it row-wise). Two strategies:

* **naive** — run the column-major (strided) walk every time step;
* **pre-shaped** — transpose once on the host (paying one extra
  read+write of the field over PCIe-resident memory at the contiguous
  rate), then run contiguous walks for all remaining steps.

The example computes the break-even step count and total campaign time
for both strategies on each target.

Run:  python examples/weather_stencil_preshaping.py
"""

from __future__ import annotations

from repro import BenchmarkRunner, TuningParameters
from repro.core import AccessPattern, KernelName, optimal_loop_for
from repro.units import MIB, format_time

FIELD_BYTES = 16 * MIB  # one 2k x 2k field of float32
TIME_STEPS = 100


def measure(target: str) -> dict[str, float]:
    runner = BenchmarkRunner(target, ntimes=3)
    loop = optimal_loop_for(target)
    # the sweep kernel reads the field and writes a derived field: TRIAD
    # is the closest STREAM proxy (read two fields, write one is ADD; we
    # use COPY's 2-array traffic for the per-step sweep)
    strided = runner.run(
        TuningParameters(
            array_bytes=FIELD_BYTES,
            kernel=KernelName.COPY,
            pattern=AccessPattern.STRIDED,
            loop=loop,
        )
    )
    contig = runner.run(
        TuningParameters(
            array_bytes=FIELD_BYTES, kernel=KernelName.COPY, loop=loop
        )
    )
    if not (strided.ok and contig.ok):
        raise RuntimeError(f"{target}: {strided.error or contig.error}")
    t_strided = strided.min_time
    t_contig = contig.min_time
    # one transpose = read + write the field at the contiguous rate
    t_transpose = 2 * FIELD_BYTES / (contig.bandwidth_gbs * 1e9 / 2)
    naive_total = TIME_STEPS * t_strided
    preshaped_total = t_transpose + TIME_STEPS * t_contig
    gain_per_step = t_strided - t_contig
    breakeven = t_transpose / gain_per_step if gain_per_step > 0 else float("inf")
    return {
        "t_strided": t_strided,
        "t_contig": t_contig,
        "t_transpose": t_transpose,
        "naive_total": naive_total,
        "preshaped_total": preshaped_total,
        "breakeven_steps": breakeven,
        "campaign_speedup": naive_total / preshaped_total,
    }


def main() -> None:
    print(
        f"weather-model sweep: {FIELD_BYTES // MIB} MiB field, "
        f"{TIME_STEPS} time steps\n"
    )
    header = (
        f"{'target':9s} {'strided/step':>13} {'contig/step':>12} "
        f"{'transpose':>10} {'break-even':>11} {'campaign speedup':>17}"
    )
    print(header)
    print("-" * len(header))
    for target in ("aocl", "sdaccel", "cpu", "gpu"):
        m = measure(target)
        print(
            f"{target:9s} {format_time(m['t_strided']):>13} "
            f"{format_time(m['t_contig']):>12} "
            f"{format_time(m['t_transpose']):>10} "
            f"{m['breakeven_steps']:>9.1f} it "
            f"{m['campaign_speedup']:>16.1f}x"
        )
    print(
        "\ntakeaway (matches the paper): wherever strided access collapses\n"
        "(every target, catastrophically on the FPGAs), one host-side\n"
        "transpose amortizes within a handful of time steps."
    )


if __name__ == "__main__":
    main()
