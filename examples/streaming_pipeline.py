#!/usr/bin/env python
"""Double-buffered streaming: hiding PCIe time behind kernels.

MP-STREAM's host<->device "stream locus" shows the interconnect is far
slower than device DRAM. For workloads whose data lives on the host,
the standard remedy is a double-buffered pipeline on an out-of-order
queue: while the kernel chews on chunk *i*, the DMA engine uploads
chunk *i+1*. This example streams a large host-resident dataset through
the COPY kernel three ways and compares end-to-end throughput:

* **serial** — in-order queue: upload, run, download, repeat;
* **pipelined** — out-of-order queue with event dependencies;
* **device-resident** — the upper bound when data never crosses PCIe.

Run:  python examples/streaming_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import find_device
from repro.ocl import CommandQueue, Context, Program
from repro.units import MIB, format_bandwidth

CHUNK_WORDS = 1 << 20  # 4 MiB per chunk
CHUNKS = 16

# each target gets its best coding style (the lesson of Fig 3 / Fig 1b)
NDRANGE_SRC = """
__kernel void copy_k(__global const int *a, __global int *c) {
    size_t i = get_global_id(0);
    c[i] = a[i];
}
"""
FLAT_VEC_SRC = """
__kernel void copy_k(__global const int16 *a, __global int16 *c) {
    for (int i = 0; i < N; i++)
        c[i] = a[i];
}
"""


def kernel_source(target: str) -> tuple[str, dict, int]:
    """(source, defines, global_size) in each target's optimal style."""
    if target in ("aocl", "sdaccel"):
        return FLAT_VEC_SRC, {"N": CHUNK_WORDS // 16}, 1
    return NDRANGE_SRC, {}, CHUNK_WORDS


def stream(target: str, *, pipelined: bool) -> float:
    """Stream CHUNKS chunks; returns end-to-end seconds."""
    device = find_device(target)
    ctx = Context(device)
    queue = CommandQueue(ctx, device, out_of_order=pipelined)
    src, defines, gsize = kernel_source(target)
    program = Program(ctx, src).build(defines=defines)
    pairs = [
        (
            ctx.create_buffer(size=4 * CHUNK_WORDS),
            ctx.create_buffer(size=4 * CHUNK_WORDS),
        )
        for _ in range(2)
    ]
    data = np.arange(CHUNK_WORDS, dtype=np.int32)
    out = np.empty(CHUNK_WORDS, dtype=np.int32)
    last_kernel = [None, None]
    for i in range(CHUNKS):
        pair = i % 2
        a, c = pairs[pair]
        prev = last_kernel[pair]
        upload = queue.enqueue_write_buffer(
            a, data, wait_for=[prev] if (pipelined and prev) else None
        )
        kernel = program.create_kernel("copy_k").set_args(a=a, c=c)
        ev = queue.enqueue_nd_range_kernel(
            kernel, (gsize,), wait_for=[upload] if pipelined else None
        )
        queue.enqueue_read_buffer(c, out, wait_for=[ev] if pipelined else None)
        last_kernel[pair] = ev
    assert np.array_equal(out, data)
    return queue.finish()


def device_resident(target: str) -> float:
    device = find_device(target)
    ctx = Context(device)
    queue = CommandQueue(ctx, device)
    src, defines, gsize = kernel_source(target)
    program = Program(ctx, src).build(defines=defines)
    a = ctx.create_buffer(hostbuf=np.arange(CHUNK_WORDS, dtype=np.int32))
    a.residency = "device"
    c = ctx.create_buffer(size=4 * CHUNK_WORDS)
    kernel = program.create_kernel("copy_k").set_args(a=a, c=c)
    for _ in range(CHUNKS):
        queue.enqueue_nd_range_kernel(kernel, (gsize,))
    return queue.finish()


def main() -> None:
    total_bytes = 2 * 4 * CHUNK_WORDS * CHUNKS  # copy counts read+write
    print(
        f"streaming {CHUNKS} x {4 * CHUNK_WORDS // MIB} MiB chunks "
        f"through the COPY kernel\n"
    )
    header = f"{'target':9s} {'serial':>14} {'pipelined':>14} {'resident':>14} {'overlap gain':>13}"
    print(header)
    print("-" * len(header))
    for target in ("gpu", "aocl", "sdaccel"):
        t_serial = stream(target, pipelined=False)
        t_pipe = stream(target, pipelined=True)
        t_res = device_resident(target)
        fmt = lambda t: format_bandwidth(total_bytes / t / 1)  # noqa: E731
        print(
            f"{target:9s} {fmt(t_serial):>14} {fmt(t_pipe):>14} "
            f"{fmt(t_res):>14} {t_serial / t_pipe:>12.2f}x"
        )
    print(
        "\ntakeaway: when kernel time and transfer time are comparable,\n"
        "overlap nearly doubles throughput; where one side dominates\n"
        "(the GPU kernel outruns PCIe; SDAccel's kernel is slower than\n"
        "PCIe) the pipeline converges to the slower stage, and device\n"
        "residency remains the real answer."
    )


if __name__ == "__main__":
    main()
