#!/usr/bin/env python
"""Performance portability report: one kernel source, four targets.

The paper's closing observation is that OpenCL is source-portable but
not performance-portable. This example makes that concrete: it takes
*one* fixed kernel configuration (the style a CPU/GPU programmer would
naturally write — NDRange, scalar types) and runs it unchanged on all
four targets; then it lets each target use its own tuned configuration
and reports how much performance the "portable" version leaves behind.

It also prints the host<->device (PCIe) rates and — as a reality
anchor — a real numpy STREAM measurement of the machine running this
script.

Run:  python examples/portability_report.py
"""

from __future__ import annotations

from repro import BenchmarkRunner, TuningParameters
from repro.core import LoopManagement, StreamLocus, optimal_loop_for
from repro.hoststream import run_host_stream
from repro.units import MIB

ARRAY = 4 * MIB
TARGETS = ("aocl", "sdaccel", "cpu", "gpu")


def tuned_params(target: str) -> TuningParameters:
    """Per-target best practice from the paper's experiments."""
    loop = optimal_loop_for(target)
    width = 16 if target in ("aocl", "sdaccel") else 1
    return TuningParameters(array_bytes=ARRAY, loop=loop, vector_width=width)


def main() -> None:
    portable = TuningParameters(array_bytes=ARRAY, loop=LoopManagement.NDRANGE)
    print(f"kernel: COPY at {ARRAY // MIB} MiB per array\n")
    header = (
        f"{'target':9s} {'portable (NDRange, w=1)':>24} {'tuned':>12} "
        f"{'left behind':>12} {'peak':>7}"
    )
    print(header)
    print("-" * len(header))
    for target in TARGETS:
        runner = BenchmarkRunner(target, ntimes=3)
        naive = runner.run(portable)
        tuned = runner.run(tuned_params(target))
        peak = float(runner.device.info()["peak_global_bandwidth_gbs"])
        gap = tuned.bandwidth_gbs / naive.bandwidth_gbs if naive.ok else float("inf")
        print(
            f"{target:9s} {naive.bandwidth_gbs:>20.2f} GB/s "
            f"{tuned.bandwidth_gbs:>7.2f} GB/s "
            f"{gap:>10.1f}x {peak:>6.1f}"
        )

    print("\nhost<->device streams (PCIe), 4 MiB transfers:")
    for target in ("gpu", "aocl", "sdaccel"):
        r = BenchmarkRunner(target, ntimes=3).run(
            TuningParameters(array_bytes=ARRAY, locus=StreamLocus.HOST)
        )
        print(f"  {target:9s} {r.bandwidth_gbs:6.2f} GB/s")

    print("\nreal numpy STREAM on THIS machine (for scale):")
    host = run_host_stream(array_bytes=64 * MIB, ntimes=5)
    for kernel, r in host.items():
        print(f"  {kernel.value:6s} {r.bandwidth_gbs:7.2f} GB/s")

    print(
        "\ntakeaway (matches the paper): the same OpenCL source spans two\n"
        "orders of magnitude across targets, and the FPGA targets need\n"
        "target-specific loop styles and vector widths to approach their\n"
        "(already modest) peaks."
    )


if __name__ == "__main__":
    main()
