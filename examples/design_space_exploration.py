#!/usr/bin/env python
"""Automated design-space exploration of an FPGA memory architecture.

The paper's motivating use case: a compiler (or an engineer) needs to
pick kernel-code parameters for an FPGA target *before* spending hours
in synthesis. This example sweeps the MP-STREAM tuning space on the
simulated Stratix V (AOCL) and Virtex-7 (SDAccel) targets:

* loop management x vector width x unroll factor,
* plus the AOCL vendor knobs (SIMD work-items, compute units),

then reports the best configuration found, what it costs in FPGA
resources, and how far it sits from the board's peak bandwidth.

Run:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro import BenchmarkRunner, ParameterSweep, TuningParameters, explore
from repro.core import LoopManagement, results_table
from repro.units import MIB, format_bandwidth


def explore_target(target: str) -> None:
    print(f"=== {target}: generic design space " + "=" * 30)
    runner = BenchmarkRunner(target, ntimes=3)
    base = TuningParameters(array_bytes=4 * MIB, loop=LoopManagement.FLAT)
    sweep = ParameterSweep(
        base=base,
        axes={
            "loop": list(LoopManagement),
            "vector_width": [1, 2, 4, 8, 16],
            "unroll": [1, 4],
        },
    )
    results = explore(runner, sweep)
    ok = results.ok()
    failed = [r for r in results if not r.ok]

    print(
        results_table(
            ok,
            columns=["loop", "vector_width", "unroll", "bandwidth_gbs", "validated"],
        )
    )
    for changes, reason in sweep.skipped:
        print(f"  (skipped {changes}: {reason.splitlines()[0]})")
    for r in failed:
        print(f"  (failed  {r.params.describe()}: {r.error.splitlines()[0]})")

    best = results.best()
    assert best is not None
    peak = runner.device.info()["peak_global_bandwidth_gbs"]
    print(
        f"\nbest configuration: {best.params.describe()}\n"
        f"  sustained {format_bandwidth(best.bandwidth_gbs * 1e9)} "
        f"of {peak} GB/s peak "
        f"({100 * best.bandwidth_gbs / float(peak):.1f}%)"
    )
    if "resources" in best.detail:
        print(f"  resources: {best.detail['resources']}")
    if "fmax_hz" in best.detail:
        print(f"  kernel clock: {best.detail['fmax_hz'] / 1e6:.1f} MHz")
    print()


def explore_aocl_vendor_knobs() -> None:
    print("=== aocl: vendor knobs vs native vectorization " + "=" * 18)
    runner = BenchmarkRunner("aocl", ntimes=3)
    rows = []
    for n in (1, 2, 4, 8, 16):
        vec = runner.run(
            TuningParameters(
                array_bytes=4 * MIB, loop=LoopManagement.FLAT, vector_width=n
            )
        )
        simd = runner.run(
            TuningParameters(
                array_bytes=4 * MIB,
                loop=LoopManagement.NDRANGE,
                reqd_work_group_size=256,
                num_simd_work_items=n,
            )
        )
        cu = runner.run(
            TuningParameters(
                array_bytes=4 * MIB,
                loop=LoopManagement.NDRANGE,
                reqd_work_group_size=256,
                num_compute_units=n,
            )
        )
        rows.append((n, vec, simd, cu))

    print(f"{'N':>3} {'vector':>10} {'simd':>10} {'compute-units':>14}")
    for n, vec, simd, cu in rows:
        def fmt(r):
            return f"{r.bandwidth_gbs:8.2f}" if r.ok else "   (fail)"

        print(f"{n:>3} {fmt(vec):>10} {fmt(simd):>10} {fmt(cu):>14}")
    print(
        "\ntakeaway (matches the paper): native OpenCL vectorization scales\n"
        "further and more predictably than the vendor-specific knobs, and\n"
        "uses less of the FPGA fabric doing it.\n"
    )


def main() -> None:
    explore_target("aocl")
    explore_target("sdaccel")
    explore_aocl_vendor_knobs()


if __name__ == "__main__":
    main()
