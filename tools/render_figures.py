#!/usr/bin/env python
"""Render every paper figure to a plain-text chart + data table.

Writes ``figures/figN*.txt`` files containing the ASCII chart and the
numeric series for each figure of the paper, at the paper's scale.
Useful for eyeballing the reproduction without a plotting stack.

    python tools/render_figures.py [output-dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import figures
from repro.core import ascii_chart, series_table

DEFAULT_SIZES = figures.DEFAULT_SIZES


def render(name: str, series: dict, *, x_label: str, log_x: bool = True) -> str:
    chart = ascii_chart(
        series, width=72, height=20, log_x=log_x, log_y=True, title=name
    )
    table = series_table(series, x_label=x_label)
    return f"{chart}\n\n{table}\n"


def main(out_dir: str) -> None:
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    jobs = {
        "fig1a_array_size": (
            lambda: figures.fig1a_array_size(sizes=DEFAULT_SIZES, ntimes=3),
            {"x_label": "MiB/array", "log_x": True},
        ),
        "fig1b_vector_width": (
            lambda: figures.fig1b_vector_width(ntimes=3),
            {"x_label": "vector width", "log_x": True},
        ),
        "fig2_contiguity": (
            lambda: figures.fig2_contiguity(sizes=DEFAULT_SIZES, ntimes=3),
            {"x_label": "MiB/array", "log_x": True},
        ),
        "fig3_loop_management": (
            lambda: figures.fig3_loop_management(ntimes=3),
            {"x_label": "target index (aocl,sdaccel,cpu,gpu)", "log_x": False},
        ),
        "fig4a_all_kernels": (
            lambda: figures.fig4a_all_kernels(ntimes=3),
            {"x_label": "target index (aocl,sdaccel,cpu,gpu)", "log_x": False},
        ),
        "fig4b_aocl_optimizations": (
            lambda: figures.fig4b_aocl_optimizations(ntimes=3),
            {"x_label": "N", "log_x": True},
        ),
        "extra_pcie_streams": (
            lambda: figures.pcie_streams(sizes=DEFAULT_SIZES, ntimes=3),
            {"x_label": "MiB/transfer", "log_x": True},
        ),
        "extra_unroll": (
            lambda: figures.ablation_unroll(ntimes=3),
            {"x_label": "unroll factor", "log_x": True},
        ),
    }
    for name, (fn, opts) in jobs.items():
        series = fn()
        text = render(name, series, **opts)  # type: ignore[arg-type]
        path = out / f"{name}.txt"
        path.write_text(text)
        print(f"wrote {path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "figures")
