#!/usr/bin/env python
"""Chaos harness: kill real campaigns mid-sweep, prove resume loses nothing.

The crash-consistency contract (docs/SCHEDULING.md) is that a campaign
killed at *any* instant — between points, mid-journal-append, or while
draining after SIGTERM — resumes from its journal to a final ResultSet
whose ordered fingerprints are identical to an uninterrupted run's.
Unit tests exercise the journal in-process; this harness is the
end-to-end proof against a **real operating-system process**:

1. run the campaign uninterrupted, in-process, and keep its ordered
   result fingerprints (the baseline);
2. launch ``python -m repro.cli sweep --journal J --durable-journal``
   as a subprocess and interrupt it mid-sweep:

   - ``--mode kill``: SIGKILL (``kill -9``) once the journal holds
     ``--kill-at`` records — no handler runs, whatever hit the disk is
     all that survives;
   - ``--mode term``: SIGTERM at the same instant — the scheduler
     drains in-flight points, checkpoints the journal, and exits with
     code 130;
   - ``--mode torn``: no signal at all — a searched-seed
     ``journal_write`` fault tears a journal append partway through a
     record and hard-exits (exit code 5), the worst-case crash a
     power loss can produce;

3. ``fsck`` the survivor journal (both in-process and through the
   ``mp-stream journal fsck`` CLI) — a crash may leave a torn tail,
   but never a corrupt or stale record;
4. resume the campaign in-process from the survivor journal and
   compare its ordered fingerprints against the baseline.

Used by ``tests/test_chaos.py`` (as a library) and the CI chaos smoke
job (as a CLI). Run from the repository root::

    python tools/chaos.py --backend process --mode kill
    python tools/chaos.py --backend serial --mode torn
    python tools/chaos.py --backend thread --mode term \
        --faults worker_crash=0.4,seed=11
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core import (  # noqa: E402
    ParameterSweep,
    TORN_WRITE_EXIT_CODE,
    SweepJournal,
    explore,
    fsck_journal,
    point_fingerprint,
)
from repro.core.history import JournalFsck  # noqa: E402
from repro.core.params import LoopManagement, TuningParameters  # noqa: E402
from repro.core.runner import BenchmarkRunner  # noqa: E402
from repro.faults import FaultPlan, FaultSpec  # noqa: E402
from repro.units import parse_size  # noqa: E402

__all__ = [
    "ChaosOutcome",
    "DEFAULT_AXES",
    "autotune_child_argv",
    "child_argv",
    "find_torn_seed",
    "journal_records",
    "main",
    "run_autotune_chaos",
    "run_chaos",
    "run_search_chaos",
    "run_uninterrupted",
    "search_child_argv",
    "strip_journal_faults",
]

#: grid the chaos campaigns sweep: 12 cpu points, ~0.1 s each — slow
#: enough that a poller reliably interrupts mid-sweep, fast enough for CI
DEFAULT_AXES: dict[str, list[object]] = {
    "loop": [LoopManagement.FLAT, LoopManagement.NESTED],
    "vector_width": [1, 2, 4],
    "unroll": [1, 2],
}
DEFAULT_TARGET = "cpu"
DEFAULT_SIZE = "8MiB"
DEFAULT_NTIMES = 3
DEFAULT_KILL_AT = 3

#: what the scheduler's graceful SIGTERM/SIGINT path exits with
EXIT_INTERRUPTED = 130

#: fault sites that target the journal itself — stripped from baseline
#: and resume runs, which must see only the campaign-level faults
_JOURNAL_SITES = ("journal_write", "journal_fsync", "disk_full")

_POLL_S = 0.015


def strip_journal_faults(faults: FaultPlan | None) -> FaultPlan | None:
    """The same plan without journal-site faults (None when empty).

    Baseline and resume runs share the crashed run's *engine* faults
    (a ``worker_crash`` failure is a data point and must reproduce)
    but not its journal faults: a torn-write draw is keyed on the
    journal sequence number, and replaying it against the resumed
    journal would tear the same append forever.
    """
    if faults is None:
        return None
    rates = tuple(
        (site, rate)
        for site, rate in faults.spec.rates
        if site not in _JOURNAL_SITES
    )
    if not rates:
        return None
    return FaultPlan(
        FaultSpec(rates=rates, seed=faults.spec.seed, stall_s=faults.spec.stall_s)
    )


def _build_sweep(size: str, axes: dict) -> ParameterSweep:
    base = TuningParameters(array_bytes=parse_size(size))
    return ParameterSweep(base=base, axes=axes)


def run_uninterrupted(
    *,
    target: str = DEFAULT_TARGET,
    size: str = DEFAULT_SIZE,
    ntimes: int = DEFAULT_NTIMES,
    axes: dict | None = None,
    faults: FaultPlan | None = None,
) -> list[str]:
    """Ordered result fingerprints of the never-interrupted campaign.

    Serial and in-process: fingerprints are backend-independent, so one
    baseline serves every chaos scenario over the same grid and faults.
    """
    runner = BenchmarkRunner(
        target, ntimes=ntimes, faults=strip_journal_faults(faults)
    )
    results = explore(runner, _build_sweep(size, axes or DEFAULT_AXES))
    return [r.fingerprint() for r in results]


def child_argv(
    journal: str | Path,
    *,
    target: str = DEFAULT_TARGET,
    size: str = DEFAULT_SIZE,
    ntimes: int = DEFAULT_NTIMES,
    axes: dict | None = None,
    backend: str = "serial",
    jobs: int = 1,
    faults_spec: str | None = None,
) -> list[str]:
    """The real command line the chaos subprocess runs."""
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "sweep",
        "--target",
        target,
        "--size",
        size,
        "--ntimes",
        str(ntimes),
        "--journal",
        str(journal),
        "--durable-journal",
        "--backend",
        backend,
        "--jobs",
        str(jobs),
    ]
    for name, values in (axes or DEFAULT_AXES).items():
        argv += ["--axis", f"{name}={','.join(str(v) for v in values)}"]
    if faults_spec:
        argv += ["--inject-faults", faults_spec]
    return argv


def child_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def journal_records(path: str | Path) -> int:
    """Complete (newline-terminated) records currently in the live file."""
    try:
        return Path(path).read_bytes().count(b"\n")
    except FileNotFoundError:
        return 0


def find_torn_seed(
    *,
    target: str = DEFAULT_TARGET,
    axes: dict | None = None,
    tear_at: int = 1,
    rate: float = 0.5,
    limit: int = 20000,
) -> int:
    """A fault seed whose first ``journal_write`` tear lands at ``tear_at``.

    Journal fault draws are keyed on the journal *sequence number*, and
    a serial campaign appends in grid order, so the draw schedule is
    fully predictable: search seeds until the tear fires exactly at
    record ``tear_at`` (>= 1, so the crashed journal is non-empty) and
    at no earlier record.
    """
    if tear_at < 1:
        raise ValueError(f"tear_at must be >= 1, got {tear_at}")
    engine_target = BenchmarkRunner(target, ntimes=1).engine.target
    points = list(_build_sweep(DEFAULT_SIZE, axes or DEFAULT_AXES).points())
    if tear_at >= len(points):
        raise ValueError(f"tear_at {tear_at} >= grid size {len(points)}")
    keys = [point_fingerprint(engine_target, p) for p in points]
    for seed in range(limit):
        plan = FaultPlan(FaultSpec(rates=(("journal_write", rate),), seed=seed))
        draws = [
            plan.should_fire("journal_write", keys[i], i)
            for i in range(tear_at + 1)
        ]
        if draws[tear_at] and not any(draws[:tear_at]):
            return seed
    raise RuntimeError(
        f"no journal_write seed under {limit} tears exactly at record {tear_at}"
    )


@dataclass
class ChaosOutcome:
    """Everything one chaos scenario observed, plus the verdict."""

    mode: str
    backend: str
    interrupted: bool
    returncode: int | None
    records_at_interrupt: int
    restored: int
    fsck: JournalFsck | None
    baseline: list[str]
    resumed: list[str]
    #: violated expectations; empty means the scenario passed
    notes: list[str] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return self.baseline == self.resumed

    @property
    def ok(self) -> bool:
        return not self.notes

    def describe(self) -> str:
        lines = [
            f"chaos {self.mode} on {self.backend} backend:",
            f"  child: returncode={self.returncode} "
            f"interrupted={self.interrupted} "
            f"journal records at interrupt={self.records_at_interrupt}",
        ]
        if self.fsck is not None:
            lines.append(
                f"  fsck: {self.fsck.valid} valid, "
                f"{self.fsck.torn_tail} torn, {self.fsck.corrupt} corrupt, "
                f"{self.fsck.stale} stale"
            )
        lines.append(
            f"  resume: {self.restored} restored, "
            f"{len(self.resumed)}/{len(self.baseline)} fingerprints, "
            f"identical={self.identical}"
        )
        for note in self.notes:
            lines.append(f"  FAIL: {note}")
        lines.append(f"  verdict: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def _run_child(
    argv: list[str],
    journal: Path,
    *,
    mode: str,
    kill_at: int,
    timeout: float,
) -> tuple[int | None, bool, int]:
    """Run the subprocess, interrupting per ``mode``.

    Returns ``(returncode, interrupted, records_when_interrupted)``.
    """
    proc = subprocess.Popen(
        argv,
        cwd=ROOT,
        env=child_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    sig = {"kill": signal.SIGKILL, "term": signal.SIGTERM}.get(mode)
    fired = False
    records_at = 0
    deadline = time.monotonic() + timeout
    try:
        while proc.poll() is None and time.monotonic() < deadline:
            if sig is not None and not fired:
                records = journal_records(journal)
                if records >= kill_at:
                    records_at = records
                    proc.send_signal(sig)
                    fired = True
            time.sleep(_POLL_S)
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
            return proc.returncode, fired, records_at
    finally:
        if proc.poll() is None:  # pragma: no cover - emergency cleanup
            proc.kill()
    if mode == "torn":
        # the child interrupts itself: death by injected torn write
        fired = proc.returncode == TORN_WRITE_EXIT_CODE
        records_at = journal_records(journal)
    return proc.returncode, fired, records_at


def run_chaos(
    *,
    mode: str = "kill",
    backend: str = "serial",
    jobs: int = 1,
    target: str = DEFAULT_TARGET,
    size: str = DEFAULT_SIZE,
    ntimes: int = DEFAULT_NTIMES,
    axes: dict | None = None,
    faults_spec: str | None = None,
    kill_at: int = DEFAULT_KILL_AT,
    timeout: float = 120.0,
    workdir: str | Path | None = None,
    baseline: list[str] | None = None,
) -> ChaosOutcome:
    """One full chaos scenario: baseline, interrupted child, fsck, resume.

    ``baseline`` short-circuits the uninterrupted run when the caller
    already has fingerprints for this grid + faults (tests share one).
    """
    if mode not in ("kill", "term", "torn"):
        raise ValueError(f"unknown chaos mode {mode!r}")
    axes = axes or DEFAULT_AXES
    import tempfile

    tmp = None
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="mp-stream-chaos-")
        workdir = tmp.name
    journal = Path(workdir) / f"chaos-{mode}-{backend}.jsonl"

    try:
        faults = FaultPlan.parse(faults_spec) if faults_spec else None
        if mode == "torn":
            if faults is not None:
                raise ValueError("torn mode chooses its own fault spec")
            seed = find_torn_seed(target=target, axes=axes, tear_at=kill_at - 1)
            faults_spec = f"journal_write=0.5,seed={seed}"
            faults = FaultPlan.parse(faults_spec)
        if baseline is None:
            baseline = run_uninterrupted(
                target=target, size=size, ntimes=ntimes, axes=axes, faults=faults
            )

        argv = child_argv(
            journal,
            target=target,
            size=size,
            ntimes=ntimes,
            axes=axes,
            backend=backend,
            jobs=jobs,
            faults_spec=faults_spec,
        )
        returncode, interrupted, records_at = _run_child(
            argv, journal, mode=mode, kill_at=kill_at, timeout=timeout
        )

        notes: list[str] = []
        expected = {
            "kill": -signal.SIGKILL,
            "term": EXIT_INTERRUPTED,
            "torn": TORN_WRITE_EXIT_CODE,
        }[mode]
        if not interrupted:
            notes.append(
                f"child was never interrupted (returncode {returncode}); "
                "the grid finished before the chaos landed — widen it"
            )
        elif returncode != expected:
            notes.append(
                f"child exited {returncode}, expected {expected} for {mode}"
            )

        report = None
        if journal.exists():
            # the CLI must agree with the library view of the damage
            cli = subprocess.run(
                [sys.executable, "-m", "repro.cli", "journal", "fsck",
                 str(journal)],
                cwd=ROOT,
                env=child_env(),
                capture_output=True,
                text=True,
                timeout=60,
            )
            if cli.returncode not in (0, 1):
                notes.append(
                    f"journal fsck CLI exited {cli.returncode}: {cli.stderr}"
                )
            report = fsck_journal(journal)
            if report.corrupt or report.stale:
                notes.append(
                    f"crash left {report.corrupt} corrupt / {report.stale} "
                    "stale record(s); only a torn tail is acceptable"
                )
        else:
            notes.append(f"child never created the journal {journal}")

        resumed: list[str] = []
        restored = 0
        if journal.exists():
            resume_journal = SweepJournal(journal)
            runner = BenchmarkRunner(
                target, ntimes=ntimes, faults=strip_journal_faults(faults)
            )
            results = explore(
                runner,
                _build_sweep(size, axes),
                backend=backend,
                jobs=jobs,
                journal=resume_journal,
                resume=True,
            )
            resumed = [r.fingerprint() for r in results]
            restored = resume_journal.reused
            if restored == 0:
                notes.append("resume restored nothing from the journal")
            if resumed != baseline:
                notes.append(
                    "resumed fingerprints differ from the uninterrupted run"
                )

        return ChaosOutcome(
            mode=mode,
            backend=backend,
            interrupted=interrupted,
            returncode=returncode,
            records_at_interrupt=records_at,
            restored=restored,
            fsck=report,
            baseline=baseline,
            resumed=resumed,
            notes=notes,
        )
    finally:
        if tmp is not None:
            tmp.cleanup()


def autotune_child_argv(
    journal: str | Path,
    *,
    target: str = DEFAULT_TARGET,
    size: str = DEFAULT_SIZE,
    ntimes: int = DEFAULT_NTIMES,
    axes: dict | None = None,
    backend: str = "process",
    jobs: int = 2,
    budget: int = 20,
) -> list[str]:
    """The ``mp-stream autotune`` command line the chaos subprocess runs."""
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "autotune",
        "--target",
        target,
        "--size",
        size,
        "--ntimes",
        str(ntimes),
        "--budget",
        str(budget),
        "--journal",
        str(journal),
        "--durable-journal",
        "--backend",
        backend,
        "--jobs",
        str(jobs),
    ]
    for name, values in (axes or DEFAULT_AXES).items():
        argv += ["--axis", f"{name}={','.join(str(v) for v in values)}"]
    return argv


def run_autotune_chaos(
    *,
    backend: str = "process",
    jobs: int = 2,
    target: str = DEFAULT_TARGET,
    size: str = DEFAULT_SIZE,
    ntimes: int = DEFAULT_NTIMES,
    axes: dict | None = None,
    budget: int = 20,
    kill_at: int = DEFAULT_KILL_AT,
    timeout: float = 120.0,
    workdir: str | Path | None = None,
) -> ChaosOutcome:
    """Kill a real ``mp-stream autotune`` run mid-trajectory, then resume.

    The invariant is the tuner's: a resumed coordinate descent replays
    restored evaluations from the journal and walks the *identical*
    improvement trajectory the uninterrupted tuner walks.
    """
    from repro.core import autotune, optimal_loop_for

    axes = axes or DEFAULT_AXES

    def run_tuner(journal: SweepJournal | None) -> list[str]:
        seed = TuningParameters(
            array_bytes=parse_size(size), loop=optimal_loop_for(target)
        )
        out = autotune(
            BenchmarkRunner(target, ntimes=ntimes),
            axes,
            seed=seed,
            budget=budget,
            backend=backend,
            jobs=jobs,
            journal=journal,
            resume=journal is not None,
        )
        return [f"{desc} -> {bw:.9g}" for desc, bw in out.trajectory]

    import tempfile

    tmp = None
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="mp-stream-chaos-")
        workdir = tmp.name
    journal = Path(workdir) / f"chaos-autotune-{backend}.jsonl"

    try:
        baseline = run_tuner(None)
        argv = autotune_child_argv(
            journal,
            target=target,
            size=size,
            ntimes=ntimes,
            axes=axes,
            backend=backend,
            jobs=jobs,
            budget=budget,
        )
        returncode, interrupted, records_at = _run_child(
            argv, journal, mode="kill", kill_at=kill_at, timeout=timeout
        )

        notes: list[str] = []
        if not interrupted:
            notes.append(
                f"tuner was never interrupted (returncode {returncode})"
            )
        elif returncode != -signal.SIGKILL:
            notes.append(f"tuner exited {returncode}, expected -SIGKILL")

        report = None
        resumed: list[str] = []
        restored = 0
        if journal.exists():
            report = fsck_journal(journal)
            if report.corrupt or report.stale:
                notes.append(
                    f"crash left {report.corrupt} corrupt / {report.stale} "
                    "stale record(s)"
                )
            resume_journal = SweepJournal(journal)
            resumed = run_tuner(resume_journal)
            restored = resume_journal.reused
            if restored == 0:
                notes.append("resume restored nothing from the journal")
            if resumed != baseline:
                notes.append(
                    "resumed trajectory differs from the uninterrupted run"
                )
        else:
            notes.append(f"tuner never created the journal {journal}")

        return ChaosOutcome(
            mode="autotune-kill",
            backend=backend,
            interrupted=interrupted,
            returncode=returncode,
            records_at_interrupt=records_at,
            restored=restored,
            fsck=report,
            baseline=baseline,
            resumed=resumed,
            notes=notes,
        )
    finally:
        if tmp is not None:
            tmp.cleanup()


def search_child_argv(
    journal: str | Path,
    *,
    target: str = DEFAULT_TARGET,
    size: str = DEFAULT_SIZE,
    ntimes: int = DEFAULT_NTIMES,
    axes: dict | None = None,
    backend: str = "process",
    jobs: int = 2,
    budget: int = 8,
) -> list[str]:
    """``mp-stream autotune --strategy multifidelity`` for the chaos child."""
    argv = autotune_child_argv(
        journal,
        target=target,
        size=size,
        ntimes=ntimes,
        axes=axes,
        backend=backend,
        jobs=jobs,
        budget=budget,
    )
    return argv + ["--strategy", "multifidelity"]


def run_search_chaos(
    *,
    backend: str = "process",
    jobs: int = 2,
    target: str = DEFAULT_TARGET,
    size: str = DEFAULT_SIZE,
    ntimes: int = DEFAULT_NTIMES,
    axes: dict | None = None,
    budget: int = 8,
    kill_at: int = DEFAULT_KILL_AT,
    timeout: float = 120.0,
    workdir: str | Path | None = None,
) -> ChaosOutcome:
    """Kill a multi-fidelity search mid-rung, then resume from the journal.

    The searcher's invariant: restored evaluations count against the
    budget, so the resumed search walks the identical rung-by-rung
    trajectory — pinned here as the list of rung fingerprints plus the
    overall trajectory hash and winning point.
    """
    from repro.core import multifidelity_search

    axes = axes or DEFAULT_AXES

    def run_search(journal: SweepJournal | None) -> list[str]:
        seed = TuningParameters(array_bytes=parse_size(size))
        out = multifidelity_search(
            BenchmarkRunner(target, ntimes=ntimes),
            axes,
            seed=seed,
            budget=budget,
            backend=backend,
            jobs=jobs,
            journal=journal,
            resume=journal is not None,
        )
        return out.rung_fingerprints() + [
            out.trajectory_fingerprint(),
            out.best.fingerprint(),
        ]

    import tempfile

    tmp = None
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="mp-stream-chaos-")
        workdir = tmp.name
    journal = Path(workdir) / f"chaos-search-{backend}.jsonl"

    try:
        baseline = run_search(None)
        argv = search_child_argv(
            journal,
            target=target,
            size=size,
            ntimes=ntimes,
            axes=axes,
            backend=backend,
            jobs=jobs,
            budget=budget,
        )
        returncode, interrupted, records_at = _run_child(
            argv, journal, mode="kill", kill_at=kill_at, timeout=timeout
        )

        notes: list[str] = []
        if not interrupted:
            notes.append(
                f"search was never interrupted (returncode {returncode})"
            )
        elif returncode != -signal.SIGKILL:
            notes.append(f"search exited {returncode}, expected -SIGKILL")

        report = None
        resumed: list[str] = []
        restored = 0
        if journal.exists():
            report = fsck_journal(journal)
            if report.corrupt or report.stale:
                notes.append(
                    f"crash left {report.corrupt} corrupt / {report.stale} "
                    "stale record(s)"
                )
            resume_journal = SweepJournal(journal)
            resumed = run_search(resume_journal)
            restored = resume_journal.reused
            if restored == 0:
                notes.append("resume restored nothing from the journal")
            if resumed != baseline:
                notes.append(
                    "resumed search trajectory differs from the "
                    "uninterrupted run"
                )
        else:
            notes.append(f"search never created the journal {journal}")

        return ChaosOutcome(
            mode="search-kill",
            backend=backend,
            interrupted=interrupted,
            returncode=returncode,
            records_at_interrupt=records_at,
            restored=restored,
            fsck=report,
            baseline=baseline,
            resumed=resumed,
            notes=notes,
        )
    finally:
        if tmp is not None:
            tmp.cleanup()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="kill a real campaign mid-sweep and verify lossless resume"
    )
    parser.add_argument("--mode",
                        choices=("kill", "term", "torn", "autotune", "search"),
                        default="kill")
    parser.add_argument("--backend", default="serial",
                        choices=("serial", "thread", "process"))
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--target", default=DEFAULT_TARGET)
    parser.add_argument("--size", default=DEFAULT_SIZE)
    parser.add_argument("--ntimes", type=int, default=DEFAULT_NTIMES)
    parser.add_argument("--kill-at", type=int, default=DEFAULT_KILL_AT,
                        metavar="N", help="interrupt once the journal holds "
                        f"N records (default: {DEFAULT_KILL_AT})")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="engine fault spec shared by all three runs, "
                        "e.g. worker_crash=0.4,seed=11")
    parser.add_argument("--timeout", type=float, default=120.0)
    args = parser.parse_args(argv)

    jobs = args.jobs if args.backend != "serial" else 1
    if args.mode == "autotune":
        outcome = run_autotune_chaos(
            backend=args.backend,
            jobs=jobs,
            target=args.target,
            size=args.size,
            ntimes=args.ntimes,
            kill_at=args.kill_at,
            timeout=args.timeout,
        )
    elif args.mode == "search":
        outcome = run_search_chaos(
            backend=args.backend,
            jobs=jobs,
            target=args.target,
            size=args.size,
            ntimes=args.ntimes,
            kill_at=args.kill_at,
            timeout=args.timeout,
        )
    else:
        outcome = run_chaos(
            mode=args.mode,
            backend=args.backend,
            jobs=jobs,
            target=args.target,
            size=args.size,
            ntimes=args.ntimes,
            faults_spec=args.faults,
            kill_at=args.kill_at,
            timeout=args.timeout,
        )
    print(outcome.describe())
    return 0 if outcome.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
