#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md: paper-vs-measured for every figure.

Runs every figure of the paper's evaluation at the paper's scale
through :mod:`repro.figures` and writes a Markdown report pairing each
measured series with the values digitized from the paper. Run from the
repository root:

    python tools/make_experiments_md.py [output-path]
"""

from __future__ import annotations

import sys
from datetime import date
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))

from paper_data import (  # noqa: E402
    FIG1A_PAPER,
    FIG1A_SIZES_BYTES,
    FIG1B_PAPER,
    FIG1B_WIDTHS,
    FIG2_STRIDED_PAPER,
    FIG3_PAPER,
    FIG4A_PAPER,
)

from repro import figures  # noqa: E402

TARGETS = ("aocl", "sdaccel", "cpu", "gpu")
NTIMES = 3


def fmt(x: float) -> str:
    return f"{x:.2f}" if x >= 0.1 else f"{x:.3f}"


def table(headers: list[str], rows: list[list[str]]) -> list[str]:
    out = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    out += ["| " + " | ".join(r) + " |" for r in rows]
    out.append("")
    return out


def paired_table(
    measured: dict[str, list[tuple[float, float]]],
    paper: dict[str, list[float]],
    x_label: str,
    xs: list[float],
) -> list[str]:
    headers = [x_label]
    for t in measured:
        headers += [f"{t} (model)", f"{t} (paper)"]
    rows = []
    lookup = {t: dict(pts) for t, pts in measured.items()}
    for i, x in enumerate(xs):
        row = [fmt(x)]
        for t in measured:
            got = lookup[t].get(x)
            row.append(fmt(got) if got is not None else "n/a")
            refs = paper.get(t.split("-")[0] if "-" in t else t)
            row.append(fmt(paper[t][i]) if t in paper and i < len(paper[t]) else
                       (fmt(refs[i]) if refs and i < len(refs) else "-"))
        rows.append(row)
    return table(headers, rows)


def main(out_path: str) -> None:
    lines: list[str] = []
    w = lines.append
    w("# EXPERIMENTS — paper vs. model")
    w("")
    w(
        "Every figure of the paper's evaluation, regenerated with this "
        "repository's simulated heterogeneous OpenCL stack "
        f"(`python tools/make_experiments_md.py`, last run {date.today()}). "
        "All bandwidths in decimal GB/s; paper values are digitized from "
        "the published figures. The models are calibrated once (see "
        "`repro/devices/specs.py`); the success criterion is the *shape* — "
        "orderings, crossovers, plateaus — with magnitudes within about 2x."
    )
    w("")

    # -- Fig 1a ---------------------------------------------------------------
    w("## Figure 1a — COPY bandwidth vs array size")
    w("")
    fig1a = figures.fig1a_array_size(sizes=FIG1A_SIZES_BYTES, ntimes=NTIMES)
    xs = [s / (1024 * 1024) for s in FIG1A_SIZES_BYTES]
    lines += paired_table(fig1a, FIG1A_PAPER, "MiB/array", xs)
    w(
        "Shape check: every target rises monotonically and plateaus near "
        "4 MB; sustained ordering GPU > CPU > AOCL > SDAccel — as in the "
        "paper. Note the paper's GPU keeps gaining slightly past 4 MB; the "
        "model reproduces that too."
    )
    w("")

    # -- Fig 1b ---------------------------------------------------------------
    w("## Figure 1b — COPY bandwidth vs vector width (4 MB)")
    w("")
    fig1b = figures.fig1b_vector_width(widths=FIG1B_WIDTHS, ntimes=NTIMES)
    lines += paired_table(fig1b, FIG1B_PAPER, "width", [float(v) for v in FIG1B_WIDTHS])
    w(
        "Shape check: vectorization lifts both FPGAs toward their DRAM "
        "limits (AOCL ~6x, SDAccel ~8x), barely moves the CPU, and *hurts* "
        "the GPU at width 16 (register pressure + split transactions cut "
        "the latency-hiding parallelism). The paper's CPU row sits ~25% "
        "above ours because its Fig 1b CPU numbers are also ~25% above its "
        "own Fig 1a plateau for the same configuration."
    )
    w("")

    # -- Fig 2 ----------------------------------------------------------------
    w("## Figure 2 — contiguous vs strided across sizes")
    w("")
    fig2 = figures.fig2_contiguity(sizes=FIG1A_SIZES_BYTES, ntimes=NTIMES)
    contig = {t: fig2[f"{t}-contig"] for t in TARGETS}
    strided = {t: fig2[f"{t}-strided"] for t in TARGETS}
    w("### contiguous series (same workload as Fig 1a)")
    w("")
    lines += paired_table(contig, FIG1A_PAPER, "MiB/array", xs)
    w("### strided series (column-major walk of the row-major 2-D array)")
    w("")
    lines += paired_table(strided, FIG2_STRIDED_PAPER, "MiB/array", xs)
    w(
        "Shape check: strided access degrades every target; SDAccel "
        "collapses to ~0.01 GB/s flat (blocking LSU, no bursts); CPU and "
        "GPU show the cache-reuse bump at mid sizes and fall once a column "
        "of lines outgrows LLC/L2+TLB reach. Known deviation: the paper's "
        "AOCL strided series bumps to 1.7 GB/s around 2-4 MB before "
        "falling; our model shows a monotone fall to the same floor — we "
        "could not derive a mechanism for that bump from the paper's "
        "description of the workload."
    )
    w("")

    # -- Fig 3 ----------------------------------------------------------------
    w("## Figure 3 — loop management (4 MB copy)")
    w("")
    fig3 = figures.fig3_loop_management(ntimes=NTIMES)
    nd = dict(fig3["ndrange-kernel"])
    flat = dict(fig3["kernel-loop-flat"])
    nested = dict(fig3["kernel-loop-nested"])
    rows = []
    for i, t in enumerate(TARGETS):
        p = FIG3_PAPER[t]
        rows.append(
            [
                t,
                fmt(nd[float(i)]),
                fmt(p[0]),
                fmt(flat[float(i)]),
                fmt(p[1]),
                fmt(nested[float(i)]),
                fmt(p[2]),
            ]
        )
    lines += table(
        [
            "target",
            "ndrange (model)",
            "ndrange (paper)",
            "flat (model)",
            "flat (paper)",
            "nested (model)",
            "nested (paper)",
        ],
        rows,
    )
    w(
        "Shape check: CPU/GPU want NDRange; both FPGAs want single "
        "work-item loops; SDAccel's *nested* loop beats its flat loop by "
        ">5x (inner-loop burst inference — the paper's anomaly); a single "
        "work-item on the GPU is three orders of magnitude slow. Paper "
        "values are approximate readings of its log-scale bars."
    )
    w("")

    # -- Fig 4a ---------------------------------------------------------------
    w("## Figure 4a — all four STREAM kernels (4 MB)")
    w("")
    fig4a = figures.fig4a_all_kernels(ntimes=NTIMES)
    rows = []
    for i, t in enumerate(TARGETS):
        row = [t]
        for k in ("copy", "scale", "add", "triad"):
            got = dict(fig4a[k]).get(float(i))
            row.append(fmt(got) if got is not None else "n/a")
            row.append(fmt(FIG4A_PAPER[t][k]))
        rows.append(row)
    headers = ["target"]
    for k in ("copy", "scale", "add", "triad"):
        headers += [f"{k} (model)", f"{k} (paper)"]
    lines += table(headers, rows)
    w(
        "Shape check: all four kernels are memory-bound — per target they "
        "land within a small factor of each other, with the 3-array "
        "kernels slightly higher in counted GB/s, as in the paper."
    )
    w("")

    # -- Fig 4b ---------------------------------------------------------------
    w("## Figure 4b — AOCL vendor optimizations vs native vectorization (4 MB)")
    w("")
    fig4b = figures.fig4b_aocl_optimizations(ntimes=NTIMES)
    vec = dict(fig4b["vector-width"])
    simd = dict(fig4b["simd-work-items"])
    cu = dict(fig4b["compute-units"])
    rows = []
    for n in FIG1B_WIDTHS:
        rows.append(
            [
                str(n),
                fmt(vec.get(float(n), float("nan"))) if float(n) in vec else "n/a",
                fmt(simd[float(n)]) if float(n) in simd else "did not fit",
                fmt(cu[float(n)]) if float(n) in cu else "did not fit",
                fmt(FIG1B_PAPER["aocl"][FIG1B_WIDTHS.index(n)]),
            ]
        )
    lines += table(
        ["N", "vector width", "SIMD work-items", "compute units", "paper (vector)"],
        rows,
    )
    w(
        "Shape check: native vectorization scales furthest and most "
        "predictably; SIMD work-items trail it with growing dispatch "
        "losses; compute-unit replication peaks early, then falls as the "
        "units fight over DRAM banks — and at N=16 the replicated design "
        "no longer fits the Stratix V at all (the vendor knobs also cost "
        "more logic at equal N, matching the paper's resource observation)."
    )
    w("")

    # -- extras ---------------------------------------------------------------
    w("## §IV setup table — targets")
    w("")
    rows = [
        [str(r["target"]), str(r["device"]), str(r["peak_bw_gbs"])]
        for r in figures.targets_table()
    ]
    lines += table(["target", "device", "peak GB/s"], rows)

    w("## Extra: host<->device (PCIe) streams (§III locus parameter)")
    w("")
    pcie = figures.pcie_streams(sizes=FIG1A_SIZES_BYTES, ntimes=NTIMES)
    headers = ["MiB"] + list(pcie)
    rows = []
    for i, x in enumerate(xs):
        row = [fmt(x)]
        for t in pcie:
            got = dict(pcie[t]).get(x)
            row.append(fmt(got) if got is not None else "n/a")
        rows.append(row)
    lines += table(headers, rows)
    w(
        "No paper figure exists for this axis; the series shows the "
        "expected latency-bound-to-protocol-limited transition of each "
        "board's link."
    )
    w("")

    w("## Extra: unroll-factor ablation (§III parameter, no paper figure)")
    w("")
    unroll = figures.ablation_unroll(ntimes=NTIMES)
    headers = ["unroll"] + list(unroll)
    rows = []
    for u in (1, 2, 4, 8, 16):
        row = [str(u)]
        for t in unroll:
            got = dict(unroll[t]).get(float(u))
            row.append(fmt(got) if got is not None else "n/a")
        rows.append(row)
    lines += table(headers, rows)
    w(
        "Unrolling widens a burst-capable pipeline exactly like "
        "vectorization (AOCL), and buys nothing on a blocking LSU "
        "(SDAccel flat loops)."
    )
    w("")

    w("## Extra: data pre-shaping (§IV observation)")
    w("")
    pre = figures.ablation_preshaping(ntimes=NTIMES)
    rows = [
        [
            t,
            fmt(v["strided_gbs"]),
            fmt(v["contiguous_gbs"]),
            f"{v['speedup']:.1f}x",
            f"{v['breakeven_passes']:.1f}",
        ]
        for t, v in pre.items()
    ]
    lines += table(
        ["target", "strided GB/s", "contiguous GB/s", "per-pass speedup", "break-even passes"],
        rows,
    )
    w(
        "One host-side transpose amortizes within a handful of passes "
        "everywhere strided access collapses — the paper's 'pre-shaping' "
        "recommendation, quantified."
    )
    w("")

    # -- extensions -------------------------------------------------------------
    w("## Extension: energy efficiency (§IV future work)")
    w("")
    from repro.core import BenchmarkRunner, TuningParameters, optimal_loop_for
    from repro.devices.energy import energy_report

    rows = []
    for target in TARGETS:
        runner = BenchmarkRunner(target, ntimes=NTIMES)
        width = 16 if target in ("aocl", "sdaccel") else 1
        tuned = runner.run(
            TuningParameters(
                array_bytes=4 * 1024 * 1024,
                loop=optimal_loop_for(target),
                vector_width=width,
            )
        )
        rep = energy_report(tuned)
        rows.append(
            [
                target,
                fmt(tuned.bandwidth_gbs),
                fmt(rep.gb_per_joule),
                fmt(rep.average_power_w),
            ]
        )
    lines.extend(
        table(["target", "tuned GB/s", "GB per joule", "avg power W"], rows)
    )
    w(
        "The paper's prediction holds in the model: the GPU wins raw "
        "bandwidth, the vectorized AOCL FPGA wins bytes-per-joule."
    )
    w("")

    w("## Extension: outlook targets (§IV: HMC boards, maturing toolchains)")
    w("")
    from repro.core import AccessPattern, LoopManagement

    tuned_p = TuningParameters(
        array_bytes=4 * 1024 * 1024, loop=LoopManagement.FLAT, vector_width=16
    )
    strided_p = TuningParameters(
        array_bytes=4 * 1024 * 1024,
        loop=LoopManagement.FLAT,
        pattern=AccessPattern.STRIDED,
    )
    rows = []
    for target in ("aocl", "aocl-hmc", "sdaccel", "sdaccel-mature"):
        runner = BenchmarkRunner(target, ntimes=NTIMES)
        rows.append(
            [
                target,
                fmt(runner.run(tuned_p).bandwidth_gbs),
                fmt(runner.run(strided_p).bandwidth_gbs),
            ]
        )
    lines.extend(table(["target", "tuned (vec16 flat) GB/s", "strided GB/s"], rows))
    w(
        "The hypothetical HMC board lifts both the tuned bandwidth and "
        "the strided floor by an order of magnitude (vault-level "
        "parallelism); the matured toolchain removes the flat-loop "
        "penalty that produced Fig 3's SDAccel anomaly."
    )
    w("")

    w("## Extension: GPU-STREAM baseline cross-check")
    w("")
    from repro.gpustream import run_gpu_stream

    rows = []
    for target in TARGETS:
        gs = run_gpu_stream(target, array_bytes=4 * 1024 * 1024, ntimes=NTIMES)
        rows.append([target] + [fmt(gs[k].bandwidth_gbs) for k in ("copy", "mul", "add", "triad")])
    lines.extend(table(["target", "copy", "mul", "add", "triad"], rows))
    w(
        "An independent implementation of the paper's reference [3] "
        "(NDRange, double precision) agrees with MP-STREAM's equivalent "
        "configuration on CPU/GPU and under-uses both FPGAs — the gap "
        "that motivated MP-STREAM in the first place."
    )
    w("")

    Path(out_path).write_text("\n".join(lines))
    print(f"wrote {out_path} ({len(lines)} lines)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md")
