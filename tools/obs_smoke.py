#!/usr/bin/env python
"""Observability smoke: scrape a live campaign's exposition server.

Launches a real ``mp-stream sweep --backend process --serve-obs 0``
subprocess whose workers are being killed by injected ``worker_crash``
faults, then — while the sweep is still running — scrapes ``/metrics``,
``/health`` and ``/campaign`` over HTTP and asserts:

1. every ``/metrics`` response is well-formed Prometheus text
   exposition format 0.0.4 (``# TYPE`` lines, parseable samples,
   ``up 1``) with the right content type;
2. after a worker is crash-killed, ``scheduler_worker_restarts_total``
   is visible on ``/metrics`` while the campaign is still running —
   the restart surfaces within one point-completion, not at shutdown;
3. ``/health`` stays a valid liveness payload throughout;
4. the sweep itself still exits 0 with every point finished.

Used by the CI observability smoke job. Run from the repository root::

    python tools/obs_smoke.py
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"

URL_RE = re.compile(r"serving observability at (http://\S+)")
SAMPLE_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]* -?\d+(\.\d+)?(e-?\d+)?$")

SWEEP_ARGV = [
    sys.executable, "-m", "repro.cli", "sweep",
    "--target", "cpu", "--size", "256KiB",
    "--axis", "vector_width=1,2,4,8",
    "--axis", "array_bytes=256KiB,512KiB",
    "--ntimes", "2",
    "--jobs", "2", "--backend", "process",
    "--max-worker-restarts", "3",
    "--inject-faults", "worker_crash=0.6,seed=11",
    "--serve-obs", "0",
]


def parse_exposition(text: str) -> dict[str, float]:
    """Strictly parse Prometheus text format 0.0.4; raise on malformed."""
    if not text.endswith("\n"):
        raise AssertionError("exposition must end with a newline")
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in {"counter", "gauge", "summary"}:
                raise AssertionError(f"malformed TYPE line: {line!r}")
            continue
        if not SAMPLE_RE.match(line):
            raise AssertionError(f"malformed sample line: {line!r}")
        name, value = line.split()
        samples[name] = float(value)
    if samples.get("up") != 1.0:
        raise AssertionError(f"missing 'up 1' sample; got {samples.get('up')}")
    return samples


def scrape(url: str) -> tuple[str, str]:
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.read().decode(), response.headers.get("Content-Type", "")


def wait_for_url(proc: subprocess.Popen) -> str:
    """The server URL is announced on the subprocess's stderr."""
    assert proc.stderr is not None
    deadline = time.monotonic() + 30
    lines = []
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line:
            break
        lines.append(line)
        match = URL_RE.search(line)
        if match:
            return match.group(1)
    raise AssertionError(f"no server URL announced on stderr: {lines!r}")


def main() -> int:
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = f"{SRC}{os.pathsep}{env['PYTHONPATH']}" \
        if env.get("PYTHONPATH") else str(SRC)
    proc = subprocess.Popen(
        SWEEP_ARGV,
        cwd=ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        base = wait_for_url(proc)
        print(f"scraping {base}")
        scrapes = 0
        restart_seen_live = False
        last_samples: dict[str, float] = {}
        while proc.poll() is None:
            try:
                metrics_body, ctype = scrape(base + "/metrics")
                health_body, _ = scrape(base + "/health")
            except (urllib.error.URLError, OSError):
                break  # the session closed between poll() and the scrape
            assert ctype.startswith("text/plain; version=0.0.4"), ctype
            last_samples = parse_exposition(metrics_body)
            health = json.loads(health_body)
            assert health["status"] == "ok", health
            scrapes += 1
            if (
                last_samples.get("scheduler_worker_restarts_total", 0) >= 1
                and proc.poll() is None
            ):
                restart_seen_live = True
                break
            time.sleep(0.02)
        stdout, stderr = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    print(f"{scrapes} live scrape(s); last samples: "
          f"restarts={last_samples.get('scheduler_worker_restarts_total')} "
          f"queue={last_samples.get('campaign_queue_depth')} "
          f"done={last_samples.get('campaign_points_done')}")
    if proc.returncode != 0:
        print(stdout)
        print(stderr, file=sys.stderr)
        raise AssertionError(f"sweep exited {proc.returncode}")
    if scrapes == 0:
        raise AssertionError("sweep finished before a single scrape landed")
    if not restart_seen_live:
        raise AssertionError(
            "scheduler_worker_restarts_total never appeared on /metrics "
            "while the campaign was live (restarts must surface within "
            "one point-completion, not at shutdown)"
        )
    # the campaign itself must have finished every point despite the chaos
    assert "8 point(s)" in stdout, stdout
    print("obs smoke ok: live exposition valid, worker restart visible mid-sweep")
    return 0


if __name__ == "__main__":
    sys.exit(main())
