"""Ablation: the §III loop-unroll knob (no figure in the paper).

On a burst-capable FPGA pipeline, unrolling the flat loop widens the
LSUs exactly like vectorization, so bandwidth should scale up and then
saturate at the DRAM limit; on a blocking-LSU toolchain (SDAccel flat
loops) unrolling buys nothing.
"""

from __future__ import annotations

from repro import figures


def test_ablation_unroll(benchmark, record):
    series = benchmark.pedantic(
        lambda: figures.ablation_unroll(
            factors=(1, 2, 4, 8, 16), targets=("aocl", "sdaccel"), ntimes=3
        ),
        rounds=1,
        iterations=1,
    )
    record(unroll={t: [(x, round(y, 3)) for x, y in pts] for t, pts in series.items()})

    aocl = dict(series["aocl"])
    assert aocl[8.0] > 3 * aocl[1.0], "unroll should widen AOCL's burst LSUs"
    ys = [aocl[float(u)] for u in (1, 2, 4, 8, 16)]
    assert ys == sorted(ys)

    sdaccel = dict(series["sdaccel"])
    assert sdaccel[16.0] < 2 * sdaccel[1.0], (
        "a blocking LSU gains little from unrolling"
    )
