"""Reference values digitized from the paper's figures.

All bandwidths in GB/s; array sizes in MB as plotted (we map them to
MiB). These are the numbers our simulated stack is calibrated against;
the benches attach paper-vs-measured pairs to their reports and assert
the *shapes* (orderings, crossovers, plateaus), not exact values.
"""

from __future__ import annotations

from repro.units import MIB

#: Fig 1a / Fig 2 array sizes as plotted (MB -> bytes, binary)
FIG1A_SIZES_BYTES = [
    1024,          # 0.001 MB
    4096,          # 0.004
    16384,         # 0.016
    65536,         # 0.0625
    262144,        # 0.25
    1048576,       # 1
    4 * MIB,       # 4
    16 * MIB,      # 16
    64 * MIB,      # 64
]

#: Fig 1a: copy kernel, contiguous, optimal loop mode, w=1
FIG1A_PAPER = {
    "aocl": [0.04, 0.14, 0.63, 1.14, 2.03, 2.23, 2.38, 2.53, 2.45],
    "sdaccel": [0.03, 0.09, 0.21, 0.35, 0.53, 0.64, 0.70, 0.74, 0.76],
    "cpu": [0.05, 0.19, 0.72, 2.52, 7.44, 18.16, 27.04, 25.24, 25.10],
    "gpu": [0.14, 0.95, 3.71, 14.74, 50.13, 112.79, 173.72, 204.5, 203.87],
}

FIG1B_WIDTHS = [1, 2, 4, 8, 16]

#: Fig 1b: copy kernel at 4 MB vs vector width
FIG1B_PAPER = {
    "aocl": [2.53, 4.61, 8.97, 14.85, 15.26],
    "sdaccel": [0.74, 1.41, 2.47, 4.14, 6.27],
    "cpu": [32.03, 34.58, 37.04, 34.52, 36.03],
    "gpu": [173.72, 194.30, 201.06, 175.30, 117.37],
}

#: Fig 2: strided series (sizes as FIG1A; contiguous series == FIG1A)
FIG2_STRIDED_PAPER = {
    "aocl": [0.1, 0.2, 0.4, 0.7, 0.8, 1.7, 0.5, 0.4, 0.3],
    "sdaccel": [0.01, 0.01, 0.01, 0.01, 0.01, 0.01, 0.01, 0.01, 0.01],
    "cpu": [0.0, 0.2, 0.4, 0.8, 3.9, 5.6, 5.3, 0.8, 0.8],
    "gpu": [0.1, 0.6, 2.5, 7.6, 18.2, 26.6, 29.4, 29.5, 27.3],
}

#: Fig 3 (KB/s in the paper; GB/s here): 4 MB copy per loop management.
#: Values are approximate bar readings from the log-scale chart.
FIG3_PAPER = {
    # target: (ndrange, flat, nested)
    "aocl": (0.3, 2.4, 2.2),
    "sdaccel": (0.004, 0.1, 0.76),
    "cpu": (27.0, 10.0, 10.0),
    "gpu": (173.0, 0.012, 0.012),
}

#: Fig 4a: approximate bar readings (GB/s), 4 MB, all four kernels.
FIG4A_PAPER = {
    "aocl": {"copy": 2.4, "scale": 2.4, "add": 3.5, "triad": 3.5},
    "sdaccel": {"copy": 0.76, "scale": 0.76, "add": 1.0, "triad": 1.0},
    "cpu": {"copy": 27.0, "scale": 26.0, "add": 28.0, "triad": 28.0},
    "gpu": {"copy": 174.0, "scale": 174.0, "add": 200.0, "triad": 200.0},
}

#: §IV experimental setup
TARGETS_PAPER = {
    "cpu": {"device": "Intel Xeon CPU E5-2609 v2", "peak_bw_gbs": 34.0},
    "gpu": {"device": "GeForce GTX Titan Black", "peak_bw_gbs": 336.0},
    "aocl": {"device": "Altera Stratix V GS D5", "peak_bw_gbs": 25.6},  # paper says "25"
    "sdaccel": {"device": "Xilinx Virtex 7 XC7", "peak_bw_gbs": 10.0},
}


def pair_series(
    measured: list[tuple[float, float]], paper: list[float]
) -> list[dict[str, float]]:
    """Zip measured (x, y) points with the paper's y values for reporting."""
    out = []
    for (x, y), ref in zip(measured, paper):
        out.append({"x": x, "measured_gbs": round(y, 3), "paper_gbs": ref})
    return out


def within_factor(measured: float, paper: float, factor: float) -> bool:
    """Shape check: the measured value is within `factor`x of the paper's."""
    if paper == 0:
        return True
    lo, hi = paper / factor, paper * factor
    return lo <= measured <= hi
