"""Ablation: the §IV data pre-shaping observation.

"If there are multiple strided accesses to the same array ... it may be
worthwhile re-arranging data at the host to convert subsequent strided
accesses to contiguous accesses." This bench quantifies that: the
break-even pass count after which one host-side transpose pays for
itself, per target.
"""

from __future__ import annotations

from repro import figures


def test_ablation_preshaping(benchmark, record):
    out = benchmark.pedantic(
        lambda: figures.ablation_preshaping(ntimes=3),
        rounds=1,
        iterations=1,
    )
    record(
        preshaping=[
            {"target": t, **{k: round(v, 3) for k, v in row.items()}}
            for t, row in out.items()
        ]
    )

    # pre-shaping pays off quickly wherever strided access collapses
    for target in ("aocl", "sdaccel", "gpu"):
        row = out[target]
        assert row["speedup"] > 2.0, target
        assert row["breakeven_passes"] < 10, target

    # the harder the strided collapse, the bigger the win
    assert out["sdaccel"]["speedup"] > out["cpu"]["speedup"]
