"""Extension: baselines cross-check (GPU-STREAM) and coding-style ablation.

Two internal-consistency experiments the paper implies but never plots:

* **GPU-STREAM parity** — the independent GPU-STREAM implementation
  (the paper's reference [3], NDRange/double style) must agree with
  MP-STREAM's equivalent configuration on CPU/GPU, and must badly
  under-use the FPGAs — the observation that motivated MP-STREAM;
* **vload vs pointer-vector style** — the two idiomatic OpenCL ways to
  express vectorized access describe the same memory traffic, so a
  style-neutral toolchain must price them identically.
"""

from __future__ import annotations

from repro.core import (
    BenchmarkRunner,
    DataType,
    KernelName,
    LoopManagement,
    TuningParameters,
)
from repro.gpustream import run_gpu_stream
from repro.units import MIB

KERNEL_MAP = {
    "copy": KernelName.COPY,
    "mul": KernelName.SCALE,
    "add": KernelName.ADD,
    "triad": KernelName.TRIAD,
}


def _survey():
    out = {"gpustream": {}, "mpstream": {}, "styles": {}}
    n = 4 * MIB
    for target in ("gpu", "cpu", "aocl", "sdaccel"):
        gs = run_gpu_stream(target, array_bytes=n, ntimes=3)
        out["gpustream"][target] = {
            k: round(r.bandwidth_gbs, 3) for k, r in gs.items()
        }
        runner = BenchmarkRunner(target, ntimes=3)
        out["mpstream"][target] = {
            gs_name: round(
                runner.run(
                    TuningParameters(
                        array_bytes=n, kernel=mp, dtype=DataType.DOUBLE
                    )
                ).bandwidth_gbs,
                3,
            )
            for gs_name, mp in KERNEL_MAP.items()
        }
    for target in ("aocl", "sdaccel", "cpu", "gpu"):
        runner = BenchmarkRunner(target, ntimes=3)
        base = TuningParameters(
            array_bytes=n, vector_width=8, loop=LoopManagement.FLAT
        )
        pointer = runner.run(base)
        vload = runner.run(base.with_(use_vload=True))
        out["styles"][target] = {
            "pointer_gbs": round(pointer.bandwidth_gbs, 3),
            "vload_gbs": round(vload.bandwidth_gbs, 3),
        }
    return out


def test_baselines(benchmark, record):
    data = benchmark.pedantic(_survey, rounds=1, iterations=1)
    record(**data)

    # GPU-STREAM parity on the targets it was designed for
    for target in ("gpu", "cpu"):
        for kernel in KERNEL_MAP:
            gs = data["gpustream"][target][kernel]
            mp = data["mpstream"][target][kernel]
            assert abs(gs - mp) <= 0.1 * max(gs, mp), (target, kernel, gs, mp)

    # ...and the FPGA under-utilization that motivated the paper
    fpga_best = BenchmarkRunner("aocl", ntimes=3).run(
        TuningParameters(
            array_bytes=4 * MIB,
            dtype=DataType.DOUBLE,
            vector_width=8,
            loop=LoopManagement.FLAT,
        )
    )
    assert fpga_best.bandwidth_gbs > 2 * data["gpustream"]["aocl"]["copy"]

    # style neutrality of vload vs pointer vectors
    for target, row in data["styles"].items():
        assert abs(row["pointer_gbs"] - row["vload_gbs"]) <= 0.02 * max(
            row["pointer_gbs"], 1e-9
        ), target
