"""§III stream source/destination: host<->device (PCIe) bandwidth.

The paper lists host↔device streams as a tuning axis without plotting
them; this bench fills the gap. Shape claims:

* small transfers are latency-bound, large transfers approach the
  link's protocol-limited peak;
* every accelerator's PCIe bandwidth sits far below its global-memory
  bandwidth at 4 MB (the reason kernels should keep data resident).
"""

from __future__ import annotations

from paper_data import FIG1A_SIZES_BYTES

from repro import figures
from repro.core import BenchmarkRunner, TuningParameters, optimal_loop_for
from repro.units import MIB

TARGETS = ("gpu", "aocl", "sdaccel")


def test_pcie_streams(benchmark, record):
    series = benchmark.pedantic(
        lambda: figures.pcie_streams(sizes=FIG1A_SIZES_BYTES, targets=TARGETS, ntimes=3),
        rounds=1,
        iterations=1,
    )
    record(pcie={t: [(x, round(y, 3)) for x, y in pts] for t, pts in series.items()})

    for target, points in series.items():
        ys = [y for _, y in points]
        assert ys == sorted(ys), f"{target}: PCIe bandwidth should rise with size"
        assert ys[0] < 0.3, f"{target}: small transfers should be latency-bound"

    # a well-tuned (vectorized) kernel beats PCIe streaming on every
    # accelerator at 4 MB -- the reason to keep data device-resident
    for target in TARGETS:
        device_bw = (
            BenchmarkRunner(target, ntimes=2)
            .run(
                TuningParameters(
                    array_bytes=4 * MIB,
                    loop=optimal_loop_for(target),
                    vector_width=16,
                )
            )
            .bandwidth_gbs
        )
        pcie_bw = dict(series[target])[4.0]
        assert pcie_bw < device_bw, target
