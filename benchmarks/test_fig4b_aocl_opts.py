"""Fig 4b: AOCL vendor optimizations vs native OpenCL vectorization.

Shape claims checked (the paper's §IV "Device Specific Optimizations"):

* native vectorization gives the most reliable scaling — it ends above
  both vendor knobs at N=16;
* SIMD work-items and compute units scale sub-linearly and fall behind
  as N grows ("less consistent results, eventually giving poorer
  performance as we increase their scale");
* vendor knobs consume more FPGA resources than native vectorization
  at the same N (checked through the resource model directly).
"""

from __future__ import annotations

from paper_data import FIG1B_PAPER

from repro import figures
from repro.devices.fpga import estimate_resources
from repro.devices.specs import STRATIX_V_AOCL
from repro.oclc import analyze, compile_source

N_VALUES = (1, 2, 4, 8, 16)


def test_fig4b_aocl_optimizations(benchmark, record):
    series = benchmark.pedantic(
        lambda: figures.fig4b_aocl_optimizations(scales=N_VALUES, ntimes=3),
        rounds=1,
        iterations=1,
    )
    vec = dict(series["vector-width"])
    simd = dict(series["simd-work-items"])
    cu = dict(series["compute-units"])

    record(
        fig4b=[
            {
                "N": n,
                "vector_gbs": round(vec.get(float(n), 0.0), 3),
                "simd_gbs": round(simd.get(float(n), 0.0), 3),
                "compute_units_gbs": round(cu.get(float(n), 0.0), 3),
                "paper_vector_gbs": FIG1B_PAPER["aocl"][i],
            }
            for i, n in enumerate(N_VALUES)
        ]
    )

    # native vectorization wins at scale
    assert vec[16.0] > simd.get(16.0, 0.0)
    assert vec[16.0] > cu.get(16.0, 0.0)
    # vectorization scales monotonically over the sweep
    ys = [vec[float(n)] for n in N_VALUES]
    assert ys == sorted(ys)
    # compute units peak early then fall off
    cu_ys = [cu[float(n)] for n in N_VALUES if float(n) in cu]
    assert max(cu_ys) > cu_ys[-1] or len(cu_ys) < len(N_VALUES)

    # resource claim: at N=8, vendor knobs use more logic than vectors
    flat_ir = analyze(
        compile_source(
            "__kernel void k(__global const int *a, __global int *c)"
            "{ for (int i = 0; i < 1024; i++) c[i] = a[i]; }"
        )
    )
    nd_ir = analyze(
        compile_source(
            "__kernel __attribute__((reqd_work_group_size(256, 1, 1)))"
            " void k(__global const int *a, __global int *c)"
            "{ size_t i = get_global_id(0); c[i] = a[i]; }"
        )
    )
    vec_cells = estimate_resources(flat_ir, STRATIX_V_AOCL, vector_width=8).logic_cells
    simd_cells = estimate_resources(nd_ir, STRATIX_V_AOCL, simd=8).logic_cells
    cu_cells = estimate_resources(nd_ir, STRATIX_V_AOCL, compute_units=8).logic_cells
    record(
        resources_at_n8={
            "vector_logic_cells": vec_cells,
            "simd_logic_cells": simd_cells,
            "compute_units_logic_cells": cu_cells,
        }
    )
    assert simd_cells > vec_cells
    assert cu_cells > vec_cells
