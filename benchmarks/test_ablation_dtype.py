"""Ablation: the §III data-type knob (int vs double).

Doubles halve the element count but double the element size; on
memory-bound kernels the bandwidth should stay within a modest factor
of the int numbers on every target, with the FPGAs gaining (wider
elements mean wider per-cycle transfers, like vectorization by 2).
"""

from __future__ import annotations

from repro import figures

TARGETS = ("aocl", "sdaccel", "cpu", "gpu")
KERNELS = ("copy", "scale", "add", "triad")


def test_ablation_dtype(benchmark, record):
    series = benchmark.pedantic(
        lambda: figures.ablation_dtype(ntimes=3),
        rounds=1,
        iterations=1,
    )
    record(
        dtype={
            name: [(KERNELS[int(x)], round(y, 3)) for x, y in pts]
            for name, pts in series.items()
        }
    )

    for target in TARGETS:
        ints = dict(series[f"{target}-int"])
        doubles = dict(series[f"{target}-double"])
        for i in range(len(KERNELS)):
            x = float(i)
            assert 0.3 * ints[x] < doubles[x] < 4 * ints[x], (target, KERNELS[i])

    # FPGAs: double ~ 2x int bandwidth on the copy kernel (wider element)
    for target in ("aocl", "sdaccel"):
        ints = dict(series[f"{target}-int"])
        doubles = dict(series[f"{target}-double"])
        assert doubles[0.0] > 1.5 * ints[0.0], target
