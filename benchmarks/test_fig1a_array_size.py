"""Fig 1a: COPY bandwidth vs array size on all four targets.

Regenerates the paper's first figure at the paper's sizes (1 KB–64 MB
per array) and checks its shape claims:

* bandwidth grows monotonically with array size and plateaus by ~4 MB;
* the sustained ordering is GPU > CPU > AOCL > SDAccel;
* each plateau lands within 2x of the paper's measured value.
"""

from __future__ import annotations

from paper_data import FIG1A_PAPER, FIG1A_SIZES_BYTES, pair_series, within_factor

from repro import figures
from repro.units import MIB


def test_fig1a_array_size(benchmark, record):
    series = benchmark.pedantic(
        lambda: figures.fig1a_array_size(sizes=FIG1A_SIZES_BYTES, ntimes=3),
        rounds=1,
        iterations=1,
    )

    for target, points in series.items():
        record(**{f"fig1a_{target}": pair_series(points, FIG1A_PAPER[target])})

    # shape 1: monotone rise to a plateau
    for target, points in series.items():
        ys = [y for _, y in points]
        assert ys == sorted(ys), f"{target} bandwidth should rise with size"
        plateau_at_4mb = dict(points)[4 * MIB / MIB]
        # the GPU still gains ~15% past 4 MB (the paper shows the same)
        assert plateau_at_4mb > 0.7 * ys[-1], (
            f"{target} should be near its plateau by 4 MB"
        )

    # shape 2: sustained ordering across targets
    last = {t: pts[-1][1] for t, pts in series.items()}
    assert last["gpu"] > last["cpu"] > last["aocl"] > last["sdaccel"]

    # shape 3: plateaus within 2x of the paper
    for target, points in series.items():
        measured = dict(points)[4.0]
        assert within_factor(measured, FIG1A_PAPER[target][6], 2.0), (
            f"{target}@4MB: measured {measured:.2f} vs paper "
            f"{FIG1A_PAPER[target][6]:.2f}"
        )
