"""Fig 1b: COPY bandwidth vs vector width (memory coalescing) at 4 MB.

Shape claims checked:

* vectorization carries both FPGA targets toward their DRAM limits
  (>4x gain from width 1 to width 16);
* the CPU barely moves (<1.5x);
* the GPU *loses* bandwidth at width 16 relative to its width-4 peak.
"""

from __future__ import annotations

from paper_data import FIG1B_PAPER, FIG1B_WIDTHS, pair_series, within_factor

from repro import figures


def test_fig1b_vector_width(benchmark, record):
    series = benchmark.pedantic(
        lambda: figures.fig1b_vector_width(widths=FIG1B_WIDTHS, ntimes=3),
        rounds=1,
        iterations=1,
    )

    for target, points in series.items():
        record(**{f"fig1b_{target}": pair_series(points, FIG1B_PAPER[target])})

    by = {t: dict(pts) for t, pts in series.items()}

    # FPGAs gain the most
    assert by["aocl"][16.0] > 4 * by["aocl"][1.0]
    assert by["sdaccel"][16.0] > 4 * by["sdaccel"][1.0]
    # CPU nearly flat
    assert by["cpu"][16.0] < 1.5 * by["cpu"][1.0]
    # GPU drops at 16
    assert by["gpu"][16.0] < 0.8 * by["gpu"][4.0]

    # every point within 2x of the paper's value
    for target in series:
        for width, paper in zip(FIG1B_WIDTHS, FIG1B_PAPER[target]):
            measured = by[target][float(width)]
            assert within_factor(measured, paper, 2.0), (
                f"{target}@w{width}: {measured:.2f} vs paper {paper:.2f}"
            )
