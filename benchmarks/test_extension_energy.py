"""Extension: energy efficiency (the paper's declared future-work axis).

§IV predicts FPGAs "can still win" on energy despite losing on raw
bandwidth. Shape claims measured here:

* the GPU has the highest GB/s on every kernel;
* the *vectorized* AOCL FPGA has the highest GB per joule;
* the efficiency win only exists after tuning — an unvectorized FPGA
  kernel is both slow AND inefficient (static power dominates).
"""

from __future__ import annotations

from repro.core import BenchmarkRunner, TuningParameters, optimal_loop_for
from repro.devices.energy import energy_report
from repro.units import MIB

TARGETS = ("aocl", "sdaccel", "cpu", "gpu")


def _survey():
    rows = {}
    for target in TARGETS:
        runner = BenchmarkRunner(target, ntimes=3)
        width = 16 if target in ("aocl", "sdaccel") else 1
        naive = runner.run(
            TuningParameters(array_bytes=4 * MIB, loop=optimal_loop_for(target))
        )
        tuned = runner.run(
            TuningParameters(
                array_bytes=4 * MIB,
                loop=optimal_loop_for(target),
                vector_width=width,
            )
        )
        rows[target] = {
            "naive_gbs": naive.bandwidth_gbs,
            "naive_gbj": energy_report(naive).gb_per_joule,
            "tuned_gbs": tuned.bandwidth_gbs,
            "tuned_gbj": energy_report(tuned).gb_per_joule,
            "avg_power_w": energy_report(tuned).average_power_w,
        }
    return rows


def test_energy_efficiency(benchmark, record):
    rows = benchmark.pedantic(_survey, rounds=1, iterations=1)
    record(
        energy=[
            {"target": t, **{k: round(v, 3) for k, v in r.items()}}
            for t, r in rows.items()
        ]
    )

    # GPU wins bandwidth...
    assert rows["gpu"]["tuned_gbs"] > max(
        rows[t]["tuned_gbs"] for t in TARGETS if t != "gpu"
    )
    # ...the vectorized AOCL FPGA wins efficiency
    assert rows["aocl"]["tuned_gbj"] > max(
        rows[t]["tuned_gbj"] for t in TARGETS if t != "aocl"
    )
    # tuning is a precondition: naive FPGA efficiency loses to the GPU
    assert rows["aocl"]["naive_gbj"] < rows["gpu"]["naive_gbj"]
    # and power draws stay physically sensible
    for t, r in rows.items():
        assert 5 < r["avg_power_w"] < 400, t
