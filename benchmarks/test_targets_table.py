"""§IV experimental-setup table: the four targets and their peaks."""

from __future__ import annotations

from paper_data import TARGETS_PAPER

from repro import figures


def test_targets_table(benchmark, record):
    rows = benchmark.pedantic(figures.targets_table, rounds=1, iterations=1)
    record(targets=rows)
    by_target = {r["target"]: r for r in rows}
    assert set(by_target) == set(TARGETS_PAPER)
    for target, paper in TARGETS_PAPER.items():
        row = by_target[target]
        assert abs(row["peak_bw_gbs"] - paper["peak_bw_gbs"]) <= 0.6
        # identity strings match the paper's device names
        for token in paper["device"].split()[:2]:
            assert token.lower() in str(row["device"]).lower(), (target, token)
