"""Fig 4a: all four STREAM kernels on all four targets at 4 MB.

Shape claims checked:

* every kernel is memory-bound: per target, the four kernels land
  within a small factor of each other;
* the cross-target ordering from Fig 1 holds for every kernel;
* magnitudes stay within 2x of the paper's bars.
"""

from __future__ import annotations

from paper_data import FIG4A_PAPER, within_factor

from repro import figures

TARGETS = ("aocl", "sdaccel", "cpu", "gpu")


def test_fig4a_all_kernels(benchmark, record):
    series = benchmark.pedantic(
        lambda: figures.fig4a_all_kernels(ntimes=3),
        rounds=1,
        iterations=1,
    )

    table = {}
    for kernel, points in series.items():
        by_target = {TARGETS[int(x)]: y for x, y in points}
        table[kernel] = by_target
    record(
        fig4a=[
            {
                "target": t,
                **{k: round(table[k][t], 3) for k in table},
                **{f"paper_{k}": FIG4A_PAPER[t][k] for k in table},
            }
            for t in TARGETS
        ]
    )

    # memory-bound: kernels within 3x of each other per target
    for target in TARGETS:
        values = [table[k][target] for k in table]
        assert max(values) < 3 * min(values), target

    # cross-target ordering holds for every kernel
    for kernel in table:
        row = table[kernel]
        assert row["gpu"] > row["cpu"] > row["aocl"] > row["sdaccel"], kernel

    # magnitudes within 2x of the paper
    for target in TARGETS:
        for kernel in table:
            assert within_factor(table[kernel][target], FIG4A_PAPER[target][kernel], 2.0), (
                target,
                kernel,
            )
