"""Fig 2: contiguous vs strided (column-major 2-D walk) across sizes.

Shape claims checked:

* strided never beats contiguous, on any target at any size;
* SDAccel's strided series collapses to ~0.01 GB/s, flat;
* CPU and GPU strided series show a cache-reuse bump at mid sizes and
  fall once the reuse window leaves the cache;
* AOCL's strided floor sits far below its contiguous plateau.
"""

from __future__ import annotations

from paper_data import (
    FIG1A_PAPER,
    FIG1A_SIZES_BYTES,
    FIG2_STRIDED_PAPER,
    pair_series,
)

from repro import figures


def test_fig2_contiguity(benchmark, record):
    series = benchmark.pedantic(
        lambda: figures.fig2_contiguity(sizes=FIG1A_SIZES_BYTES, ntimes=3),
        rounds=1,
        iterations=1,
    )

    for target in ("aocl", "sdaccel", "cpu", "gpu"):
        record(
            **{
                f"fig2_{target}_contig": pair_series(
                    series[f"{target}-contig"], FIG1A_PAPER[target]
                ),
                f"fig2_{target}_strided": pair_series(
                    series[f"{target}-strided"], FIG2_STRIDED_PAPER[target]
                ),
            }
        )

    # strided <= contiguous pointwise
    for target in ("aocl", "sdaccel", "cpu", "gpu"):
        contig = dict(series[f"{target}-contig"])
        strided = dict(series[f"{target}-strided"])
        for x, y in strided.items():
            if x in contig:
                assert y <= contig[x] * 1.05, f"{target}@{x}MB"

    # sdaccel flatlines near 0.01 GB/s at all non-tiny sizes
    sd = [y for x, y in series["sdaccel-strided"] if x >= 0.25]
    assert max(sd) < 0.05

    # cpu/gpu cache bump: mid-size strided beats the largest size by >2x
    for target in ("cpu", "gpu"):
        strided = dict(series[f"{target}-strided"])
        mid = max(strided[x] for x in strided if 0.25 <= x <= 4)
        tail = strided[max(strided)]
        assert mid > 2 * tail, f"{target} strided should collapse at large sizes"

    # aocl floor far below its contiguous plateau
    aocl_strided_tail = dict(series["aocl-strided"])[64.0]
    aocl_contig_tail = dict(series["aocl-contig"])[64.0]
    assert aocl_strided_tail < 0.4 * aocl_contig_tail
