"""Benchmark-harness fixtures.

Each bench regenerates one paper figure at the paper's scale, attaches
the paper-vs-measured series to ``benchmark.extra_info`` (visible in
``--benchmark-verbose`` / JSON output) and asserts the qualitative
shape the paper reports.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))  # make paper_data importable


@pytest.fixture
def record(benchmark):
    """Attach a structured paper-vs-measured record to the bench report."""

    def _record(**info: object) -> None:
        for key, value in info.items():
            benchmark.extra_info[key] = value

    return _record
