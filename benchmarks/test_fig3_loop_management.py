"""Fig 3: the three loop-management styles on all four targets.

Shape claims checked:

* CPU and GPU are fastest with an NDRange kernel;
* both FPGA targets are fastest with a single work-item kernel;
* SDAccel shows the paper's anomaly: the *nested* 2-D loop beats the
  flat loop by a wide margin (inner-loop burst inference);
* single-work-item kernels on the GPU are orders of magnitude slow.
"""

from __future__ import annotations

from paper_data import FIG3_PAPER, within_factor

from repro import figures

TARGETS = ("aocl", "sdaccel", "cpu", "gpu")


def test_fig3_loop_management(benchmark, record):
    series = benchmark.pedantic(
        lambda: figures.fig3_loop_management(ntimes=3),
        rounds=1,
        iterations=1,
    )
    nd = dict(series["ndrange-kernel"])
    flat = dict(series["kernel-loop-flat"])
    nested = dict(series["kernel-loop-nested"])

    rows = []
    for i, target in enumerate(TARGETS):
        p_nd, p_flat, p_nested = FIG3_PAPER[target]
        rows.append(
            {
                "target": target,
                "ndrange_gbs": round(nd[float(i)], 4),
                "flat_gbs": round(flat[float(i)], 4),
                "nested_gbs": round(nested[float(i)], 4),
                "paper_ndrange": p_nd,
                "paper_flat": p_flat,
                "paper_nested": p_nested,
            }
        )
    record(fig3=rows)

    aocl, sdaccel, cpu, gpu = 0.0, 1.0, 2.0, 3.0

    # CPU/GPU: NDRange wins
    assert nd[cpu] > flat[cpu] and nd[cpu] > nested[cpu]
    assert nd[gpu] > flat[gpu] and nd[gpu] > nested[gpu]

    # FPGAs: single work-item wins
    assert max(flat[aocl], nested[aocl]) > nd[aocl]
    assert max(flat[sdaccel], nested[sdaccel]) > nd[sdaccel]

    # SDAccel nested-loop anomaly
    assert nested[sdaccel] > 3 * flat[sdaccel]

    # GPU single work-item is catastrophic (orders of magnitude)
    assert flat[gpu] < nd[gpu] / 1000

    # magnitudes within 3x of the paper's (log-scale) bars
    for i, target in enumerate(TARGETS):
        p_nd, p_flat, p_nested = FIG3_PAPER[target]
        assert within_factor(nd[float(i)], p_nd, 3.0), (target, "ndrange")
        assert within_factor(flat[float(i)], p_flat, 3.0), (target, "flat")
        assert within_factor(nested[float(i)], p_nested, 3.0), (target, "nested")
