"""Extension: the paper's outlook targets (HMC board, matured toolchain).

§IV predicts (a) HMC-equipped FPGA boards "can change the picture ...
considerably" and (b) maturing toolchains will "show more consistent
memory performance that takes into account different coding styles".
Shape claims measured on the hypothetical targets:

* the HMC board more than doubles the Stratix V's best sustained
  bandwidth and lifts the strided floor by an order of magnitude;
* the matured toolchain collapses SDAccel's Fig 3 spread: flat, nested
  and NDRange land within a small factor of each other.
"""

from __future__ import annotations

from repro.core import (
    AccessPattern,
    BenchmarkRunner,
    LoopManagement,
    TuningParameters,
)
from repro.units import MIB


def _survey():
    out = {}
    tuned = TuningParameters(
        array_bytes=4 * MIB, loop=LoopManagement.FLAT, vector_width=16
    )
    strided = TuningParameters(
        array_bytes=4 * MIB, loop=LoopManagement.FLAT, pattern=AccessPattern.STRIDED
    )
    for target in ("aocl", "aocl-hmc"):
        runner = BenchmarkRunner(target, ntimes=3)
        out[target] = {
            "tuned_gbs": runner.run(tuned).bandwidth_gbs,
            "strided_gbs": runner.run(strided).bandwidth_gbs,
        }
    for target in ("sdaccel", "sdaccel-mature"):
        runner = BenchmarkRunner(target, ntimes=3)
        out[target] = {
            mode.value: runner.run(
                TuningParameters(array_bytes=4 * MIB, loop=mode)
            ).bandwidth_gbs
            for mode in LoopManagement
        }
    return out


def test_future_targets(benchmark, record):
    rows = benchmark.pedantic(_survey, rounds=1, iterations=1)
    record(
        future={
            t: {k: round(v, 3) for k, v in r.items()} for t, r in rows.items()
        }
    )

    # HMC changes the picture: bandwidth and stride tolerance
    assert rows["aocl-hmc"]["tuned_gbs"] > 1.5 * rows["aocl"]["tuned_gbs"]
    assert rows["aocl-hmc"]["strided_gbs"] > 5 * rows["aocl"]["strided_gbs"]

    # matured toolchain: coding-style spread collapses
    old = rows["sdaccel"]
    new = rows["sdaccel-mature"]
    old_spread = max(old.values()) / min(old.values())
    new_spread = max(new.values()) / min(new.values())
    assert old_spread > 50  # the paper's Fig 3 gulf
    assert new_spread < 10  # "more consistent memory performance"
    assert new["flat"] > 5 * old["flat"]
