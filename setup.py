"""setup.py shim for environments without the `wheel` package.

`pip install -e .` requires building a wheel with modern pip; on an
offline machine without `wheel` installed, `python setup.py develop`
performs the equivalent editable install from pyproject metadata.
"""

from setuptools import setup

setup()
