"""MP-STREAM reproduction.

A from-scratch reproduction of *MP-STREAM: A Memory Performance
Benchmark for Design Space Exploration on Heterogeneous HPC Devices*
(Nabi & Vanderbauwhede, RAW @ IPDPS 2018), built on a simulated
heterogeneous OpenCL stack:

* :mod:`repro.core` — the benchmark: tuning parameters, kernel
  generation, runner, sweeps, reporting;
* :mod:`repro.ocl` — an OpenCL-like host runtime (platforms, queues,
  buffers, events with profiling);
* :mod:`repro.oclc` — an OpenCL-C subset compiler front-end with a
  reference interpreter and a vectorized executor;
* :mod:`repro.devices` — calibrated performance models of the paper's
  four targets (Xeon CPU, Titan Black GPU, Stratix V via AOCL,
  Virtex-7 via SDAccel);
* :mod:`repro.memsim` — cache / DRAM / coalescing / PCIe building blocks;
* :mod:`repro.figures` — one function per paper figure;
* :mod:`repro.hoststream` — a real numpy STREAM for the local machine.
"""

from __future__ import annotations

from .core import (
    AccessPattern,
    BenchmarkRunner,
    BuildCache,
    DataType,
    ExecutionEngine,
    KernelName,
    LoopManagement,
    ParameterSweep,
    ResultSet,
    RunResult,
    StreamLocus,
    TuningParameters,
    best_configuration,
    explore,
    generate,
    optimal_loop_for,
)
from .errors import ReproError
from .ocl.platform import Device, Platform, find_device, get_platforms

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "TuningParameters",
    "KernelName",
    "DataType",
    "AccessPattern",
    "LoopManagement",
    "StreamLocus",
    "BenchmarkRunner",
    "ExecutionEngine",
    "BuildCache",
    "RunResult",
    "ResultSet",
    "ParameterSweep",
    "explore",
    "best_configuration",
    "generate",
    "optimal_loop_for",
    "get_platforms",
    "find_device",
    "Platform",
    "Device",
    "ReproError",
]
