"""Metamorphic invariants over the memory-model stack.

Pillar 2 of the verification subsystem. Individual bandwidth numbers
from a simulated device cannot be checked against silicon, but the
*relations between* numbers can be checked against physics: these are
executable property checks over the memsim layer and the full engine
path, in the spirit of Zohouri & Matsuoka's trend validation of
memory-interface models. Each law compares pairs of grid points and,
on breach, emits a structured :class:`Violation` naming exactly which
pair broke it — a metamorphic failure is a modelling bug report, not a
stack trace.

Laws:

``content_invariance``
    Reported kernel latency must not depend on array *contents* — the
    performance models see address streams, never values. Runs the same
    point twice through a real context/queue with STREAM-initial and
    randomized contents and demands identical latency sequences.
``contiguous_vs_strided``
    For the same footprint, contiguous access must sustain at least the
    bandwidth of strided access on every target (end-to-end through the
    engine).
``bytes_linear``
    Bytes moved must scale exactly linearly with array size at a fixed
    configuration.
``service_time_stride`` / ``hit_rate_stride``
    The analytic hierarchy's service time is monotone non-decreasing,
    and the cache hit rate monotone non-*increasing*, in stride.
``hit_rate_passes``
    Re-walking the same footprint can only raise the hit rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.generator import generate
from ..core.kernels import KERNELS, SCALAR_Q, initial_arrays
from ..core.params import AccessPattern, KernelName, TuningParameters
from ..core.runner import BenchmarkRunner, optimal_loop_for
from ..devices.base import BuildOptions
from ..memsim import CacheConfig, streaming_hit_ratio
from ..memsim.hierarchy import Hierarchy, Level
from ..ocl import CommandQueue, Context, Program
from ..ocl.platform import find_device
from ..oclc import compile_source_cached
from ..rng import make_rng

__all__ = [
    "Violation",
    "LawReport",
    "check_content_invariance",
    "check_contiguous_vs_strided",
    "check_bytes_linear",
    "check_service_time_stride",
    "check_hit_rate_stride",
    "check_hit_rate_passes",
    "check_all",
]

ALL_TARGETS = ("cpu", "gpu", "aocl", "sdaccel")


@dataclass(frozen=True)
class Violation:
    """One broken law, naming the pair of grid points that broke it."""

    law: str
    left: str
    right: str
    left_value: float
    right_value: float
    detail: str = ""

    def describe(self) -> str:
        text = (
            f"{self.law}: {self.left} -> {self.left_value:g} "
            f"vs {self.right} -> {self.right_value:g}"
        )
        return f"{text} ({self.detail})" if self.detail else text


@dataclass(frozen=True)
class LawReport:
    """Outcome of checking one law over its grid."""

    law: str
    checked: int
    violations: tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return f"{self.law}: {self.checked} pair(s) checked, {status}"


# -- raw device launches (bypassing the engine's fixed initial values) --------


def _device_latencies(
    target: str,
    params: TuningParameters,
    contents: dict[str, np.ndarray],
    *,
    ntimes: int,
) -> tuple[float, ...]:
    """Latency sequence of ``ntimes`` launches with given array contents."""
    device = find_device(target)
    ctx = Context(device)
    queue = CommandQueue(ctx, device)
    gen = generate(params)
    checked = compile_source_cached(
        gen.source, {k: str(v) for k, v in gen.defines.items()}
    )
    plan = device.model.build(
        checked, BuildOptions(defines={k: str(v) for k, v in gen.defines.items()})
    )
    program = Program.from_artifacts(
        ctx,
        gen.source,
        checked=checked,
        plans={device.short_name: plan},
        defines=gen.defines,
    )
    kernel = program.create_kernel(gen.kernel_name)
    buffers = {}
    for name in ("a", "b", "c"):
        buffers[name] = ctx.create_buffer(hostbuf=contents[name])
        buffers[name].residency = "device"
    spec = KERNELS[params.kernel]
    named: dict[str, object] = {
        name: buffers[name] for name in (*spec.reads, spec.writes)
    }
    if spec.uses_scalar:
        named["q"] = SCALAR_Q
    kernel.set_args(**named)
    try:
        times = []
        for _ in range(ntimes):
            event = queue.enqueue_nd_range_kernel(
                kernel, gen.global_size, gen.local_size
            )
            times.append(event.latency)
    finally:
        for buffer in buffers.values():
            if not buffer.released:
                buffer.release()
        ctx.prune_released()
    return tuple(times)


def _random_contents(
    params: TuningParameters, seed: int
) -> dict[str, np.ndarray]:
    rng = make_rng(seed)
    dt = initial_arrays(1, params.dtype)["a"].dtype
    out = {}
    for name in ("a", "b", "c"):
        if dt.kind == "i":
            out[name] = rng.integers(-1000, 1000, params.word_count).astype(dt)
        else:
            out[name] = (rng.random(params.word_count) * 100 - 50).astype(dt)
    return out


def check_content_invariance(
    targets: Sequence[str] = ("cpu", "gpu"),
    *,
    array_bytes: int = 16384,
    ntimes: int = 3,
    seed: int = 123,
) -> LawReport:
    """Latencies must be identical whatever values the arrays hold."""
    violations = []
    checked = 0
    for target in targets:
        params = TuningParameters(
            kernel=KernelName.COPY,
            array_bytes=array_bytes,
            loop=optimal_loop_for(target),
        )
        baseline = _device_latencies(
            target,
            params,
            initial_arrays(params.word_count, params.dtype),
            ntimes=ntimes,
        )
        randomized = _device_latencies(
            target, params, _random_contents(params, seed), ntimes=ntimes
        )
        checked += 1
        if baseline != randomized:
            violations.append(
                Violation(
                    law="content_invariance",
                    left=f"{target} {params.describe()} [contents=stream-initial]",
                    right=f"{target} {params.describe()} [contents=random(seed={seed})]",
                    left_value=min(baseline),
                    right_value=min(randomized),
                    detail="latency sequences differ",
                )
            )
    return LawReport(
        law="content_invariance", checked=checked, violations=tuple(violations)
    )


def check_contiguous_vs_strided(
    targets: Sequence[str] = ALL_TARGETS,
    *,
    array_bytes: int = 65536,
    ntimes: int = 2,
) -> LawReport:
    """Contiguous access must not lose to strided at equal footprint."""
    violations = []
    checked = 0
    for target in targets:
        runner = BenchmarkRunner(target, ntimes=ntimes)
        base = TuningParameters(
            kernel=KernelName.COPY,
            array_bytes=array_bytes,
            loop=optimal_loop_for(target),
        )
        contiguous = runner.run(base.with_(pattern=AccessPattern.CONTIGUOUS))
        strided = runner.run(base.with_(pattern=AccessPattern.STRIDED))
        checked += 1
        if not (contiguous.ok and strided.ok):
            failed = contiguous if not contiguous.ok else strided
            violations.append(
                Violation(
                    law="contiguous_vs_strided",
                    left=f"{target} {contiguous.params.describe()}",
                    right=f"{target} {strided.params.describe()}",
                    left_value=contiguous.bandwidth_gbs,
                    right_value=strided.bandwidth_gbs,
                    detail=f"point failed: {failed.error}",
                )
            )
        elif contiguous.bandwidth_gbs < strided.bandwidth_gbs:
            violations.append(
                Violation(
                    law="contiguous_vs_strided",
                    left=f"{target} {contiguous.params.describe()}",
                    right=f"{target} {strided.params.describe()}",
                    left_value=contiguous.bandwidth_gbs,
                    right_value=strided.bandwidth_gbs,
                    detail="strided beat contiguous",
                )
            )
    return LawReport(
        law="contiguous_vs_strided", checked=checked, violations=tuple(violations)
    )


def check_bytes_linear(
    targets: Sequence[str] = ("cpu",),
    *,
    base_bytes: int = 16384,
    factors: Sequence[int] = (2, 4),
) -> LawReport:
    """Bytes moved must scale exactly linearly with array size."""
    violations = []
    checked = 0
    for target in targets:
        runner = BenchmarkRunner(target, ntimes=1)
        base = TuningParameters(
            kernel=KernelName.TRIAD,
            array_bytes=base_bytes,
            loop=optimal_loop_for(target),
        )
        reference = runner.run(base)
        for factor in factors:
            scaled = runner.run(base.with_(array_bytes=base_bytes * factor))
            checked += 1
            if scaled.moved_bytes != factor * reference.moved_bytes:
                violations.append(
                    Violation(
                        law="bytes_linear",
                        left=f"{target} {reference.params.describe()}",
                        right=f"{target} {scaled.params.describe()}",
                        left_value=float(reference.moved_bytes),
                        right_value=float(scaled.moved_bytes),
                        detail=f"expected exactly {factor}x the bytes",
                    )
                )
    return LawReport(
        law="bytes_linear", checked=checked, violations=tuple(violations)
    )


# -- analytic memsim laws ----------------------------------------------------


def _canonical_hierarchy() -> Hierarchy:
    """A two-level geometry representative of the modelled devices."""
    return Hierarchy(
        [
            Level("L1", CacheConfig(32 * 1024, 64, 8), bandwidth=1e12, latency=1e-9),
            Level("L2", CacheConfig(512 * 1024, 64, 8), bandwidth=4e11, latency=5e-9),
        ],
        memory_bandwidth=5e10,
    )


def check_service_time_stride(
    *,
    footprint_bytes: int = 1 << 20,
    element_bytes: int = 8,
    strides: Sequence[int] = (8, 16, 32, 64, 128, 256, 512),
) -> LawReport:
    """Hierarchy service time is monotone non-decreasing in stride."""
    hierarchy = _canonical_hierarchy()
    times = [
        hierarchy.streaming_service_time(
            footprint_bytes=footprint_bytes,
            stride_bytes=stride,
            element_bytes=element_bytes,
        )
        for stride in strides
    ]
    violations = []
    for (s1, t1), (s2, t2) in zip(
        zip(strides, times), zip(strides[1:], times[1:])
    ):
        if t2 < t1 * (1 - 1e-12):
            violations.append(
                Violation(
                    law="service_time_stride",
                    left=f"stride={s1}B over {footprint_bytes}B",
                    right=f"stride={s2}B over {footprint_bytes}B",
                    left_value=t1,
                    right_value=t2,
                    detail="larger stride finished faster",
                )
            )
    return LawReport(
        law="service_time_stride",
        checked=len(strides) - 1,
        violations=tuple(violations),
    )


def check_hit_rate_stride(
    *,
    footprint_bytes: int = 256 * 1024,
    element_bytes: int = 8,
    strides: Sequence[int] = (8, 16, 32, 64, 128, 256, 512),
    config: CacheConfig | None = None,
) -> LawReport:
    """Cache hit rate is monotone non-increasing in stride."""
    config = config or CacheConfig(32 * 1024, 64, 8)
    rates = [
        streaming_hit_ratio(
            footprint_bytes=footprint_bytes,
            stride_bytes=stride,
            element_bytes=element_bytes,
            config=config,
        )
        for stride in strides
    ]
    violations = []
    for (s1, r1), (s2, r2) in zip(
        zip(strides, rates), zip(strides[1:], rates[1:])
    ):
        if r2 > r1 + 1e-12:
            violations.append(
                Violation(
                    law="hit_rate_stride",
                    left=f"stride={s1}B over {footprint_bytes}B",
                    right=f"stride={s2}B over {footprint_bytes}B",
                    left_value=r1,
                    right_value=r2,
                    detail="larger stride hit more often",
                )
            )
    return LawReport(
        law="hit_rate_stride", checked=len(strides) - 1, violations=tuple(violations)
    )


def check_hit_rate_passes(
    *,
    footprints: Sequence[int] = (16 * 1024, 1 << 20),
    strides: Sequence[int] = (8, 64),
    element_bytes: int = 8,
    config: CacheConfig | None = None,
) -> LawReport:
    """Walking the footprint again can only raise the hit rate."""
    config = config or CacheConfig(32 * 1024, 64, 8)
    violations = []
    checked = 0
    for footprint in footprints:
        for stride in strides:
            one = streaming_hit_ratio(
                footprint_bytes=footprint,
                stride_bytes=stride,
                element_bytes=element_bytes,
                config=config,
                passes=1,
            )
            two = streaming_hit_ratio(
                footprint_bytes=footprint,
                stride_bytes=stride,
                element_bytes=element_bytes,
                config=config,
                passes=2,
            )
            checked += 1
            if two < one - 1e-12:
                violations.append(
                    Violation(
                        law="hit_rate_passes",
                        left=f"passes=1 stride={stride}B over {footprint}B",
                        right=f"passes=2 stride={stride}B over {footprint}B",
                        left_value=one,
                        right_value=two,
                        detail="a second pass lowered the hit rate",
                    )
                )
    return LawReport(
        law="hit_rate_passes", checked=checked, violations=tuple(violations)
    )


def check_all(*, quick: bool = False) -> list[LawReport]:
    """Run every law; ``quick`` restricts the engine-backed ones."""
    engine_targets = ("cpu",) if quick else ALL_TARGETS
    content_targets = ("cpu",) if quick else ("cpu", "gpu")
    return [
        check_content_invariance(content_targets),
        check_contiguous_vs_strided(engine_targets),
        check_bytes_linear(("cpu",) if quick else ("cpu", "aocl")),
        check_service_time_stride(),
        check_hit_rate_stride(),
        check_hit_rate_passes(),
    ]
