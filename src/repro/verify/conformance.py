"""Differential conformance: interpreter vs reference vs device.

Pillar 1 of the verification subsystem. For any tuning-parameter point
the generated OpenCL-C is re-executed through the oclc *interpreter* —
a sequential semantic reference that shares nothing with the
specialized fast path the simulated devices run — and compared
element-exact (int) or ULP-bounded (float/double, budgets pinned in
:mod:`repro.verify.tolerance`) against the NumPy host-stream reference
(:func:`repro.hoststream.stream_reference`). On top of single points,
:func:`check_variants` asserts that *all* vector-width / unroll /
loop-management / access-pattern variants of the same
``(kernel, dtype, size)`` agree with each other and with the reference:
different generated source, same semantics.

:func:`verify_device_outputs` is the engine-facing entry point: given
the arrays a device execution produced, it re-derives the expected
state (running the interpreter when the point is small enough,
otherwise comparing directly against the NumPy reference) and returns a
structured, fully deterministic verdict dict that lands in
``RunResult.detail["verify"]``.

The interpreter walks one Python loop iteration per work-item, so full
differential execution is capped at :data:`INTERP_WORD_LIMIT` words per
array; bigger points degrade to reference-only mode (still catching
wrong device output, just not interpreter drift).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.generator import generate
from ..core.kernels import KERNELS, SCALAR_Q, initial_arrays
from ..core.params import (
    VECTOR_WIDTHS,
    AccessPattern,
    DataType,
    KernelName,
    LoopManagement,
    TuningParameters,
)
from ..errors import BenchmarkError, SweepError
from ..hoststream.reference import stream_reference
from ..oclc import compile_source_cached
from ..oclc.interp import BufferArg, run_kernel
from .tolerance import ULP_TOLERANCE, max_ulp_diff

__all__ = [
    "INTERP_WORD_LIMIT",
    "PointVerdict",
    "VariantReport",
    "interpret_point",
    "output_checksum",
    "check_point",
    "variant_grid",
    "check_variants",
    "verify_device_outputs",
    "random_point",
    "shrink_failure",
]

#: words per array above which full interpretation is skipped (the
#: interpreter costs one Python iteration per work-item / loop trip)
INTERP_WORD_LIMIT = 4096

_ARRAY_NAMES = ("a", "b", "c")


def interpret_point(
    params: TuningParameters,
    *,
    initial: Mapping[str, np.ndarray] | None = None,
    max_words: int = INTERP_WORD_LIMIT,
) -> dict[str, np.ndarray]:
    """Run the point's generated kernel through the oclc interpreter.

    Generates the source, runs it through the (memoized) front-end and
    executes the checked program work-item by work-item. Returns the
    final array state; ``initial`` overrides the STREAM starting values
    (arrays are copied, never mutated). Refuses points larger than
    ``max_words`` words per array — use
    :func:`verify_device_outputs` for a size-aware comparison.
    """
    if params.word_count > max_words:
        raise BenchmarkError(
            f"point has {params.word_count} words/array, over the "
            f"interpretation cap of {max_words}"
        )
    gen = generate(params)
    checked = compile_source_cached(
        gen.source, {k: str(v) for k, v in gen.defines.items()}
    )
    if initial is None:
        initial = initial_arrays(params.word_count, params.dtype)
    arrays = {name: initial[name].copy() for name in _ARRAY_NAMES}
    spec = KERNELS[params.kernel]
    call: dict[str, object] = {
        name: BufferArg(arrays[name]) for name in (*spec.reads, spec.writes)
    }
    if spec.uses_scalar:
        call["q"] = SCALAR_Q
    run_kernel(checked, gen.kernel_name, gen.global_size, call, gen.local_size)
    return arrays


def output_checksum(arrays: Mapping[str, np.ndarray]) -> str:
    """Short content hash of the three arrays (dtype-tagged, bitwise)."""
    digest = hashlib.sha256()
    for name in _ARRAY_NAMES:
        arr = np.ascontiguousarray(arrays[name])
        digest.update(f"{name}:{arr.dtype.str}:".encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class PointVerdict:
    """Interpreter-vs-reference outcome for one grid point."""

    params: TuningParameters
    ok: bool
    #: worst elementwise ULP distance across the three arrays
    max_ulp: float
    #: bitwise content hash of the interpreter's final arrays
    checksum: str
    error: str = ""

    def describe(self) -> str:
        status = "ok" if self.ok else f"MISMATCH ({self.error})"
        return f"{self.params.describe()}: {status} [max {self.max_ulp:g} ulp]"


def _worst_array(
    got: Mapping[str, np.ndarray], want: Mapping[str, np.ndarray]
) -> tuple[str, float]:
    """(name, ulp) of the array with the largest elementwise distance."""
    worst_name, worst = "a", 0.0
    for name in _ARRAY_NAMES:
        ulp = max_ulp_diff(got[name], want[name])
        if ulp > worst:
            worst_name, worst = name, ulp
    return worst_name, worst


def _judge(
    params: TuningParameters,
    initial: Mapping[str, np.ndarray] | None = None,
) -> tuple[PointVerdict, dict[str, np.ndarray]]:
    """Interpret one point; return (verdict vs reference, final arrays)."""
    gen = generate(params)
    if initial is None:
        initial = initial_arrays(params.word_count, params.dtype)
    expected = stream_reference(
        params.kernel, dict(initial), touched_words=gen.touched_words
    )
    got = interpret_point(params, initial=initial)
    name, worst = _worst_array(got, expected)
    tol = ULP_TOLERANCE[params.dtype]
    ok = worst <= tol
    error = (
        ""
        if ok
        else f"array {name!r} is {worst:g} ulp from the reference "
        f"(budget {tol})"
    )
    verdict = PointVerdict(
        params=params,
        ok=ok,
        max_ulp=worst,
        checksum=output_checksum(got),
        error=error,
    )
    return verdict, got


def check_point(
    params: TuningParameters,
    *,
    initial: Mapping[str, np.ndarray] | None = None,
) -> PointVerdict:
    """Interpret one point and judge it against the NumPy reference."""
    return _judge(params, initial)[0]


#: the variant axes exercised per (kernel, dtype, size): every loop
#: management, a spread of vector widths, unrolling, both pointer
#: styles and both access patterns
_VARIANT_AXES: tuple[dict[str, object], ...] = (
    dict(loop=LoopManagement.NDRANGE, vector_width=1),
    dict(loop=LoopManagement.NDRANGE, vector_width=2),
    dict(loop=LoopManagement.NDRANGE, vector_width=4),
    dict(loop=LoopManagement.NDRANGE, vector_width=8),
    dict(loop=LoopManagement.NDRANGE, vector_width=4, use_vload=True),
    dict(loop=LoopManagement.NDRANGE, vector_width=1, pattern=AccessPattern.STRIDED),
    dict(loop=LoopManagement.FLAT, vector_width=1),
    dict(loop=LoopManagement.FLAT, vector_width=1, unroll=4),
    dict(loop=LoopManagement.FLAT, vector_width=4, unroll=2),
    dict(loop=LoopManagement.FLAT, vector_width=8, use_vload=True),
    dict(loop=LoopManagement.FLAT, vector_width=1, pattern=AccessPattern.STRIDED),
    dict(loop=LoopManagement.NESTED, vector_width=1),
    dict(loop=LoopManagement.NESTED, vector_width=2, unroll=2),
)


def variant_grid(
    kernel: KernelName, dtype: DataType, array_bytes: int
) -> list[TuningParameters]:
    """All conformance variants of one ``(kernel, dtype, size)``.

    Combinations the parameter validation rejects for this size (for
    example a vector width that does not divide the array) are skipped.
    """
    points = []
    for changes in _VARIANT_AXES:
        try:
            points.append(
                TuningParameters(
                    kernel=kernel, array_bytes=array_bytes, dtype=dtype, **changes
                )  # type: ignore[arg-type]
            )
        except SweepError:
            continue
    return points


@dataclass(frozen=True)
class VariantReport:
    """Cross-variant agreement for one ``(kernel, dtype, size)``."""

    kernel: KernelName
    dtype: DataType
    array_bytes: int
    verdicts: tuple[PointVerdict, ...]
    #: every variant matched the reference *and* all other variants
    agree: bool
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.agree and all(v.ok for v in self.verdicts)

    def describe(self) -> str:
        worst = max((v.max_ulp for v in self.verdicts), default=0.0)
        status = "ok" if self.ok else f"FAIL ({self.error})"
        return (
            f"{self.kernel.value}/{self.dtype.cname} {self.array_bytes}B "
            f"x{len(self.verdicts)} variants: {status} [max {worst:g} ulp]"
        )


def check_variants(
    kernel: KernelName,
    dtype: DataType,
    array_bytes: int = 4096,
    *,
    variants: Sequence[TuningParameters] | None = None,
) -> VariantReport:
    """Interpret every variant and demand full agreement.

    Each variant must match the NumPy reference within the pinned ULP
    budget, and all variants must agree with each other — checked
    bitwise first (the checksums of conforming variants coincide today,
    all paths round identically), falling back to a pairwise ULP
    comparison against the first variant with twice the elementwise
    budget (two budget-respecting variants can legally sit ``2*tol``
    apart).
    """
    points = (
        list(variants)
        if variants is not None
        else variant_grid(kernel, dtype, array_bytes)
    )
    if not points:
        raise BenchmarkError(
            f"no valid conformance variants for {kernel.value}/{dtype.cname} "
            f"at {array_bytes} bytes"
        )
    verdicts = []
    outputs = []
    for params in points:
        verdict, got = _judge(params)
        verdicts.append(verdict)
        outputs.append(got)
    agree = True
    error = ""
    bad = [v for v in verdicts if not v.ok]
    if bad:
        agree = False
        error = f"{len(bad)} variant(s) diverged from the reference: {bad[0].error}"
    elif len({v.checksum for v in verdicts}) > 1:
        pair_budget = 2 * ULP_TOLERANCE[dtype]
        for first, other in zip(verdicts[1:], outputs[1:]):
            name, ulp = _worst_array(other, outputs[0])
            if ulp > pair_budget:
                agree = False
                error = (
                    f"variants disagree by {ulp:g} ulp on array {name!r}: "
                    f"{points[0].describe()} vs {first.params.describe()}"
                )
                break
    return VariantReport(
        kernel=kernel,
        dtype=dtype,
        array_bytes=array_bytes,
        verdicts=tuple(verdicts),
        agree=agree,
        error=error,
    )


def verify_device_outputs(
    params: TuningParameters,
    gen: "object",
    observed: Mapping[str, np.ndarray],
    *,
    corrupt: Callable[[dict[str, np.ndarray]], bool] | None = None,
) -> dict[str, object]:
    """Differential verdict for one executed point (engine entry point).

    ``observed`` is the device's final array state; ``gen`` the
    generated kernel it ran (for ``touched_words``). Small points run
    the full differential chain (interpreter re-execution compared to
    both the NumPy reference and the device); points over
    :data:`INTERP_WORD_LIMIT` compare the device directly against the
    reference (``mode="reference"``). ``corrupt`` is the fault
    framework's miscompile hook: it may flip a word of the re-derived
    arrays before comparison and returns whether it did.

    The verdict dict is pure JSON scalars and **deterministic** — no
    wall-clock, no iteration order — so a resumed campaign restores
    byte-identical verdicts (asserted in the resilience tests).
    """
    initial = initial_arrays(params.word_count, params.dtype)
    touched = getattr(gen, "touched_words", None)
    expected = stream_reference(params.kernel, initial, touched_words=touched)
    if params.word_count <= INTERP_WORD_LIMIT:
        mode = "differential"
        derived = interpret_point(params, initial=initial)
    else:
        mode = "reference"
        derived = {name: expected[name].copy() for name in _ARRAY_NAMES}
    corrupted = bool(corrupt(derived)) if corrupt is not None else False

    ref_name, ref_ulp = _worst_array(derived, expected)
    dev_name, dev_ulp = _worst_array(dict(observed), derived)
    tol = ULP_TOLERANCE[params.dtype]
    ok = ref_ulp <= tol and dev_ulp <= tol
    if ok:
        error = ""
    elif ref_ulp > tol:
        error = (
            f"{mode} check: re-derived array {ref_name!r} is {ref_ulp:g} ulp "
            f"from the reference (budget {tol})"
        )
    else:
        error = (
            f"{mode} check: device array {dev_name!r} is {dev_ulp:g} ulp "
            f"from the re-derived output (budget {tol})"
        )
    return {
        "mode": mode,
        "ok": ok,
        "tolerance_ulp": float(tol),
        "max_ulp_vs_reference": float(ref_ulp),
        "max_ulp_device": float(dev_ulp),
        "checksum": output_checksum(derived),
        "checked_words": int(params.word_count),
        "corrupted": corrupted,
        "error": error,
    }


def random_point(
    rng: "np.random.Generator",
    *,
    kernels: Sequence[KernelName] = tuple(KERNELS),
    dtypes: Sequence[DataType] = tuple(DataType),
    max_bytes: int = 16384,
) -> TuningParameters:
    """A random, always-valid grid point for fuzzing conformance.

    Sizes stay small enough to interpret; every draw respects the
    parameter-validation rules by construction, so a fuzz loop never
    wastes iterations on invalid combinations.
    """
    sizes = [s for s in (1024, 2048, 4096, 8192, 16384) if s <= max_bytes]
    loop = LoopManagement(rng.choice([m.value for m in LoopManagement]))
    width = int(rng.choice(VECTOR_WIDTHS))
    return TuningParameters(
        kernel=KernelName(rng.choice([k.value for k in kernels])),
        array_bytes=int(rng.choice(sizes)),
        dtype=dtypes[int(rng.integers(len(dtypes)))],
        vector_width=width,
        pattern=AccessPattern(
            rng.choice([AccessPattern.CONTIGUOUS.value, AccessPattern.STRIDED.value])
        ),
        loop=loop,
        unroll=int(rng.choice([1, 2, 4])) if loop is not LoopManagement.NDRANGE else 1,
        use_vload=bool(rng.integers(2)) if width > 1 else False,
    )


def shrink_failure(
    params: TuningParameters,
    still_fails: Callable[[TuningParameters], bool],
) -> TuningParameters:
    """Greedy shrink of a failing fuzz point toward the simplest repro.

    Repeatedly tries one simplification at a time (drop vload, drop
    unrolling, contiguous pattern, NDRange loop, scalar width, minimal
    size) and keeps any change under which ``still_fails`` holds.
    Invalid intermediate combinations are skipped. Deterministic, so
    the printed "offending ParamPoint" is stable for a given seed.
    """
    simplifications: tuple[dict[str, object], ...] = (
        dict(use_vload=False),
        dict(unroll=1),
        dict(pattern=AccessPattern.CONTIGUOUS),
        dict(loop=LoopManagement.NDRANGE, unroll=1),
        dict(vector_width=1, use_vload=False),
        dict(array_bytes=1024),
    )
    current = params
    changed = True
    while changed:
        changed = False
        for changes in simplifications:
            if all(getattr(current, k) == v for k, v in changes.items()):
                continue
            try:
                candidate = current.with_(**changes)
            except SweepError:
                continue
            if still_fails(candidate):
                current = candidate
                changed = True
    return current
