"""Golden regression corpus: pinned fingerprints for a representative grid.

Pillar 3 of the verification subsystem. A checked-in JSON corpus
(``tests/golden/corpus.json``) records, for every point of a small but
representative grid, the :meth:`RunResult.fingerprint` hash and the
interpreter's output checksum. Any behavioural drift — a model tweak
that shifts bandwidth, a generator change that alters kernel output, a
refactor that breaks determinism — shows up as a diff against the
corpus before it reaches users. ``mp-stream verify --update-golden``
regenerates the file after an *intentional* change; the resulting VCS
diff is the review artifact.

Entries are keyed by :func:`repro.core.history.point_fingerprint`, the
same identity the sweep journal uses, so corpus keys line up with
journal keys for cross-referencing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ..core.history import point_fingerprint
from ..core.params import DataType, KernelName, TuningParameters
from ..core.runner import BenchmarkRunner, optimal_loop_for
from ..errors import BenchmarkError
from .conformance import interpret_point, output_checksum

__all__ = [
    "GOLDEN_SCHEMA",
    "DEFAULT_GOLDEN_PATH",
    "DEFAULT_SEARCH_GOLDEN_PATH",
    "SEARCH_COMPARED_FIELDS",
    "CorpusDiff",
    "corpus_grid",
    "compute_corpus",
    "search_scenarios",
    "compute_search_corpus",
    "load_corpus",
    "save_corpus",
    "diff_corpus",
    "format_drift",
]

GOLDEN_SCHEMA = 1

#: repo-relative home of the checked-in corpus
DEFAULT_GOLDEN_PATH = Path("tests") / "golden" / "corpus.json"

#: repo-relative home of the pinned search trajectories
DEFAULT_SEARCH_GOLDEN_PATH = Path("tests") / "golden" / "search_trajectories.json"

CORPUS_TARGETS = ("cpu", "gpu", "aocl", "sdaccel")

#: fields compared by :func:`diff_corpus`, in report order
_COMPARED_FIELDS = ("params", "result_sha", "output_sha", "bandwidth_gbs", "failure_kind")

#: fields compared for search-trajectory entries
SEARCH_COMPARED_FIELDS = (
    "params",
    "budget",
    "pool",
    "spent",
    "rung_fingerprints",
    "trajectory_sha",
    "best_params",
    "bandwidth_gbs",
)


def corpus_grid(
    targets: Sequence[str] = CORPUS_TARGETS,
    *,
    array_bytes: int = 4096,
) -> list[tuple[str, TuningParameters]]:
    """The representative (target, point) grid the corpus pins.

    Small arrays keep the interpreter leg fast; the axes cover both
    read patterns of the kernel set (2-array COPY, 3-array TRIAD),
    exact and rounded dtypes, and scalar vs vectorized code paths,
    with each target's natural loop management.
    """
    grid: list[tuple[str, TuningParameters]] = []
    for target in targets:
        loop = optimal_loop_for(target)
        for kernel in (KernelName.COPY, KernelName.TRIAD):
            for dtype in (DataType.INT, DataType.DOUBLE):
                for width in (1, 4):
                    grid.append(
                        (
                            target,
                            TuningParameters(
                                kernel=kernel,
                                dtype=dtype,
                                array_bytes=array_bytes,
                                vector_width=width,
                                loop=loop,
                            ),
                        )
                    )
    return grid


def _result_sha(fingerprint: str) -> str:
    return hashlib.sha256(fingerprint.encode()).hexdigest()[:16]


def compute_corpus(
    grid: Iterable[tuple[str, TuningParameters]] | None = None,
    *,
    ntimes: int = 2,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Run the corpus grid and collect current fingerprints.

    Returns the full corpus document (``{"schema": ..., "entries":
    {...}}``). Every value is a deterministic JSON scalar so the
    serialized form is byte-stable across runs.
    """
    if grid is None:
        grid = corpus_grid()
    entries: dict[str, dict] = {}
    runners: dict[str, BenchmarkRunner] = {}
    for target, params in grid:
        if target not in runners:
            runners[target] = BenchmarkRunner(target, ntimes=ntimes)
        result = runners[target].run(params)
        outputs = interpret_point(params)
        key = point_fingerprint(target, params)
        entries[key] = {
            "target": target,
            "params": params.describe(),
            "result_sha": _result_sha(result.fingerprint()),
            "output_sha": output_checksum(outputs),
            "bandwidth_gbs": round(result.bandwidth_gbs, 6),
            "failure_kind": result.failure_kind,
        }
        if progress is not None:
            progress(f"golden: {target} {params.describe()}")
    return {"schema": GOLDEN_SCHEMA, "entries": dict(sorted(entries.items()))}


def search_scenarios(
    targets: Sequence[str] = CORPUS_TARGETS,
    *,
    array_bytes: int = 64 * 1024,
) -> list[dict]:
    """The pinned (target, axes, budget) search scenarios.

    One scenario per target over the small halving grid the scheduler
    and chaos suites also use — large enough for a model rung, two
    measured rungs, and a refinement step; small enough to run in
    seconds.
    """
    from ..core.params import LoopManagement

    axes = {
        "loop": [LoopManagement.FLAT, LoopManagement.NESTED, LoopManagement.NDRANGE],
        "vector_width": [1, 2, 4, 8],
        "unroll": [1, 2],
    }
    return [
        {
            "target": target,
            "axes": axes,
            "array_bytes": array_bytes,
            "budget": 6,
            "eta": 2,
        }
        for target in targets
    ]


def _scenario_key(scenario: dict) -> str:
    """Stable identity for one search scenario (its pinned inputs)."""
    axes_doc = {
        name: [getattr(v, "value", v) for v in values]
        for name, values in scenario["axes"].items()
    }
    blob = json.dumps(
        {
            "target": scenario["target"],
            "axes": axes_doc,
            "array_bytes": scenario["array_bytes"],
            "budget": scenario["budget"],
            "eta": scenario["eta"],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def compute_search_corpus(
    scenarios: Sequence[dict] | None = None,
    *,
    ntimes: int = 2,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Run the pinned search scenarios and collect current trajectories.

    Each entry pins the rung-by-rung fingerprints of one multi-fidelity
    search — any model/generator/searcher change that shifts a
    trajectory diffs field-by-field against this, so drift is *named*
    (which scenario, which rung count, which optimum) rather than just
    failed.
    """
    from ..core.search import multifidelity_search

    if scenarios is None:
        scenarios = search_scenarios()
    entries: dict[str, dict] = {}
    for scenario in scenarios:
        target = scenario["target"]
        runner = BenchmarkRunner(target, ntimes=ntimes)
        seed = TuningParameters(array_bytes=scenario["array_bytes"])
        out = multifidelity_search(
            runner,
            scenario["axes"],
            seed=seed,
            budget=scenario["budget"],
            eta=scenario["eta"],
        )
        axes_desc = ",".join(
            f"{name}[{len(values)}]" for name, values in scenario["axes"].items()
        )
        entries[_scenario_key(scenario)] = {
            "target": target,
            "params": f"{axes_desc} budget={scenario['budget']} "
            f"eta={scenario['eta']} {scenario['array_bytes']}B",
            "budget": scenario["budget"],
            "pool": out.pool_size,
            "spent": out.spent,
            "rung_fingerprints": out.rung_fingerprints(),
            "trajectory_sha": out.trajectory_fingerprint(),
            "best_params": out.best.params.describe(),
            "bandwidth_gbs": round(out.best.bandwidth_gbs, 6),
        }
        if progress is not None:
            progress(f"search golden: {target} {axes_desc}")
    return {"schema": GOLDEN_SCHEMA, "entries": dict(sorted(entries.items()))}


def load_corpus(path: Path | str) -> dict:
    """Read a corpus document, validating its schema tag."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        raise BenchmarkError(
            f"golden corpus not found at {path} "
            "(run `mp-stream verify --update-golden` to create it)"
        ) from None
    except json.JSONDecodeError as exc:
        raise BenchmarkError(f"golden corpus at {path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != GOLDEN_SCHEMA:
        raise BenchmarkError(
            f"golden corpus at {path} has schema {doc.get('schema')!r}; "
            f"this build expects {GOLDEN_SCHEMA}"
        )
    return doc


def save_corpus(path: Path | str, corpus: dict) -> None:
    """Write the corpus with a stable, diff-friendly serialization."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": corpus.get("schema", GOLDEN_SCHEMA),
        "entries": dict(sorted(corpus.get("entries", {}).items())),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@dataclass(frozen=True)
class CorpusDiff:
    """Drift between a stored corpus and freshly computed entries."""

    added: tuple[str, ...] = ()
    removed: tuple[str, ...] = ()
    #: key -> list of (field, old value, new value)
    changed: dict[str, list[tuple[str, object, object]]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not (self.added or self.removed or self.changed)


def diff_corpus(
    old: dict, new: dict, *, fields: Sequence[str] = _COMPARED_FIELDS
) -> CorpusDiff:
    """Compare two corpus documents field by field.

    ``fields`` selects the compared entry fields (report order) — the
    run-result corpus and the search-trajectory corpus pin different
    shapes but share the diff/drift machinery.
    """
    old_entries = old.get("entries", {})
    new_entries = new.get("entries", {})
    added = tuple(sorted(set(new_entries) - set(old_entries)))
    removed = tuple(sorted(set(old_entries) - set(new_entries)))
    changed: dict[str, list[tuple[str, object, object]]] = {}
    for key in sorted(set(old_entries) & set(new_entries)):
        drifted = [
            (name, old_entries[key].get(name), new_entries[key].get(name))
            for name in fields
            if old_entries[key].get(name) != new_entries[key].get(name)
        ]
        if drifted:
            changed[key] = drifted
    return CorpusDiff(added=added, removed=removed, changed=changed)


def _label(entries: dict, key: str) -> str:
    entry = entries.get(key, {})
    return f"{key} ({entry.get('target', '?')} {entry.get('params', '?')})"


def format_drift(diff: CorpusDiff, old: dict, new: dict) -> str:
    """Diff-style drift report: ``-`` is the pinned state, ``+`` is now."""
    if diff.clean:
        return "golden corpus: clean (no drift)"
    old_entries = old.get("entries", {})
    new_entries = new.get("entries", {})
    lines = [
        f"golden corpus drift: {len(diff.changed)} changed, "
        f"{len(diff.added)} added, {len(diff.removed)} removed"
    ]
    for key in diff.removed:
        lines.append(f"- {_label(old_entries, key)}: entry removed")
    for key in diff.added:
        lines.append(f"+ {_label(new_entries, key)}: entry not in corpus")
    for key, fields in diff.changed.items():
        lines.append(f"  {_label(old_entries, key)}:")
        for name, was, now in fields:
            lines.append(f"-   {name} = {was}")
            lines.append(f"+   {name} = {now}")
    lines.append(
        "run `mp-stream verify --update-golden` and commit the diff if the "
        "change is intentional"
    )
    return "\n".join(lines)
