"""Differential verification: is the simulator computing the right thing?

The rest of this package asks "how fast"; this subsystem asks "is it
*correct*", with three independent pillars:

- :mod:`~repro.verify.conformance` — differential testing. Every
  generated kernel variant (vector widths, unrolls, loop managements)
  is executed by the oclc interpreter and compared against the NumPy
  host-stream reference under the pinned ULP budgets of
  :mod:`~repro.verify.tolerance`; all variants of one (kernel, dtype,
  size) must also agree with *each other*.
- :mod:`~repro.verify.metamorphic` — executable invariants over the
  performance models ("bandwidth ignores array contents", "contiguous
  beats strided", "bytes scale linearly", "hit rate falls with
  stride"), each violation naming the pair of grid points that broke
  the law.
- :mod:`~repro.verify.golden` — a checked-in regression corpus of
  result fingerprints and kernel-output checksums, with a diff-style
  drift report and an explicit ``--update-golden`` re-pin flow.

The engine can run the conformance leg per point as an optional
``verify`` stage (off the timed path); ``mp-stream verify`` runs all
three pillars as a gate.
"""

from __future__ import annotations

from ..core.params import DataType, KernelName
from .conformance import (
    INTERP_WORD_LIMIT,
    PointVerdict,
    VariantReport,
    check_point,
    check_variants,
    interpret_point,
    output_checksum,
    random_point,
    shrink_failure,
    variant_grid,
    verify_device_outputs,
)
from .golden import (
    DEFAULT_GOLDEN_PATH,
    DEFAULT_SEARCH_GOLDEN_PATH,
    SEARCH_COMPARED_FIELDS,
    CorpusDiff,
    compute_corpus,
    compute_search_corpus,
    corpus_grid,
    diff_corpus,
    format_drift,
    load_corpus,
    save_corpus,
    search_scenarios,
)
from .metamorphic import LawReport, Violation, check_all
from .tolerance import (
    ULP_TOLERANCE,
    max_ulp_diff,
    reduction_ulps,
    ulp_diff,
    within_tolerance,
)

__all__ = [
    "ULP_TOLERANCE",
    "ulp_diff",
    "max_ulp_diff",
    "within_tolerance",
    "reduction_ulps",
    "INTERP_WORD_LIMIT",
    "PointVerdict",
    "VariantReport",
    "check_point",
    "check_variants",
    "interpret_point",
    "output_checksum",
    "random_point",
    "shrink_failure",
    "variant_grid",
    "verify_device_outputs",
    "Violation",
    "LawReport",
    "check_all",
    "CorpusDiff",
    "DEFAULT_GOLDEN_PATH",
    "DEFAULT_SEARCH_GOLDEN_PATH",
    "SEARCH_COMPARED_FIELDS",
    "corpus_grid",
    "compute_corpus",
    "search_scenarios",
    "compute_search_corpus",
    "load_corpus",
    "save_corpus",
    "diff_corpus",
    "format_drift",
    "conformance_combos",
]


def conformance_combos(grid: str = "small") -> list[tuple[KernelName, DataType, int]]:
    """(kernel, dtype, array_bytes) combos for ``mp-stream verify``.

    ``small`` covers both kernel shapes and the exact/rounded dtype
    split at one size; ``default`` covers the full kernel × dtype
    product plus a second size for the 3-array kernels.
    """
    if grid == "small":
        return [
            (kernel, dtype, 4096)
            for kernel in (KernelName.COPY, KernelName.TRIAD)
            for dtype in (DataType.INT, DataType.DOUBLE)
        ]
    if grid == "default":
        combos = [
            (kernel, dtype, 4096)
            for kernel in KernelName
            for dtype in DataType
        ]
        combos += [
            (kernel, DataType.DOUBLE, 8192)
            for kernel in (KernelName.ADD, KernelName.TRIAD)
        ]
        return combos
    raise ValueError(f"unknown conformance grid {grid!r} (use 'small' or 'default')")
