"""The single pinned numeric-comparison policy for verification.

Every comparison the verification subsystem makes — interpreter vs
NumPy reference, device-observed vs interpreter, variant vs variant —
goes through this module, so the tolerance question is answered exactly
once instead of via ad-hoc ``pytest.approx`` calls scattered through
the test suite. Distances are measured in **ULPs** (units in the last
place): the number of representable values between two floats, which is
scale-free and catches "close in relative error but many roundings
apart" drift that a relative epsilon hides.

Audit note (float association order)
------------------------------------
The generated STREAM kernels are single elementwise expressions
(``TRIAD`` is ``a[i] = b[i] + q * c[i]``). The oclc interpreter
evaluates binary operators as per-element NumPy ufuncs in source
association — ``np.add(b_val, np.multiply(q, c_val))`` — with one
rounding per operation and no fused multiply-add. The NumPy host-stream
reference (:func:`repro.hoststream.stream_reference`) computes
``b[:n] + q * c[:n]``: the *same* association and the same IEEE-754
rounding per element. The two are therefore bitwise identical today —
0 ULPs observed across kernels, dtypes and vector widths. The budgets
below are deliberately small but non-zero for the float types to leave
room for a future fast path that reassociates (FMA contraction,
pairwise vector reduction) without being so loose that a real
miscompile slips through.

Reductions are different: reassociating a length-``n`` sum moves the
result by up to ``n`` ULPs in the worst case (the error of either
order is bounded by ``(n-1) * eps * sum|x|``, and for the same-signed
operands our DOT/SUM tests use, ``sum|x|`` equals the result). Tests
comparing a tree/partial-sum reduction against a sequential one use
:func:`reduction_ulps` instead of the elementwise budgets.
"""

from __future__ import annotations

import numpy as np

from ..core.params import DataType

__all__ = [
    "ULP_TOLERANCE",
    "ulp_diff",
    "max_ulp_diff",
    "within_tolerance",
    "reduction_ulps",
]

#: pinned elementwise ULP budget per data type: integers must be exact;
#: float budgets cover one reassociation of a 3-operand expression plus
#: headroom (see the audit note in the module docstring)
ULP_TOLERANCE: dict[DataType, int] = {
    DataType.INT: 0,
    DataType.FLOAT: 4,
    DataType.DOUBLE: 2,
}

#: per float dtype: (signed view type, unsigned diff type, sign-bit bias)
_ORDERED_INT = {
    np.dtype(np.float32): (np.int32, np.uint32, np.uint32(1 << 31)),
    np.dtype(np.float64): (np.int64, np.uint64, np.uint64(1 << 63)),
}


def ulp_diff(got: np.ndarray, want: np.ndarray) -> np.ndarray:
    """Elementwise ULP distance between two same-dtype arrays.

    For float dtypes, the IEEE-754 bit patterns are mapped onto a
    monotonically ordered integer line (sign-magnitude flipped for
    negatives, so ``-0.0`` and ``+0.0`` coincide) and differenced; the
    result counts representable values between the operands. Matching
    NaNs count as 0, a NaN against a number as ``inf``. For integer
    dtypes the plain absolute difference is returned, so "0 ULPs" means
    exact equality in every dtype. Returns a float64 array.
    """
    got = np.asarray(got)
    want = np.asarray(want)
    if got.dtype != want.dtype:
        raise ValueError(f"dtype mismatch: {got.dtype} vs {want.dtype}")
    if got.shape != want.shape:
        raise ValueError(f"shape mismatch: {got.shape} vs {want.shape}")
    if got.dtype.kind in "iu":
        return np.abs(got.astype(np.float64) - want.astype(np.float64))
    mapped = _ORDERED_INT.get(got.dtype)
    if mapped is None:
        raise ValueError(f"unsupported dtype for ULP comparison: {got.dtype}")
    itype, utype, bias = mapped
    lo = np.iinfo(itype).min
    a = got.view(itype)
    b = want.view(itype)
    # order the bit patterns (sign-magnitude flipped for negatives, so
    # -0.0 and +0.0 coincide), then difference exactly in the unsigned
    # domain: a float64 detour would round away +-1 differences on
    # large bit patterns (53-bit mantissa vs 63-bit ordinals)
    ua = np.where(a >= 0, a, lo - a).view(utype) + bias
    ub = np.where(b >= 0, b, lo - b).view(utype) + bias
    out = np.where(ua >= ub, ua - ub, ub - ua).astype(np.float64)
    nan_a = np.isnan(got)
    nan_b = np.isnan(want)
    if nan_a.any() or nan_b.any():
        out = np.where(nan_a & nan_b, 0.0, out)
        out = np.where(nan_a ^ nan_b, np.inf, out)
    return out


def max_ulp_diff(got: np.ndarray, want: np.ndarray) -> float:
    """The worst elementwise ULP distance (0.0 for empty arrays)."""
    diffs = ulp_diff(got, want)
    return float(diffs.max()) if diffs.size else 0.0


def within_tolerance(
    dtype: DataType, got: np.ndarray, want: np.ndarray
) -> tuple[bool, float]:
    """Apply the pinned budget: returns ``(ok, worst_ulp)``."""
    worst = max_ulp_diff(got, want)
    return worst <= ULP_TOLERANCE[dtype], worst


def reduction_ulps(terms: int) -> int:
    """Documented ULP budget for comparing two summation orders.

    Reassociating an ``n``-term same-signed sum perturbs the result by
    at most ``~n`` ULPs (see the module docstring); ``2 * n`` adds a
    factor-of-two margin and a floor for tiny reductions.
    """
    return max(8, 2 * int(terms))
