"""Memory-system simulation substrate.

Building blocks the device models compose:

* :mod:`repro.memsim.access` — vectorized address-stream generators;
* :mod:`repro.memsim.cache` — exact set-associative LRU simulation plus
  the analytic streaming-hit-ratio formulas the models use at scale
  (validated against the exact simulator in the test suite);
* :mod:`repro.memsim.coalesce` — grouping element accesses into memory
  transactions (GPU warp coalescing, FPGA burst inference);
* :mod:`repro.memsim.dram` — DRAM channel/bank/row-buffer timing;
* :mod:`repro.memsim.controller` — multi-stream arbitration/contention;
* :mod:`repro.memsim.pcie` — the host↔device interconnect.
"""

from __future__ import annotations

from .access import (
    contiguous_stream,
    strided_stream,
    column_major_stream,
    to_byte_addresses,
)
from .cache import BATCH_THRESHOLD, Cache, CacheConfig, streaming_hit_ratio
from .coalesce import (
    CoalesceResult,
    coalesce_fixed_groups,
    coalesce_fixed_groups_batch,
    coalesce_sequential,
    coalesce_sequential_batch,
)
from .controller import MemoryController, StreamDemand
from .dram import DramSpec, DramTiming, simulate_dram, row_locality_efficiency
from .pcie import PcieLink

__all__ = [
    "contiguous_stream",
    "strided_stream",
    "column_major_stream",
    "to_byte_addresses",
    "BATCH_THRESHOLD",
    "Cache",
    "CacheConfig",
    "streaming_hit_ratio",
    "CoalesceResult",
    "coalesce_fixed_groups",
    "coalesce_fixed_groups_batch",
    "coalesce_sequential",
    "coalesce_sequential_batch",
    "MemoryController",
    "StreamDemand",
    "DramSpec",
    "DramTiming",
    "simulate_dram",
    "row_locality_efficiency",
    "PcieLink",
]
