"""Host <-> device interconnect (PCI-Express) model.

MP-STREAM's "source/destination of streams" parameter measures
bandwidth *through* this link. Two regimes matter: small transfers are
latency-dominated (DMA setup + round trip), large transfers approach
the link's protocol-limited throughput (TLP header overhead caps
efficiency well below the raw signalling rate).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidValueError
from ..obs import metrics as obs_metrics

__all__ = ["PcieLink"]

#: Per-lane usable rate (bytes/s) after line coding, by PCIe generation.
_LANE_RATE = {1: 250e6, 2: 500e6, 3: 985e6, 4: 1969e6}


@dataclass(frozen=True)
class PcieLink:
    """A PCIe link of a given generation and width."""

    generation: int = 3
    lanes: int = 8
    #: DMA setup plus completion latency per transfer, seconds
    latency: float = 10e-6
    #: maximum TLP payload, bytes (typical 256)
    max_payload: int = 256
    #: TLP header + framing overhead, bytes per packet
    packet_overhead: int = 26

    def __post_init__(self) -> None:
        if self.generation not in _LANE_RATE:
            raise InvalidValueError(f"unknown PCIe generation {self.generation}")
        if self.lanes not in (1, 2, 4, 8, 16):
            raise InvalidValueError(f"invalid lane count {self.lanes}")

    @property
    def raw_bandwidth(self) -> float:
        """Signalling-rate bandwidth in bytes/second."""
        return _LANE_RATE[self.generation] * self.lanes

    @property
    def protocol_efficiency(self) -> float:
        return self.max_payload / (self.max_payload + self.packet_overhead)

    @property
    def peak_bandwidth(self) -> float:
        """Best sustainable data bandwidth (after TLP overhead)."""
        return self.raw_bandwidth * self.protocol_efficiency

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` one way."""
        if nbytes < 0:
            raise InvalidValueError(f"negative transfer size {nbytes}")
        if obs_metrics.active_registry() is not None:
            obs_metrics.count("memsim.pcie.transfers")
            obs_metrics.count("memsim.pcie.bytes", nbytes)
        if nbytes == 0:
            return self.latency
        return self.latency + nbytes / self.peak_bandwidth

    def effective_bandwidth(self, nbytes: int) -> float:
        """Achieved bytes/second for one transfer of ``nbytes``."""
        if nbytes <= 0:
            raise InvalidValueError("transfer size must be positive")
        return nbytes / self.transfer_time(nbytes)
