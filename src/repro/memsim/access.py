"""Vectorized address-stream generators.

A *stream* is a 1-D ``int64`` array of **element indices** in access
order; :func:`to_byte_addresses` scales it to bytes. These generators
mirror the access patterns MP-STREAM's kernels produce, and are used
both by tests (feeding the exact cache/DRAM simulators) and by device
models when they sample a window of a kernel's accesses.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidValueError

__all__ = [
    "contiguous_stream",
    "strided_stream",
    "column_major_stream",
    "interleaved_streams",
    "to_byte_addresses",
]


def contiguous_stream(n: int, *, start: int = 0) -> np.ndarray:
    """Elements ``start, start+1, ... start+n-1`` — a unit-stride walk."""
    if n < 0:
        raise InvalidValueError(f"stream length must be non-negative, got {n}")
    return np.arange(start, start + n, dtype=np.int64)


def strided_stream(n: int, stride: int, *, start: int = 0) -> np.ndarray:
    """``n`` elements with a fixed element ``stride`` (may be negative)."""
    if n < 0:
        raise InvalidValueError(f"stream length must be non-negative, got {n}")
    if stride == 0:
        return np.full(n, start, dtype=np.int64)
    return start + stride * np.arange(n, dtype=np.int64)


def column_major_stream(rows: int, cols: int) -> np.ndarray:
    """Walk a row-major ``rows x cols`` array in column-major order.

    This is the paper's "strided" pattern: consecutive accesses are
    ``cols`` elements apart, wrapping to the next column after ``rows``
    accesses. Every element is touched exactly once.
    """
    if rows <= 0 or cols <= 0:
        raise InvalidValueError(f"bad 2-D shape {(rows, cols)}")
    j, i = np.meshgrid(
        np.arange(cols, dtype=np.int64), np.arange(rows, dtype=np.int64), indexing="ij"
    )
    return (i * cols + j).reshape(-1)


def interleaved_streams(streams: list[np.ndarray]) -> np.ndarray:
    """Round-robin interleave equal-length streams (multi-array kernels).

    Models how a kernel like ADD issues ``b[i], c[i], a[i]`` per
    iteration: the per-array streams interleave at element granularity.
    """
    if not streams:
        raise InvalidValueError("need at least one stream")
    length = len(streams[0])
    if any(len(s) != length for s in streams):
        raise InvalidValueError("interleaved streams must have equal length")
    return np.stack(streams, axis=1).reshape(-1)


def to_byte_addresses(
    stream: np.ndarray, element_bytes: int, *, base: int = 0
) -> np.ndarray:
    """Scale an element-index stream to byte addresses."""
    if element_bytes <= 0:
        raise InvalidValueError(f"element size must be positive, got {element_bytes}")
    return base + stream.astype(np.int64) * element_bytes
