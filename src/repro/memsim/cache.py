"""Set-associative cache simulation, exact and analytic.

Two tools with one contract:

* :class:`Cache` — an exact set-associative LRU simulator over byte
  address traces. It has two lanes with identical semantics: a per-set
  Python loop (:meth:`Cache.access_scalar`, the differential oracle)
  and a NumPy batch lane (:meth:`Cache.access_batch`) that simulates
  all sets lane-parallel, processing the trace in "rounds" — the k-th
  access of every set together — so each vectorized step touches each
  set at most once. :meth:`Cache.access` picks the lane automatically
  by trace size; ``tests/test_fastpath_equivalence.py`` proves the
  lanes agree bit-for-bit on stats, per-access miss masks and final
  LRU state across randomized geometries and traces.
* :func:`streaming_hit_ratio` — closed-form hit ratios for the regular
  access patterns STREAM produces (unit-stride and fixed-stride walks,
  optionally repeated for multiple passes). The property tests check
  this formula against :class:`Cache` on randomized small geometries.

Device models use the analytic form at benchmark scale and stay exact
in the regime that matters: whether the working set of a pass fits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidValueError
from ..obs import metrics as obs_metrics

__all__ = [
    "BATCH_THRESHOLD",
    "CacheConfig",
    "CacheStats",
    "Cache",
    "streaming_hit_ratio",
]

#: trace length at which :meth:`Cache.access` switches to the batch lane
BATCH_THRESHOLD = 4096

#: below this many sets the batch lane degenerates towards one access
#: per round and the scalar loop is faster
_MIN_BATCH_SETS = 4

#: minimum same-line run-collapse factor before the auto lane batches
_MIN_COLLAPSE = 4


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    capacity_bytes: int
    line_bytes: int = 64
    ways: int = 8

    def __post_init__(self) -> None:
        if not _is_pow2(self.line_bytes):
            raise InvalidValueError(f"line size must be a power of two: {self.line_bytes}")
        if self.ways <= 0:
            raise InvalidValueError(f"ways must be positive: {self.ways}")
        if self.capacity_bytes % (self.line_bytes * self.ways):
            raise InvalidValueError(
                f"capacity {self.capacity_bytes} is not divisible by "
                f"line*ways = {self.line_bytes * self.ways}"
            )

    @property
    def num_sets(self) -> int:
        return self.capacity_bytes // (self.line_bytes * self.ways)

    @property
    def num_lines(self) -> int:
        return self.capacity_bytes // self.line_bytes


@dataclass
class CacheStats:
    """Access counters from a simulation run."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )


class Cache:
    """Exact set-associative LRU cache over byte-address traces.

    State persists across :meth:`access` calls, so multi-pass workloads
    can be fed window by window.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        # per set: list of tags in LRU order (index 0 = least recent)
        self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]
        self.stats = CacheStats()

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.config.num_sets)]
        self.stats = CacheStats()

    def access(self, addresses: np.ndarray) -> CacheStats:
        """Run a byte-address trace; returns stats for *this* trace only.

        Selects the batch lane automatically at benchmark scale
        (:data:`BATCH_THRESHOLD` accesses and enough sets to win); both
        lanes produce bit-identical stats and final state.
        """
        return self.access_masked(addresses)[0]

    def access_masked(
        self, addresses: np.ndarray
    ) -> tuple[CacheStats, np.ndarray]:
        """Like :meth:`access`, also returning the per-access miss mask.

        ``mask[i]`` is True when access ``i`` missed; the hierarchy uses
        it to build the line-granular miss stream for the next level
        without re-simulating.
        """
        set_idx, tags = self._split(addresses)
        if self._batch_eligible(set_idx, tags):
            local, miss = self._access_batch(set_idx, tags)
            lane = "batch"
        else:
            miss = np.zeros(set_idx.size, dtype=bool)
            local = self._access_scalar(set_idx, tags, miss)
            lane = "scalar"
        self._record(local, lane)
        return local, miss

    def access_scalar(self, addresses: np.ndarray) -> CacheStats:
        """The per-set Python loop: the differential oracle lane."""
        set_idx, tags = self._split(addresses)
        local = self._access_scalar(set_idx, tags, None)
        self._record(local, "scalar")
        return local

    def access_batch(self, addresses: np.ndarray) -> CacheStats:
        """The NumPy round-based lane; semantics identical to scalar."""
        set_idx, tags = self._split(addresses)
        if np.any(tags < 0):
            raise InvalidValueError("batch lane requires non-negative addresses")
        local, _ = self._access_batch(set_idx, tags)
        self._record(local, "batch")
        return local

    # -- lane plumbing ------------------------------------------------------

    def _split(self, addresses: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        cfg = self.config
        lines = np.asarray(addresses, dtype=np.int64) >> int(
            np.log2(cfg.line_bytes)
        )
        set_idx = (lines % cfg.num_sets).astype(np.int64)
        tags = (lines // cfg.num_sets).astype(np.int64)
        return set_idx, tags

    def _batch_eligible(self, set_idx: np.ndarray, tags: np.ndarray) -> bool:
        n = int(set_idx.size)
        if n < BATCH_THRESHOLD:
            return False
        if self.config.num_sets < _MIN_BATCH_SETS:
            return False
        # negative tags would collide with the empty-slot sentinel
        if tags.size and tags.min() < 0:
            return False
        # The batch lane wins when spatial locality lets same-line runs
        # collapse (unit-/sub-line-stride STREAM windows); with little
        # collapse the round loop approaches one access per set per
        # round and the scalar loop is competitive or faster. Require a
        # 4x shrink so the auto lane never loses.
        runs = 1 + int(
            np.count_nonzero(
                (set_idx[1:] != set_idx[:-1]) | (tags[1:] != tags[:-1])
            )
        )
        return runs * _MIN_COLLAPSE <= n

    def _record(self, local: CacheStats, lane: str) -> None:
        self.stats = self.stats.merge(local)
        if obs_metrics.active_registry() is not None:
            obs_metrics.count("memsim.cache.accesses", local.accesses)
            obs_metrics.count("memsim.cache.hits", local.hits)
            obs_metrics.count("memsim.cache.misses", local.misses)
            obs_metrics.count("memsim.cache.evictions", local.evictions)
            obs_metrics.count(f"fastpath.cache.{lane}_accesses", local.accesses)

    # -- scalar lane --------------------------------------------------------

    def _access_scalar(
        self,
        set_idx: np.ndarray,
        tags: np.ndarray,
        miss_out: np.ndarray | None,
    ) -> CacheStats:
        local = CacheStats(accesses=int(set_idx.size))
        ways = self.config.ways
        sets = self._sets
        for i, (s, t) in enumerate(zip(set_idx.tolist(), tags.tolist())):
            lru = sets[s]
            try:
                lru.remove(t)
                local.hits += 1
            except ValueError:
                local.misses += 1
                if miss_out is not None:
                    miss_out[i] = True
                if len(lru) >= ways:
                    lru.pop(0)
                    local.evictions += 1
            lru.append(t)
        return local

    # -- batch lane ---------------------------------------------------------

    def _access_batch(
        self, set_idx: np.ndarray, tags: np.ndarray
    ) -> tuple[CacheStats, np.ndarray]:
        """All-sets-parallel LRU simulation.

        State is a ``(num_sets, ways)`` tag table plus a matching
        ``last_use`` age table: within a set, ages are unique and
        strictly increase with each access, so LRU order is exactly the
        age order and the victim of a full set is the argmin age.
        Empty slots hold tag ``-1`` at age ``0`` — the argmin then
        prefers empty slots over evictions, matching the scalar lane's
        fill-before-evict behaviour.

        Three exact reductions make the lane fast:

        * **run collapse** — consecutive accesses to the same line are
          guaranteed hits (the line is most-recently-used); only run
          heads enter the simulation. Unit-stride STREAM windows shrink
          by ``line/stride``.
        * **rounds** — round ``k`` handles the ``k``-th head of every
          set together, so a round never touches a set twice and every
          step vectorizes. Head order, per-head ages and round slices
          are all precomputed; the loop body is a handful of NumPy ops.
        * **deferred eviction count** — a miss either fills an empty
          slot or evicts, and occupancy never shrinks, so evictions
          equal misses minus the occupancy gain, computed once.
        """
        cfg = self.config
        n = int(set_idx.size)
        local = CacheStats(accesses=n)
        miss_mask = np.zeros(n, dtype=bool)
        if n == 0:
            return local, miss_mask
        num_sets, ways = cfg.num_sets, cfg.ways

        tag_tab = np.full((num_sets, ways), -1, dtype=np.int64)
        age_tab = np.zeros((num_sets, ways), dtype=np.int64)
        occ0 = np.zeros(num_sets, dtype=np.int64)
        for s, lru in enumerate(self._sets):
            if lru:
                k = len(lru)
                tag_tab[s, :k] = lru
                age_tab[s, :k] = np.arange(1, k + 1)
                occ0[s] = k

        # run collapse, stage 1 (raw trace): consecutive accesses to the
        # same line are guaranteed hits (the line is MRU in its set) and
        # leave the LRU order unchanged; only run heads go any further.
        # Unit-stride STREAM windows shrink by line/stride *before* the
        # O(n log n) sort below ever sees them.
        keep = np.empty(n, dtype=bool)
        keep[0] = True
        np.logical_or(
            set_idx[1:] != set_idx[:-1],
            tags[1:] != tags[:-1],
            out=keep[1:],
        )
        raw_heads = np.flatnonzero(keep)
        set_idx = set_idx[raw_heads]
        tags = tags[raw_heads]
        n1 = int(raw_heads.size)

        # sort by set (stable): each set's subsequence becomes contiguous
        order = np.argsort(set_idx, kind="stable")
        ss = set_idx[order]
        tt = tags[order]

        # run collapse, stage 2 (per set): the same rule applied to each
        # set's subsequence also collapses interleaved streams (a,b,c
        # round-robin), whose runs are contiguous per set but not in the
        # raw trace.
        keep = np.empty(n1, dtype=bool)
        keep[0] = True
        np.logical_or(ss[1:] != ss[:-1], tt[1:] != tt[:-1], out=keep[1:])
        head_pos = np.flatnonzero(keep)
        head_sets = ss[head_pos]
        head_tags = tt[head_pos]
        heads = raw_heads[order[head_pos]]
        m = int(head_pos.size)

        # round-major layout: heads are already set-sorted; rank them
        # within their set, then regroup by rank so each round is a
        # contiguous slice touching every set at most once
        first = np.empty(m, dtype=bool)
        first[0] = True
        np.not_equal(head_sets[1:], head_sets[:-1], out=first[1:])
        starts = np.flatnonzero(first)
        sizes = np.diff(np.append(starts, m))
        rank = np.arange(m, dtype=np.int64) - np.repeat(starts, sizes)
        by_round = np.argsort(rank, kind="stable")
        round_order = by_round
        counts = np.bincount(rank)
        offsets = np.concatenate(([0], np.cumsum(counts)))

        S = head_sets[round_order]
        T = head_tags[round_order]
        # the k-th head of a set gets age occupancy+k+1: unique per set,
        # strictly increasing with access order
        A = occ0[S] + rank[by_round] + 1
        H = np.empty(m, dtype=bool)

        for r in range(counts.size):
            lo, hi = offsets[r], offsets[r + 1]
            s = S[lo:hi]
            t = T[lo:hi]
            match = tag_tab[s] == t[:, None]
            H[lo:hi] = match.any(axis=1)
            # matched way (forced to age -1) or else the min-age victim:
            # empty slots age 0 beat occupied ones, LRU beats the rest
            way = np.where(match, -1, age_tab[s]).argmin(axis=1)
            tag_tab[s, way] = t
            age_tab[s, way] = A[lo:hi]

        head_hit = np.empty(m, dtype=bool)
        head_hit[round_order] = H
        miss_mask[heads[~head_hit]] = True
        local.misses = int(np.count_nonzero(~head_hit))
        local.hits = n - local.misses
        occ_gain = int(np.count_nonzero(tag_tab != -1)) - int(occ0.sum())
        local.evictions = local.misses - occ_gain
        self._sets = _tables_to_sets(tag_tab, age_tab)
        return local, miss_mask

    def contains(self, address: int) -> bool:
        cfg = self.config
        line = address >> int(np.log2(cfg.line_bytes))
        s = line % cfg.num_sets
        t = line // cfg.num_sets
        return t in self._sets[s]


def _tables_to_sets(
    tag_tab: np.ndarray, age_tab: np.ndarray
) -> list[list[int]]:
    """Rebuild per-set LRU lists (least recent first) from the tables."""
    sets: list[list[int]] = []
    for row_tags, row_ages in zip(tag_tab.tolist(), age_tab.tolist()):
        pairs = sorted(
            (age, tag) for age, tag in zip(row_ages, row_tags) if tag != -1
        )
        sets.append([tag for _, tag in pairs])
    return sets


def streaming_hit_ratio(
    *,
    footprint_bytes: int,
    stride_bytes: int,
    element_bytes: int,
    config: CacheConfig,
    passes: int = 1,
) -> float:
    """Analytic hit ratio of a fixed-stride walk over a footprint.

    The walk touches ``footprint_bytes / element_bytes`` elements per
    pass at byte stride ``stride_bytes`` (``== element_bytes`` means
    unit stride), repeated ``passes`` times over the same footprint.

    Three regimes:

    * **spatial reuse** — with stride smaller than a line, a fraction
      ``1 - stride/line`` of accesses hit the line fetched by a
      predecessor, regardless of capacity;
    * **temporal reuse** — if the distinct lines touched in one pass fit
      in the cache (with an associativity-conflict allowance), every
      pass after the first hits;
    * **thrashing** — footprints beyond capacity get no temporal reuse
      from prior passes (LRU on a cyclic walk evicts each line right
      before its reuse).
    """
    if passes < 1:
        raise InvalidValueError(f"passes must be >= 1, got {passes}")
    if element_bytes <= 0 or stride_bytes == 0:
        raise InvalidValueError("element size and stride must be non-zero")
    obs_metrics.count("memsim.cache.analytic_queries")
    stride = abs(stride_bytes)
    line = config.line_bytes
    elements_per_pass = max(1, footprint_bytes // element_bytes)

    # spatial hits within one pass
    if stride < line:
        accesses_per_line = max(1, line // stride)
        spatial_hits = (accesses_per_line - 1) / accesses_per_line
        distinct_lines = max(1, footprint_bytes // line)
    else:
        spatial_hits = 0.0
        distinct_lines = elements_per_pass  # each access its own line

    # temporal reuse across passes
    working_set = distinct_lines * line
    # a cyclic LRU walk needs a bit of slack to avoid conflict misses
    effective_capacity = config.capacity_bytes * (1.0 - 1.0 / (2.0 * config.ways))
    fits = working_set <= effective_capacity

    first_pass_hits = spatial_hits
    later_pass_hits = 1.0 if fits else spatial_hits
    total = (first_pass_hits + (passes - 1) * later_pass_hits) / passes
    return float(min(1.0, max(0.0, total)))
