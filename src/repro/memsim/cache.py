"""Set-associative cache simulation, exact and analytic.

Two tools with one contract:

* :class:`Cache` — an exact set-associative LRU simulator over byte
  address traces. Per-set simulation is a Python loop, so it is meant
  for traces up to a few million accesses (tests, sampled windows).
* :func:`streaming_hit_ratio` — closed-form hit ratios for the regular
  access patterns STREAM produces (unit-stride and fixed-stride walks,
  optionally repeated for multiple passes). The property tests check
  this formula against :class:`Cache` on randomized small geometries.

Device models use the analytic form at benchmark scale and stay exact
in the regime that matters: whether the working set of a pass fits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidValueError
from ..obs import metrics as obs_metrics

__all__ = ["CacheConfig", "CacheStats", "Cache", "streaming_hit_ratio"]


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    capacity_bytes: int
    line_bytes: int = 64
    ways: int = 8

    def __post_init__(self) -> None:
        if not _is_pow2(self.line_bytes):
            raise InvalidValueError(f"line size must be a power of two: {self.line_bytes}")
        if self.ways <= 0:
            raise InvalidValueError(f"ways must be positive: {self.ways}")
        if self.capacity_bytes % (self.line_bytes * self.ways):
            raise InvalidValueError(
                f"capacity {self.capacity_bytes} is not divisible by "
                f"line*ways = {self.line_bytes * self.ways}"
            )

    @property
    def num_sets(self) -> int:
        return self.capacity_bytes // (self.line_bytes * self.ways)

    @property
    def num_lines(self) -> int:
        return self.capacity_bytes // self.line_bytes


@dataclass
class CacheStats:
    """Access counters from a simulation run."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )


class Cache:
    """Exact set-associative LRU cache over byte-address traces.

    State persists across :meth:`access` calls, so multi-pass workloads
    can be fed window by window.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        # per set: list of tags in LRU order (index 0 = least recent)
        self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]
        self.stats = CacheStats()

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.config.num_sets)]
        self.stats = CacheStats()

    def access(self, addresses: np.ndarray) -> CacheStats:
        """Run a byte-address trace; returns stats for *this* trace only."""
        cfg = self.config
        lines = np.asarray(addresses, dtype=np.int64) >> int(
            np.log2(cfg.line_bytes)
        )
        set_idx = (lines % cfg.num_sets).astype(np.int64)
        tags = (lines // cfg.num_sets).astype(np.int64)
        local = CacheStats(accesses=int(lines.size))
        ways = cfg.ways
        sets = self._sets
        for s, t in zip(set_idx.tolist(), tags.tolist()):
            lru = sets[s]
            try:
                lru.remove(t)
                local.hits += 1
            except ValueError:
                local.misses += 1
                if len(lru) >= ways:
                    lru.pop(0)
                    local.evictions += 1
            lru.append(t)
        self.stats = self.stats.merge(local)
        if obs_metrics.active_registry() is not None:
            obs_metrics.count("memsim.cache.accesses", local.accesses)
            obs_metrics.count("memsim.cache.hits", local.hits)
            obs_metrics.count("memsim.cache.misses", local.misses)
            obs_metrics.count("memsim.cache.evictions", local.evictions)
        return local

    def contains(self, address: int) -> bool:
        cfg = self.config
        line = address >> int(np.log2(cfg.line_bytes))
        s = line % cfg.num_sets
        t = line // cfg.num_sets
        return t in self._sets[s]


def streaming_hit_ratio(
    *,
    footprint_bytes: int,
    stride_bytes: int,
    element_bytes: int,
    config: CacheConfig,
    passes: int = 1,
) -> float:
    """Analytic hit ratio of a fixed-stride walk over a footprint.

    The walk touches ``footprint_bytes / element_bytes`` elements per
    pass at byte stride ``stride_bytes`` (``== element_bytes`` means
    unit stride), repeated ``passes`` times over the same footprint.

    Three regimes:

    * **spatial reuse** — with stride smaller than a line, a fraction
      ``1 - stride/line`` of accesses hit the line fetched by a
      predecessor, regardless of capacity;
    * **temporal reuse** — if the distinct lines touched in one pass fit
      in the cache (with an associativity-conflict allowance), every
      pass after the first hits;
    * **thrashing** — footprints beyond capacity get no temporal reuse
      from prior passes (LRU on a cyclic walk evicts each line right
      before its reuse).
    """
    if passes < 1:
        raise InvalidValueError(f"passes must be >= 1, got {passes}")
    if element_bytes <= 0 or stride_bytes == 0:
        raise InvalidValueError("element size and stride must be non-zero")
    obs_metrics.count("memsim.cache.analytic_queries")
    stride = abs(stride_bytes)
    line = config.line_bytes
    elements_per_pass = max(1, footprint_bytes // element_bytes)

    # spatial hits within one pass
    if stride < line:
        accesses_per_line = max(1, line // stride)
        spatial_hits = (accesses_per_line - 1) / accesses_per_line
        distinct_lines = max(1, footprint_bytes // line)
    else:
        spatial_hits = 0.0
        distinct_lines = elements_per_pass  # each access its own line

    # temporal reuse across passes
    working_set = distinct_lines * line
    # a cyclic LRU walk needs a bit of slack to avoid conflict misses
    effective_capacity = config.capacity_bytes * (1.0 - 1.0 / (2.0 * config.ways))
    fits = working_set <= effective_capacity

    first_pass_hits = spatial_hits
    later_pass_hits = 1.0 if fits else spatial_hits
    total = (first_pass_hits + (passes - 1) * later_pass_hits) / passes
    return float(min(1.0, max(0.0, total)))
