"""Multi-level cache-hierarchy composition.

Composes per-level :class:`~repro.memsim.cache.CacheConfig` geometries
into a hierarchy and answers the question device models ask: *given a
stream, how many bytes does each level serve, and what does the access
cost on average?* Exact simulation chains :class:`Cache` instances with
inclusive miss propagation; the analytic form chains
:func:`streaming_hit_ratio` per level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidValueError
from .cache import Cache, CacheConfig, streaming_hit_ratio

__all__ = ["Level", "Hierarchy", "HierarchyStats", "simulate_hierarchy"]


@dataclass(frozen=True)
class Level:
    """One cache level plus its service characteristics."""

    name: str
    config: CacheConfig
    #: sustained bandwidth this level serves hits at, bytes/s
    bandwidth: float
    #: access latency of this level, seconds
    latency: float = 0.0


@dataclass(frozen=True)
class HierarchyStats:
    """Where a stream's accesses were served."""

    #: per-level hit counts, in hierarchy order; last entry = memory
    served: tuple[int, ...]
    names: tuple[str, ...]
    total: int

    def fraction(self, name: str) -> float:
        try:
            i = self.names.index(name)
        except ValueError:
            raise InvalidValueError(
                f"unknown level {name!r}; have {self.names}"
            ) from None
        return self.served[i] / self.total if self.total else 0.0

    def as_dict(self) -> dict[str, int]:
        return dict(zip(self.names, self.served))


class Hierarchy:
    """An inclusive multi-level cache hierarchy (L1 first)."""

    def __init__(self, levels: list[Level], memory_bandwidth: float):
        if not levels:
            raise InvalidValueError("a hierarchy needs at least one level")
        for upper, lower in zip(levels, levels[1:]):
            if lower.config.capacity_bytes < upper.config.capacity_bytes:
                raise InvalidValueError(
                    f"level {lower.name!r} is smaller than {upper.name!r}; "
                    "levels must be ordered smallest (closest) first"
                )
        if memory_bandwidth <= 0:
            raise InvalidValueError("memory bandwidth must be positive")
        self.levels = list(levels)
        self.memory_bandwidth = memory_bandwidth

    # -- exact ------------------------------------------------------------------

    def simulate(self, addresses: np.ndarray) -> HierarchyStats:
        """Exact trace-driven simulation: misses propagate downward.

        Each level only sees the line-granular misses of the level
        above (one probe per missing line), as a non-allocating-upward
        inclusive hierarchy would.
        """
        caches = [Cache(level.config) for level in self.levels]
        served: list[int] = []
        current = np.asarray(addresses, dtype=np.int64)
        total = int(current.size)
        for level, cache in zip(self.levels, caches):
            if current.size == 0:
                served.append(0)
                continue
            # one pass yields both the stats and the miss stream: the
            # next level sees the first access to each missing line
            stats, miss_mask = cache.access_masked(current)
            served.append(stats.hits)
            current = current[miss_mask]
        served.append(int(current.size))
        return HierarchyStats(
            served=tuple(served),
            names=tuple(level.name for level in self.levels) + ("memory",),
            total=total,
        )

    # -- analytic -----------------------------------------------------------------

    def streaming_service_time(
        self,
        *,
        footprint_bytes: int,
        stride_bytes: int,
        element_bytes: int,
        passes: int = 1,
    ) -> float:
        """Analytic service time of a fixed-stride walk through the levels.

        Each level serves its hits at its bandwidth; the residual misses
        cascade to the next level as line-granular traffic.
        """
        n = float(max(1, footprint_bytes // element_bytes) * passes)
        elem = float(element_bytes)
        stride = float(abs(stride_bytes))
        time = 0.0
        for level in self.levels:
            hit = streaming_hit_ratio(
                footprint_bytes=footprint_bytes,
                stride_bytes=int(stride),
                element_bytes=int(elem),
                config=level.config,
                passes=passes,
            )
            hits = n * hit
            time += hits * elem / level.bandwidth + level.latency
            n -= hits
            # misses travel onward as whole lines
            line = float(level.config.line_bytes)
            if elem < line:
                elem = line
                stride = max(stride, line)
        time += n * elem / self.memory_bandwidth
        return time


def _miss_mask(lines: np.ndarray, config: CacheConfig) -> np.ndarray:
    """Mask of accesses that miss a *fresh* cache of this geometry.

    Re-deriving the mask (instead of instrumenting Cache) keeps the hot
    loop simple; geometry-faithful: set-associative LRU.
    """
    cache = Cache(config)
    sets = (lines % config.num_sets).astype(np.int64)
    tags = (lines // config.num_sets).astype(np.int64)
    out = np.zeros(lines.size, dtype=bool)
    storage = cache._sets
    ways = config.ways
    for i, (s, t) in enumerate(zip(sets.tolist(), tags.tolist())):
        lru = storage[s]
        try:
            lru.remove(t)
        except ValueError:
            out[i] = True
            if len(lru) >= ways:
                lru.pop(0)
        lru.append(t)
    return out


def simulate_hierarchy(
    levels: list[Level], memory_bandwidth: float, addresses: np.ndarray
) -> HierarchyStats:
    """One-shot convenience wrapper around :class:`Hierarchy`."""
    return Hierarchy(levels, memory_bandwidth).simulate(addresses)
