"""Hardware stride-prefetcher simulation.

The CPU model asserts (analytically) that contiguous streams hit DRAM
at near-peak efficiency because the hardware prefetcher stays ahead of
the demand stream, while large-stride walks defeat it. This module
provides the *exact* counterpart: a table-based stride prefetcher in
the style of Intel's L2 streamer, simulated over address traces, so the
analytic assumption is testable.

Mechanism (per 4 KiB page, as real streamers are page-bound):

* a table of recently-active pages tracks the last address and last
  stride seen in each page;
* two consecutive accesses with the same stride *train* the entry;
* a trained entry prefetches ``degree`` lines ahead of the demand
  stream (within the page);
* a demand access that hits a previously-prefetched line is a
  *covered* miss — it would have been a DRAM stall without the
  prefetcher.

The headline metric is :attr:`PrefetchStats.coverage`: the fraction of
would-be misses the prefetcher absorbs. Unit-stride streams should
approach 1.0; column-major walks with page-sized strides should pin it
near 0 (every access opens a new page, so nothing trains).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..errors import InvalidValueError

__all__ = ["PrefetcherConfig", "PrefetchStats", "StridePrefetcher"]

_PAGE_BYTES = 4096


@dataclass(frozen=True)
class PrefetcherConfig:
    """Geometry of the streamer."""

    line_bytes: int = 64
    #: lines fetched ahead of a trained stream
    degree: int = 8
    #: tracked pages (LRU)
    table_entries: int = 16
    #: consecutive same-stride accesses needed to train
    train_threshold: int = 2

    def __post_init__(self) -> None:
        if self.line_bytes <= 0 or self.degree <= 0 or self.table_entries <= 0:
            raise InvalidValueError("prefetcher parameters must be positive")
        if self.train_threshold < 1:
            raise InvalidValueError("train threshold must be >= 1")


@dataclass
class PrefetchStats:
    """Outcome of a simulated trace."""

    accesses: int = 0
    demand_lines: int = 0  # distinct-line demand touches (would-be misses)
    covered: int = 0  # demand lines already prefetched
    issued: int = 0  # prefetch requests issued
    useless: int = 0  # prefetched lines never touched

    @property
    def coverage(self) -> float:
        """Fraction of line touches the prefetcher had already fetched."""
        return self.covered / self.demand_lines if self.demand_lines else 0.0

    @property
    def accuracy(self) -> float:
        """Fraction of issued prefetches that were eventually used."""
        return 1.0 - self.useless / self.issued if self.issued else 0.0


@dataclass
class _PageEntry:
    last_addr: int
    last_stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """A page-bound table-based stride prefetcher over byte traces."""

    def __init__(self, config: PrefetcherConfig | None = None):
        self.config = config or PrefetcherConfig()
        self._table: OrderedDict[int, _PageEntry] = OrderedDict()
        self._prefetched: set[int] = set()
        self._touched: set[int] = set()

    def run(self, addresses: np.ndarray) -> PrefetchStats:
        """Simulate a demand byte-address trace; returns the stats."""
        cfg = self.config
        stats = PrefetchStats()
        line = cfg.line_bytes
        seen_lines: set[int] = set()
        for addr in np.asarray(addresses, dtype=np.int64).tolist():
            stats.accesses += 1
            ln = addr // line
            self._touched.add(ln)
            if ln not in seen_lines:
                seen_lines.add(ln)
                stats.demand_lines += 1
                if ln in self._prefetched:
                    stats.covered += 1
            self._train_and_issue(addr, stats)
        stats.useless = len(self._prefetched - self._touched)
        return stats

    def _train_and_issue(self, addr: int, stats: PrefetchStats) -> None:
        cfg = self.config
        page = addr // _PAGE_BYTES
        entry = self._table.get(page)
        if entry is None:
            if len(self._table) >= cfg.table_entries:
                self._table.popitem(last=False)  # evict LRU page
            self._table[page] = _PageEntry(last_addr=addr)
            return
        self._table.move_to_end(page)
        stride = addr - entry.last_addr
        if stride != 0 and stride == entry.last_stride:
            entry.confidence += 1
        else:
            entry.confidence = 1 if stride != 0 else 0
            entry.last_stride = stride
        entry.last_addr = addr
        if entry.confidence >= cfg.train_threshold and entry.last_stride != 0:
            step = max(
                cfg.line_bytes,
                abs(entry.last_stride) // cfg.line_bytes * cfg.line_bytes or cfg.line_bytes,
            )
            direction = 1 if entry.last_stride > 0 else -1
            for k in range(1, cfg.degree + 1):
                target = addr + direction * k * step
                if target // _PAGE_BYTES != page:
                    break  # streamers do not cross page boundaries
                ln = target // cfg.line_bytes
                if ln not in self._prefetched:
                    self._prefetched.add(ln)
                    stats.issued += 1
