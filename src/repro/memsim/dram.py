"""DRAM channel/bank/row-buffer timing.

The model captures the two effects MP-STREAM exposes:

* **data-limited** transfers: moving ``bytes`` over the channels' pins
  takes ``bytes / peak_bandwidth`` at best;
* **command-limited** transfers: every transaction that lands in a
  different row of a busy bank pays an activate/precharge penalty
  (``tRP + tRCD``), partially hidden by bank-level parallelism.

Streams of long bursts are data-limited (near-peak efficiency); streams
of isolated small transactions are command-limited, which is what makes
strided access collapse — on every target, but hardest on the FPGAs
whose LSUs emit one transaction per element.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidValueError
from ..obs import metrics as obs_metrics

__all__ = ["DramSpec", "DramTiming", "simulate_dram", "row_locality_efficiency"]


@dataclass(frozen=True)
class DramSpec:
    """One memory subsystem (all channels of a device)."""

    name: str
    channels: int
    banks_per_channel: int
    row_bytes: int
    #: peak bandwidth of ALL channels together, bytes/second
    peak_bandwidth: float
    #: activate-to-read plus precharge latency, seconds
    t_row_miss: float = 26e-9
    #: column access time between bursts to an open row, seconds
    t_row_hit: float = 5e-9
    #: smallest transfer DRAM performs (burst length x bus width)
    min_transaction_bytes: int = 64
    #: address interleave granularity across channels
    interleave_bytes: int = 256
    #: bus turnaround cost when switching between reads and writes
    t_rw_turnaround: float = 6e-9
    #: transactions the controller batches per direction before switching
    rw_batch: int = 16

    def __post_init__(self) -> None:
        if self.channels <= 0 or self.banks_per_channel <= 0:
            raise InvalidValueError("channels and banks must be positive")
        if self.peak_bandwidth <= 0:
            raise InvalidValueError("peak bandwidth must be positive")

    @property
    def channel_bandwidth(self) -> float:
        return self.peak_bandwidth / self.channels


@dataclass(frozen=True)
class DramTiming:
    """Result of timing a transaction trace."""

    seconds: float
    data_seconds: float
    command_seconds: float
    row_hits: int
    row_misses: int
    bytes_moved: int

    @property
    def achieved_bandwidth(self) -> float:
        return self.bytes_moved / self.seconds if self.seconds > 0 else 0.0

    @property
    def row_hit_ratio(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


def simulate_dram(
    spec: DramSpec,
    addresses: np.ndarray,
    sizes: np.ndarray | int,
) -> DramTiming:
    """Time a trace of transactions (byte ``addresses`` and ``sizes``).

    Transactions are assumed issued back-to-back (a saturating memory
    controller); the result is the *service* time, i.e. the inverse of
    sustained bandwidth.
    """
    addrs = np.asarray(addresses, dtype=np.int64)
    if np.isscalar(sizes):
        sizes_arr = np.full(addrs.shape, int(sizes), dtype=np.int64)
    else:
        sizes_arr = np.asarray(sizes, dtype=np.int64)
        if sizes_arr.shape != addrs.shape:
            raise InvalidValueError("addresses and sizes must have the same shape")
    if addrs.size == 0:
        return DramTiming(0.0, 0.0, 0.0, 0, 0, 0)
    sizes_arr = np.maximum(sizes_arr, spec.min_transaction_bytes)

    channel = (addrs // spec.interleave_bytes) % spec.channels
    bank = (addrs // spec.row_bytes) % spec.banks_per_channel
    row = addrs // (spec.row_bytes * spec.banks_per_channel)

    # Row transitions per (channel, bank): sort by bank stream, count row
    # changes in original access order within each bank.
    key = channel * spec.banks_per_channel + bank
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    sorted_row = row[order]
    boundary = np.empty(addrs.size, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_key[1:], sorted_key[:-1], out=boundary[1:])
    row_change = np.empty(addrs.size, dtype=bool)
    row_change[0] = True
    np.not_equal(sorted_row[1:], sorted_row[:-1], out=row_change[1:])
    misses_mask = boundary | row_change
    row_misses = int(np.count_nonzero(misses_mask))
    row_hits = int(addrs.size - row_misses)

    total_bytes = int(sizes_arr.sum())
    data_seconds = total_bytes / spec.peak_bandwidth

    # Bank-level parallelism hides activation latency: overlapping across
    # however many distinct banks the trace actually touches.
    distinct_banks = max(1, int(np.unique(key).size))
    overlap = min(distinct_banks, spec.banks_per_channel * spec.channels)
    command_seconds = (
        row_misses * spec.t_row_miss + row_hits * spec.t_row_hit
    ) / overlap

    seconds = max(data_seconds, command_seconds)
    if obs_metrics.active_registry() is not None:
        obs_metrics.count("memsim.dram.transactions", int(addrs.size))
        obs_metrics.count("memsim.dram.bytes", total_bytes)
        obs_metrics.count("memsim.dram.row_hits", row_hits)
        obs_metrics.count("memsim.dram.row_misses", row_misses)
        obs_metrics.count("memsim.dram.seconds", seconds)
    return DramTiming(
        seconds=seconds,
        data_seconds=data_seconds,
        command_seconds=command_seconds,
        row_hits=row_hits,
        row_misses=row_misses,
        bytes_moved=total_bytes,
    )


def row_locality_efficiency(
    spec: DramSpec,
    transaction_bytes: float,
    *,
    row_hit_ratio: float = 0.0,
    parallelism: int | None = None,
) -> float:
    """Analytic sustained/peak efficiency for uniform transactions.

    Each transaction moves ``transaction_bytes`` and pays a row miss
    with probability ``1 - row_hit_ratio``; ``parallelism`` is how many
    banks overlap their activates (defaults to all banks). This is the
    closed form of :func:`simulate_dram` for a homogeneous trace; the
    tests verify the two agree.
    """
    if transaction_bytes <= 0:
        raise InvalidValueError("transaction size must be positive")
    if not 0.0 <= row_hit_ratio <= 1.0:
        raise InvalidValueError("row_hit_ratio must be within [0, 1]")
    tx = max(float(transaction_bytes), float(spec.min_transaction_bytes))
    if parallelism is None:
        parallelism = spec.banks_per_channel * spec.channels
    parallelism = max(1, parallelism)
    t_data = tx / spec.peak_bandwidth
    t_cmd = (
        (1.0 - row_hit_ratio) * spec.t_row_miss + row_hit_ratio * spec.t_row_hit
    ) / parallelism
    return t_data / max(t_data, t_cmd)
