"""Memory-controller arbitration among concurrent request streams.

An MP-STREAM kernel issues several interleaved streams (reads of ``a``
and ``b``, writes of ``c``); AOCL's ``num_compute_units`` knob multiplies
them further. Interleaved streams destroy each other's row locality:
every switch between streams that map to the same bank forces a row
re-activation. This module turns a set of :class:`StreamDemand`\\ s into
a sustained-bandwidth estimate, and is where the paper's observation
that more compute units can *hurt* bandwidth comes from.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidValueError
from ..obs import metrics as obs_metrics
from .dram import DramSpec, row_locality_efficiency

__all__ = ["StreamDemand", "ControllerResult", "MemoryController"]


@dataclass(frozen=True)
class StreamDemand:
    """One sequential request stream as seen by the controller."""

    bytes_total: int
    transaction_bytes: float
    #: transactions that stay within one DRAM row between switches
    sequential: bool = True
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.bytes_total < 0 or self.transaction_bytes <= 0:
            raise InvalidValueError("invalid stream demand")

    @property
    def transactions(self) -> float:
        return self.bytes_total / self.transaction_bytes


@dataclass(frozen=True)
class ControllerResult:
    seconds: float
    bytes_total: int
    efficiency: float
    row_hit_ratio: float

    @property
    def achieved_bandwidth(self) -> float:
        return self.bytes_total / self.seconds if self.seconds > 0 else 0.0


class MemoryController:
    """Round-robin arbitration of streams onto one DRAM subsystem."""

    def __init__(self, spec: DramSpec):
        self.spec = spec

    def service(self, streams: list[StreamDemand]) -> ControllerResult:
        """Total service time for all streams, issued concurrently.

        Row-hit probability per transaction: a sequential stream running
        alone re-hits its open row until it crosses a row boundary; with
        ``k`` streams interleaving round-robin, a stream finds its row
        still open only if no interleaved partner touched its bank —
        approximated by scaling the hit probability by ``1/k`` beyond
        the number of independent banks.
        """
        if not streams:
            raise InvalidValueError("need at least one stream")
        spec = self.spec
        total_bytes = sum(s.bytes_total for s in streams)
        if total_bytes == 0:
            return ControllerResult(0.0, 0, 1.0, 1.0)

        k = len(streams)
        banks = spec.banks_per_channel * spec.channels
        # Each stream keeps its own bank's row open as long as streams
        # map to distinct banks; beyond that they evict each other.
        conflict = max(0.0, (k - banks) / k) if k > banks else 0.0
        mixed = any(s.is_write for s in streams) and any(
            not s.is_write for s in streams
        )
        # bus turnaround, amortized over the controller's batching depth
        turnaround_per_tx = spec.t_rw_turnaround / spec.rw_batch if mixed else 0.0

        weighted_time = 0.0
        weighted_hits = 0.0
        for s in streams:
            if s.sequential:
                tx_per_row = max(1.0, spec.row_bytes / max(
                    s.transaction_bytes, spec.min_transaction_bytes
                ))
                hit = (tx_per_row - 1.0) / tx_per_row
            else:
                hit = 0.0
            hit *= 1.0 - conflict
            eff = row_locality_efficiency(
                spec,
                s.transaction_bytes,
                row_hit_ratio=hit,
                parallelism=min(banks, max(k, 1) * 2),
            )
            tx_bytes = max(s.transaction_bytes, spec.min_transaction_bytes)
            per_tx = tx_bytes / (spec.peak_bandwidth * eff) + turnaround_per_tx
            weighted_time += (s.bytes_total / tx_bytes) * per_tx
            weighted_hits += hit * s.bytes_total
        efficiency = (total_bytes / spec.peak_bandwidth) / weighted_time
        if obs_metrics.active_registry() is not None:
            obs_metrics.count("memsim.dram.requests")
            obs_metrics.count("memsim.dram.demand_bytes", total_bytes)
            obs_metrics.observe("memsim.dram.efficiency", efficiency)
            obs_metrics.observe(
                "memsim.dram.row_hit_ratio", weighted_hits / total_bytes
            )
        return ControllerResult(
            seconds=weighted_time,
            bytes_total=total_bytes,
            efficiency=efficiency,
            row_hit_ratio=weighted_hits / total_bytes,
        )
