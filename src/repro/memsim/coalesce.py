"""Memory-access coalescing.

Two coalescing disciplines appear on the paper's targets:

* **GPU warp coalescing** (:func:`coalesce_fixed_groups`): the 32
  work-items of a warp issue one element access each; the memory unit
  merges them into as few aligned transactions (cache lines / memory
  segments) as possible. Unit-stride int32 across a warp → 128
  contiguous bytes → minimal transactions; strided access shatters the
  warp into one transaction per element.

* **FPGA burst inference** (:func:`coalesce_sequential`): a pipelined
  load/store unit watches the sequential address stream and merges
  *consecutive* accesses into DRAM bursts up to a maximum burst length.
  A fixed non-unit stride breaks every burst, which is exactly why the
  strided MP-STREAM numbers collapse on the FPGA targets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidValueError

__all__ = [
    "CoalesceResult",
    "coalesce_fixed_groups",
    "coalesce_fixed_groups_batch",
    "coalesce_sequential",
    "coalesce_sequential_batch",
]


@dataclass(frozen=True)
class CoalesceResult:
    """Outcome of coalescing an access window.

    ``efficiency`` is useful bytes over fetched bytes (<= 1).
    """

    accesses: int
    transactions: int
    bytes_useful: int
    bytes_fetched: int

    @property
    def efficiency(self) -> float:
        return self.bytes_useful / self.bytes_fetched if self.bytes_fetched else 0.0

    @property
    def accesses_per_transaction(self) -> float:
        return self.accesses / self.transactions if self.transactions else 0.0


def coalesce_fixed_groups(
    addresses: np.ndarray,
    element_bytes: int,
    *,
    group_size: int = 32,
    segment_bytes: int = 128,
) -> CoalesceResult:
    """Coalesce ``group_size`` consecutive accesses at a time (GPU warps).

    ``addresses`` are byte addresses in issue order; each group merges
    into one transaction per distinct aligned ``segment_bytes`` segment.
    The trailing partial group coalesces the same way.
    """
    if element_bytes <= 0 or group_size <= 0 or segment_bytes <= 0:
        raise InvalidValueError("element/group/segment sizes must be positive")
    addrs = np.asarray(addresses, dtype=np.int64)
    n = addrs.size
    if n == 0:
        return CoalesceResult(0, 0, 0, 0)
    segments = addrs // segment_bytes
    pad = (-n) % group_size
    if pad:
        # pad with the previous element's segment so padding adds nothing
        segments = np.concatenate([segments, np.repeat(segments[-1], pad)])
    grouped = segments.reshape(-1, group_size)
    s = np.sort(grouped, axis=1)
    distinct = 1 + np.count_nonzero(s[:, 1:] != s[:, :-1], axis=1)
    transactions = int(distinct.sum())
    return CoalesceResult(
        accesses=n,
        transactions=transactions,
        bytes_useful=n * element_bytes,
        bytes_fetched=transactions * segment_bytes,
    )


def coalesce_fixed_groups_batch(
    addresses: np.ndarray,
    element_bytes: int,
    *,
    group_size: int = 32,
    segment_bytes: int = 128,
) -> list[CoalesceResult]:
    """Coalesce a ``(windows, accesses)`` stack of warps in one pass.

    Equivalent to calling :func:`coalesce_fixed_groups` per row, but a
    single vectorized sort/scan over the whole stack — the fast lane a
    sweep uses when it scores many candidate access windows at once.
    """
    if element_bytes <= 0 or group_size <= 0 or segment_bytes <= 0:
        raise InvalidValueError("element/group/segment sizes must be positive")
    addrs = np.asarray(addresses, dtype=np.int64)
    if addrs.ndim != 2:
        raise InvalidValueError("batched coalescing expects a 2-D address stack")
    rows, n = addrs.shape
    if n == 0:
        return [CoalesceResult(0, 0, 0, 0)] * rows
    segments = addrs // segment_bytes
    pad = (-n) % group_size
    if pad:
        tail = np.repeat(segments[:, -1:], pad, axis=1)
        segments = np.concatenate([segments, tail], axis=1)
    grouped = segments.reshape(rows, -1, group_size)
    s = np.sort(grouped, axis=2)
    distinct = 1 + np.count_nonzero(s[:, :, 1:] != s[:, :, :-1], axis=2)
    per_row = distinct.sum(axis=1)
    useful = n * element_bytes
    return [
        CoalesceResult(
            accesses=n,
            transactions=int(t),
            bytes_useful=useful,
            bytes_fetched=int(t) * segment_bytes,
        )
        for t in per_row
    ]


def coalesce_sequential(
    addresses: np.ndarray,
    element_bytes: int,
    *,
    max_burst_bytes: int = 512,
) -> CoalesceResult:
    """Merge consecutive sequential accesses into bursts (FPGA LSU).

    A burst continues while the next address is exactly the previous
    address + ``element_bytes`` and the burst stays within
    ``max_burst_bytes``. Fetched bytes equal useful bytes (bursts carry
    no overfetch) but *transaction count* is what the DRAM model turns
    into row-activate overhead.
    """
    if element_bytes <= 0 or max_burst_bytes < element_bytes:
        raise InvalidValueError(
            "element size must be positive and fit within the burst limit"
        )
    addrs = np.asarray(addresses, dtype=np.int64)
    n = addrs.size
    if n == 0:
        return CoalesceResult(0, 0, 0, 0)
    max_run = max(1, max_burst_bytes // element_bytes)
    breaks = np.empty(n, dtype=bool)
    breaks[0] = True
    np.not_equal(np.diff(addrs), element_bytes, out=breaks[1:])
    # enforce the burst-length cap within each sequential run
    run_starts = np.flatnonzero(breaks)
    run_lengths = np.diff(np.append(run_starts, n))
    extra = np.sum((run_lengths - 1) // max_run)
    transactions = int(run_starts.size + extra)
    useful = n * element_bytes
    return CoalesceResult(
        accesses=n,
        transactions=transactions,
        bytes_useful=useful,
        bytes_fetched=useful,
    )


def coalesce_sequential_batch(
    addresses: np.ndarray,
    element_bytes: int,
    *,
    max_burst_bytes: int = 512,
) -> list[CoalesceResult]:
    """Burst-infer a ``(windows, accesses)`` stack of streams in one pass.

    Equivalent to calling :func:`coalesce_sequential` per row. A forced
    break at every row start keeps runs from crossing window boundaries,
    so the whole stack flattens into one run-detection scan.
    """
    if element_bytes <= 0 or max_burst_bytes < element_bytes:
        raise InvalidValueError(
            "element size must be positive and fit within the burst limit"
        )
    addrs = np.asarray(addresses, dtype=np.int64)
    if addrs.ndim != 2:
        raise InvalidValueError("batched coalescing expects a 2-D address stack")
    rows, n = addrs.shape
    if n == 0:
        return [CoalesceResult(0, 0, 0, 0)] * rows
    max_run = max(1, max_burst_bytes // element_bytes)
    breaks = np.empty((rows, n), dtype=bool)
    breaks[:, 0] = True
    np.not_equal(np.diff(addrs, axis=1), element_bytes, out=breaks[:, 1:])
    flat = breaks.ravel()
    run_starts = np.flatnonzero(flat)
    run_lengths = np.diff(np.append(run_starts, rows * n))
    per_run = 1 + (run_lengths - 1) // max_run
    per_row = np.bincount(run_starts // n, weights=per_run, minlength=rows)
    useful = n * element_bytes
    return [
        CoalesceResult(
            accesses=n,
            transactions=int(t),
            bytes_useful=useful,
            bytes_fetched=useful,
        )
        for t in per_row
    ]
