"""Live observability exposition over HTTP (stdlib only).

:class:`ObsServer` serves three endpoints from a background thread:

``/metrics``
    The active :class:`~repro.obs.metrics.MetricsRegistry` snapshot
    plus the campaign's ``campaign_*`` gauges, rendered as Prometheus
    text exposition format (version 0.0.4) by :func:`prometheus_text`.
``/health``
    Liveness plus the campaign verdict, as a small JSON object — a
    probe target for a service manager.
``/campaign``
    The full :class:`~repro.obs.health.CampaignHealth` snapshot as
    JSON.

Naming conventions on ``/metrics``: dot-separated registry names map
to underscores (``scheduler.worker_restarts`` →
``scheduler_worker_restarts_total``), counters get the ``_total``
suffix, histograms expose ``_count``/``_sum`` as a summary plus
``_min``/``_max`` gauges, and campaign-level derived values are
``campaign_*`` gauges.

The server is deliberately read-only and unauthenticated — it binds
to localhost by default and exposes nothing but telemetry. It is
started/stopped by :func:`repro.obs.session` (``--serve-obs PORT``)
and by ``mp-stream obs serve --journal`` for watching a campaign from
outside the process.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Mapping

from . import metrics as obs_metrics
from .health import CampaignHealth, campaign_health

__all__ = ["ObsServer", "prometheus_text", "PROM_CONTENT_TYPE"]

PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _prom_name(name: str) -> str:
    """A registry metric name as a valid Prometheus metric name."""
    out = "".join(ch if (ch.isascii() and ch.isalnum()) or ch == "_" else "_"
                  for ch in name)
    if out and out[0].isdigit():
        out = "_" + out
    return out or "_"


def _prom_value(value: object) -> str:
    number = float(value)  # type: ignore[arg-type]
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def prometheus_text(
    snapshot: Mapping[str, Mapping[str, object]] | None,
    health: CampaignHealth | None = None,
) -> str:
    """Render a registry snapshot (+ campaign gauges) as Prometheus
    text exposition format 0.0.4."""
    lines: list[str] = []

    def sample(name: str, kind: str, value: object) -> None:
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name} {_prom_value(value)}")

    snapshot = snapshot or {}
    for name, value in sorted(snapshot.get("counters", {}).items()):  # type: ignore[union-attr]
        prom = _prom_name(name)
        if not prom.endswith("_total"):
            prom += "_total"
        sample(prom, "counter", value)
    for name, value in sorted(snapshot.get("gauges", {}).items()):  # type: ignore[union-attr]
        sample(_prom_name(name), "gauge", value)
    for name, hist in sorted(snapshot.get("histograms", {}).items()):  # type: ignore[union-attr]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} summary")
        lines.append(f"{prom}_count {_prom_value(hist['count'])}")  # type: ignore[index]
        lines.append(f"{prom}_sum {_prom_value(hist['total'])}")  # type: ignore[index]
        sample(prom + "_min", "gauge", hist["min"])  # type: ignore[index]
        sample(prom + "_max", "gauge", hist["max"])  # type: ignore[index]
    if health is not None:
        for name, value in sorted(health.gauges().items()):
            sample(_prom_name(name), "gauge", value)
    sample("up", "gauge", 1)
    return "\n".join(lines) + "\n"


def _default_registry_snapshot() -> Mapping[str, Mapping[str, object]] | None:
    registry = obs_metrics.active_registry()
    return registry.snapshot() if registry is not None else None


class _ObsHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    obs: "ObsServer"


class _Handler(BaseHTTPRequestHandler):
    def log_message(self, *args: object) -> None:  # keep stderr clean
        return None

    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        obs: ObsServer = self.server.obs  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                body = prometheus_text(obs.registry_source(), obs.health_source())
                self._reply(200, PROM_CONTENT_TYPE, body)
            elif path == "/health":
                health = obs.health_source()
                payload: dict[str, object] = {"status": "ok"}
                if health is not None:
                    payload["campaign"] = health.verdict
                    payload["ok"] = health.ok
                self._reply(200, "application/json", json.dumps(payload))
            elif path == "/campaign":
                health = obs.health_source()
                if health is None:
                    self._reply(
                        404,
                        "application/json",
                        json.dumps({"error": "no campaign is being observed"}),
                    )
                else:
                    self._reply(
                        200,
                        "application/json",
                        json.dumps(health.to_json(), sort_keys=True),
                    )
            else:
                self._reply(404, "text/plain", "unknown path; try /metrics /health /campaign")
        except Exception as exc:  # a scrape must never kill the campaign
            self._reply(500, "text/plain", f"{type(exc).__name__}: {exc}")

    def _reply(self, status: int, ctype: str, body: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)


class ObsServer:
    """A background-thread HTTP exposition server.

    ``port=0`` binds an ephemeral port (the bound one is in
    :attr:`port`/:attr:`url`). The sources default to the process-wide
    active registry and campaign — scrapes always see the live state —
    and can be overridden for journal-watcher mode.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        *,
        registry_source: Callable[
            [], Mapping[str, Mapping[str, object]] | None
        ] | None = None,
        health_source: Callable[[], CampaignHealth | None] | None = None,
    ):
        self.registry_source = registry_source or _default_registry_snapshot
        self.health_source = health_source or campaign_health
        self._httpd = _ObsHTTPServer((host, port), _Handler)
        self._httpd.obs = self
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="obs-server", daemon=True
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()
        self._httpd = None  # type: ignore[assignment]

    def __enter__(self) -> "ObsServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
