"""Structured JSONL event logging.

Where the tracer answers "where did the time go" and the metrics
registry answers "how much of everything happened", the event log is
the campaign's *narrative*: one JSON object per line, appended and
flushed as it happens, so a killed run's log is still readable up to
the final flushed line (the same durability contract as
:class:`~repro.core.history.SweepJournal`).

Per-point events carry the point's parameter fingerprint
(:func:`~repro.core.history.point_fingerprint`) in a ``point`` field —
the same key the journal uses — so ``--log-json`` output joins against
``--journal`` records directly.

As with the other sinks, instrumented code calls the module-level
:func:`emit`, which no-ops when no log is installed.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

__all__ = ["EventLog", "active_log", "set_log", "use_log", "emit", "warn"]


class EventLog:
    """Append-only JSONL event stream, flushed per event (thread-safe).

    ``durable=True`` additionally ``fsync``\\ s after every event — the
    same opt-in contract as ``SweepJournal(durable=True)``, for runs
    whose post-mortem narrative must survive a hard kill or power loss.
    """

    def __init__(self, path: str | Path, *, durable: bool = False):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.durable = durable
        self._lock = threading.Lock()
        self._fh: IO[str] | None = self.path.open("a")
        #: events written through this log instance
        self.emitted = 0

    def emit(self, event: str, **fields: object) -> None:
        """Append one event line: ``{"ts": ..., "event": ..., **fields}``.

        ``ts`` is host wall-clock epoch seconds — events are for log
        joining and post-mortems, not measurement; nothing here touches
        the virtual device clock.
        """
        record: dict[str, object] = {"ts": round(time.time(), 6), "event": event}
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=repr)
        with self._lock:
            if self._fh is None:
                raise ValueError(f"event log {self.path} is closed")
            self._fh.write(line + "\n")
            self._fh.flush()
            if self.durable:
                os.fsync(self._fh.fileno())
            self.emitted += 1

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# --------------------------------------------------------------------------
# the active event log (None = logging disabled)
# --------------------------------------------------------------------------

_ACTIVE: EventLog | None = None


def active_log() -> EventLog | None:
    """The currently installed event log, or ``None`` when disabled."""
    return _ACTIVE


def set_log(log: EventLog | None) -> EventLog | None:
    """Install ``log`` process-wide; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = log
    return previous


@contextmanager
def use_log(log: EventLog | None) -> Iterator[EventLog | None]:
    """Scope ``log`` as the active sink for the ``with`` block."""
    previous = set_log(log)
    try:
        yield log
    finally:
        set_log(previous)


def emit(event: str, **fields: object) -> None:
    """Emit an event to the active log (no-op when none is installed)."""
    log = _ACTIVE
    if log is not None:
        log.emit(event, **fields)


def warn(message: str, **fields: object) -> None:
    """The single funnel for operator-facing warnings.

    Prints ``warning: <message>`` to stderr *and* emits a structured
    ``warning`` event to the active log, so the journal quarantine and
    degradation warnings that used to be ad-hoc stderr prints also land
    in ``--log-json`` output (joinable on their extra ``fields``).
    """
    print(f"warning: {message}", file=sys.stderr)
    emit("warning", message=message, **fields)
