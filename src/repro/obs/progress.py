"""Live sweep progress: per-point lines, rate, ETA, failure/cache counts.

:class:`SweepProgress` is a ready-made ``progress=`` callback for
:func:`~repro.core.sweep.explore`. The executor already serializes
progress callbacks under a lock — including with ``jobs=N`` — so the
reporter needs no locking of its own and its counters are exact.

Three output layers, controlled by ``verbosity``:

* ``0`` (``--quiet``) — nothing per point; totals still accumulate.
* ``1`` (default) — one summary line per completed point, tagged when
  the front-end came from cache (the classic sweep output).
* ``2+`` (``-v``) — adds per-point stage wall times and attempt counts.

Independently of verbosity, when ``err`` is a terminal a single status
line ("``17/40 points  3.2 pt/s  eta 7.2s  1 failed  cache 84%``") is
redrawn in place on stderr after every point, so a long campaign is
never silent; on non-terminals (CI logs, pipes) the live line is
suppressed and only :meth:`finish` prints the final status.
"""

from __future__ import annotations

import sys
import time
from typing import IO, TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from ..core.results import RunResult

__all__ = ["SweepProgress"]


class SweepProgress:
    """Progress reporter / ``explore`` callback for one campaign."""

    def __init__(
        self,
        total: int | None = None,
        *,
        verbosity: int = 1,
        out: IO[str] | None = None,
        err: IO[str] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.total = total
        self.verbosity = verbosity
        self.out = out if out is not None else sys.stdout
        self.err = err if err is not None else sys.stderr
        self._clock = clock
        self._t0 = clock()
        self.done = 0
        self.failed = 0
        self.cache_hits = 0
        self.cache_lookups = 0
        self._live = bool(getattr(self.err, "isatty", lambda: False)())
        self._live_width = 0

    # -- derived stats -----------------------------------------------------

    @property
    def elapsed_s(self) -> float:
        return self._clock() - self._t0

    @property
    def points_per_s(self) -> float:
        elapsed = self.elapsed_s
        return self.done / elapsed if elapsed > 0 else 0.0

    @property
    def eta_s(self) -> float | None:
        """Seconds until the campaign completes, if the rate holds."""
        if self.total is None or self.done == 0:
            return None
        rate = self.points_per_s
        if rate <= 0:
            return None
        return max(0, self.total - self.done) / rate

    @property
    def cache_hit_rate(self) -> float | None:
        if not self.cache_lookups:
            return None
        return self.cache_hits / self.cache_lookups

    # -- the explore() callback --------------------------------------------

    def __call__(self, result: "RunResult") -> None:
        self.done += 1
        if not result.ok:
            self.failed += 1
        engine_info = result.detail.get("engine", {})
        frontend = ""
        if isinstance(engine_info, dict):
            frontend = str(engine_info.get("frontend_cache", ""))
        if frontend in ("hit", "miss"):
            self.cache_lookups += 1
            if frontend == "hit":
                self.cache_hits += 1

        if self.verbosity >= 1:
            self._clear_live()
            tag = "  [cached front-end]" if frontend == "hit" else ""
            self.out.write(result.summary() + tag + "\n")
            if self.verbosity >= 2 and isinstance(engine_info, dict):
                stage_s = engine_info.get("stage_s", {})
                if isinstance(stage_s, dict) and stage_s:
                    stages = "  ".join(
                        f"{name} {seconds:.4f}s"
                        for name, seconds in stage_s.items()
                    )
                    attempts = engine_info.get("attempts", 1)
                    self.out.write(
                        f"    stages: {stages}  (attempt(s): {attempts})\n"
                    )
        if self._live:
            self._draw_live()

    # -- rendering ---------------------------------------------------------

    def status_line(self) -> str:
        done = f"{self.done}/{self.total}" if self.total is not None else str(self.done)
        parts = [f"{done} points", f"{self.points_per_s:.1f} pt/s"]
        eta = self.eta_s
        if eta is not None:
            parts.append(f"eta {eta:.1f}s")
        if self.failed:
            parts.append(f"{self.failed} failed")
        hit_rate = self.cache_hit_rate
        if hit_rate is not None:
            parts.append(f"cache {hit_rate:.0%}")
        return "  ".join(parts)

    def _draw_live(self) -> None:
        line = self.status_line()
        pad = max(0, self._live_width - len(line))
        self.err.write("\r" + line + " " * pad)
        self.err.flush()
        self._live_width = len(line)

    def _clear_live(self) -> None:
        if self._live and self._live_width:
            self.err.write("\r" + " " * self._live_width + "\r")
            self.err.flush()
            self._live_width = 0

    def finish(self) -> str:
        """Clear the live line and return the final status summary."""
        self._clear_live()
        return self.status_line()
