"""Unified observability: tracing, metrics, structured logs, progress.

A design-space campaign lives or dies on understanding where its time
and bandwidth go. This package gives every layer of the stack — sweep,
engine stage, build cache, command queue, memory simulators — one of
four sinks to report into:

* :mod:`~repro.obs.trace` — nested wall-clock spans
  (sweep → point → stage → queue command), exported as Chrome
  trace-event JSON for ``chrome://tracing`` / Perfetto;
* :mod:`~repro.obs.metrics` — a process-wide registry of named
  counters/gauges/histograms with JSON snapshot export;
* :mod:`~repro.obs.events` — an append-only structured JSONL event log
  whose per-point records carry the journal's point fingerprint;
* :mod:`~repro.obs.progress` — a live progress reporter for
  :func:`~repro.core.sweep.explore` (rate, ETA, failures, cache hits).

All sinks follow the same contract: module-level helpers no-op when no
sink is installed (a disabled campaign pays one global load per probe),
and instrumentation is strictly *observational* — the virtual device
clock and :meth:`~repro.core.results.RunResult.fingerprint` are
byte-identical with everything on or off. See ``docs/OBSERVABILITY.md``.

:func:`session` wires the sinks up in one ``with`` block::

    from repro import obs

    with obs.session(trace="out/trace.json", metrics="out/metrics.json"):
        explore(engine, sweep, progress=obs.SweepProgress(len(sweep)))
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from .events import EventLog, active_log, set_log, use_log, warn
from .health import (
    CampaignHealth,
    campaign_health,
    health_from_journal,
    set_campaign_source,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    load_snapshot,
    set_registry,
    use_registry,
)
from .progress import SweepProgress
from .relay import BufferedEventLog, WorkerTelemetry, merge_batch
from .server import ObsServer, prometheus_text
from .trace import Tracer, active_tracer, set_tracer, use_tracer

__all__ = [
    "Tracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "EventLog",
    "BufferedEventLog",
    "WorkerTelemetry",
    "merge_batch",
    "CampaignHealth",
    "campaign_health",
    "health_from_journal",
    "set_campaign_source",
    "ObsServer",
    "prometheus_text",
    "SweepProgress",
    "ObsSession",
    "session",
    "active_tracer",
    "active_registry",
    "active_log",
    "set_tracer",
    "set_registry",
    "set_log",
    "use_tracer",
    "use_registry",
    "use_log",
    "load_snapshot",
    "warn",
]


@dataclass
class ObsSession:
    """The sinks a :func:`session` activated, plus what it wrote."""

    tracer: Tracer | None = None
    registry: MetricsRegistry | None = None
    log: EventLog | None = None
    #: the live exposition server, when ``serve=`` asked for one
    server: ObsServer | None = None
    #: ``(label, path)`` pairs of artifacts written when the session closed
    written: list[tuple[str, Path]] = field(default_factory=list)


@contextmanager
def session(
    *,
    trace: str | Path | bool | None = None,
    metrics: str | Path | bool | None = None,
    log_json: str | Path | None = None,
    serve: int | None = None,
) -> Iterator[ObsSession]:
    """Activate the requested sinks for the block; export on exit.

    ``trace``/``metrics`` accept a path (the artifact is written when
    the block exits) or ``True`` (sink active, in-memory only);
    ``log_json`` takes the JSONL path to append to. Sinks not requested
    are left exactly as they were, so sessions nest.

    ``serve`` starts an :class:`~repro.obs.server.ObsServer` on that
    port (0 = ephemeral) for the block — ``/metrics`` needs a live
    registry, so asking to serve implies an in-memory one even without
    ``metrics``. The server is stopped before the sinks are restored,
    so a graceful-shutdown drain is scrapeable to the very end but no
    scrape ever observes a half-torn-down session.
    """
    out = ObsSession()
    previous: list = []
    try:
        if trace:
            out.tracer = Tracer()
            previous.append(("tracer", set_tracer(out.tracer)))
        if serve is not None and not metrics:
            metrics = True
        if metrics:
            out.registry = MetricsRegistry()
            previous.append(("registry", set_registry(out.registry)))
        if log_json:
            out.log = EventLog(log_json)
            previous.append(("log", set_log(out.log)))
        if serve is not None:
            out.server = ObsServer(port=serve)
        yield out
    finally:
        if out.server is not None:
            out.server.close()
        for kind, prior in reversed(previous):
            if kind == "tracer":
                set_tracer(prior)
            elif kind == "registry":
                set_registry(prior)
            else:
                set_log(prior)
        if out.tracer is not None and not isinstance(trace, bool):
            assert trace is not None
            out.written.append(("trace", out.tracer.save(trace)))
        if out.registry is not None and not isinstance(metrics, bool):
            assert metrics is not None
            out.registry.to_json(metrics)
            out.written.append(("metrics", Path(metrics)))
        if out.log is not None:
            out.log.close()
            out.written.append(("events", out.log.path))
