"""Cross-process telemetry relay: buffering worker sinks, parent merge.

The process executor's workers used to start with observability off —
under ``--backend process`` every engine-stage span, memsim counter and
per-point event from a child was silently dropped. The relay closes
that gap with the same sink contract the rest of :mod:`repro.obs`
uses, split across the pipe:

* **Worker side** — :class:`WorkerTelemetry` installs *buffering*
  variants of the three sinks (an in-memory :class:`~repro.obs.trace.Tracer`,
  a :class:`~repro.obs.metrics.MetricsRegistry`, and
  :class:`BufferedEventLog`). Instrumented code is oblivious: it calls
  the same module-level probes, which now accumulate instead of
  writing. After each point the worker :meth:`~WorkerTelemetry.drain`\\ s
  the sinks into one picklable batch and ships it home alongside the
  point's outcome.
* **Parent side** — :func:`merge_batch` folds a drained batch into the
  parent's *live* sinks: trace events are rebased onto the parent
  tracer's timeline and keep the worker's pid (one Perfetto track per
  worker), metric deltas are added into the live registry, and events
  are re-emitted into the live log tagged with the worker id and pid.

Because telemetry rides as a *separate* message field — never inside
the result record — result fingerprints stay byte-identical traced vs.
untraced and serial vs. process. A worker killed mid-point loses at
most that point's un-drained batch; everything it already shipped is
safe in the parent.
"""

from __future__ import annotations

import os
import time
from typing import Mapping

from .events import active_log, set_log
from .metrics import MetricsRegistry, active_registry, set_registry
from .trace import Tracer, active_tracer, set_tracer

__all__ = ["BufferedEventLog", "WorkerTelemetry", "merge_batch"]


class BufferedEventLog:
    """An in-memory event sink with :class:`~repro.obs.events.EventLog`'s
    emit contract: records accumulate for relaying instead of being
    written to a file."""

    def __init__(self) -> None:
        self.records: list[dict[str, object]] = []
        #: events buffered through this sink (parity with EventLog)
        self.emitted = 0

    def emit(self, event: str, **fields: object) -> None:
        record: dict[str, object] = {"ts": round(time.time(), 6), "event": event}
        record.update(fields)
        self.records.append(record)
        self.emitted += 1

    def drain(self) -> list[dict[str, object]]:
        records = self.records
        self.records = []
        return records

    def close(self) -> None:
        return None


class WorkerTelemetry:
    """Install buffering sinks in a worker process; drain them per point.

    Constructed once per worker (after fork/spawn, so the tracer's pid
    is the worker's own); :meth:`drain` is called after every point to
    flush whatever the engine recorded into one relayable batch.
    """

    def __init__(self) -> None:
        self.tracer = Tracer()
        self.registry = MetricsRegistry()
        self.log = BufferedEventLog()
        set_tracer(self.tracer)
        set_registry(self.registry)
        set_log(self.log)

    def drain(self) -> dict[str, object] | None:
        """Everything buffered since the last drain, or ``None``."""
        trace = self.tracer.drain()
        metrics = self.registry.drain_snapshot()
        events = self.log.drain()
        if not (
            trace["events"]
            or events
            or any(metrics[kind] for kind in ("counters", "gauges", "histograms"))
        ):
            return None
        return {
            "pid": os.getpid(),
            "trace": trace,
            "metrics": metrics,
            "events": events,
        }


def merge_batch(batch: Mapping[str, object] | None, *, worker: str) -> None:
    """Fold a worker's drained batch into the parent's live sinks.

    ``worker`` is the parent's stable name for the source slot (e.g.
    ``"worker-2"`` — the pid changes when a crashed worker is
    respawned, the slot does not). Sinks the parent does not have
    active are skipped, so a ``--trace``-only run never pays for
    metrics merging.
    """
    if not batch:
        return
    pid = batch.get("pid")
    tracer = active_tracer()
    trace = batch.get("trace")
    if tracer is not None and trace:
        tracer.ingest(trace, label=f"{worker} (pid {pid})")  # type: ignore[arg-type]
    registry = active_registry()
    metrics = batch.get("metrics")
    if registry is not None and metrics:
        registry.merge_snapshot(metrics)  # type: ignore[arg-type]
    log = active_log()
    if log is not None:
        for record in batch.get("events") or ():  # type: ignore[union-attr]
            record = dict(record)
            event = str(record.pop("event", "event"))
            record.setdefault("worker", worker)
            record.setdefault("worker_pid", pid)
            # the buffered ``ts`` rides along in the fields and
            # overrides the parent log's stamp, preserving worker-side
            # ordering in the merged JSONL
            log.emit(event, **record)
