"""Campaign health aggregation: one structured snapshot per campaign.

A campaign's health is scattered across the layers PR 3–7 built — the
metrics registry counts everything, the scheduler knows queue depth
and crash/requeue history, the executor session knows which workers
are alive, the journal knows what is durable. :class:`CampaignHealth`
folds all of that into one JSON-ready snapshot (point rates, ETA,
failure-kind breakdown, cache hit rate, queue depth, per-worker
status) — the payload behind the exposition server's ``/campaign``
endpoint and the ``campaign_*`` gauges on ``/metrics``.

The snapshot is produced by whoever owns the state: a *live* campaign
registers :meth:`~repro.core.scheduler.campaign.CampaignScheduler.health_snapshot`
via :func:`set_campaign_source` (the same active-sink pattern the
other obs modules use), while an *outside* watcher derives one from
the on-disk journal with :func:`health_from_journal`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable

__all__ = [
    "CampaignHealth",
    "derive_verdict",
    "active_campaign_source",
    "set_campaign_source",
    "campaign_health",
    "health_from_journal",
]


@dataclass
class CampaignHealth:
    """A structured, JSON-ready snapshot of one campaign's health."""

    #: ``healthy`` | ``degraded`` | ``failing`` | ``interrupted`` | ``idle``
    verdict: str = "idle"
    target: str = ""
    backend: str = ""
    jobs: int = 1
    #: grid points in the current batch (after skip filtering)
    points_total: int = 0
    #: slots filled: restored + executed + crash failures + dedup aliases
    points_done: int = 0
    points_failed: int = 0
    points_restored: int = 0
    points_deduped: int = 0
    #: tasks submitted but not yet resolved (the live queue gauge)
    queue_depth: int = 0
    elapsed_s: float = 0.0
    #: executed points per second this batch (restored points excluded)
    rate_points_per_s: float = 0.0
    #: seconds to finish at the current rate; ``None`` when unknowable
    eta_s: float | None = None
    failure_kinds: dict[str, int] = field(default_factory=dict)
    #: build-cache front-end hit rate, ``None`` before the first lookup
    cache_hit_rate: float | None = None
    worker_restarts: int = 0
    requeues: int = 0
    crash_failures: int = 0
    #: signal name when a graceful drain stopped the campaign
    interrupted: str = ""
    #: journal state (path, restored/executed/discarded, degradation)
    journal: dict[str, object] | None = None
    #: per-worker liveness: slot, pid, alive, in-flight point
    workers: list[dict[str, object]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Liveness verdict: anything but ``failing`` keeps serving."""
        return self.verdict != "failing"

    def to_json(self) -> dict[str, object]:
        out: dict[str, object] = asdict(self)
        out["ok"] = self.ok
        return out

    def gauges(self) -> dict[str, float]:
        """The snapshot's numeric core, as ``campaign_*`` gauge values
        for the Prometheus exposition (:mod:`repro.obs.server`)."""
        out = {
            "campaign_points_planned": float(self.points_total),
            "campaign_points_done": float(self.points_done),
            "campaign_points_failed": float(self.points_failed),
            "campaign_points_restored": float(self.points_restored),
            "campaign_queue_depth": float(self.queue_depth),
            "campaign_elapsed_seconds": float(self.elapsed_s),
            "campaign_rate_points_per_second": float(self.rate_points_per_s),
            "campaign_worker_restarts": float(self.worker_restarts),
            "campaign_requeues": float(self.requeues),
            "campaign_workers_alive": float(
                sum(1 for w in self.workers if w.get("alive"))
            ),
            "campaign_healthy": 1.0 if self.ok else 0.0,
        }
        if self.eta_s is not None:
            out["campaign_eta_seconds"] = float(self.eta_s)
        if self.cache_hit_rate is not None:
            out["campaign_cache_hit_rate"] = float(self.cache_hit_rate)
        return out


def derive_verdict(
    *,
    points_total: int,
    executed: int,
    failed: int,
    crash_failures: int = 0,
    journal_degraded: bool = False,
    interrupted: str = "",
) -> str:
    """The one-word campaign verdict ``/health`` reports.

    ``failing`` — every executed point so far failed (and at least one
    ran); ``interrupted`` — a graceful drain stopped the campaign;
    ``degraded`` — some failures/crashes, or durability was lost;
    ``idle`` — nothing scheduled yet; ``healthy`` otherwise.
    """
    if interrupted:
        return "interrupted"
    if executed and failed >= executed:
        return "failing"
    if failed or crash_failures or journal_degraded:
        return "degraded"
    if not points_total:
        return "idle"
    return "healthy"


# --------------------------------------------------------------------------
# the active campaign source (None = no live campaign to report on)
# --------------------------------------------------------------------------

_SOURCE: Callable[[], CampaignHealth] | None = None


def active_campaign_source() -> Callable[[], CampaignHealth] | None:
    """The installed campaign health source, or ``None``."""
    return _SOURCE


def set_campaign_source(
    source: Callable[[], CampaignHealth] | None,
) -> Callable[[], CampaignHealth] | None:
    """Install the callable ``/campaign`` snapshots come from; returns
    the previous one. A scheduler installs itself when it starts
    running (latest campaign wins, and the final snapshot stays
    readable after the run for post-mortem scrapes)."""
    global _SOURCE
    previous = _SOURCE
    _SOURCE = source
    return previous


def campaign_health() -> CampaignHealth | None:
    """Snapshot the active campaign, or ``None`` when there is none."""
    source = _SOURCE
    return source() if source is not None else None


def health_from_journal(path: str | Path) -> CampaignHealth:
    """Derive a campaign snapshot from its on-disk journal family.

    This is the outside-the-process view (``mp-stream obs serve
    --journal``): read-only, safe against a live campaign, and
    necessarily partial — the journal records completed points, not
    queue depth or worker liveness, so those fields stay at their
    defaults and the total is the number of distinct journaled points.
    """
    # lazy import: repro.core modules import repro.obs at module load
    from ..core.history import fsck_journal, scan_results

    path = Path(path)
    fsck = fsck_journal(path)
    results = scan_results(path)
    failed = [r for r in results.values() if not r.ok]
    kinds: dict[str, int] = {}
    crash_failures = 0
    target = ""
    for r in failed:
        kind = r.failure_kind or "unknown"
        kinds[kind] = kinds.get(kind, 0) + 1
        if kind == "worker_crash":
            crash_failures += 1
    if results:
        target = next(iter(results.values())).target
    return CampaignHealth(
        verdict=derive_verdict(
            points_total=len(results),
            executed=len(results),
            failed=len(failed),
            crash_failures=crash_failures,
            journal_degraded=not fsck.clean,
        ),
        target=target,
        points_total=len(results),
        points_done=len(results),
        points_failed=len(failed),
        failure_kinds=dict(sorted(kinds.items())),
        crash_failures=crash_failures,
        journal={
            "path": fsck.path,
            "files": list(fsck.files),
            "records": fsck.records,
            "valid": fsck.valid,
            "dropped": fsck.dropped,
            "clean": fsck.clean,
        },
    )
