"""Span-based wall-clock tracer with Chrome trace-event export.

A sweep is a tree of work: the campaign contains points, a point walks
the engine's generate → compile → plan → execute stages, and the
execute stage drives queue commands. :class:`Tracer` records each of
those as a *complete* span (``ph: "X"``) in the Chrome trace-event
format, so ``--trace out.json`` produces a file that loads directly
into ``chrome://tracing`` or https://ui.perfetto.dev and renders the
nesting per thread — a parallel sweep shows one track per worker.

Like the metrics registry, instrumented code calls the module-level
:func:`span` helper, which returns a shared no-op when no tracer is
installed: tracing that was not asked for costs one global load per
stage boundary. Spans measure *host* wall time and never touch the
virtual device clock, so traced and untraced runs produce byte-identical
:meth:`~repro.core.results.RunResult.fingerprint` values.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Mapping

__all__ = ["Tracer", "active_tracer", "set_tracer", "use_tracer", "span"]


class _NullSpan:
    """The disabled-tracing span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **args: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span; records a complete event when the block exits."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_t0")

    def __init__(
        self, tracer: "Tracer", name: str, cat: str, args: dict[str, object] | None
    ):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args
        self._t0 = 0.0

    def set(self, **args: object) -> None:
        """Attach args discovered while the span is open."""
        if self._args is None:
            self._args = {}
        self._args.update(args)

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        end = time.perf_counter()
        self._tracer._record(self._name, self._cat, self._t0, end, self._args)


class Tracer:
    """Collects spans and instants; exports Chrome trace-event JSON.

    A tracer can also act as one end of the worker telemetry relay
    (:mod:`repro.obs.relay`): :meth:`drain` detaches the buffered
    events for shipping over a pipe, and :meth:`ingest` merges a
    drained batch from another process onto this tracer's timeline —
    rebased via the wall-clock epoch, keyed by the source pid, so the
    merged trace renders one track per worker process.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        #: wall-clock time at ``_epoch`` — the cross-process anchor
        #: :meth:`ingest` uses to rebase another tracer's timestamps
        self.wall_epoch = time.time()
        self._pid = os.getpid()
        self._thread_names: dict[tuple[int, int], str] = {}
        self._process_names: dict[int, str] = {}
        self.events: list[dict[str, object]] = []

    # -- recording ---------------------------------------------------------

    def span(
        self, name: str, cat: str = "", args: Mapping[str, object] | None = None
    ) -> _Span:
        """A context manager timing the enclosed block as one span."""
        return _Span(self, name, cat, dict(args) if args else None)

    def instant(
        self, name: str, cat: str = "", args: Mapping[str, object] | None = None
    ) -> None:
        """A zero-duration marker (rendered as an arrow in the viewer)."""
        now = time.perf_counter()
        event: dict[str, object] = {
            "ph": "i",
            "s": "t",
            "name": name,
            "cat": cat or "default",
            "ts": (now - self._epoch) * 1e6,
            "pid": self._pid,
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = dict(args)
        self._append(event)

    def _record(
        self,
        name: str,
        cat: str,
        t0: float,
        t1: float,
        args: dict[str, object] | None,
    ) -> None:
        event: dict[str, object] = {
            "ph": "X",
            "name": name,
            "cat": cat or "default",
            "ts": (t0 - self._epoch) * 1e6,
            "dur": (t1 - t0) * 1e6,
            "pid": self._pid,
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = args
        self._append(event)

    def _append(self, event: dict[str, object]) -> None:
        tid = event["tid"]
        assert isinstance(tid, int)
        with self._lock:
            if (self._pid, tid) not in self._thread_names:
                self._thread_names[self._pid, tid] = threading.current_thread().name
            self.events.append(event)

    # -- relay (see repro.obs.relay) ---------------------------------------

    def drain(self) -> dict[str, object]:
        """Detach the buffered events as a relayable batch (worker side).

        The tracer keeps recording afterwards; repeated drains ship
        disjoint batches. The batch carries this process's pid and
        wall-clock epoch so :meth:`ingest` can place the events on the
        receiving tracer's timeline.
        """
        with self._lock:
            events = self.events
            self.events = []
            names = {
                tid: name
                for (pid, tid), name in self._thread_names.items()
                if pid == self._pid
            }
        return {
            "pid": self._pid,
            "wall_epoch": self.wall_epoch,
            "events": events,
            "thread_names": names,
        }

    def ingest(self, batch: Mapping[str, object], *, label: str | None = None) -> int:
        """Merge a :meth:`drain` batch from another process (parent side).

        Timestamps are rebased from the source tracer's wall-clock
        epoch onto this tracer's, and the source pid is preserved so
        the trace viewer renders the batch as its own process track —
        named ``label`` when given. Returns the number of events merged.
        """
        pid = int(batch["pid"])  # type: ignore[arg-type]
        shift = (float(batch["wall_epoch"]) - self.wall_epoch) * 1e6  # type: ignore[arg-type]
        events: list[dict[str, object]] = list(batch.get("events") or ())  # type: ignore[arg-type]
        names: Mapping[object, str] = batch.get("thread_names") or {}  # type: ignore[assignment]
        with self._lock:
            for event in events:
                event = dict(event)
                event["ts"] = float(event["ts"]) + shift  # type: ignore[arg-type]
                event["pid"] = pid
                self.events.append(event)
            for tid, name in names.items():
                self._thread_names.setdefault((pid, int(tid)), name)  # type: ignore[arg-type]
            if label:
                self._process_names[pid] = label
        return len(events)

    # -- export ------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self.events)

    def to_chrome(self) -> dict[str, object]:
        """The trace as a Chrome trace-event JSON object."""
        with self._lock:
            events = list(self.events)
            names = dict(self._thread_names)
            process_names = dict(self._process_names)
        metadata: list[dict[str, object]] = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "args": {"name": process_name},
            }
            for pid, process_name in sorted(process_names.items())
        ]
        metadata += [
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread_name},
            }
            for (pid, tid), thread_name in sorted(names.items())
        ]
        return {"displayTimeUnit": "ms", "traceEvents": metadata + events}

    def save(self, path: str | Path) -> Path:
        """Write the Chrome trace JSON to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome()) + "\n")
        return path


# --------------------------------------------------------------------------
# the active tracer (None = tracing disabled)
# --------------------------------------------------------------------------

_ACTIVE: Tracer | None = None


def active_tracer() -> Tracer | None:
    """The currently installed tracer, or ``None`` when disabled."""
    return _ACTIVE


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` process-wide; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer | None) -> Iterator[Tracer | None]:
    """Scope ``tracer`` as the active sink for the ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def span(name: str, cat: str = "", **args: object) -> "_Span | _NullSpan":
    """Open a span on the active tracer; a shared no-op when disabled."""
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, cat, args or None)


def instant(name: str, cat: str = "", **args: object) -> None:
    """Record an instant marker on the active tracer (no-op if none)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.instant(name, cat, args or None)
