"""Process-wide metrics registry: named counters, gauges and histograms.

A DSE campaign's health is scattered across layers — the engine counts
points and stage seconds, the :class:`~repro.ocl.program.BuildCache`
counts hits and misses, the memory simulators count bytes, rows and
cache lines, the queue counts commands. The registry gives all of them
one sink with stable, dot-separated metric names
(``engine.points``, ``build_cache.frontend_hits``,
``memsim.dram.bytes``, ``queue.h2d_bytes``, the verification
stage's ``verify.points`` / ``verify.mismatches``, the crash-consistent
journal's ``journal.records`` / ``journal.rotations`` /
``journal.dropped_records`` / ``journal.v1_records``, and the
scheduler's shutdown counters ``scheduler.interrupts`` /
``scheduler.journal_degraded``) and one snapshot
format, exportable as JSON via ``--metrics`` and renderable with
:func:`repro.core.report.metrics_table`.

Instrumented code never holds a registry reference; it calls the
module-level helpers (:func:`count`, :func:`observe`, :func:`set_gauge`)
which no-op against a ``None`` global when no registry is active — one
global load and an ``is None`` test, so a campaign that did not ask for
metrics pays nothing measurable. Activate a registry with
:func:`use_registry` (or :func:`repro.obs.session`). Metrics observe
the run; they never feed back into it — virtual-clock timings and
:meth:`~repro.core.results.RunResult.fingerprint` are byte-identical
with the registry on or off.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_registry",
    "set_registry",
    "use_registry",
    "count",
    "observe",
    "set_gauge",
    "load_snapshot",
]


class Counter:
    """A named, monotonically non-decreasing total (int or float)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A named point-in-time value; the last write wins."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Streaming summary of observations: count, total, min, max, mean.

    Keeping raw samples would make snapshots unbounded over a
    million-point campaign; the moments plus the extremes are what a
    stage-time or efficiency distribution is read for.
    """

    __slots__ = ("name", "_lock", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            if not self.count:
                return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
            return {
                "count": self.count,
                "total": self.total,
                "min": self.min,
                "max": self.max,
                "mean": self.total / self.count,
            }

    def merge(self, snapshot: dict[str, float]) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        The moments and extremes compose exactly; only the merged mean
        is recomputed. This is the receiving end of the worker
        telemetry relay (:mod:`repro.obs.relay`).
        """
        observations = int(snapshot.get("count", 0) or 0)
        if not observations:
            return
        with self._lock:
            self.count += observations
            self.total += float(snapshot.get("total", 0.0))
            self.min = min(self.min, float(snapshot["min"]))
            self.max = max(self.max, float(snapshot["max"]))


class MetricsRegistry:
    """Thread-safe collection of named counters/gauges/histograms.

    Metrics are created on first use; a name is bound to one kind for
    the registry's lifetime (asking for ``counter("x")`` after
    ``gauge("x")`` is a bug and raises).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name)
                self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    @staticmethod
    def _render(
        metrics: dict[str, "Counter | Gauge | Histogram"],
    ) -> dict[str, dict[str, object]]:
        out: dict[str, dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Counter):
                value = metric.value
                out["counters"][name] = int(value) if value == int(value) else value
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.value
            else:
                out["histograms"][name] = metric.snapshot()
        return out

    def snapshot(self) -> dict[str, dict[str, object]]:
        """All metrics by kind, JSON-ready and sorted by name."""
        with self._lock:
            metrics = dict(self._metrics)
        return self._render(metrics)

    def drain_snapshot(self) -> dict[str, dict[str, object]]:
        """Snapshot then reset — the worker-relay flush primitive.

        Repeated drains ship disjoint deltas, so a parent that
        :meth:`merge_snapshot`\\ s every batch never double-counts.
        """
        with self._lock:
            metrics = self._metrics
            self._metrics = {}
        return self._render(metrics)

    def merge_snapshot(self, snapshot: dict[str, dict[str, object]]) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histograms are additive; gauges take the incoming
        value (last write wins, matching :meth:`Gauge.set`).
        """
        for name, value in (snapshot.get("counters") or {}).items():
            if value:
                self.counter(name).inc(float(value))  # type: ignore[arg-type]
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name).set(float(value))  # type: ignore[arg-type]
        for name, hist in (snapshot.get("histograms") or {}).items():
            self.histogram(name).merge(hist)  # type: ignore[arg-type]

    def to_json(self, path: str | Path | None = None) -> str:
        """Serialize the snapshot; optionally write it to ``path``."""
        text = json.dumps(self.snapshot(), indent=2, sort_keys=True)
        if path is not None:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text + "\n")
        return text

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


def load_snapshot(path: str | Path) -> dict[str, dict[str, object]]:
    """Read back a snapshot written by :meth:`MetricsRegistry.to_json`."""
    data = json.loads(Path(path).read_text())
    for kind in ("counters", "gauges", "histograms"):
        data.setdefault(kind, {})
    return data


# --------------------------------------------------------------------------
# the active registry (None = instrumentation disabled)
# --------------------------------------------------------------------------

_ACTIVE: MetricsRegistry | None = None


def active_registry() -> MetricsRegistry | None:
    """The currently installed registry, or ``None`` when disabled."""
    return _ACTIVE


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install ``registry`` process-wide; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry | None) -> Iterator[MetricsRegistry | None]:
    """Scope ``registry`` as the active sink for the ``with`` block."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def count(name: str, amount: float = 1.0) -> None:
    """Increment counter ``name`` on the active registry (no-op if none)."""
    registry = _ACTIVE
    if registry is not None:
        registry.counter(name).inc(amount)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` (no-op if none)."""
    registry = _ACTIVE
    if registry is not None:
        registry.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` (no-op if none)."""
    registry = _ACTIVE
    if registry is not None:
        registry.gauge(name).set(value)
