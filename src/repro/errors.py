"""Exception hierarchy for the MP-STREAM reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class. Sub-hierarchies mirror the major
subsystems: the OpenCL-like runtime, the OpenCL-C front-end, the device
performance models and the benchmark harness.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TransientError",
    "UnitParseError",
    "OclError",
    "InvalidValueError",
    "InvalidOperationError",
    "BuildError",
    "LaunchError",
    "OclcError",
    "LexError",
    "ParseError",
    "SemanticError",
    "InterpError",
    "DeviceModelError",
    "ResourceError",
    "UnsupportedKernelError",
    "BenchmarkError",
    "ValidationError",
    "VerifyMismatchError",
    "SweepError",
    "PointTimeoutError",
    "WorkerCrashError",
    "JournalError",
    "JournalCorruptionError",
    "DiskFullError",
    "failure_kind",
]


class ReproError(Exception):
    """Base class of all errors raised by :mod:`repro`."""


class TransientError:
    """Mixin marking a failure as *transient* — worth retrying.

    Real DSE campaigns on AOCL/SDAccel-class toolchains hit flaky
    builds, dropped launches and corrupted readbacks that succeed on
    the next attempt. Mix this into a concrete :class:`ReproError`
    subclass (see :mod:`repro.faults`) and the execution engine will
    retry the point with exponential backoff instead of recording a
    permanent failure; caches never store a transient build error.
    """


class UnitParseError(ReproError, ValueError):
    """A human-readable quantity ("4MB", "250MHz") could not be parsed."""


# --------------------------------------------------------------------------
# OpenCL-like runtime (repro.ocl)
# --------------------------------------------------------------------------


class OclError(ReproError):
    """Base class for runtime-layer errors (contexts, queues, buffers...)."""


class InvalidValueError(OclError, ValueError):
    """An argument to a runtime call is out of range or of the wrong type.

    Analogue of ``CL_INVALID_VALUE``.
    """


class InvalidOperationError(OclError):
    """The operation is not valid in the object's current state.

    Analogue of ``CL_INVALID_OPERATION`` (e.g. launching a kernel with
    unbound arguments, or reading a released buffer).
    """


class BuildError(OclError):
    """Program compilation for a device failed.

    Carries the device name and a build log, like
    ``clGetProgramBuildInfo(CL_PROGRAM_BUILD_LOG)``.
    """

    def __init__(self, message: str, *, device: str = "?", log: str = ""):
        super().__init__(message)
        self.device = device
        self.log = log

    def __str__(self) -> str:  # pragma: no cover - formatting only
        base = super().__str__()
        if self.log:
            return f"{base} [device={self.device}]\n--- build log ---\n{self.log}"
        return f"{base} [device={self.device}]"


class LaunchError(OclError):
    """A kernel launch was rejected (bad NDRange, work-group size...)."""


# --------------------------------------------------------------------------
# OpenCL-C front-end (repro.oclc)
# --------------------------------------------------------------------------


class OclcError(ReproError):
    """Base class for compiler front-end errors."""

    def __init__(self, message: str, *, line: int = 0, col: int = 0):
        super().__init__(message)
        self.line = line
        self.col = col

    def __str__(self) -> str:
        base = super().__str__()
        if self.line:
            return f"{self.line}:{self.col}: {base}"
        return base


class LexError(OclcError):
    """The tokenizer hit an invalid character or malformed literal."""


class ParseError(OclcError):
    """The parser could not derive a valid AST."""


class SemanticError(OclcError):
    """Type checking / address-space / symbol resolution failed."""


class InterpError(OclcError):
    """The functional interpreter hit an unsupported or invalid construct."""


# --------------------------------------------------------------------------
# Device performance models (repro.devices)
# --------------------------------------------------------------------------


class DeviceModelError(ReproError):
    """Base class for device-model errors."""


class ResourceError(DeviceModelError):
    """An FPGA design does not fit the target device's resources."""

    def __init__(self, message: str, *, resource: str = "?", used: float = 0.0,
                 available: float = 0.0):
        super().__init__(message)
        self.resource = resource
        self.used = used
        self.available = available


class UnsupportedKernelError(DeviceModelError):
    """The device model cannot derive a plan for this kernel shape."""


# --------------------------------------------------------------------------
# Benchmark harness (repro.core)
# --------------------------------------------------------------------------


class BenchmarkError(ReproError):
    """Base class for harness errors."""


class ValidationError(BenchmarkError):
    """STREAM solution validation failed (results drifted beyond epsilon)."""


class VerifyMismatchError(BenchmarkError):
    """Differential verification disagreed about a kernel's output.

    Raised by the execution engine's optional post-execute verify stage
    (see :mod:`repro.verify`) when the oclc interpreter's re-execution
    of the generated kernel, the NumPy host-stream reference, and the
    device-observed arrays do not agree within the pinned ULP budget of
    :mod:`repro.verify.tolerance`. Deliberately *not* transient: a
    miscompile reproduces on retry, so the point is recorded as a
    permanent ``"verify_mismatch"`` failure instead of being retried.
    Carries the structured verdict for the result's ``detail``.
    """

    def __init__(self, message: str, *, verdict: dict | None = None):
        super().__init__(message)
        self.verdict: dict = verdict if verdict is not None else {}


class SweepError(BenchmarkError):
    """A design-space sweep was mis-specified."""


class PointTimeoutError(BenchmarkError):
    """A benchmark point exceeded its watchdog budget and was cancelled.

    Raised cooperatively by the execution engine when a point's wall or
    virtual (modelled) time runs past the configured
    :class:`~repro.core.engine.Watchdog` budget; recorded as a
    ``"timeout"`` failure so the campaign keeps going.
    """


class WorkerCrashError(BenchmarkError):
    """A sweep worker died while a point was in flight.

    Raised/recorded by the campaign scheduler
    (:mod:`repro.core.scheduler`) when a worker process crashes —
    injectable via the ``worker_crash`` fault site — and the point has
    exhausted its restart budget. Classified as ``"worker_crash"`` so
    crash-induced failures are distinguishable from the point's own
    failure modes in campaign summaries.
    """


class JournalError(BenchmarkError):
    """The campaign journal failed an I/O operation (append, fsync).

    Raised by :class:`~repro.core.history.SweepJournal` when a record
    cannot be durably appended — a real ``OSError`` from the
    filesystem, or an injected ``journal_fsync`` fault. The campaign
    scheduler treats this as *degradation, not death*: the journal is
    quarantined, a ``journal_degraded`` event is emitted, and the
    campaign keeps running in memory (docs/SCHEDULING.md).
    """


class JournalCorruptionError(JournalError):
    """A journal record failed its integrity checks.

    CRC32/length framing mismatch, unparsable framing, or a stored
    measurement fingerprint that no longer matches the reconstructed
    result. ``mp-stream journal fsck`` reports these; on load they are
    quarantined to a ``.quarantine`` sidecar — never silently dropped.
    """


class DiskFullError(JournalError):
    """The journal hit ``ENOSPC`` (or an injected ``disk_full`` fault)."""


# --------------------------------------------------------------------------
# Failure taxonomy
# --------------------------------------------------------------------------

#: classification buckets, most specific first (order matters)
_FAILURE_KINDS: "tuple[tuple[type, str], ...]" = ()


def failure_kind(exc: BaseException | None) -> str:
    """Classify an exception into the campaign failure taxonomy.

    Returns one of ``"timeout"``, ``"verify_mismatch"``,
    ``"validation"``, ``"build"``, ``"launch"``, ``"compile"``,
    ``"runtime"``, ``"worker_crash"``, ``"disk_full"``,
    ``"journal_corrupt"``, ``"journal_io"``, ``"harness"`` or
    ``"internal"`` — the value recorded on
    :attr:`~repro.core.results.RunResult.failure_kind` and aggregated
    by :meth:`~repro.core.results.ResultSet.failure_kinds`.
    """
    if exc is None:
        return ""
    for cls, kind in _FAILURE_KINDS:
        if isinstance(exc, cls):
            return kind
    return "internal"


_FAILURE_KINDS = (
    (PointTimeoutError, "timeout"),
    (VerifyMismatchError, "verify_mismatch"),
    (ValidationError, "validation"),
    (BuildError, "build"),
    (ResourceError, "build"),  # a design that does not fit fails the build
    (DeviceModelError, "build"),
    (LaunchError, "launch"),
    (OclcError, "compile"),
    (OclError, "runtime"),
    (WorkerCrashError, "worker_crash"),
    (DiskFullError, "disk_full"),
    (JournalCorruptionError, "journal_corrupt"),
    (JournalError, "journal_io"),
    (BenchmarkError, "harness"),
)
