"""MP-STREAM: the benchmark itself (the paper's contribution).

Public API sketch::

    from repro.core import BenchmarkRunner, TuningParameters, KernelName

    runner = BenchmarkRunner("aocl")
    result = runner.run(TuningParameters(kernel=KernelName.COPY,
                                         vector_width=8))
    print(result.summary())
"""

from __future__ import annotations

from ..faults import FaultPlan, FaultSpec
from ..ocl.program import BuildCache
from .autotune import AutotuneResult, autotune
from .engine import STAGES, EngineStats, ExecutionEngine, Watchdog, WorkerSpec
from .generator import GeneratedKernel, generate
from .history import (
    JOURNAL_SCHEMA,
    TORN_WRITE_EXIT_CODE,
    CompareEntry,
    JournalFsck,
    SweepJournal,
    compact_journal,
    compare_results,
    fsck_journal,
    load_results,
    point_fingerprint,
    save_results,
)
from .kernels import KERNELS, SCALAR_Q, KernelSpec, initial_arrays, reference
from .params import (
    VECTOR_WIDTHS,
    AccessPattern,
    DataType,
    KernelName,
    LoopManagement,
    StreamLocus,
    TuningParameters,
)
from .report import (
    ascii_chart,
    failure_table,
    markdown_table,
    metrics_table,
    results_table,
    series_table,
    stream_table,
    verify_table,
)
from .results import ResultSet, RunResult
from .roofline import RooflinePoint, peak_compute_flops, roofline_point
from .runner import BenchmarkRunner, optimal_loop_for
from .scheduler import (
    BACKENDS,
    CampaignScheduler,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from .search import (
    LowFidelityScorer,
    SearchResult,
    SearchRung,
    multifidelity_search,
)
from .sweep import ParameterSweep, best_configuration, explore
from .validate import validate_solution

__all__ = [
    "TuningParameters",
    "KernelName",
    "DataType",
    "AccessPattern",
    "LoopManagement",
    "StreamLocus",
    "VECTOR_WIDTHS",
    "KernelSpec",
    "KERNELS",
    "SCALAR_Q",
    "initial_arrays",
    "reference",
    "GeneratedKernel",
    "generate",
    "BenchmarkRunner",
    "ExecutionEngine",
    "EngineStats",
    "Watchdog",
    "WorkerSpec",
    "CampaignScheduler",
    "BACKENDS",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "FaultPlan",
    "FaultSpec",
    "BuildCache",
    "STAGES",
    "optimal_loop_for",
    "RunResult",
    "ResultSet",
    "ParameterSweep",
    "explore",
    "best_configuration",
    "validate_solution",
    "autotune",
    "AutotuneResult",
    "multifidelity_search",
    "SearchResult",
    "SearchRung",
    "LowFidelityScorer",
    "save_results",
    "load_results",
    "compare_results",
    "CompareEntry",
    "SweepJournal",
    "JournalFsck",
    "fsck_journal",
    "compact_journal",
    "JOURNAL_SCHEMA",
    "TORN_WRITE_EXIT_CODE",
    "point_fingerprint",
    "roofline_point",
    "RooflinePoint",
    "peak_compute_flops",
    "stream_table",
    "failure_table",
    "metrics_table",
    "verify_table",
    "results_table",
    "series_table",
    "ascii_chart",
    "markdown_table",
]
