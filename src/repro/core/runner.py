"""The benchmark runner: buffers, repetitions, timing, validation.

Follows stream.c's discipline:

1. allocate the three arrays and initialize a=1, b=2, c=0;
2. build the generated kernel for the target;
3. one untimed warm-up launch (absorbs lazy migrations / first-touch);
4. ``ntimes`` timed launches; the *best* time is reported, the spread
   is kept;
5. validate the final array contents against the numpy reference.

Bandwidth = STREAM-counted bytes (2 arrays for COPY/SCALE, 3 for
ADD/TRIAD) over the best time. Times are queued->end (launch overhead
included), matching how the paper's small-array points roll off.

``StreamLocus.HOST`` measures the host<->device interconnect instead:
a timed ``enqueue_write_buffer`` + ``enqueue_read_buffer`` per
repetition, counting the bytes crossing PCIe.
"""

from __future__ import annotations

import numpy as np

from ..errors import BenchmarkError, ReproError, ValidationError
from ..ocl import Buffer, CommandQueue, Context, Program
from ..ocl.platform import Device, find_device
from .generator import GeneratedKernel, generate
from .kernels import KERNELS, SCALAR_Q, initial_arrays
from .params import StreamLocus, TuningParameters
from .results import RunResult
from .validate import validate_solution

__all__ = ["BenchmarkRunner"]


class BenchmarkRunner:
    """Runs tuning-parameter points on one target device."""

    def __init__(
        self,
        device: Device | str,
        *,
        ntimes: int = 5,
        warmup: int = 1,
        validate: bool = True,
    ):
        if isinstance(device, str):
            device = find_device(device)
        if ntimes < 1:
            raise BenchmarkError(f"ntimes must be >= 1, got {ntimes}")
        self.device = device
        self.ntimes = ntimes
        self.warmup = warmup
        self.validate = validate

    @property
    def target(self) -> str:
        return self.device.short_name

    # -- public API -----------------------------------------------------------

    def run(self, params: TuningParameters) -> RunResult:
        """Run one parameter point; never raises for per-point failures.

        Build failures (including FPGA resource overflows) and
        validation failures come back as a failed :class:`RunResult`
        with the reason recorded, so sweeps can keep going — exactly
        what a long DSE campaign needs.
        """
        try:
            if params.locus is StreamLocus.HOST:
                return self._run_host_stream(params)
            return self._run_device_stream(params)
        except ValidationError as exc:
            return RunResult(
                target=self.target,
                params=params,
                times=(),
                moved_bytes=params.moved_bytes,
                validated=False,
                error=f"validation: {exc}",
            )
        except ReproError as exc:
            return RunResult(
                target=self.target,
                params=params,
                times=(),
                moved_bytes=params.moved_bytes,
                validated=False,
                error=f"{type(exc).__name__}: {exc}",
            )

    def run_all_kernels(self, params: TuningParameters) -> list[RunResult]:
        """Run COPY/SCALE/ADD/TRIAD at the same parameter point."""
        return [self.run(params.with_(kernel=k)) for k in KERNELS]

    # -- device-stream mode -------------------------------------------------------

    def _run_device_stream(self, params: TuningParameters) -> RunResult:
        gen = generate(params)
        ctx = Context(self.device)
        queue = CommandQueue(ctx, self.device)
        program = Program(ctx, gen.source).build(defines=gen.defines)
        kernel = program.create_kernel(gen.kernel_name)

        initial = initial_arrays(params.word_count, params.dtype)
        buffers = self._make_buffers(ctx, params, initial, gen)
        self._bind(kernel, params, buffers)

        for _ in range(self.warmup):
            queue.enqueue_nd_range_kernel(kernel, gen.global_size, gen.local_size)
        times = []
        last_detail: dict[str, object] = {}
        for _ in range(self.ntimes):
            event = queue.enqueue_nd_range_kernel(
                kernel, gen.global_size, gen.local_size
            )
            times.append(event.latency)
            last_detail = dict(event.detail)

        validated = False
        if self.validate:
            observed = {
                name: buffers[name].view(initial[name].dtype).copy()
                for name in ("a", "b", "c")
            }
            validate_solution(
                params.kernel,
                params.dtype,
                initial,
                observed,
                touched_words=gen.touched_words,
            )
            validated = True

        last_detail["build_log"] = program.build_log(self.device)
        last_detail["generated_source"] = gen.source
        return RunResult(
            target=self.target,
            params=params,
            times=tuple(times),
            moved_bytes=params.moved_bytes,
            validated=validated,
            detail=last_detail,
        )

    def _make_buffers(
        self,
        ctx: Context,
        params: TuningParameters,
        initial: dict[str, np.ndarray],
        gen: GeneratedKernel,
    ) -> dict[str, Buffer]:
        buffers: dict[str, Buffer] = {}
        for name in ("a", "b", "c"):
            buffers[name] = ctx.create_buffer(hostbuf=initial[name])
            # pre-place on the device so warm-up measures steady state
            buffers[name].residency = "device"
        _ = gen
        return buffers

    def _bind(
        self,
        kernel: "object",
        params: TuningParameters,
        buffers: dict[str, Buffer],
    ) -> None:
        spec = KERNELS[params.kernel]
        named: dict[str, object] = {
            name: buffers[name] for name in (*spec.reads, spec.writes)
        }
        if spec.uses_scalar:
            named["q"] = SCALAR_Q
        kernel.set_args(**named)  # type: ignore[attr-defined]

    # -- host-stream (PCIe) mode ------------------------------------------------------

    def _run_host_stream(self, params: TuningParameters) -> RunResult:
        """Measure host->device->host streaming over the interconnect."""
        ctx = Context(self.device)
        queue = CommandQueue(ctx, self.device)
        initial = initial_arrays(params.word_count, params.dtype)
        src = initial["a"]
        dst = np.empty_like(src)
        buffer = ctx.create_buffer(size=params.array_bytes)

        times = []
        for _ in range(self.warmup + self.ntimes):
            w = queue.enqueue_write_buffer(buffer, src)
            r = queue.enqueue_read_buffer(buffer, dst)
            times.append((w.end - w.queued) + (r.end - r.queued))
        times = times[self.warmup :]

        validated = False
        if self.validate:
            if not np.array_equal(dst, src):
                raise ValidationError("host-stream round trip corrupted data")
            validated = True
        return RunResult(
            target=self.target,
            params=params,
            times=tuple(times),
            moved_bytes=2 * params.array_bytes,  # one write + one read
            validated=validated,
            detail={"mode": "host-stream"},
        )


def optimal_loop_for(device: Device | str) -> "object":
    """The loop management each target prefers (the paper's Fig 3 winners)."""
    from .params import LoopManagement

    short = device if isinstance(device, str) else device.short_name
    return {
        "cpu": LoopManagement.NDRANGE,
        "gpu": LoopManagement.NDRANGE,
        "aocl": LoopManagement.FLAT,
        "sdaccel": LoopManagement.NESTED,
    }.get(short, LoopManagement.NDRANGE)
