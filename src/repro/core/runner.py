"""The benchmark runner: the stable front door to the execution engine.

Follows stream.c's discipline:

1. allocate the three arrays and initialize a=1, b=2, c=0;
2. build the generated kernel for the target;
3. one untimed warm-up launch (absorbs lazy migrations / first-touch);
4. ``ntimes`` timed launches; the *best* time is reported, the spread
   is kept;
5. validate the final array contents against the numpy reference.

Bandwidth = STREAM-counted bytes (2 arrays for COPY/SCALE, 3 for
ADD/TRIAD) over the best time. Times are queued->end (launch overhead
included), matching how the paper's small-array points roll off.

``StreamLocus.HOST`` measures the host<->device interconnect instead:
a timed ``enqueue_write_buffer`` + ``enqueue_read_buffer`` per
repetition, counting the bytes crossing PCIe.

The staged pipeline itself (generate → compile → plan → execute, with
content-addressed artifact caching and per-stage instrumentation) lives
in :mod:`repro.core.engine`; :class:`BenchmarkRunner` wraps one
:class:`~repro.core.engine.ExecutionEngine` so every existing call site
— sweeps, autotune, figures, CLI — rides the cached path for free.
"""

from __future__ import annotations

from ..faults import FaultPlan
from ..ocl.platform import Device
from ..ocl.program import BuildCache
from .engine import ExecutionEngine, Watchdog
from .params import LoopManagement, TuningParameters
from .results import RunResult

__all__ = ["BenchmarkRunner", "optimal_loop_for"]


class BenchmarkRunner:
    """Runs tuning-parameter points on one target device.

    A thin façade over :class:`~repro.core.engine.ExecutionEngine`;
    ``cache=False`` disables artifact caching (every point pays the
    full front-end + device build, the pre-engine behaviour).
    ``faults``, ``watchdog`` and ``retries`` configure the engine's
    resilience layer (fault injection, per-point budgets, transient
    retry); ``verify=True`` adds the differential verification stage
    after every point (see :mod:`repro.verify`).
    """

    def __init__(
        self,
        device: Device | str,
        *,
        ntimes: int = 5,
        warmup: int = 1,
        validate: bool = True,
        verify: bool = False,
        cache: BuildCache | bool = True,
        faults: FaultPlan | None = None,
        watchdog: Watchdog | None = None,
        retries: int = 2,
        exec_lane: str = "auto",
    ):
        self.engine = ExecutionEngine(
            device,
            ntimes=ntimes,
            warmup=warmup,
            validate=validate,
            verify=verify,
            cache=cache,
            faults=faults,
            watchdog=watchdog,
            retries=retries,
            exec_lane=exec_lane,
        )
        self.device = self.engine.device
        self.ntimes = ntimes
        self.warmup = warmup
        self.validate = validate
        self.verify = verify

    @property
    def target(self) -> str:
        return self.engine.target

    # -- public API -----------------------------------------------------------

    def run(self, params: TuningParameters) -> RunResult:
        """Run one parameter point; never raises for per-point failures.

        Build failures (including FPGA resource overflows) and
        validation failures come back as a failed :class:`RunResult`
        with the reason recorded, so sweeps can keep going — exactly
        what a long DSE campaign needs.
        """
        return self.engine.run(params)

    def run_all_kernels(self, params: TuningParameters) -> list[RunResult]:
        """Run COPY/SCALE/ADD/TRIAD at the same parameter point."""
        return self.engine.run_all_kernels(params)


def optimal_loop_for(device: Device | str) -> LoopManagement:
    """The loop management each target prefers (the paper's Fig 3 winners)."""
    short = device if isinstance(device, str) else device.short_name
    return {
        "cpu": LoopManagement.NDRANGE,
        "gpu": LoopManagement.NDRANGE,
        "aocl": LoopManagement.FLAT,
        "sdaccel": LoopManagement.NESTED,
    }.get(short, LoopManagement.NDRANGE)
