"""The staged execution engine: generate → compile → plan → execute.

MP-STREAM's value is the *campaign* — thousands of tuning-parameter
points swept per target — and the monolithic run path used to pay the
whole cost (source generation, front-end lex/parse/type-check, device
build, fresh context and queue) at every single point.
:class:`ExecutionEngine` splits that path into four explicit stages
with cached artifacts between them:

1. **generate** — parameter point -> concrete kernel source
   (:func:`repro.core.generator.generate`; pure and cheap);
2. **compile** — source -> :class:`~repro.oclc.CheckedProgram` through
   the memoized front-end, content-addressed by
   ``(source, effective -D defines)``;
3. **plan** — checked program -> per-device
   :class:`~repro.devices.base.ExecutionPlan` via the device model's
   plan-cache hook, keyed by ``(source, defines, device)``; build
   *failures* (FPGA resource overflow) are cached and replayed too;
4. **execute** — launch on a long-lived context/queue pair, warm-up +
   ``ntimes`` timed repetitions, STREAM validation.

Sweep points that differ only in array size or repetition count reuse
the stage-2/3 artifacts outright (an NDRange kernel's source never
mentions ``N``), so a 100-point campaign runs the front-end a handful
of times instead of 100.

Every :class:`~repro.core.results.RunResult` carries per-point
instrumentation under ``detail["engine"]``: per-stage wall seconds and
the cache outcome of the compile and plan stages. Campaign-wide
counters live on :attr:`ExecutionEngine.stats` /
:meth:`ExecutionEngine.stats_snapshot`.

Concurrency: one engine owns one context/queue and is *not* re-entrant,
but :meth:`worker_clone` derives sibling engines that share the build
cache and the stats sink — the parallel sweep executor gives each
worker thread its own clone.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

import numpy as np

from ..errors import BenchmarkError, ReproError, ValidationError
from ..ocl import Buffer, CommandQueue, Context, Program
from ..ocl.platform import Device, find_device
from ..ocl.program import BuildCache
from .generator import GeneratedKernel, generate
from .kernels import KERNELS, SCALAR_Q, initial_arrays
from .params import StreamLocus, TuningParameters
from .results import RunResult
from .validate import validate_solution

if TYPE_CHECKING:  # pragma: no cover
    from ..devices.base import ExecutionPlan
    from ..oclc import CheckedProgram

__all__ = ["ExecutionEngine", "EngineStats", "STAGES"]

#: pipeline stage names, in order
STAGES = ("generate", "compile", "plan", "execute")


class EngineStats:
    """Campaign-wide stage timing and point counters.

    Shared (thread-safely) between an engine and its worker clones, so
    a parallel sweep aggregates into one place.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.stage_s: dict[str, float] = {name: 0.0 for name in STAGES}
        self.points = 0
        self.failures = 0

    def record_point(self, stage_s: dict[str, float], ok: bool) -> None:
        with self._lock:
            self.points += 1
            if not ok:
                self.failures += 1
            for name, seconds in stage_s.items():
                self.stage_s[name] = self.stage_s.get(name, 0.0) + seconds

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "points": self.points,
                "failures": self.failures,
                "stage_s": dict(self.stage_s),
            }


class _StageClock:
    """Collects wall time per stage for one point."""

    def __init__(self) -> None:
        self.stage_s: dict[str, float] = {}

    def timed(self, name: str):
        clock = self

        class _Span:
            def __enter__(self):
                self._t0 = time.perf_counter()
                return self

            def __exit__(self, *exc: object) -> None:
                clock.stage_s[name] = clock.stage_s.get(name, 0.0) + (
                    time.perf_counter() - self._t0
                )

        return _Span()


class ExecutionEngine:
    """Cached, staged benchmark execution on one target device."""

    def __init__(
        self,
        device: Device | str,
        *,
        ntimes: int = 5,
        warmup: int = 1,
        validate: bool = True,
        cache: BuildCache | bool = True,
        stats: EngineStats | None = None,
    ):
        if isinstance(device, str):
            device = find_device(device)
        if ntimes < 1:
            raise BenchmarkError(f"ntimes must be >= 1, got {ntimes}")
        self.device = device
        self.ntimes = ntimes
        self.warmup = warmup
        self.validate = validate
        if cache is True:
            self.cache: BuildCache | None = BuildCache()
        elif cache is False:
            self.cache = None
        else:
            self.cache = cache
        self.stats = stats if stats is not None else EngineStats()
        self._ctx: Context | None = None
        self._queue: CommandQueue | None = None

    @property
    def target(self) -> str:
        return self.device.short_name

    def worker_clone(self) -> "ExecutionEngine":
        """A sibling engine for another thread: shares the build cache
        and the stats sink, owns a fresh context/queue."""
        return ExecutionEngine(
            self.device,
            ntimes=self.ntimes,
            warmup=self.warmup,
            validate=self.validate,
            cache=self.cache if self.cache is not None else False,
            stats=self.stats,
        )

    # -- public API -----------------------------------------------------------

    def run(self, params: TuningParameters) -> RunResult:
        """Run one parameter point; never raises for per-point failures.

        Build failures (including FPGA resource overflows) and
        validation failures come back as a failed :class:`RunResult`
        with the reason recorded, so sweeps can keep going — exactly
        what a long DSE campaign needs.
        """
        clock = _StageClock()
        try:
            if params.locus is StreamLocus.HOST:
                result = self._run_host_stream(params, clock)
            else:
                result = self._run_device_stream(params, clock)
        except ValidationError as exc:
            result = self._failure(params, f"validation: {exc}", clock)
        except ReproError as exc:
            result = self._failure(params, f"{type(exc).__name__}: {exc}", clock)
        self.stats.record_point(clock.stage_s, result.ok)
        return result

    def run_all_kernels(self, params: TuningParameters) -> list[RunResult]:
        """Run COPY/SCALE/ADD/TRIAD at the same parameter point."""
        return [self.run(params.with_(kernel=k)) for k in KERNELS]

    def stats_snapshot(self) -> dict[str, object]:
        """Campaign counters: stage seconds, points, cache hits/misses."""
        out = self.stats.snapshot()
        if self.cache is not None:
            out.update(self.cache.stats())
        else:
            out.update(
                frontend_hits=0,
                frontend_misses=0,
                plan_hits=0,
                plan_misses=0,
                frontend_entries=0,
            )
        return out

    # -- stages -----------------------------------------------------------------

    def _stage_generate(
        self, params: TuningParameters, clock: _StageClock
    ) -> GeneratedKernel:
        with clock.timed("generate"):
            return generate(params)

    def _stage_compile(
        self, gen: GeneratedKernel, clock: _StageClock
    ) -> tuple["CheckedProgram", str]:
        from ..oclc import compile_source

        with clock.timed("compile"):
            if self.cache is None:
                return compile_source(
                    gen.source, {k: str(v) for k, v in gen.defines.items()}
                ), "off"
            checked, hit = self.cache.frontend(gen.source, gen.defines)
            return checked, "hit" if hit else "miss"

    def _stage_plan(
        self, gen: GeneratedKernel, checked: "CheckedProgram", clock: _StageClock
    ) -> tuple["ExecutionPlan", str]:
        from ..devices.base import BuildOptions

        defines = {k: str(v) for k, v in gen.defines.items()}
        options = BuildOptions(defines=defines)

        def build() -> "ExecutionPlan":
            from ..errors import BuildError

            try:
                return self.device.model.build(checked, options)
            except BuildError:
                raise
            except ReproError as exc:
                raise BuildError(
                    f"build failed for {self.device.short_name}",
                    device=self.device.short_name,
                    log=str(exc),
                ) from exc

        with clock.timed("plan"):
            if self.cache is None:
                return build(), "off"
            plan, hit = self.cache.plan(gen.source, defines, self.device, build)
            return plan, "hit" if hit else "miss"

    # -- device-stream mode -------------------------------------------------------

    def _run_device_stream(
        self, params: TuningParameters, clock: _StageClock
    ) -> RunResult:
        gen = self._stage_generate(params, clock)
        checked, frontend_outcome = self._stage_compile(gen, clock)
        plan, plan_outcome = self._stage_plan(gen, checked, clock)

        with clock.timed("execute"):
            ctx, queue = self._runtime()
            program = Program.from_artifacts(
                ctx,
                gen.source,
                checked=checked,
                plans={self.device.short_name: plan},
                defines=gen.defines,
            )
            kernel = program.create_kernel(gen.kernel_name)

            initial = initial_arrays(params.word_count, params.dtype)
            buffers = self._make_buffers(ctx, initial)
            try:
                self._bind(kernel, params, buffers)

                for _ in range(self.warmup):
                    queue.enqueue_nd_range_kernel(
                        kernel, gen.global_size, gen.local_size
                    )
                times = []
                last_detail: dict[str, object] = {}
                for _ in range(self.ntimes):
                    event = queue.enqueue_nd_range_kernel(
                        kernel, gen.global_size, gen.local_size
                    )
                    times.append(event.latency)
                    last_detail = dict(event.detail)

                validated = False
                if self.validate:
                    observed = {
                        name: buffers[name].view(initial[name].dtype).copy()
                        for name in ("a", "b", "c")
                    }
                    validate_solution(
                        params.kernel,
                        params.dtype,
                        initial,
                        observed,
                        touched_words=gen.touched_words,
                    )
                    validated = True
            finally:
                self._release(ctx, buffers)

        last_detail["build_log"] = program.build_log(self.device)
        last_detail["generated_source"] = gen.source
        last_detail["engine"] = self._instrumentation(
            clock, frontend_outcome, plan_outcome
        )
        return RunResult(
            target=self.target,
            params=params,
            times=tuple(times),
            moved_bytes=params.moved_bytes,
            validated=validated,
            detail=last_detail,
        )

    def _make_buffers(
        self, ctx: Context, initial: dict[str, np.ndarray]
    ) -> dict[str, Buffer]:
        buffers: dict[str, Buffer] = {}
        for name in ("a", "b", "c"):
            buffers[name] = ctx.create_buffer(hostbuf=initial[name])
            # pre-place on the device so warm-up measures steady state
            buffers[name].residency = "device"
        return buffers

    def _bind(
        self,
        kernel: "object",
        params: TuningParameters,
        buffers: dict[str, Buffer],
    ) -> None:
        spec = KERNELS[params.kernel]
        named: dict[str, object] = {
            name: buffers[name] for name in (*spec.reads, spec.writes)
        }
        if spec.uses_scalar:
            named["q"] = SCALAR_Q
        kernel.set_args(**named)  # type: ignore[attr-defined]

    # -- host-stream (PCIe) mode ------------------------------------------------------

    def _run_host_stream(
        self, params: TuningParameters, clock: _StageClock
    ) -> RunResult:
        """Measure host->device->host streaming over the interconnect."""
        with clock.timed("execute"):
            ctx, queue = self._runtime()
            initial = initial_arrays(params.word_count, params.dtype)
            src = initial["a"]
            dst = np.empty_like(src)
            buffer = ctx.create_buffer(size=params.array_bytes)
            try:
                times = []
                for _ in range(self.warmup + self.ntimes):
                    w = queue.enqueue_write_buffer(buffer, src)
                    r = queue.enqueue_read_buffer(buffer, dst)
                    times.append((w.end - w.queued) + (r.end - r.queued))
                times = times[self.warmup :]

                validated = False
                if self.validate:
                    if not np.array_equal(dst, src):
                        raise ValidationError(
                            "host-stream round trip corrupted data"
                        )
                    validated = True
            finally:
                self._release(ctx, {"xfer": buffer})
        return RunResult(
            target=self.target,
            params=params,
            times=tuple(times),
            moved_bytes=2 * params.array_bytes,  # one write + one read
            validated=validated,
            detail={
                "mode": "host-stream",
                "engine": self._instrumentation(clock, "off", "off"),
            },
        )

    # -- plumbing ---------------------------------------------------------------

    def _runtime(self) -> tuple[Context, CommandQueue]:
        """The engine's long-lived context/queue pair (created lazily).

        The queue's virtual clock is restarted for every point so the
        measurement is independent of campaign position; its warm
        kernel-specialization cache survives the reset.
        """
        if self._ctx is None:
            self._ctx = Context(self.device)
            self._queue = CommandQueue(self._ctx, self.device)
        assert self._queue is not None
        self._queue.reset_profile()
        return self._ctx, self._queue

    def _release(self, ctx: Context, buffers: dict[str, Buffer]) -> None:
        for buffer in buffers.values():
            if not buffer.released:
                buffer.release()
        ctx.prune_released()

    def _instrumentation(
        self, clock: _StageClock, frontend: str, plan: str
    ) -> dict[str, object]:
        return {
            "stage_s": {
                name: clock.stage_s.get(name, 0.0) for name in STAGES
            },
            "frontend_cache": frontend,
            "plan_cache": plan,
        }

    def _failure(
        self, params: TuningParameters, error: str, clock: _StageClock
    ) -> RunResult:
        detail: dict[str, object] = {
            "engine": self._instrumentation(clock, "n/a", "n/a")
        }
        return RunResult(
            target=self.target,
            params=params,
            times=(),
            moved_bytes=params.moved_bytes,
            validated=False,
            error=error,
            detail=detail,
        )
