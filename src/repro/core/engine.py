"""The staged execution engine: generate → compile → plan → execute.

MP-STREAM's value is the *campaign* — thousands of tuning-parameter
points swept per target — and the monolithic run path used to pay the
whole cost (source generation, front-end lex/parse/type-check, device
build, fresh context and queue) at every single point.
:class:`ExecutionEngine` splits that path into four explicit stages
with cached artifacts between them:

1. **generate** — parameter point -> concrete kernel source
   (:func:`repro.core.generator.generate`; pure and cheap);
2. **compile** — source -> :class:`~repro.oclc.CheckedProgram` through
   the memoized front-end, content-addressed by
   ``(source, effective -D defines)``;
3. **plan** — checked program -> per-device
   :class:`~repro.devices.base.ExecutionPlan` via the device model's
   plan-cache hook, keyed by ``(source, defines, device)``; build
   *failures* (FPGA resource overflow) are cached and replayed too;
4. **execute** — launch on a long-lived context/queue pair, warm-up +
   ``ntimes`` timed repetitions, STREAM validation;
5. **verify** (optional, ``verify=True``) — differential verification of
   the point's output through :mod:`repro.verify`: the observed arrays
   are checked against an independent re-derivation (oclc interpreter
   for small points, NumPy reference otherwise) under pinned ULP
   budgets. The stage runs strictly *after* the timed repetitions, so
   it never perturbs the measurement; a disagreement fails the point as
   ``failure_kind="verify_mismatch"`` with the structured verdict kept
   in ``detail["verify"]``.

Sweep points that differ only in array size or repetition count reuse
the stage-2/3 artifacts outright (an NDRange kernel's source never
mentions ``N``), so a 100-point campaign runs the front-end a handful
of times instead of 100.

Every :class:`~repro.core.results.RunResult` carries per-point
instrumentation under ``detail["engine"]``: per-stage wall seconds and
the cache outcome of the compile and plan stages. Campaign-wide
counters live on :attr:`ExecutionEngine.stats` /
:meth:`ExecutionEngine.stats_snapshot`.

Concurrency: one engine owns one context/queue and is *not* re-entrant,
but :meth:`worker_clone` derives sibling engines that share the build
cache and the stats sink — the parallel sweep executor gives each
worker thread its own clone.

Resilience: transient failures (marked with the
:class:`~repro.errors.TransientError` mixin — injected by a
:class:`~repro.faults.FaultPlan` or raised by a flaky backend) are
retried with capped exponential backoff and deterministic jitter;
permanent failures are classified into the
:func:`~repro.errors.failure_kind` taxonomy on the result. A
:class:`Watchdog` bounds each point's wall and/or virtual time so one
runaway configuration cannot hang a campaign: the engine checks the
budget cooperatively between stages and repetitions and cancels the
point as a ``"timeout"`` failure.

Observability: every completed point, stage boundary and retry also
reports into the process-wide :mod:`repro.obs` sinks when they are
active — nested wall-clock trace spans (sweep → point → stage → queue
command), metrics counters (``engine.points``, ``engine.stage_s.*``,
``engine.retries``) and structured JSONL events keyed by the point
fingerprint. Instrumentation is strictly observational:
:meth:`~repro.core.results.RunResult.fingerprint` is byte-identical
with the sinks on or off (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import hashlib
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import (
    BenchmarkError,
    PointTimeoutError,
    ReproError,
    TransientError,
    ValidationError,
    VerifyMismatchError,
    failure_kind,
)
from ..faults import FaultPlan, FaultSpec, InjectedReadbackFault
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..ocl import Buffer, CommandQueue, Context, Program
from ..ocl.platform import Device, find_device
from ..ocl.program import BuildCache
from ..rng import make_rng
from .generator import GeneratedKernel, generate
from .history import point_fingerprint
from .kernels import KERNELS, SCALAR_Q, initial_arrays
from .params import StreamLocus, TuningParameters
from .results import RunResult
from .validate import validate_solution

if TYPE_CHECKING:  # pragma: no cover
    from ..devices.base import ExecutionPlan
    from ..oclc import CheckedProgram

__all__ = ["ExecutionEngine", "EngineStats", "Watchdog", "WorkerSpec", "STAGES"]

#: pipeline stage names, in order ("verify" only runs when enabled)
STAGES = ("generate", "compile", "plan", "execute", "verify")


@dataclass(frozen=True)
class Watchdog:
    """Per-point execution budget.

    ``wall_s`` bounds real elapsed seconds (catches stalls);
    ``virtual_s`` bounds the modelled device time a point may
    accumulate across its timed repetitions (deterministic, catches
    configurations that are legal but absurdly slow). Either may be
    ``None`` for unbounded. The budget applies to each attempt of a
    point independently.
    """

    wall_s: float | None = None
    virtual_s: float | None = None

    def __post_init__(self) -> None:
        for name, value in (("wall_s", self.wall_s), ("virtual_s", self.virtual_s)):
            if value is not None and value <= 0:
                raise BenchmarkError(f"Watchdog.{name} must be > 0, got {value}")

    @property
    def active(self) -> bool:
        return self.wall_s is not None or self.virtual_s is not None


class _PointBudget:
    """One attempt's countdown against a :class:`Watchdog`."""

    def __init__(self, watchdog: Watchdog):
        self.watchdog = watchdog
        self._t0 = time.monotonic()
        self._virtual = 0.0

    def check_wall(self) -> None:
        wall = self.watchdog.wall_s
        if wall is not None and time.monotonic() - self._t0 > wall:
            raise PointTimeoutError(f"point exceeded wall budget of {wall:g}s")

    def charge_virtual(self, seconds: float) -> None:
        self._virtual += seconds
        virtual = self.watchdog.virtual_s
        if virtual is not None and self._virtual > virtual:
            raise PointTimeoutError(
                f"point exceeded virtual budget of {virtual:g}s "
                f"(modelled time {self._virtual:.6g}s)"
            )
        self.check_wall()


class EngineStats:
    """Campaign-wide stage timing and point counters.

    Shared (thread-safely) between an engine and its worker clones, so
    a parallel sweep aggregates into one place.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.stage_s: dict[str, float] = {name: 0.0 for name in STAGES}
        self.points = 0
        self.failures = 0
        self.retries = 0

    def record_point(self, stage_s: dict[str, float], ok: bool) -> None:
        with self._lock:
            self.points += 1
            if not ok:
                self.failures += 1
            for name, seconds in stage_s.items():
                self.stage_s[name] = self.stage_s.get(name, 0.0) + seconds
        obs_metrics.count("engine.points")
        if not ok:
            obs_metrics.count("engine.failures")
        for name, seconds in stage_s.items():
            obs_metrics.count(f"engine.stage_s.{name}", seconds)
            obs_metrics.observe(f"engine.stage_s_per_point.{name}", seconds)

    def record_retry(self) -> None:
        with self._lock:
            self.retries += 1
        obs_metrics.count("engine.retries")

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "points": self.points,
                "failures": self.failures,
                "retries": self.retries,
                "stage_s": dict(self.stage_s),
            }

    def merge_snapshot(
        self, snapshot: dict[str, object], *, mirror_metrics: bool = True
    ) -> None:
        """Fold another stats sink's :meth:`snapshot` into this one.

        Worker *threads* share the sink directly, but worker *processes*
        (the scheduler's process backend) each accumulate into their own
        and ship incremental deltas home with every point outcome — this
        is the receiving end. With ``mirror_metrics=True`` the merged
        counters are also mirrored into the obs metrics registry in bulk
        so ``--metrics`` totals stay correct; pass ``False`` when the
        worker's own metric counts already arrive via the telemetry
        relay (:mod:`repro.obs.relay`), which would double-count them.
        """
        points = int(snapshot.get("points", 0) or 0)
        failures = int(snapshot.get("failures", 0) or 0)
        retries = int(snapshot.get("retries", 0) or 0)
        stage_s = snapshot.get("stage_s") or {}
        with self._lock:
            self.points += points
            self.failures += failures
            self.retries += retries
            for name, seconds in stage_s.items():  # type: ignore[union-attr]
                self.stage_s[name] = self.stage_s.get(name, 0.0) + float(seconds)
        if not mirror_metrics:
            return
        if points:
            obs_metrics.count("engine.points", points)
        if failures:
            obs_metrics.count("engine.failures", failures)
        if retries:
            obs_metrics.count("engine.retries", retries)
        for name, seconds in stage_s.items():  # type: ignore[union-attr]
            if seconds:
                obs_metrics.count(f"engine.stage_s.{name}", float(seconds))


class _StageClock:
    """Collects wall time per stage for one point."""

    def __init__(self) -> None:
        self.stage_s: dict[str, float] = {}

    def timed(self, name: str):
        clock = self

        class _Span:
            def __enter__(self):
                self._t0 = time.perf_counter()
                return self

            def __exit__(self, *exc: object) -> None:
                clock.stage_s[name] = clock.stage_s.get(name, 0.0) + (
                    time.perf_counter() - self._t0
                )

        return _Span()


@dataclass(frozen=True)
class WorkerSpec:
    """A picklable recipe for rebuilding a sibling engine elsewhere.

    :meth:`ExecutionEngine.worker_clone` hands a worker *thread* a
    sibling sharing the live cache and stats objects; a worker
    *process* cannot share either, so the scheduler's process backend
    ships this spec across the ``fork``/``spawn`` boundary instead and
    calls :meth:`ExecutionEngine.from_worker_spec` on the far side.
    Faults travel as the declarative :class:`~repro.faults.FaultSpec`
    (the executable :class:`~repro.faults.FaultPlan` is rebuilt from it,
    and is a pure function of the spec, so fault decisions are
    identical in every worker); each worker gets a private build cache
    and stats sink, merged home via :meth:`EngineStats.merge_snapshot`.
    """

    device: str
    ntimes: int
    warmup: int
    validate: bool
    verify: bool
    cached: bool
    faults: FaultSpec | None
    watchdog: Watchdog | None
    retries: int
    backoff_s: float
    backoff_cap_s: float
    exec_lane: str = "auto"


class ExecutionEngine:
    """Cached, staged benchmark execution on one target device."""

    def __init__(
        self,
        device: Device | str,
        *,
        ntimes: int = 5,
        warmup: int = 1,
        validate: bool = True,
        verify: bool = False,
        cache: BuildCache | bool = True,
        stats: EngineStats | None = None,
        faults: FaultPlan | None = None,
        watchdog: Watchdog | None = None,
        retries: int = 2,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 1.0,
        exec_lane: str = "auto",
    ):
        from ..ocl.queue import EXEC_LANES

        if isinstance(device, str):
            device = find_device(device)
        if ntimes < 1:
            raise BenchmarkError(f"ntimes must be >= 1, got {ntimes}")
        if retries < 0:
            raise BenchmarkError(f"retries must be >= 0, got {retries}")
        if exec_lane not in EXEC_LANES:
            raise BenchmarkError(
                f"exec_lane must be one of {EXEC_LANES}, got {exec_lane!r}"
            )
        self.device = device
        self.ntimes = ntimes
        self.warmup = warmup
        self.validate = validate
        self.verify = verify
        if cache is True:
            self.cache: BuildCache | None = BuildCache()
        elif cache is False:
            self.cache = None
        else:
            self.cache = cache
        self.stats = stats if stats is not None else EngineStats()
        self.faults = faults
        self.watchdog = watchdog
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.exec_lane = exec_lane
        self._ctx: Context | None = None
        self._queue: CommandQueue | None = None
        #: one-shot functional results from a slot-batched array pass,
        #: keyed by point fingerprint; consumed (popped) by the next
        #: :meth:`run` of that point, so retries re-execute unprimed
        self._primed: dict[str, dict[str, np.ndarray]] = {}

    @property
    def target(self) -> str:
        return self.device.short_name

    def worker_clone(self) -> "ExecutionEngine":
        """A sibling engine for another thread: shares the build cache
        and the stats sink, owns a fresh context/queue."""
        return ExecutionEngine(
            self.device,
            ntimes=self.ntimes,
            warmup=self.warmup,
            validate=self.validate,
            verify=self.verify,
            cache=self.cache if self.cache is not None else False,
            stats=self.stats,
            faults=self.faults,
            watchdog=self.watchdog,
            retries=self.retries,
            backoff_s=self.backoff_s,
            backoff_cap_s=self.backoff_cap_s,
            exec_lane=self.exec_lane,
        )

    def worker_spec(self) -> WorkerSpec:
        """This engine's configuration as a picklable :class:`WorkerSpec`."""
        return WorkerSpec(
            device=self.device.short_name,
            ntimes=self.ntimes,
            warmup=self.warmup,
            validate=self.validate,
            verify=self.verify,
            cached=self.cache is not None,
            faults=self.faults.spec if self.faults is not None else None,
            watchdog=self.watchdog,
            retries=self.retries,
            backoff_s=self.backoff_s,
            backoff_cap_s=self.backoff_cap_s,
            exec_lane=self.exec_lane,
        )

    @classmethod
    def from_worker_spec(cls, spec: WorkerSpec) -> "ExecutionEngine":
        """Rebuild a sibling engine from a spec (in a worker process).

        The sibling gets a *fresh* build cache and stats sink — process
        workers cannot share the parent's — but byte-identical behavior
        everywhere else: cache state never changes what a point
        measures, only how fast it is obtained.
        """
        return cls(
            spec.device,
            ntimes=spec.ntimes,
            warmup=spec.warmup,
            validate=spec.validate,
            verify=spec.verify,
            cache=spec.cached,
            faults=FaultPlan(spec.faults) if spec.faults is not None else None,
            watchdog=spec.watchdog,
            retries=spec.retries,
            backoff_s=spec.backoff_s,
            backoff_cap_s=spec.backoff_cap_s,
            exec_lane=spec.exec_lane,
        )

    # -- public API -----------------------------------------------------------

    def run(
        self, params: TuningParameters, *, watchdog: Watchdog | None = None
    ) -> RunResult:
        """Run one parameter point; never raises for per-point failures.

        Build failures (including FPGA resource overflows) and
        validation failures come back as a failed :class:`RunResult`
        with the reason and :attr:`~repro.core.results.RunResult.failure_kind`
        recorded, so sweeps can keep going — exactly what a long DSE
        campaign needs. Transient failures
        (:class:`~repro.errors.TransientError`) are retried up to
        ``retries`` times with capped exponential backoff; a ``watchdog``
        budget (the argument overrides the engine-level one) cancels a
        runaway attempt as a ``"timeout"`` failure. Attempt counts and
        backoff land in ``detail["engine"]``.
        """
        dog = watchdog if watchdog is not None else self.watchdog
        key = point_fingerprint(self.target, params)
        clock = _StageClock()
        attempt = 0
        backoff_total = 0.0
        transient_log: list[str] = []
        obs_events.emit(
            "point_started", point=key, target=self.target, params=params.describe()
        )
        with obs_trace.span(
            "point", "sweep", point=key, target=self.target, params=params.describe()
        ) as point_span:
            while True:
                budget = _PointBudget(dog) if dog is not None and dog.active else None
                try:
                    if params.locus is StreamLocus.HOST:
                        result = self._run_host_stream(
                            params, clock, key=key, attempt=attempt, budget=budget
                        )
                    else:
                        result = self._run_device_stream(
                            params, clock, key=key, attempt=attempt, budget=budget
                        )
                    break
                except ReproError as exc:
                    if isinstance(exc, TransientError) and attempt < self.retries:
                        transient_log.append(f"{type(exc).__name__}: {exc}")
                        delay = self._backoff_delay(key, attempt)
                        backoff_total += delay
                        attempt += 1
                        self.stats.record_retry()
                        obs_events.emit(
                            "point_retry",
                            point=key,
                            target=self.target,
                            attempt=attempt,
                            backoff_s=delay,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                        if delay > 0:
                            time.sleep(delay)
                        continue
                    if isinstance(exc, ValidationError):
                        message = f"validation: {exc}"
                    else:
                        message = f"{type(exc).__name__}: {exc}"
                    result = self._failure(
                        params,
                        message,
                        clock,
                        kind=failure_kind(exc),
                        verify=exc.verdict
                        if isinstance(exc, VerifyMismatchError)
                        else None,
                    )
                    break
            point_span.set(ok=result.ok, attempts=attempt + 1)
        engine_detail = result.detail["engine"]
        assert isinstance(engine_detail, dict)
        engine_detail["attempts"] = attempt + 1
        engine_detail["backoff_s"] = backoff_total
        if transient_log:
            engine_detail["transient_errors"] = transient_log
        self.stats.record_point(clock.stage_s, result.ok)
        obs_metrics.count("engine.backoff_s", backoff_total)
        obs_events.emit(
            "point_finished",
            point=key,
            target=self.target,
            ok=result.ok,
            failure_kind=result.failure_kind,
            attempts=attempt + 1,
            bandwidth_gbs=result.bandwidth_gbs,
        )
        return result

    def _backoff_delay(self, point_key: str, attempt: int) -> float:
        """Exponential backoff with deterministic jitter, capped.

        The jitter factor (0.5–1.5) is derived from the point key and
        attempt number — reproducible, but still decorrelates workers
        that hit the same flaky resource simultaneously.
        """
        if self.backoff_s <= 0:
            return 0.0
        base = min(self.backoff_cap_s, self.backoff_s * (2.0**attempt))
        digest = hashlib.sha256(
            f"backoff\x1f{attempt}\x1f{point_key}".encode()
        ).digest()
        jitter = 0.5 + float(
            make_rng(int.from_bytes(digest[:8], "little")).random()
        )
        return min(self.backoff_cap_s, base * jitter)

    def run_all_kernels(self, params: TuningParameters) -> list[RunResult]:
        """Run COPY/SCALE/ADD/TRIAD at the same parameter point."""
        return [self.run(params.with_(kernel=k)) for k in KERNELS]

    def run_batch(
        self,
        points: list[TuningParameters],
        *,
        watchdog: Watchdog | None = None,
    ) -> list[RunResult]:
        """Run a scheduler slot of points, sharing array passes.

        Points whose generated kernels are *semantically identical* —
        same body source, parameter types, launch geometry and data
        shape; typically FPGA attribute variants like
        ``num_simd_work_items``/``num_compute_units`` that only steer
        the performance model — are grouped and their functional
        results computed in one stacked
        :meth:`~repro.oclc.vectorize.VectorKernel.run_batch` pass. Each
        point then goes through the ordinary :meth:`run` path (same
        retries, observability, validation, timing and fingerprints;
        the primed result only spares the redundant re-execution).
        Results come back in input order. Any ineligibility — fault
        injection active, host-locus points, a forced non-array lane,
        reductions, a kernel the array lane refuses — silently degrades
        to per-point execution.
        """
        batchable = (
            len(points) > 1
            and self.faults is None
            and self.exec_lane in ("auto", "vectorized")
        )
        if batchable:
            groups: dict[tuple, list[TuningParameters]] = {}
            for params in points:
                sig = self._batch_signature(params)
                if sig is not None:
                    groups.setdefault(sig, []).append(params)
            for group in groups.values():
                if len(group) > 1:
                    self._prime_group(group)
        try:
            return [self.run(p, watchdog=watchdog) for p in points]
        finally:
            self._primed.clear()

    def _batch_signature(self, params: TuningParameters) -> tuple | None:
        """Semantic identity of one point's launch, or None if unbatchable.

        Two points batch iff their kernels mean the same thing: the
        attribute-stripped body dump, parameter types, launch geometry,
        element type and buffer shape all match. ``reqd_work_group_size``
        variants change ``local_size`` and split naturally.
        """
        from ..errors import ReproError
        from ..oclc import to_source

        if params.locus is StreamLocus.HOST:
            return None
        try:
            gen = self._stage_generate(params, _StageClock())
            checked, _ = self._stage_compile(gen, _StageClock())
            func = checked.kernel(gen.kernel_name)
        except ReproError:
            return None  # the per-point path will report the failure
        param_sig = tuple(
            (name, str(ty))
            for name, ty in checked.param_types[func.name].items()
        )
        return (
            gen.kernel_name,
            to_source(func.body),
            param_sig,
            gen.global_size,
            gen.local_size,
            params.kernel,
            params.dtype,
            params.word_count,
        )

    def _prime_group(self, group: list[TuningParameters]) -> None:
        """One stacked array pass for a group of identical-semantics points."""
        from ..oclc.interp import BufferArg
        from ..oclc.vectorize import vectorize_kernel

        gen = self._stage_generate(group[0], _StageClock())
        checked, _ = self._stage_compile(gen, _StageClock())
        try:
            vk = vectorize_kernel(checked, gen.kernel_name)
        except ReproError:
            return
        spec = KERNELS[group[0].kernel]
        calls = []
        outputs = []
        for params in group:
            initial = initial_arrays(params.word_count, params.dtype)
            arrays = {n: initial[n].copy() for n in ("a", "b", "c")}
            call: dict[str, object] = {
                name: BufferArg(arrays[name])
                for name in (*spec.reads, spec.writes)
            }
            if spec.uses_scalar:
                call["q"] = SCALAR_Q
            calls.append(call)
            outputs.append(arrays[spec.writes])
        try:
            with obs_trace.span(
                "fastpath.batch", "engine", kernel=gen.kernel_name, size=len(group)
            ):
                vk.run_batch(gen.global_size, calls, gen.local_size)
        except ReproError:
            return  # fall back to per-point execution
        for params, out in zip(group, outputs):
            key = point_fingerprint(self.target, params)
            self._primed[key] = {spec.writes: out}
        obs_metrics.count("engine.batched_points", len(group))

    def stats_snapshot(self) -> dict[str, object]:
        """Campaign counters: stage seconds, points, cache hits/misses."""
        out = self.stats.snapshot()
        if self.cache is not None:
            out.update(self.cache.stats())
        else:
            out.update(
                frontend_hits=0,
                frontend_misses=0,
                plan_hits=0,
                plan_misses=0,
                frontend_entries=0,
            )
        return out

    # -- stages -----------------------------------------------------------------

    def _stage_generate(
        self, params: TuningParameters, clock: _StageClock
    ) -> GeneratedKernel:
        with obs_trace.span("generate", "engine"), clock.timed("generate"):
            return generate(params)

    def _stage_compile(
        self, gen: GeneratedKernel, clock: _StageClock
    ) -> tuple["CheckedProgram", str]:
        from ..oclc import compile_source

        with obs_trace.span("compile", "engine") as span, clock.timed("compile"):
            if self.cache is None:
                return compile_source(
                    gen.source, {k: str(v) for k, v in gen.defines.items()}
                ), "off"
            checked, hit = self.cache.frontend(gen.source, gen.defines)
            span.set(cache="hit" if hit else "miss")
            return checked, "hit" if hit else "miss"

    def _stage_plan(
        self, gen: GeneratedKernel, checked: "CheckedProgram", clock: _StageClock
    ) -> tuple["ExecutionPlan", str]:
        from ..devices.base import BuildOptions

        defines = {k: str(v) for k, v in gen.defines.items()}
        options = BuildOptions(defines=defines)

        def build() -> "ExecutionPlan":
            from ..errors import BuildError

            try:
                return self.device.model.build(checked, options)
            except BuildError:
                raise
            except ReproError as exc:
                raise BuildError(
                    f"build failed for {self.device.short_name}",
                    device=self.device.short_name,
                    log=str(exc),
                ) from exc

        with obs_trace.span("plan", "engine") as span, clock.timed("plan"):
            if self.cache is None:
                return build(), "off"
            plan, hit = self.cache.plan(gen.source, defines, self.device, build)
            span.set(cache="hit" if hit else "miss")
            return plan, "hit" if hit else "miss"

    def _stage_verify(
        self,
        params: TuningParameters,
        gen: GeneratedKernel,
        observed: dict[str, np.ndarray],
        clock: _StageClock,
        *,
        key: str,
        attempt: int,
    ) -> dict[str, object]:
        """Stage 5: differential verification of the observed output.

        Runs strictly after the timed repetitions (off the timed path)
        and raises :class:`~repro.errors.VerifyMismatchError` — a
        *permanent* failure, a miscompile reproduces on retry — when
        the device output disagrees with the independent re-derivation.
        The ``verify`` fault site's miscompile hook corrupts the
        re-derived side, so STREAM validation stays green and only this
        stage can catch it.
        """
        from ..verify.conformance import verify_device_outputs

        corrupt = None
        if self.faults is not None:
            faults = self.faults

            def corrupt(arrays: dict[str, np.ndarray]) -> bool:
                return faults.corrupt_verify(key, attempt, arrays)

        with obs_trace.span("verify", "engine") as span, clock.timed("verify"):
            verdict = verify_device_outputs(params, gen, observed, corrupt=corrupt)
            span.set(ok=verdict["ok"], mode=verdict["mode"])
        obs_metrics.count("verify.points")
        if not verdict["ok"]:
            obs_metrics.count("verify.mismatches")
            raise VerifyMismatchError(str(verdict["error"]), verdict=verdict)
        return verdict

    # -- fault/watchdog plumbing -------------------------------------------------

    def _checkpoint(
        self, site: str, key: str, attempt: int, budget: _PointBudget | None
    ) -> None:
        """A stage boundary: inject the site's fault, then check the budget."""
        if self.faults is not None:
            self.faults.check(site, key, attempt)
        if budget is not None:
            budget.check_wall()

    def _fault_hook(self, key: str, attempt: int, fired: set[str]):
        """The per-attempt hook installed on the queue's fault port."""
        faults = self.faults
        assert faults is not None

        def hook(site: str, payload: object = None) -> None:
            if site == "readback":
                if isinstance(payload, np.ndarray) and faults.corrupt_readback(
                    key, attempt, payload
                ):
                    fired.add("readback")
                return
            faults.check(site, key, attempt)

        return hook

    # -- device-stream mode -------------------------------------------------------

    def _run_device_stream(
        self,
        params: TuningParameters,
        clock: _StageClock,
        *,
        key: str,
        attempt: int,
        budget: _PointBudget | None,
    ) -> RunResult:
        self._checkpoint("generate", key, attempt, budget)
        gen = self._stage_generate(params, clock)
        self._checkpoint("compile", key, attempt, budget)
        checked, frontend_outcome = self._stage_compile(gen, clock)
        # the build fault fires *before* the plan cache is consulted, so
        # whether it strikes cannot depend on cache state (and therefore
        # on execution order or resume position)
        self._checkpoint("build", key, attempt, budget)
        plan, plan_outcome = self._stage_plan(gen, checked, clock)
        if budget is not None:
            budget.check_wall()

        fired: set[str] = set()
        with obs_trace.span("execute", "engine"), clock.timed("execute"):
            ctx, queue = self._runtime()
            if self.faults is not None:
                queue.fault_hook = self._fault_hook(key, attempt, fired)
            program = Program.from_artifacts(
                ctx,
                gen.source,
                checked=checked,
                plans={self.device.short_name: plan},
                defines=gen.defines,
            )
            kernel = program.create_kernel(gen.kernel_name)

            initial = initial_arrays(params.word_count, params.dtype)
            buffers = self._make_buffers(ctx, initial)
            # Consume a slot-batched functional result, if one is
            # primed for this point: copy the stacked array pass's
            # outputs into the buffers, and tell the queue the timed
            # launches need no functional re-execution (the kernels the
            # batch gate admits are idempotent, so one pass equals
            # warmup+ntimes passes bit-for-bit). pop() makes the prime
            # one-shot — a retry re-runs the point unprimed.
            prime = self._primed.pop(key, None) if self._primed else None
            try:
                self._bind(kernel, params, buffers)
                if self.faults is not None:
                    self.faults.stall(
                        key,
                        attempt,
                        budget.check_wall if budget is not None else None,
                    )

                if prime is not None:
                    for name, data in prime.items():
                        buffers[name].view(data.dtype)[:] = data
                launch_mode = (
                    queue.external_execution()
                    if prime is not None
                    else nullcontext()
                )
                with launch_mode:
                    for _ in range(self.warmup):
                        queue.enqueue_nd_range_kernel(
                            kernel, gen.global_size, gen.local_size
                        )
                    times = []
                    last_detail: dict[str, object] = {}
                    for _ in range(self.ntimes):
                        event = queue.enqueue_nd_range_kernel(
                            kernel, gen.global_size, gen.local_size
                        )
                        times.append(event.latency)
                        last_detail = dict(event.detail)
                        if budget is not None:
                            budget.charge_virtual(event.latency)

                validated = False
                observed: dict[str, np.ndarray] | None = None
                if self.validate or self.verify:
                    observed = {
                        name: buffers[name].view(initial[name].dtype).copy()
                        for name in ("a", "b", "c")
                    }
                    if self.faults is not None and self.faults.corrupt_readback(
                        key, attempt, observed
                    ):
                        fired.add("readback")
                if self.validate:
                    assert observed is not None
                    try:
                        validate_solution(
                            params.kernel,
                            params.dtype,
                            initial,
                            observed,
                            touched_words=gen.touched_words,
                        )
                    except ValidationError as exc:
                        if "readback" in fired:
                            raise InjectedReadbackFault(
                                f"injected readback corruption detected: {exc}"
                            ) from exc
                        raise
                    validated = True
            finally:
                queue.fault_hook = None
                self._release(ctx, buffers)

        # The vectorize fault site models an array-lane miscompile
        # *below* the STREAM validation tolerance: it corrupts the
        # observed arrays strictly after validation passed, so only the
        # strict differential verify stage can catch it — as a
        # permanent ``verify_mismatch`` failure, never a crash.
        if (
            observed is not None
            and self.faults is not None
            and self.faults.corrupt_vectorize(key, attempt, observed)
        ):
            fired.add("vectorize")
        if self.verify:
            assert observed is not None
            last_detail["verify"] = self._stage_verify(
                params, gen, observed, clock, key=key, attempt=attempt
            )
        last_detail["build_log"] = program.build_log(self.device)
        last_detail["generated_source"] = gen.source
        last_detail["engine"] = self._instrumentation(
            clock, frontend_outcome, plan_outcome
        )
        return RunResult(
            target=self.target,
            params=params,
            times=tuple(times),
            moved_bytes=params.moved_bytes,
            validated=validated,
            detail=last_detail,
        )

    def _make_buffers(
        self, ctx: Context, initial: dict[str, np.ndarray]
    ) -> dict[str, Buffer]:
        buffers: dict[str, Buffer] = {}
        for name in ("a", "b", "c"):
            buffers[name] = ctx.create_buffer(hostbuf=initial[name])
            # pre-place on the device so warm-up measures steady state
            buffers[name].residency = "device"
        return buffers

    def _bind(
        self,
        kernel: "object",
        params: TuningParameters,
        buffers: dict[str, Buffer],
    ) -> None:
        spec = KERNELS[params.kernel]
        named: dict[str, object] = {
            name: buffers[name] for name in (*spec.reads, spec.writes)
        }
        if spec.uses_scalar:
            named["q"] = SCALAR_Q
        kernel.set_args(**named)  # type: ignore[attr-defined]

    # -- host-stream (PCIe) mode ------------------------------------------------------

    def _run_host_stream(
        self,
        params: TuningParameters,
        clock: _StageClock,
        *,
        key: str,
        attempt: int,
        budget: _PointBudget | None,
    ) -> RunResult:
        """Measure host->device->host streaming over the interconnect."""
        fired: set[str] = set()
        with obs_trace.span("execute", "engine"), clock.timed("execute"):
            ctx, queue = self._runtime()
            if self.faults is not None:
                queue.fault_hook = self._fault_hook(key, attempt, fired)
            initial = initial_arrays(params.word_count, params.dtype)
            src = initial["a"]
            dst = np.empty_like(src)
            buffer = ctx.create_buffer(size=params.array_bytes)
            try:
                if self.faults is not None:
                    self.faults.stall(
                        key,
                        attempt,
                        budget.check_wall if budget is not None else None,
                    )
                times = []
                for _ in range(self.warmup + self.ntimes):
                    w = queue.enqueue_write_buffer(buffer, src)
                    r = queue.enqueue_read_buffer(buffer, dst)
                    times.append((w.end - w.queued) + (r.end - r.queued))
                    if budget is not None:
                        budget.charge_virtual(times[-1])
                times = times[self.warmup :]

                validated = False
                if self.validate:
                    if not np.array_equal(dst, src):
                        if "readback" in fired:
                            raise InjectedReadbackFault(
                                "injected corruption on the host-stream "
                                "round trip detected"
                            )
                        raise ValidationError(
                            "host-stream round trip corrupted data"
                        )
                    validated = True
            finally:
                queue.fault_hook = None
                self._release(ctx, {"xfer": buffer})
        return RunResult(
            target=self.target,
            params=params,
            times=tuple(times),
            moved_bytes=2 * params.array_bytes,  # one write + one read
            validated=validated,
            detail={
                "mode": "host-stream",
                "engine": self._instrumentation(clock, "off", "off"),
            },
        )

    # -- plumbing ---------------------------------------------------------------

    def _runtime(self) -> tuple[Context, CommandQueue]:
        """The engine's long-lived context/queue pair (created lazily).

        The queue's virtual clock is restarted for every point so the
        measurement is independent of campaign position; its warm
        kernel-specialization cache survives the reset.
        """
        if self._ctx is None:
            self._ctx = Context(self.device)
            self._queue = CommandQueue(self._ctx, self.device)
        assert self._queue is not None
        self._queue.exec_lane = self.exec_lane
        self._queue.reset_profile()
        return self._ctx, self._queue

    def _release(self, ctx: Context, buffers: dict[str, Buffer]) -> None:
        for buffer in buffers.values():
            if not buffer.released:
                buffer.release()
        ctx.prune_released()

    def _instrumentation(
        self, clock: _StageClock, frontend: str, plan: str
    ) -> dict[str, object]:
        return {
            "stage_s": {
                name: clock.stage_s.get(name, 0.0) for name in STAGES
            },
            "frontend_cache": frontend,
            "plan_cache": plan,
        }

    def _failure(
        self,
        params: TuningParameters,
        error: str,
        clock: _StageClock,
        *,
        kind: str = "",
        verify: dict[str, object] | None = None,
    ) -> RunResult:
        detail: dict[str, object] = {
            "engine": self._instrumentation(clock, "n/a", "n/a")
        }
        if verify is not None:
            detail["verify"] = verify
        return RunResult(
            target=self.target,
            params=params,
            times=(),
            moved_bytes=params.moved_bytes,
            validated=False,
            error=error,
            failure_kind=kind,
            detail=detail,
        )
