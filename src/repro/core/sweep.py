"""Design-space sweeps.

The point of MP-STREAM is not one number but a *campaign*: a cartesian
sweep over tuning axes per target, tolerant of per-point failures (an
FPGA configuration that doesn't fit is a data point, not a crash).
:class:`ParameterSweep` builds the grid; :func:`explore` runs it and
returns a :class:`~repro.core.results.ResultSet`; :func:`best_configuration`
is the simple automated-DSE entry point the paper motivates.

Execution is delegated to the campaign scheduler
(:mod:`repro.core.scheduler`): :func:`explore` builds the grid and
hands it to a :class:`~repro.core.scheduler.CampaignScheduler`, which
owns ordering, dedup, journaling, crash/requeue policy and
instrumentation, and runs the points on a pluggable backend —
``backend="serial"``, ``"thread"`` (``jobs=N`` worker threads driving
:meth:`~repro.core.engine.ExecutionEngine.worker_clone` siblings that
share one build cache), or ``"process"`` (a worker-process pool that
survives individual worker death). Whatever the backend or completion
order, results come back in grid order with fingerprints identical to
the serial path; see ``docs/SCHEDULING.md`` for the backend matrix.

Resilience: pass ``journal=`` to stream every completed point to a
:class:`~repro.core.history.SweepJournal` as it finishes, and
``resume=True`` to skip points the journal already holds (matched by
parameter fingerprint) — a campaign killed mid-sweep restarts where it
died and produces byte-identical results. A
:class:`~repro.core.engine.Watchdog` bounds each point so one runaway
configuration degrades to a ``"timeout"`` data point instead of
hanging the pool. A *worker death* mid-point (injectable via the
``worker_crash`` fault site) is requeued up to
``max_worker_restarts`` times and then recorded as a
``"worker_crash"`` data point; an engine *bug* (per-point failures
never raise) still cancels the remaining queue and surfaces as a
:class:`~repro.errors.SweepError` naming the grid point.

Verification: an engine constructed with ``verify=True`` runs the
differential verification stage (:mod:`repro.verify`) after every
executed point, so a whole campaign can be swept end-to-end under
``--verify``; mismatches land as ``"verify_mismatch"`` data points and
are tallied in the ``sweep_finished`` event's ``failure_kinds``.

Observability: when :mod:`repro.obs` sinks are active, the campaign is
wrapped in a ``sweep`` trace span and emits ``sweep_started``,
``point_restored`` and ``sweep_finished`` structured events;
:class:`~repro.obs.SweepProgress` is a ready-made ``progress=``
callback reporting rate, ETA, failures and cache hits live — under
``jobs=N`` too, since progress callbacks are already serialized.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Mapping, Sequence

from ..errors import SweepError
from .engine import ExecutionEngine, Watchdog
from .history import SweepJournal
from .params import TuningParameters
from .results import ResultSet, RunResult
from .runner import BenchmarkRunner
from .scheduler import CampaignScheduler

__all__ = ["ParameterSweep", "explore", "best_configuration"]


@dataclass
class ParameterSweep:
    """A cartesian grid of tuning-parameter points.

    ``axes`` maps :class:`TuningParameters` field names to value lists;
    ``base`` supplies every unswept field. Invalid combinations (the
    dataclass validates on construction) are skipped and reported via
    :attr:`skipped`.
    """

    base: TuningParameters = field(default_factory=TuningParameters)
    axes: Mapping[str, Sequence[object]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        valid = set(TuningParameters.__dataclass_fields__)
        unknown = set(self.axes) - valid
        if unknown:
            raise SweepError(
                f"unknown sweep axes {sorted(unknown)}; valid: {sorted(valid)}"
            )
        for name, values in self.axes.items():
            if not values:
                raise SweepError(f"axis {name!r} has no values")
        self.skipped: list[tuple[dict[str, object], str]] = []

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def points(self) -> Iterator[TuningParameters]:
        """All valid points of the grid, row-major in axis order."""
        self.skipped.clear()
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[n] for n in names)):
            changes = dict(zip(names, combo))
            try:
                yield self.base.with_(**changes)
            except SweepError as exc:
                self.skipped.append((changes, str(exc)))


def explore(
    runner: BenchmarkRunner | ExecutionEngine,
    sweep: ParameterSweep,
    *,
    jobs: int = 1,
    backend: str | None = None,
    progress: Callable[[RunResult], None] | None = None,
    watchdog: Watchdog | None = None,
    journal: SweepJournal | str | Path | None = None,
    resume: bool = False,
    resume_or_start: bool = False,
    max_worker_restarts: int = 2,
    handle_signals: bool = False,
    slot_batch: int = 1,
) -> ResultSet:
    """Run every point of a sweep on a target.

    A thin client of :class:`~repro.core.scheduler.CampaignScheduler`:
    this function's whole job is turning a :class:`ParameterSweep` into
    a point list; ordering, dedup, journaling, crash policy and
    instrumentation belong to the scheduler.

    ``backend`` selects where points run (``"serial"``, ``"thread"``,
    ``"process"``); left ``None``, ``jobs > 1`` picks the thread
    backend and ``jobs=1`` runs serially. Results keep the grid's
    deterministic row-major order and per-point failure tolerance
    whatever the backend, and ``progress`` fires once per grid point in
    completion order (on the scheduler's thread — callbacks need no
    locking, and one that raises is logged as a ``progress_error``
    event rather than killing the campaign).

    ``watchdog`` bounds each point's wall/virtual time (recorded as a
    ``"timeout"`` failure on breach). ``journal`` streams every
    completed point — failures included, they are data — to a JSONL
    :class:`~repro.core.history.SweepJournal`; with ``resume=True``,
    points whose parameter fingerprint the journal already holds are
    restored instead of re-executed (and counted in
    ``journal.reused``), so an interrupted campaign picks up where it
    died with byte-identical results. ``resume=True`` against a missing
    or empty journal is an error — resuming nothing usually means a
    typo'd path — unless ``resume_or_start=True`` opts into falling
    back to a fresh sweep. ``handle_signals=True`` turns SIGTERM/SIGINT
    into a graceful drain (see ``docs/SCHEDULING.md``).

    A worker *death* mid-point is requeued up to ``max_worker_restarts``
    times, then recorded as a ``"worker_crash"`` data point. A worker
    that *raises* (an engine bug — per-point failures are returned, not
    raised) cancels the not-yet-started points and re-raises as
    :class:`~repro.errors.SweepError` naming the grid point, instead of
    leaving orphaned workers running.

    ``slot_batch > 1`` lets the serial backend hand same-shape
    neighbouring points to the engine in one batch so the vectorized
    array lane can execute them in a single stacked pass; parallel
    backends ignore it. Results are fingerprint-identical either way.
    """
    scheduler = CampaignScheduler(
        runner,
        backend=backend,
        jobs=jobs,
        watchdog=watchdog,
        journal=journal,
        resume=resume,
        resume_or_start=resume_or_start,
        progress=progress,
        max_worker_restarts=max_worker_restarts,
        handle_signals=handle_signals,
        slot_batch=slot_batch,
    )
    points = list(sweep.points())
    return scheduler.run(points, skipped=len(sweep.skipped))


def best_configuration(
    runner: BenchmarkRunner | ExecutionEngine,
    sweep: ParameterSweep,
    *,
    jobs: int = 1,
    backend: str | None = None,
) -> tuple[RunResult | None, ResultSet]:
    """Automated DSE: run the sweep, return (winner, full results)."""
    results = explore(runner, sweep, jobs=jobs, backend=backend)
    return results.best(), results
