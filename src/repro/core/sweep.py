"""Design-space sweeps.

The point of MP-STREAM is not one number but a *campaign*: a cartesian
sweep over tuning axes per target, tolerant of per-point failures (an
FPGA configuration that doesn't fit is a data point, not a crash).
:class:`ParameterSweep` builds the grid; :func:`explore` runs it and
returns a :class:`~repro.core.results.ResultSet`; :func:`best_configuration`
is the simple automated-DSE entry point the paper motivates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Sequence

from ..errors import SweepError
from .params import TuningParameters
from .results import ResultSet, RunResult
from .runner import BenchmarkRunner

__all__ = ["ParameterSweep", "explore", "best_configuration"]


@dataclass
class ParameterSweep:
    """A cartesian grid of tuning-parameter points.

    ``axes`` maps :class:`TuningParameters` field names to value lists;
    ``base`` supplies every unswept field. Invalid combinations (the
    dataclass validates on construction) are skipped and reported via
    :attr:`skipped`.
    """

    base: TuningParameters = field(default_factory=TuningParameters)
    axes: Mapping[str, Sequence[object]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        valid = set(TuningParameters.__dataclass_fields__)
        unknown = set(self.axes) - valid
        if unknown:
            raise SweepError(
                f"unknown sweep axes {sorted(unknown)}; valid: {sorted(valid)}"
            )
        for name, values in self.axes.items():
            if not values:
                raise SweepError(f"axis {name!r} has no values")
        self.skipped: list[tuple[dict[str, object], str]] = []

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def points(self) -> Iterator[TuningParameters]:
        """All valid points of the grid, row-major in axis order."""
        self.skipped.clear()
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[n] for n in names)):
            changes = dict(zip(names, combo))
            try:
                yield self.base.with_(**changes)
            except SweepError as exc:
                self.skipped.append((changes, str(exc)))


def explore(
    runner: BenchmarkRunner,
    sweep: ParameterSweep,
    *,
    progress: Callable[[RunResult], None] | None = None,
) -> ResultSet:
    """Run every point of a sweep on a target."""
    results = ResultSet()
    for params in sweep.points():
        result = runner.run(params)
        results.add(result)
        if progress is not None:
            progress(result)
    return results


def best_configuration(
    runner: BenchmarkRunner,
    sweep: ParameterSweep,
) -> tuple[RunResult | None, ResultSet]:
    """Automated DSE: run the sweep, return (winner, full results)."""
    results = explore(runner, sweep)
    return results.best(), results
