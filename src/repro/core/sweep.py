"""Design-space sweeps.

The point of MP-STREAM is not one number but a *campaign*: a cartesian
sweep over tuning axes per target, tolerant of per-point failures (an
FPGA configuration that doesn't fit is a data point, not a crash).
:class:`ParameterSweep` builds the grid; :func:`explore` runs it and
returns a :class:`~repro.core.results.ResultSet`; :func:`best_configuration`
is the simple automated-DSE entry point the paper motivates.

``explore(..., jobs=N)`` fans the campaign out over a thread pool.
Each worker thread drives its own
:meth:`~repro.core.engine.ExecutionEngine.worker_clone` (private
context/queue, shared content-addressed build cache and stats sink), so
points race only on the cache — results are identical to the serial
path and always returned in grid order, whatever order they finish in.

Resilience: pass ``journal=`` to stream every completed point to a
:class:`~repro.core.history.SweepJournal` as it finishes, and
``resume=True`` to skip points the journal already holds (matched by
parameter fingerprint) — a campaign killed mid-sweep restarts where it
died and produces byte-identical results. A
:class:`~repro.core.engine.Watchdog` bounds each point so one runaway
configuration degrades to a ``"timeout"`` data point instead of
hanging the pool. A worker *crash* (an engine bug — per-point failures
never raise) cancels the remaining queue and surfaces as a
:class:`~repro.errors.SweepError` naming the grid point.

Verification: an engine constructed with ``verify=True`` runs the
differential verification stage (:mod:`repro.verify`) after every
executed point, so a whole campaign can be swept end-to-end under
``--verify``; mismatches land as ``"verify_mismatch"`` data points and
are tallied in the ``sweep_finished`` event's ``failure_kinds``.

Observability: when :mod:`repro.obs` sinks are active, the campaign is
wrapped in a ``sweep`` trace span and emits ``sweep_started``,
``point_restored`` and ``sweep_finished`` structured events;
:class:`~repro.obs.SweepProgress` is a ready-made ``progress=``
callback reporting rate, ETA, failures and cache hits live — under
``jobs=N`` too, since progress callbacks are already serialized.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Mapping, Sequence

from ..errors import SweepError
from ..obs import events as obs_events
from ..obs import trace as obs_trace
from .engine import ExecutionEngine, Watchdog
from .history import SweepJournal, point_fingerprint
from .params import TuningParameters
from .results import ResultSet, RunResult
from .runner import BenchmarkRunner

__all__ = ["ParameterSweep", "explore", "best_configuration"]


@dataclass
class ParameterSweep:
    """A cartesian grid of tuning-parameter points.

    ``axes`` maps :class:`TuningParameters` field names to value lists;
    ``base`` supplies every unswept field. Invalid combinations (the
    dataclass validates on construction) are skipped and reported via
    :attr:`skipped`.
    """

    base: TuningParameters = field(default_factory=TuningParameters)
    axes: Mapping[str, Sequence[object]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        valid = set(TuningParameters.__dataclass_fields__)
        unknown = set(self.axes) - valid
        if unknown:
            raise SweepError(
                f"unknown sweep axes {sorted(unknown)}; valid: {sorted(valid)}"
            )
        for name, values in self.axes.items():
            if not values:
                raise SweepError(f"axis {name!r} has no values")
        self.skipped: list[tuple[dict[str, object], str]] = []

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def points(self) -> Iterator[TuningParameters]:
        """All valid points of the grid, row-major in axis order."""
        self.skipped.clear()
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[n] for n in names)):
            changes = dict(zip(names, combo))
            try:
                yield self.base.with_(**changes)
            except SweepError as exc:
                self.skipped.append((changes, str(exc)))


def explore(
    runner: BenchmarkRunner | ExecutionEngine,
    sweep: ParameterSweep,
    *,
    jobs: int = 1,
    progress: Callable[[RunResult], None] | None = None,
    watchdog: Watchdog | None = None,
    journal: SweepJournal | str | Path | None = None,
    resume: bool = False,
) -> ResultSet:
    """Run every point of a sweep on a target.

    ``jobs > 1`` runs points on a thread pool; results keep the grid's
    deterministic row-major order and per-point failure tolerance, and
    ``progress`` fires once per *executed* point in completion order
    (serialized under a lock, so callbacks need no locking of their
    own).

    ``watchdog`` bounds each point's wall/virtual time (recorded as a
    ``"timeout"`` failure on breach). ``journal`` streams every
    completed point — failures included, they are data — to a JSONL
    :class:`~repro.core.history.SweepJournal`; with ``resume=True``,
    points whose parameter fingerprint the journal already holds are
    restored instead of re-executed (and counted in
    ``journal.reused``), so an interrupted campaign picks up where it
    died with byte-identical results.

    A worker that *raises* (an engine bug — per-point failures are
    returned, not raised) cancels the not-yet-started points and
    re-raises as :class:`~repro.errors.SweepError` naming the grid
    point, instead of leaving orphaned workers running.
    """
    if jobs < 1:
        raise SweepError(f"jobs must be >= 1, got {jobs}")
    if resume and journal is None:
        raise SweepError("resume=True requires a journal")
    engine = runner.engine if isinstance(runner, BenchmarkRunner) else runner
    if journal is not None and not isinstance(journal, SweepJournal):
        journal = SweepJournal(journal)
    completed = journal.load() if (resume and journal is not None) else {}

    points = list(sweep.points())
    keys = [point_fingerprint(engine.target, p) for p in points]
    slots: list[RunResult | None] = [None] * len(points)
    todo: list[tuple[int, TuningParameters]] = []
    for i, (params, key) in enumerate(zip(points, keys)):
        prior = completed.get(key)
        if prior is not None:
            slots[i] = prior
            journal.note_reused()  # type: ignore[union-attr]
            obs_events.emit("point_restored", point=key, target=engine.target)
        else:
            todo.append((i, params))

    progress_lock = threading.Lock()

    def finish_point(index: int, result: RunResult) -> None:
        slots[index] = result
        if journal is not None:
            journal.record(keys[index], result)
        if progress is not None:
            with progress_lock:
                progress(result)

    obs_events.emit(
        "sweep_started",
        target=engine.target,
        points=len(points),
        restored=len(points) - len(todo),
        skipped=len(sweep.skipped),
        jobs=jobs,
    )
    with obs_trace.span(
        "sweep", "sweep", target=engine.target, points=len(points), jobs=jobs
    ):
        if jobs == 1 or len(todo) <= 1:
            for index, params in todo:
                finish_point(index, engine.run(params, watchdog=watchdog))
        else:
            local = threading.local()

            def run_point(index: int, params: TuningParameters) -> None:
                worker = getattr(local, "engine", None)
                if worker is None:
                    worker = engine.worker_clone()
                    local.engine = worker
                finish_point(index, worker.run(params, watchdog=watchdog))

            with ThreadPoolExecutor(max_workers=jobs) as pool:
                futures = {
                    pool.submit(run_point, i, params): (i, params)
                    for i, params in todo
                }
                for future in as_completed(futures):
                    try:
                        # engine.run never raises; surface bugs loudly
                        future.result()
                    except Exception as exc:
                        # an engine bug, not a per-point failure: stop
                        # handing out work, drop the queued points, and
                        # name the culprit
                        pool.shutdown(wait=False, cancel_futures=True)
                        index, params = futures[future]
                        raise SweepError(
                            f"sweep worker crashed at grid point {index} "
                            f"({params.describe()}): {type(exc).__name__}: {exc}"
                        ) from exc
    results = ResultSet(r for r in slots if r is not None)
    kinds: dict[str, int] = {}
    for r in results.failed():
        kinds[r.failure_kind or "unknown"] = kinds.get(r.failure_kind or "unknown", 0) + 1
    obs_events.emit(
        "sweep_finished",
        target=engine.target,
        points=len(results),
        failures=len(results.failed()),
        failure_kinds=dict(sorted(kinds.items())),
    )
    return results


def best_configuration(
    runner: BenchmarkRunner | ExecutionEngine,
    sweep: ParameterSweep,
    *,
    jobs: int = 1,
) -> tuple[RunResult | None, ResultSet]:
    """Automated DSE: run the sweep, return (winner, full results)."""
    results = explore(runner, sweep, jobs=jobs)
    return results.best(), results
