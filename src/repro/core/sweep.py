"""Design-space sweeps.

The point of MP-STREAM is not one number but a *campaign*: a cartesian
sweep over tuning axes per target, tolerant of per-point failures (an
FPGA configuration that doesn't fit is a data point, not a crash).
:class:`ParameterSweep` builds the grid; :func:`explore` runs it and
returns a :class:`~repro.core.results.ResultSet`; :func:`best_configuration`
is the simple automated-DSE entry point the paper motivates.

``explore(..., jobs=N)`` fans the campaign out over a thread pool.
Each worker thread drives its own
:meth:`~repro.core.engine.ExecutionEngine.worker_clone` (private
context/queue, shared content-addressed build cache and stats sink), so
points race only on the cache — results are identical to the serial
path and always returned in grid order, whatever order they finish in.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Sequence

from ..errors import SweepError
from .engine import ExecutionEngine
from .params import TuningParameters
from .results import ResultSet, RunResult
from .runner import BenchmarkRunner

__all__ = ["ParameterSweep", "explore", "best_configuration"]


@dataclass
class ParameterSweep:
    """A cartesian grid of tuning-parameter points.

    ``axes`` maps :class:`TuningParameters` field names to value lists;
    ``base`` supplies every unswept field. Invalid combinations (the
    dataclass validates on construction) are skipped and reported via
    :attr:`skipped`.
    """

    base: TuningParameters = field(default_factory=TuningParameters)
    axes: Mapping[str, Sequence[object]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        valid = set(TuningParameters.__dataclass_fields__)
        unknown = set(self.axes) - valid
        if unknown:
            raise SweepError(
                f"unknown sweep axes {sorted(unknown)}; valid: {sorted(valid)}"
            )
        for name, values in self.axes.items():
            if not values:
                raise SweepError(f"axis {name!r} has no values")
        self.skipped: list[tuple[dict[str, object], str]] = []

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def points(self) -> Iterator[TuningParameters]:
        """All valid points of the grid, row-major in axis order."""
        self.skipped.clear()
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[n] for n in names)):
            changes = dict(zip(names, combo))
            try:
                yield self.base.with_(**changes)
            except SweepError as exc:
                self.skipped.append((changes, str(exc)))


def explore(
    runner: BenchmarkRunner | ExecutionEngine,
    sweep: ParameterSweep,
    *,
    jobs: int = 1,
    progress: Callable[[RunResult], None] | None = None,
) -> ResultSet:
    """Run every point of a sweep on a target.

    ``jobs > 1`` runs points on a thread pool; results keep the grid's
    deterministic row-major order and per-point failure tolerance, and
    ``progress`` fires once per point in *completion* order (serialized
    under a lock, so callbacks need no locking of their own).
    """
    if jobs < 1:
        raise SweepError(f"jobs must be >= 1, got {jobs}")
    engine = runner.engine if isinstance(runner, BenchmarkRunner) else runner
    points = list(sweep.points())
    if jobs == 1 or len(points) <= 1:
        results = ResultSet()
        for params in points:
            result = engine.run(params)
            results.add(result)
            if progress is not None:
                progress(result)
        return results

    slots: list[RunResult | None] = [None] * len(points)
    local = threading.local()
    progress_lock = threading.Lock()

    def run_point(index: int, params: TuningParameters) -> int:
        worker = getattr(local, "engine", None)
        if worker is None:
            worker = engine.worker_clone()
            local.engine = worker
        result = worker.run(params)
        slots[index] = result
        if progress is not None:
            with progress_lock:
                progress(result)
        return index

    with ThreadPoolExecutor(max_workers=jobs) as pool:
        futures = [
            pool.submit(run_point, i, params) for i, params in enumerate(points)
        ]
        for future in as_completed(futures):
            future.result()  # engine.run never raises; surface bugs loudly
    return ResultSet(r for r in slots if r is not None)


def best_configuration(
    runner: BenchmarkRunner | ExecutionEngine,
    sweep: ParameterSweep,
    *,
    jobs: int = 1,
) -> tuple[RunResult | None, ResultSet]:
    """Automated DSE: run the sweep, return (winner, full results)."""
    results = explore(runner, sweep, jobs=jobs)
    return results.best(), results
