"""Roofline placement for benchmark results.

STREAM kernels are the textbook memory-bound corner of the roofline
model; placing each measured configuration on its target's roofline
makes the DSE discussion quantitative: *how far below the memory roof
does this coding style sit, and is any configuration compute-bound?*

For a kernel with arithmetic intensity ``I`` (flops/byte) on a device
with peak compute ``P`` (flop/s) and sustained memory bandwidth ``B``
(bytes/s), attainable performance is ``min(P, I*B)``. We derive ``I``
from the kernel IR (ALU lane-ops per byte moved) and peak compute from
the device spec.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.specs import CpuSpec, DeviceSpec, FpgaSpec, GpuSpec
from ..errors import InvalidValueError
from ..oclc import KernelIR
from .results import RunResult

__all__ = ["RooflinePoint", "peak_compute_flops", "roofline_point"]


@dataclass(frozen=True)
class RooflinePoint:
    """One configuration placed on its device's roofline."""

    target: str
    arithmetic_intensity: float  # flops per byte of memory traffic
    achieved_flops: float
    achieved_bytes_per_s: float
    peak_flops: float
    peak_bytes_per_s: float

    @property
    def memory_roof_flops(self) -> float:
        return self.arithmetic_intensity * self.peak_bytes_per_s

    @property
    def attainable_flops(self) -> float:
        return min(self.peak_flops, self.memory_roof_flops)

    @property
    def is_memory_bound(self) -> bool:
        """Whether the roofline says memory limits this configuration."""
        return self.memory_roof_flops <= self.peak_flops

    @property
    def roof_fraction(self) -> float:
        """Achieved fraction of the binding roof (memory- or compute-)."""
        if self.arithmetic_intensity == 0:
            # pure data movement: measure against the bandwidth roof
            return self.achieved_bytes_per_s / self.peak_bytes_per_s
        return self.achieved_flops / self.attainable_flops

    def summary(self) -> str:
        bound = "memory" if self.is_memory_bound else "compute"
        return (
            f"[{self.target}] I={self.arithmetic_intensity:.3f} flop/B, "
            f"{bound}-bound, {100 * self.roof_fraction:.1f}% of roof"
        )


def peak_compute_flops(spec: DeviceSpec) -> float:
    """Peak scalar-op throughput of a device, flop/s.

    CPU: cores x clock x SIMD lanes (AVX, 8 x fp32). GPU: CUDA cores x
    clock. FPGA: DSP blocks at the base fabric clock (each doing one
    multiply-add per cycle).
    """
    if isinstance(spec, CpuSpec):
        return spec.compute_units * spec.core_clock_hz * 8
    if isinstance(spec, GpuSpec):
        cuda_cores = spec.sm_count * 192  # Kepler SMX
        return cuda_cores * spec.core_clock_hz
    if isinstance(spec, FpgaSpec):
        return max(1, spec.dsp_blocks) * spec.base_fmax_hz
    raise InvalidValueError(f"no compute-peak rule for {type(spec).__name__}")


def roofline_point(result: RunResult, ir: KernelIR, spec: DeviceSpec) -> RooflinePoint:
    """Place a successful result on its device's roofline."""
    if not result.ok:
        raise InvalidValueError(f"cannot place a failed result ({result.error})")
    bytes_per_iter = ir.bytes_per_iteration()
    if bytes_per_iter == 0:
        raise InvalidValueError("kernel moves no memory; roofline is undefined")
    lanes = ir.vector_width
    flops_per_iter = ir.alu_ops_per_iteration * lanes
    intensity = flops_per_iter / bytes_per_iter
    achieved_bw = result.bandwidth_gbs * 1e9
    achieved_flops = intensity * achieved_bw
    return RooflinePoint(
        target=result.target,
        arithmetic_intensity=intensity,
        achieved_flops=achieved_flops,
        achieved_bytes_per_s=achieved_bw,
        peak_flops=peak_compute_flops(spec),
        peak_bytes_per_s=spec.peak_bandwidth_gbs * 1e9,
    )
