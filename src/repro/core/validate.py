"""STREAM-style solution validation.

stream.c checks that the arrays, after all timed iterations, match the
analytically expected values to within an epsilon. Our kernels are
idempotent across repetitions (each reads inputs that no repetition
mutates), so the expected state is a single :func:`~repro.core.kernels.reference`
application; integer kernels must match exactly, floating-point kernels
to a relative epsilon.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from .kernels import reference
from .params import DataType, KernelName

__all__ = ["validate_solution", "EPSILON"]

#: relative tolerance per data type
EPSILON = {
    DataType.INT: 0.0,
    DataType.FLOAT: 1e-6,
    DataType.DOUBLE: 1e-13,
}


def validate_solution(
    kernel: KernelName,
    dtype: DataType,
    initial: dict[str, np.ndarray],
    observed: dict[str, np.ndarray],
    *,
    touched_words: int | None = None,
) -> None:
    """Raise :class:`~repro.errors.ValidationError` on any mismatch."""
    expected = reference(kernel, initial, touched_words=touched_words)
    eps = EPSILON[dtype]
    for name in ("a", "b", "c"):
        want = expected[name]
        got = observed[name]
        if got.shape != want.shape:
            raise ValidationError(
                f"array {name!r}: shape {got.shape} != expected {want.shape}"
            )
        if eps == 0.0:
            bad = np.nonzero(got != want)[0]
        else:
            denom = np.maximum(np.abs(want), 1.0)
            bad = np.nonzero(np.abs(got - want) > eps * denom)[0]
        if bad.size:
            i = int(bad[0])
            raise ValidationError(
                f"kernel {kernel}: array {name!r} diverges at word {i}: "
                f"got {got[i]!r}, expected {want[i]!r} "
                f"({bad.size} of {want.size} words wrong)"
            )
