"""STREAM kernel definitions and numpy reference semantics.

The canonical array roles follow McCalpin's STREAM:

========  =====================  =========  =========
kernel    operation              reads      writes
========  =====================  =========  =========
COPY      ``c[i] = a[i]``        a          c
SCALE     ``b[i] = q * c[i]``    c          b
ADD       ``c[i] = a[i]+b[i]``   a, b       c
TRIAD     ``a[i] = b[i]+q*c[i]`` b, c       a
========  =====================  =========  =========

:func:`reference` computes the expected output with numpy so the runner
can validate what the simulated device produced; initial values mirror
stream.c (``a=1, b=2, c=0``) scaled into the integer range for INT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .params import DataType, KernelName

__all__ = [
    "KernelSpec",
    "KERNELS",
    "SCALAR_Q",
    "initial_arrays",
    "reference",
]

#: the STREAM scalar (stream.c also uses 3.0)
SCALAR_Q = 3


@dataclass(frozen=True)
class KernelSpec:
    """Static description of one STREAM kernel."""

    name: KernelName
    #: c-expression template; placeholders: dst, src1, src2, q
    expression: str
    reads: tuple[str, ...]
    writes: str

    @property
    def uses_scalar(self) -> bool:
        return "{q}" in self.expression


KERNELS: dict[KernelName, KernelSpec] = {
    KernelName.COPY: KernelSpec(
        name=KernelName.COPY,
        expression="{dst} = {src1};",
        reads=("a",),
        writes="c",
    ),
    KernelName.SCALE: KernelSpec(
        name=KernelName.SCALE,
        expression="{dst} = {q} * {src1};",
        reads=("c",),
        writes="b",
    ),
    KernelName.ADD: KernelSpec(
        name=KernelName.ADD,
        expression="{dst} = {src1} + {src2};",
        reads=("a", "b"),
        writes="c",
    ),
    KernelName.TRIAD: KernelSpec(
        name=KernelName.TRIAD,
        expression="{dst} = {src1} + {q} * {src2};",
        reads=("b", "c"),
        writes="a",
    ),
}


def _dtype_of(dtype: DataType) -> np.dtype:
    return np.dtype(
        {DataType.INT: np.int32, DataType.FLOAT: np.float32, DataType.DOUBLE: np.float64}[
            dtype
        ]
    )


def initial_arrays(word_count: int, dtype: DataType) -> dict[str, np.ndarray]:
    """STREAM's initial values: a=1, b=2, c=0 (per scalar word)."""
    dt = _dtype_of(dtype)
    return {
        "a": np.full(word_count, 1, dtype=dt),
        "b": np.full(word_count, 2, dtype=dt),
        "c": np.zeros(word_count, dtype=dt),
    }


def reference(
    kernel: KernelName,
    arrays: dict[str, np.ndarray],
    *,
    touched_words: int | None = None,
) -> dict[str, np.ndarray]:
    """Expected array state after one kernel execution.

    ``touched_words`` limits the updated region (the 2-D variants may
    not cover a ragged tail of the allocation); untouched words keep
    their prior values.
    """
    out = {k: v.copy() for k, v in arrays.items()}
    n = touched_words if touched_words is not None else len(out["a"])
    a, b, c = out["a"], out["b"], out["c"]
    q = a.dtype.type(SCALAR_Q)
    if kernel is KernelName.COPY:
        c[:n] = a[:n]
    elif kernel is KernelName.SCALE:
        b[:n] = q * c[:n]
    elif kernel is KernelName.ADD:
        c[:n] = a[:n] + b[:n]
    elif kernel is KernelName.TRIAD:
        a[:n] = b[:n] + q * c[:n]
    else:  # pragma: no cover - enum is closed
        raise ValueError(f"unknown kernel {kernel}")
    return out
