"""Result records and collections."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional

from ..units import bandwidth_gbs, format_bandwidth, format_size
from .params import TuningParameters

__all__ = ["RunResult", "ResultSet"]


@dataclass(frozen=True)
class RunResult:
    """Outcome of running one parameter point on one target."""

    target: str
    params: TuningParameters
    #: per-repetition wall time, seconds (queued -> end, like the paper)
    times: tuple[float, ...]
    moved_bytes: int
    validated: bool
    #: failure notes: "" on success, else why the point produced no timing
    error: str = ""
    #: taxonomy bucket for a failed point ("" on success): one of
    #: :func:`repro.errors.failure_kind`'s classes — "timeout",
    #: "validation", "build", "launch", "compile", "runtime", ...
    failure_kind: str = ""
    detail: dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.error

    @property
    def min_time(self) -> float:
        return min(self.times)

    @property
    def avg_time(self) -> float:
        return sum(self.times) / len(self.times)

    @property
    def max_time(self) -> float:
        return max(self.times)

    @property
    def bandwidth_gbs(self) -> float:
        """STREAM's reported number: bytes moved / best time, decimal GB/s."""
        if not self.ok or not self.times:
            return 0.0
        return bandwidth_gbs(self.moved_bytes, self.min_time)

    def row(self) -> dict[str, object]:
        """Flat record for tables/CSV."""
        p = self.params
        return {
            "target": self.target,
            "kernel": str(p.kernel),
            "array_bytes": p.array_bytes,
            "dtype": p.dtype.cname,
            "vector_width": p.vector_width,
            "pattern": str(p.pattern),
            "loop": str(p.loop),
            "unroll": p.unroll,
            "simd": p.num_simd_work_items,
            "compute_units": p.num_compute_units,
            "locus": str(p.locus),
            "bandwidth_gbs": round(self.bandwidth_gbs, 4),
            "min_time_s": self.min_time if self.ok and self.times else None,
            "validated": self.validated,
            "error": self.error,
            "failure_kind": self.failure_kind,
        }

    #: ``detail`` keys describing how a result was *obtained* rather
    #: than what was measured; excluded from :meth:`fingerprint`
    _PROVENANCE_KEYS = frozenset({"engine", "obs", "verify", "scheduler"})

    def fingerprint(self) -> str:
        """Deterministic identity of the *measurement*.

        Everything the benchmark measured — times, bytes, validation,
        error text, model detail — serialized canonically, with the
        provenance keys (``detail["engine"]``, ``detail["obs"]``,
        ``detail["verify"]``, ``detail["scheduler"]``) excluded: cache
        outcomes, stage wall-times, observability annotations,
        verification verdicts and scheduler bookkeeping (which backend
        ran the point, how many worker crashes it survived) describe
        how a result was *obtained* or *checked* (cold vs cached,
        serial vs parallel, traced vs untraced, verified vs
        unverified), not what was measured. Two runs of the same point
        must produce equal fingerprints regardless of cache state,
        executor backend or schedule, worker restarts, or whether
        :mod:`repro.obs` instrumentation or the :mod:`repro.verify`
        stage was active.
        """
        detail = {
            k: v for k, v in self.detail.items() if k not in self._PROVENANCE_KEYS
        }
        payload = {
            "row": self.row(),
            "times_s": list(self.times),
            "detail": detail,
        }
        return json.dumps(payload, sort_keys=True, default=repr)

    def summary(self) -> str:
        if not self.ok:
            return f"[{self.target}] {self.params.describe()}: FAILED ({self.error})"
        return (
            f"[{self.target}] {self.params.describe()}: "
            f"{format_bandwidth(self.bandwidth_gbs * 1e9)} "
            f"({format_size(self.moved_bytes)} moved, best of {len(self.times)})"
        )


class ResultSet:
    """An ordered collection of results with query/export helpers."""

    def __init__(self, results: Iterable[RunResult] = ()):
        self._results: list[RunResult] = list(results)

    def add(self, result: RunResult) -> None:
        self._results.append(result)

    def __iter__(self) -> Iterator[RunResult]:
        return iter(self._results)

    def __len__(self) -> int:
        return len(self._results)

    def __getitem__(self, index: int) -> RunResult:
        return self._results[index]

    def ok(self) -> "ResultSet":
        return ResultSet(r for r in self._results if r.ok)

    def failed(self) -> "ResultSet":
        return ResultSet(r for r in self._results if not r.ok)

    def failure_kinds(self) -> dict[str, int]:
        """Failure-taxonomy histogram: ``{"build": 2, "timeout": 1}``.

        Failed results recorded before the taxonomy existed (or by
        code that bypassed the engine) count under ``"unclassified"``.
        """
        counts: dict[str, int] = {}
        for r in self._results:
            if r.ok:
                continue
            kind = r.failure_kind or "unclassified"
            counts[kind] = counts.get(kind, 0) + 1
        return dict(sorted(counts.items()))

    def filter(self, **criteria: object) -> "ResultSet":
        """Filter by flat row fields, e.g. ``filter(target="aocl", kernel="copy")``."""
        out = []
        for r in self._results:
            row = r.row()
            if all(row.get(k) == v for k, v in criteria.items()):
                out.append(r)
        return ResultSet(out)

    def best(self) -> Optional[RunResult]:
        """Highest-bandwidth successful result."""
        ok = [r for r in self._results if r.ok]
        return max(ok, key=lambda r: r.bandwidth_gbs) if ok else None

    def series(
        self, x: str, *, y: str = "bandwidth_gbs"
    ) -> list[tuple[object, float]]:
        """(x, y) pairs from the flat rows, in insertion order."""
        return [
            (r.row()[x], float(r.row()[y]))  # type: ignore[arg-type]
            for r in self._results
            if r.ok
        ]

    def to_csv(self, path: str | Path) -> None:
        import csv

        if not self._results:
            raise ValueError("no results to write")
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        rows = [r.row() for r in self._results]
        with path.open("w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=list(rows[0].keys()))
            writer.writeheader()
            writer.writerows(rows)

    def to_json(self, path: str | Path | None = None) -> str:
        payload = []
        for r in self._results:
            row = r.row()
            row["times_s"] = list(r.times)
            payload.append(row)
        text = json.dumps(payload, indent=2)
        if path is not None:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
        return text
