"""The MP-STREAM tuning-parameter space.

:class:`TuningParameters` is the paper's contribution surface: one
frozen record capturing every knob §III defines — generic (array size,
stream locus, data type, vector width, access pattern, loop management,
unroll, required work-group size) and device-specific (AOCL's SIMD
work-items and compute units; SDAccel's pipeline attributes).
Validation enforces the same constraints the vendor toolchains do
(e.g. SIMD requires a fixed work-group size and an NDRange kernel).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace
from typing import Optional

from ..errors import SweepError
from ..units import MIB, parse_size

__all__ = [
    "KernelName",
    "DataType",
    "AccessPattern",
    "LoopManagement",
    "StreamLocus",
    "TuningParameters",
    "VECTOR_WIDTHS",
]

#: widths the benchmark sweeps (1 = scalar)
VECTOR_WIDTHS = (1, 2, 4, 8, 16)


class KernelName(enum.Enum):
    """The four STREAM kernels (the paper calls ADD "SUM")."""

    COPY = "copy"
    SCALE = "scale"
    ADD = "add"
    TRIAD = "triad"

    @property
    def arrays_touched(self) -> int:
        """Arrays moved per element — STREAM's byte-counting convention."""
        return 2 if self in (KernelName.COPY, KernelName.SCALE) else 3

    @property
    def uses_scalar(self) -> bool:
        return self in (KernelName.SCALE, KernelName.TRIAD)

    def __str__(self) -> str:
        return self.value


class DataType(enum.Enum):
    """Element data types the benchmark supports."""

    INT = ("int", 4)
    FLOAT = ("float", 4)
    DOUBLE = ("double", 8)

    def __init__(self, cname: str, size: int):
        self.cname = cname
        self.size = size

    def __str__(self) -> str:
        return self.cname


class AccessPattern(enum.Enum):
    """Contiguous walk, or the column-major walk of a row-major 2-D array."""

    CONTIGUOUS = "contiguous"
    STRIDED = "strided"

    def __str__(self) -> str:
        return self.value


class LoopManagement(enum.Enum):
    """§III "kernel loop management": how the array loop is expressed."""

    NDRANGE = "ndrange"
    FLAT = "flat"
    NESTED = "nested"

    def __str__(self) -> str:
        return self.value


class StreamLocus(enum.Enum):
    """Where the streams run: device global memory, or across PCIe."""

    DEVICE = "device"
    HOST = "host"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class TuningParameters:
    """One point of the MP-STREAM design space."""

    kernel: KernelName = KernelName.COPY
    #: bytes per array (the paper's x-axes quote MB per array)
    array_bytes: int = 4 * MIB
    dtype: DataType = DataType.INT
    vector_width: int = 1
    pattern: AccessPattern = AccessPattern.CONTIGUOUS
    loop: LoopManagement = LoopManagement.NDRANGE
    unroll: int = 1
    reqd_work_group_size: Optional[int] = None
    #: AOCL num_simd_work_items
    num_simd_work_items: int = 1
    #: AOCL num_compute_units
    num_compute_units: int = 1
    #: SDAccel pipeline attributes
    xcl_pipeline_loop: bool = False
    xcl_pipeline_workitems: bool = False
    #: SDAccel memory-interface attributes
    xcl_max_memory_ports: bool = False
    xcl_memory_port_width: Optional[int] = None
    #: access vectors through vloadN/vstoreN on scalar pointers instead
    #: of vector-typed pointers (the other idiomatic OpenCL style)
    use_vload: bool = False
    locus: StreamLocus = StreamLocus.DEVICE

    # -- validation -----------------------------------------------------------

    def __post_init__(self) -> None:
        if self.array_bytes <= 0:
            raise SweepError(f"array size must be positive, got {self.array_bytes}")
        if self.vector_width not in VECTOR_WIDTHS:
            raise SweepError(
                f"vector width {self.vector_width} not in {VECTOR_WIDTHS}"
            )
        if self.unroll < 1:
            raise SweepError(f"unroll factor must be >= 1, got {self.unroll}")
        if self.num_simd_work_items < 1 or self.num_compute_units < 1:
            raise SweepError("SIMD/compute-unit counts must be >= 1")
        if self.num_simd_work_items > 1:
            if self.loop is not LoopManagement.NDRANGE:
                raise SweepError("num_simd_work_items requires an NDRange kernel")
            if self.reqd_work_group_size is None:
                raise SweepError(
                    "num_simd_work_items requires reqd_work_group_size "
                    "(the AOCL compiler enforces this)"
                )
        if self.unroll > 1 and self.loop is LoopManagement.NDRANGE:
            raise SweepError("loop unrolling applies to loop kernels, not NDRange")
        if self.element_count < 1:
            raise SweepError(
                f"array of {self.array_bytes} bytes holds no "
                f"{self.dtype.cname}{self.vector_width} element"
            )
        if self.array_bytes % self.element_bytes:
            raise SweepError(
                f"array size {self.array_bytes} is not a whole number of "
                f"{self.dtype.cname}{self.vector_width} elements"
            )
        if self.use_vload and self.vector_width == 1:
            raise SweepError("use_vload requires a vector width > 1")
        if self.xcl_memory_port_width is not None and self.xcl_memory_port_width not in (
            32,
            64,
            128,
            256,
            512,
        ):
            raise SweepError(
                f"invalid memory port width {self.xcl_memory_port_width}"
            )

    # -- derived quantities ------------------------------------------------------

    @property
    def word_count(self) -> int:
        """Scalar words per array."""
        return self.array_bytes // self.dtype.size

    @property
    def element_bytes(self) -> int:
        """Bytes per (possibly vector) element."""
        return self.dtype.size * self.vector_width

    @property
    def element_count(self) -> int:
        """Vector elements per array (the kernel's iteration count)."""
        return self.array_bytes // self.element_bytes if self.element_bytes else 0

    @property
    def type_name(self) -> str:
        """The OpenCL C element type name."""
        if self.vector_width == 1:
            return self.dtype.cname
        return f"{self.dtype.cname}{self.vector_width}"

    def shape_2d(self) -> tuple[int, int]:
        """Rows x cols (in elements) for the 2-D patterns.

        Rows are the largest power of two not exceeding sqrt(n) that
        divides the element count, so both loops have exact bounds.
        """
        n = self.element_count
        rows = 1 << max(0, int(math.log2(max(1.0, math.sqrt(n)))))
        while rows > 1 and n % rows:
            rows >>= 1
        return rows, n // rows

    @property
    def moved_bytes(self) -> int:
        """Bytes counted for bandwidth, per STREAM's convention.

        The 2-D variants may use slightly fewer elements than the raw
        array when the count does not factor exactly; the byte count
        follows the elements actually touched.
        """
        if self.loop is LoopManagement.NESTED or self.pattern is AccessPattern.STRIDED:
            rows, cols = self.shape_2d()
            used = rows * cols * self.element_bytes
        else:
            used = self.element_count * self.element_bytes
        return used * self.kernel.arrays_touched

    def with_(self, **changes: object) -> "TuningParameters":
        """A copy with fields replaced (sweep helper)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    @classmethod
    def parse(cls, *, array_size: str | int = 4 * MIB, **kwargs: object) -> "TuningParameters":
        """Construct with a human-readable array size ("4MiB")."""
        return cls(array_bytes=parse_size(array_size), **kwargs)  # type: ignore[arg-type]

    def describe(self) -> str:
        parts = [
            str(self.kernel),
            f"{self.array_bytes} B/array",
            self.type_name,
            str(self.pattern),
            str(self.loop),
        ]
        if self.unroll > 1:
            parts.append(f"unroll{self.unroll}")
        if self.num_simd_work_items > 1:
            parts.append(f"simd{self.num_simd_work_items}")
        if self.num_compute_units > 1:
            parts.append(f"cu{self.num_compute_units}")
        if self.use_vload:
            parts.append("vload")
        if self.locus is StreamLocus.HOST:
            parts.append("host-stream")
        return " ".join(parts)
