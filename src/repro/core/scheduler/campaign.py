"""The campaign scheduler: backend-agnostic sweep orchestration.

:class:`CampaignScheduler` owns everything about running a batch of
grid points *except* where they execute: grid-order result assembly,
deduplication by :func:`~repro.core.history.point_fingerprint`,
journal-backed checkpoint/resume, the worker-crash requeue policy,
progress callbacks, and the campaign's obs events/spans/metrics.
Execution itself is delegated to an :class:`~repro.core.scheduler.executors.Executor`
(serial / thread / process — see :mod:`repro.core.scheduler.executors`),
so :func:`repro.core.sweep.explore`, :func:`repro.core.autotune.autotune`
and the CLI are all thin clients of one scheduling engine.

Crash/requeue policy
--------------------
A ``"crash"`` outcome (a worker died mid-point — injectable via the
``worker_crash`` fault site) is *scheduler* business, not a campaign
abort: the in-flight point is resubmitted with an incremented restart
count until ``max_worker_restarts`` is exhausted, at which point it is
recorded as a deterministic ``"worker_crash"`` failure — a
data point, like any other per-point failure. All crash bookkeeping
lives in the fingerprint-excluded ``detail["scheduler"]`` provenance
key, in obs events (``point_requeued``) and in metrics
(``scheduler.requeues``, ``scheduler.worker_restarts``,
``scheduler.queue_depth``), so a campaign's :class:`ResultSet` is
fingerprint-identical across backends, crash schedules and resumes.

An ``"error"`` outcome — the engine *raised*, which per-point failures
never do — still aborts the campaign as a
:class:`~repro.errors.SweepError` naming the grid point: that is an
engine bug, and requeueing a bug would loop forever.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable, Sequence

from ...errors import SweepError
from ...obs import events as obs_events
from ...obs import metrics as obs_metrics
from ...obs import trace as obs_trace
from ..history import SweepJournal, point_fingerprint
from ..params import TuningParameters
from ..results import ResultSet, RunResult
from ..runner import BenchmarkRunner
from .executors import BACKENDS, Executor, Task, make_executor

__all__ = ["CampaignScheduler"]


class CampaignScheduler:
    """Orchestrates one campaign's points through a pluggable executor.

    ``backend`` picks an executor by name (``serial|thread|process``);
    ``None`` keeps the historical auto-selection — threads when
    ``jobs > 1`` and there is more than one point to run, serial
    otherwise. Pass ``executor=`` to inject a custom
    :class:`~repro.core.scheduler.executors.Executor` instead.

    The scheduler is reusable: each :meth:`run` call schedules one
    batch (the autotuner runs many batches through one scheduler), and
    the journal/restore state and the crash/requeue/dedup counters
    carry across batches.
    """

    def __init__(
        self,
        runner: object,
        *,
        backend: str | None = None,
        jobs: int = 1,
        executor: Executor | None = None,
        watchdog: object | None = None,
        journal: SweepJournal | str | Path | None = None,
        resume: bool = False,
        progress: Callable[[RunResult], None] | None = None,
        max_worker_restarts: int = 2,
    ):
        if jobs < 1:
            raise SweepError(f"jobs must be >= 1, got {jobs}")
        if max_worker_restarts < 0:
            raise SweepError(
                f"max_worker_restarts must be >= 0, got {max_worker_restarts}"
            )
        if resume and journal is None:
            raise SweepError("resume=True requires a journal")
        if backend is not None and executor is not None:
            raise SweepError("pass either backend= or executor=, not both")
        if backend is not None and backend not in BACKENDS:
            raise SweepError(
                f"unknown execution backend {backend!r}; valid: {', '.join(BACKENDS)}"
            )
        self.engine = runner.engine if isinstance(runner, BenchmarkRunner) else runner
        self.backend = backend
        self.jobs = jobs
        self.executor = executor
        self.watchdog = watchdog
        if journal is not None and not isinstance(journal, SweepJournal):
            journal = SweepJournal(journal)
        self.journal = journal
        self.resume = resume
        self.progress = progress
        self.max_worker_restarts = max_worker_restarts
        #: completed results by point key: the journal's contents when
        #: resuming, plus everything finished by this scheduler since
        self._restored: dict[str, RunResult] = (
            journal.load() if (resume and journal is not None) else {}
        )
        #: executor backend the last :meth:`run` actually used
        self.backend_used: str | None = None
        # campaign-lifetime counters (accumulate across run() batches)
        self.crashes = 0  #: crash outcomes observed (worker deaths)
        self.requeues = 0  #: crashed points resubmitted
        self.crash_failures = 0  #: points that exhausted the restart budget
        self.deduped = 0  #: duplicate grid points served from their twin
        self.progress_errors = 0  #: progress-callback exceptions swallowed

    # -- scheduling --------------------------------------------------------

    def run(
        self,
        points: Iterable[TuningParameters] | Sequence[TuningParameters],
        *,
        skipped: int = 0,
    ) -> ResultSet:
        """Run one batch of points; results come back in input order.

        ``skipped`` is reported in the ``sweep_started`` event (grid
        points the sweep definition rejected before scheduling).
        """
        points = list(points)
        target = self.engine.target  # type: ignore[attr-defined]
        keys = [point_fingerprint(target, p) for p in points]
        slots: list[RunResult | None] = [None] * len(points)

        # restore journaled points, dedup the rest by fingerprint
        queue: list[Task] = []
        primary_of: dict[str, int] = {}
        aliases: dict[str, list[int]] = {}
        restored = 0
        for i, (params, key) in enumerate(zip(points, keys)):
            prior = self._restored.get(key)
            if prior is not None:
                slots[i] = prior
                restored += 1
                if self.journal is not None:
                    self.journal.note_reused()
                obs_events.emit("point_restored", point=key, target=target)
            elif key in primary_of:
                aliases.setdefault(key, []).append(i)
                self.deduped += 1
                obs_metrics.count("scheduler.deduped")
                obs_events.emit(
                    "point_deduped",
                    point=key,
                    index=i,
                    primary=primary_of[key],
                    target=target,
                )
            else:
                primary_of[key] = i
                queue.append(Task(index=i, key=key, params=params))

        executor = self._resolve_executor(len(queue))
        self.backend_used = executor.name
        obs_events.emit(
            "sweep_started",
            target=target,
            points=len(points),
            restored=restored,
            skipped=skipped,
            jobs=self.jobs,
            backend=executor.name,
            deduped=sum(len(v) for v in aliases.values()),
        )
        requeued_here = 0
        with obs_trace.span(
            "sweep", "sweep", target=target, points=len(points), jobs=self.jobs
        ):
            if queue:
                with executor.session(
                    self.engine, watchdog=self.watchdog
                ) as session:
                    for task in queue:
                        session.submit(task)
                    outstanding = len(queue)
                    obs_metrics.set_gauge("scheduler.queue_depth", outstanding)
                    while outstanding:
                        outcome = session.next_outcome()
                        task = outcome.task
                        if outcome.kind == "done":
                            assert outcome.result is not None
                            self._finish(
                                slots, keys, aliases, task.index, outcome.result
                            )
                            outstanding -= 1
                        elif outcome.kind == "crash":
                            self.crashes += 1
                            if task.restarts < self.max_worker_restarts:
                                self.requeues += 1
                                requeued_here += 1
                                obs_metrics.count("scheduler.requeues")
                                obs_events.emit(
                                    "point_requeued",
                                    point=task.key,
                                    target=target,
                                    restarts=task.restarts + 1,
                                )
                                session.submit(task.requeued())
                            else:
                                self.crash_failures += 1
                                self._finish(
                                    slots,
                                    keys,
                                    aliases,
                                    task.index,
                                    self._crash_failure(task, executor.name),
                                )
                                outstanding -= 1
                        else:  # an engine bug: abort the campaign loudly
                            raise SweepError(
                                f"sweep worker crashed at grid point "
                                f"{task.index} ({task.params.describe()}): "
                                f"{outcome.error}"
                            ) from outcome.exception
                        obs_metrics.set_gauge(
                            "scheduler.queue_depth", outstanding
                        )

        results = ResultSet(r for r in slots if r is not None)
        kinds: dict[str, int] = {}
        for r in results.failed():
            kind = r.failure_kind or "unknown"
            kinds[kind] = kinds.get(kind, 0) + 1
        obs_events.emit(
            "sweep_finished",
            target=target,
            points=len(results),
            failures=len(results.failed()),
            failure_kinds=dict(sorted(kinds.items())),
            requeues=requeued_here,
        )
        return results

    # -- internals ---------------------------------------------------------

    def _resolve_executor(self, todo: int) -> Executor:
        if self.executor is not None:
            return self.executor
        if self.backend is not None:
            return make_executor(self.backend, jobs=self.jobs)
        # historical auto-selection: threads only when they can help
        if self.jobs == 1 or todo <= 1:
            return make_executor("serial")
        return make_executor("thread", jobs=self.jobs)

    def _finish(
        self,
        slots: list[RunResult | None],
        keys: list[str],
        aliases: dict[str, list[int]],
        index: int,
        result: RunResult,
    ) -> None:
        slots[index] = result
        key = keys[index]
        if self.journal is not None:
            self.journal.record(key, result)
        if self.resume:
            self._restored[key] = result
        self._report(result)
        # duplicate grid points share their twin's result (and fire
        # progress, so reporters still see one callback per grid point)
        for alias_index in aliases.pop(key, ()):
            slots[alias_index] = result
            self._report(result)

    def _report(self, result: RunResult) -> None:
        if self.progress is None:
            return
        try:
            self.progress(result)
        except Exception as exc:  # a broken reporter must not kill the sweep
            self.progress_errors += 1
            obs_metrics.count("scheduler.progress_errors")
            obs_events.emit(
                "progress_error", error=f"{type(exc).__name__}: {exc}"
            )

    def _crash_failure(self, task: Task, backend: str) -> RunResult:
        """The deterministic data point for a restart-budget-exhausted
        crash — identical on every backend (the backend name lands only
        in the fingerprint-excluded ``detail["scheduler"]``)."""
        attempts = task.restarts + 1
        return RunResult(
            target=self.engine.target,  # type: ignore[attr-defined]
            params=task.params,
            times=(),
            moved_bytes=task.params.moved_bytes,
            validated=False,
            error=(
                f"worker crashed {attempts} time(s) running this point; "
                f"restart budget ({self.max_worker_restarts}) exhausted"
            ),
            failure_kind="worker_crash",
            detail={
                "scheduler": {"backend": backend, "restarts": task.restarts}
            },
        )
