"""The campaign scheduler: backend-agnostic sweep orchestration.

:class:`CampaignScheduler` owns everything about running a batch of
grid points *except* where they execute: grid-order result assembly,
deduplication by :func:`~repro.core.history.point_fingerprint`,
journal-backed checkpoint/resume, the worker-crash requeue policy,
progress callbacks, and the campaign's obs events/spans/metrics.
Execution itself is delegated to an :class:`~repro.core.scheduler.executors.Executor`
(serial / thread / process — see :mod:`repro.core.scheduler.executors`),
so :func:`repro.core.sweep.explore`, :func:`repro.core.autotune.autotune`
and the CLI are all thin clients of one scheduling engine.

Crash/requeue policy
--------------------
A ``"crash"`` outcome (a worker died mid-point — injectable via the
``worker_crash`` fault site) is *scheduler* business, not a campaign
abort: the in-flight point is resubmitted with an incremented restart
count until ``max_worker_restarts`` is exhausted, at which point it is
recorded as a deterministic ``"worker_crash"`` failure — a
data point, like any other per-point failure. All crash bookkeeping
lives in the fingerprint-excluded ``detail["scheduler"]`` provenance
key, in obs events (``point_requeued``) and in metrics
(``scheduler.requeues``, ``scheduler.worker_restarts``,
``scheduler.queue_depth``), so a campaign's :class:`ResultSet` is
fingerprint-identical across backends, crash schedules and resumes.

An ``"error"`` outcome — the engine *raised*, which per-point failures
never do — still aborts the campaign as a
:class:`~repro.errors.SweepError` naming the grid point: that is an
engine bug, and requeueing a bug would loop forever.

Graceful shutdown and journal degradation
-----------------------------------------
With ``handle_signals=True`` (the CLI's default for ``sweep``) the
scheduler converts SIGTERM/SIGINT into a *drain*: pending tasks are
cancelled, in-flight points finish and are journaled, the journal gets
a final :meth:`~repro.core.history.SweepJournal.sync` checkpoint, and
:attr:`CampaignScheduler.interrupted` names the signal so the CLI can
exit 130 instead of 0 — ``--resume`` later picks up exactly where the
drain stopped.

A journal that *itself* fails mid-sweep (ENOSPC, a dying disk, the
``journal_fsync``/``disk_full`` fault sites) degrades rather than
kills: the on-disk family is quarantined for post-mortem, a
``journal_degraded`` event is emitted, and the campaign keeps running
in memory — losing durability must cost a re-run, never the hours of
results already in RAM.
"""

from __future__ import annotations

import signal
import threading
import time
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ...errors import JournalError, SweepError
from ...obs import events as obs_events
from ...obs import health as obs_health
from ...obs import metrics as obs_metrics
from ...obs import trace as obs_trace
from ..history import SweepJournal, point_fingerprint
from ..params import TuningParameters
from ..results import ResultSet, RunResult
from ..runner import BenchmarkRunner
from .executors import BACKENDS, Executor, Task, make_executor

__all__ = ["CampaignScheduler"]


class CampaignScheduler:
    """Orchestrates one campaign's points through a pluggable executor.

    ``backend`` picks an executor by name (``serial|thread|process``);
    ``None`` keeps the historical auto-selection — threads when
    ``jobs > 1`` and there is more than one point to run, serial
    otherwise. Pass ``executor=`` to inject a custom
    :class:`~repro.core.scheduler.executors.Executor` instead.

    The scheduler is reusable: each :meth:`run` call schedules one
    batch (the autotuner runs many batches through one scheduler), and
    the journal/restore state and the crash/requeue/dedup counters
    carry across batches.
    """

    def __init__(
        self,
        runner: object,
        *,
        backend: str | None = None,
        jobs: int = 1,
        executor: Executor | None = None,
        watchdog: object | None = None,
        journal: SweepJournal | str | Path | None = None,
        resume: bool = False,
        resume_or_start: bool = False,
        progress: Callable[[RunResult], None] | None = None,
        max_worker_restarts: int = 2,
        handle_signals: bool = False,
        slot_batch: int = 1,
    ):
        if jobs < 1:
            raise SweepError(f"jobs must be >= 1, got {jobs}")
        if slot_batch < 1:
            raise SweepError(f"slot_batch must be >= 1, got {slot_batch}")
        if max_worker_restarts < 0:
            raise SweepError(
                f"max_worker_restarts must be >= 0, got {max_worker_restarts}"
            )
        resume = resume or resume_or_start
        if resume and journal is None:
            raise SweepError("resume=True requires a journal")
        if backend is not None and executor is not None:
            raise SweepError("pass either backend= or executor=, not both")
        if backend is not None and backend not in BACKENDS:
            raise SweepError(
                f"unknown execution backend {backend!r}; valid: {', '.join(BACKENDS)}"
            )
        self.engine = runner.engine if isinstance(runner, BenchmarkRunner) else runner
        self.backend = backend
        self.jobs = jobs
        #: serial-backend slot width for engine-level array batching
        self.slot_batch = slot_batch
        self.executor = executor
        self.watchdog = watchdog
        if journal is not None and not isinstance(journal, SweepJournal):
            journal = SweepJournal(journal)
        if journal is not None and journal.faults is None:
            # wire the journal into the campaign's seeded fault plan so
            # the journal_write/journal_fsync/disk_full sites fire on
            # reproducible schedules
            journal.faults = getattr(self.engine, "faults", None)
        self.journal = journal
        self.resume = resume
        self.progress = progress
        self.max_worker_restarts = max_worker_restarts
        self.handle_signals = handle_signals
        #: completed results by point key: the journal's contents when
        #: resuming, plus everything finished by this scheduler since
        self._restored: dict[str, RunResult] = (
            journal.load() if (resume and journal is not None) else {}
        )
        if resume and not resume_or_start and not self._restored:
            assert journal is not None
            state = (
                "has no restorable records"
                if journal.exists()
                else "does not exist"
            )
            raise SweepError(
                f"cannot resume: journal {journal.path} {state}; start the "
                "campaign without --resume, or pass --resume-or-start to "
                "fall back to a fresh sweep"
            )
        #: executor backend the last :meth:`run` actually used
        self.backend_used: str | None = None
        #: signal name (``"SIGTERM"``/``"SIGINT"``) when a graceful
        #: shutdown drained the campaign, else ``None``
        self.interrupted: str | None = None
        #: the journal failed mid-sweep and was quarantined; the
        #: campaign finished (or is finishing) in-memory
        self.journal_degraded = False
        self.journal_error = ""
        self._stop_signal: str | None = None
        # campaign-lifetime counters (accumulate across run() batches)
        self.crashes = 0  #: crash outcomes observed (worker deaths)
        self.requeues = 0  #: crashed points resubmitted
        self.crash_failures = 0  #: points that exhausted the restart budget
        self.deduped = 0  #: duplicate grid points served from their twin
        self.progress_errors = 0  #: progress-callback exceptions swallowed
        self.cancelled = 0  #: pending points withdrawn by a shutdown drain
        self.worker_restarts = 0  #: worker processes respawned (all batches)
        # live-batch state behind health_snapshot() (read from the obs
        # server's thread; ints/refs only, so torn reads are harmless)
        self._batch_total = 0
        self._batch_restored = 0
        self._batch_deduped = 0
        self._batch_done = 0
        self._batch_failed = 0
        self._failure_kinds: dict[str, int] = {}
        self._queue_depth = 0
        self._run_t0: float | None = None
        self._session: object | None = None
        # the newest scheduler is what /campaign and /health report on
        obs_health.set_campaign_source(self.health_snapshot)

    # -- scheduling --------------------------------------------------------

    def run(
        self,
        points: Iterable[TuningParameters] | Sequence[TuningParameters],
        *,
        skipped: int = 0,
    ) -> ResultSet:
        """Run one batch of points; results come back in input order.

        ``skipped`` is reported in the ``sweep_started`` event (grid
        points the sweep definition rejected before scheduling).
        """
        points = list(points)
        target = self.engine.target  # type: ignore[attr-defined]
        keys = [point_fingerprint(target, p) for p in points]
        slots: list[RunResult | None] = [None] * len(points)

        # restore journaled points, dedup the rest by fingerprint
        queue: list[Task] = []
        primary_of: dict[str, int] = {}
        aliases: dict[str, list[int]] = {}
        restored = 0
        for i, (params, key) in enumerate(zip(points, keys)):
            prior = self._restored.get(key)
            if prior is not None:
                slots[i] = prior
                restored += 1
                if self.journal is not None:
                    self.journal.note_reused()
                obs_events.emit("point_restored", point=key, target=target)
            elif key in primary_of:
                aliases.setdefault(key, []).append(i)
                self.deduped += 1
                obs_metrics.count("scheduler.deduped")
                obs_events.emit(
                    "point_deduped",
                    point=key,
                    index=i,
                    primary=primary_of[key],
                    target=target,
                )
            else:
                primary_of[key] = i
                queue.append(Task(index=i, key=key, params=params))

        executor = self._resolve_executor(len(queue))
        self.backend_used = executor.name
        self._batch_total = len(points)
        self._batch_restored = restored
        self._batch_deduped = sum(len(v) for v in aliases.values())
        self._batch_done = restored
        self._batch_failed = 0
        self._failure_kinds = {}
        self._queue_depth = len(queue)
        self._run_t0 = time.monotonic()
        obs_events.emit(
            "sweep_started",
            target=target,
            points=len(points),
            restored=restored,
            skipped=skipped,
            jobs=self.jobs,
            backend=executor.name,
            deduped=sum(len(v) for v in aliases.values()),
        )
        requeued_here = 0
        previous_handlers = self._install_signal_handlers()
        try:
            with obs_trace.span(
                "sweep", "sweep", target=target, points=len(points),
                jobs=self.jobs,
            ):
                if queue:
                    with executor.session(
                        self.engine, watchdog=self.watchdog
                    ) as session:
                        self._session = session
                        for task in queue:
                            session.submit(task)
                        outstanding = len(queue)
                        self._queue_depth = outstanding
                        obs_metrics.set_gauge(
                            "scheduler.queue_depth", outstanding
                        )
                        while outstanding:
                            if (
                                self._stop_signal is not None
                                and self.interrupted is None
                            ):
                                # graceful shutdown: withdraw the queue,
                                # drain what is already in flight
                                cancelled = session.cancel_pending()
                                outstanding -= len(cancelled)
                                self.cancelled += len(cancelled)
                                self.interrupted = self._stop_signal
                                obs_metrics.count("scheduler.interrupts")
                                obs_events.emit(
                                    "sweep_interrupted",
                                    target=target,
                                    signal=self.interrupted,
                                    cancelled=len(cancelled),
                                    in_flight=outstanding,
                                )
                                if not outstanding:
                                    break
                            outcome = session.next_outcome()
                            task = outcome.task
                            if outcome.kind == "done":
                                assert outcome.result is not None
                                self._finish(
                                    slots, keys, aliases, task.index,
                                    outcome.result,
                                )
                                outstanding -= 1
                            elif outcome.kind == "crash":
                                self.crashes += 1
                                if self.interrupted is not None:
                                    # mid-drain: neither requeue (that
                                    # would extend the shutdown) nor
                                    # record a budget failure (resume
                                    # must replay the crash-free
                                    # schedule) — the point just re-runs
                                    # on resume
                                    self.cancelled += 1
                                    outstanding -= 1
                                elif task.restarts < self.max_worker_restarts:
                                    self.requeues += 1
                                    requeued_here += 1
                                    obs_metrics.count("scheduler.requeues")
                                    obs_events.emit(
                                        "point_requeued",
                                        point=task.key,
                                        target=target,
                                        restarts=task.restarts + 1,
                                    )
                                    session.submit(task.requeued())
                                else:
                                    self.crash_failures += 1
                                    self._finish(
                                        slots,
                                        keys,
                                        aliases,
                                        task.index,
                                        self._crash_failure(
                                            task, executor.name
                                        ),
                                    )
                                    outstanding -= 1
                            else:  # an engine bug: abort the campaign loudly
                                raise SweepError(
                                    f"sweep worker crashed at grid point "
                                    f"{task.index} ({task.params.describe()}): "
                                    f"{outcome.error}"
                                ) from outcome.exception
                            self._queue_depth = outstanding
                            obs_metrics.set_gauge(
                                "scheduler.queue_depth", outstanding
                            )
        finally:
            session = self._session
            if session is not None:
                self.worker_restarts += getattr(session, "restarts", 0)
                self._session = None
            self._restore_signal_handlers(previous_handlers)
        if self.interrupted is not None and self.journal is not None:
            # final checkpoint: everything drained is on disk before exit
            self.journal.sync()

        results = ResultSet(r for r in slots if r is not None)
        kinds: dict[str, int] = {}
        for r in results.failed():
            kind = r.failure_kind or "unknown"
            kinds[kind] = kinds.get(kind, 0) + 1
        obs_events.emit(
            "sweep_finished",
            target=target,
            points=len(results),
            failures=len(results.failed()),
            failure_kinds=dict(sorted(kinds.items())),
            requeues=requeued_here,
            interrupted=self.interrupted or "",
        )
        return results

    # -- health ------------------------------------------------------------

    def health_snapshot(self) -> obs_health.CampaignHealth:
        """The live :class:`~repro.obs.health.CampaignHealth` snapshot.

        Registered as the process-wide campaign source in
        ``__init__``, so the obs server's ``/campaign`` and
        ``/health`` endpoints (and the ``campaign_*`` gauges on
        ``/metrics``) read it from another thread mid-batch. Reads
        ints and object refs only — a torn read costs at most one
        slightly stale sample, never a crash.
        """
        executed = max(
            0, self._batch_done - self._batch_restored - self._batch_deduped
        )
        elapsed = (
            time.monotonic() - self._run_t0
            if self._run_t0 is not None
            else 0.0
        )
        rate = executed / elapsed if elapsed > 0 and executed else 0.0
        remaining = max(0, self._batch_total - self._batch_done)
        eta = remaining / rate if rate > 0 else None

        cache_hit_rate: float | None = None
        stats_snapshot = getattr(self.engine, "stats_snapshot", None)
        if callable(stats_snapshot):
            stats = stats_snapshot()
            hits = int(stats.get("frontend_hits", 0) or 0)
            misses = int(stats.get("frontend_misses", 0) or 0)
            if hits + misses:
                cache_hit_rate = hits / (hits + misses)

        session = self._session
        workers: list[dict[str, object]] = []
        session_restarts = 0
        if session is not None:
            status = getattr(session, "worker_status", None)
            if callable(status):
                workers = status()
            session_restarts = getattr(session, "restarts", 0)

        journal_state: dict[str, object] | None = None
        if self.journal is not None:
            journal_state = {
                "path": str(self.journal.path),
                "reused": self.journal.reused,
                "executed": self.journal.executed,
                "discarded": self.journal.discarded,
                "degraded": False,
            }
        elif self.journal_degraded:
            journal_state = {
                "degraded": True,
                "error": self.journal_error,
            }

        return obs_health.CampaignHealth(
            verdict=obs_health.derive_verdict(
                points_total=self._batch_total,
                executed=executed,
                failed=self._batch_failed,
                crash_failures=self.crash_failures,
                journal_degraded=self.journal_degraded,
                interrupted=self.interrupted or "",
            ),
            target=str(getattr(self.engine, "target", "")),
            backend=self.backend_used or self.backend or "",
            jobs=self.jobs,
            points_total=self._batch_total,
            points_done=self._batch_done,
            points_failed=self._batch_failed,
            points_restored=self._batch_restored,
            points_deduped=self._batch_deduped,
            queue_depth=self._queue_depth,
            elapsed_s=elapsed,
            rate_points_per_s=rate,
            eta_s=eta,
            failure_kinds=dict(sorted(self._failure_kinds.items())),
            cache_hit_rate=cache_hit_rate,
            worker_restarts=self.worker_restarts + session_restarts,
            requeues=self.requeues,
            crash_failures=self.crash_failures,
            interrupted=self.interrupted or "",
            journal=journal_state,
            workers=workers,
        )

    # -- internals ---------------------------------------------------------

    def _install_signal_handlers(self) -> dict[int, object]:
        """SIGTERM/SIGINT → drain flag; only from the main thread."""
        if (
            not self.handle_signals
            or threading.current_thread() is not threading.main_thread()
        ):
            return {}
        previous: dict[int, object] = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, self._on_signal)
        return previous

    def _restore_signal_handlers(self, previous: dict[int, object]) -> None:
        for signum, handler in previous.items():
            signal.signal(signum, handler)  # type: ignore[arg-type]

    def _on_signal(self, signum: int, frame: object) -> None:
        # set a flag only — the run loop drains at the next outcome;
        # a second signal keeps the same graceful path (the user can
        # always kill -9 an unresponsive campaign)
        self._stop_signal = signal.Signals(signum).name

    def _resolve_executor(self, todo: int) -> Executor:
        if self.executor is not None:
            return self.executor
        if self.backend is not None:
            return make_executor(
                self.backend, jobs=self.jobs, batch=self.slot_batch
            )
        # historical auto-selection: threads only when they can help
        if self.jobs == 1 or todo <= 1:
            return make_executor("serial", batch=self.slot_batch)
        return make_executor("thread", jobs=self.jobs)

    def _finish(
        self,
        slots: list[RunResult | None],
        keys: list[str],
        aliases: dict[str, list[int]],
        index: int,
        result: RunResult,
    ) -> None:
        slots[index] = result
        key = keys[index]
        self._batch_done += 1
        if not result.ok:
            self._batch_failed += 1
            kind = result.failure_kind or "unknown"
            self._failure_kinds[kind] = self._failure_kinds.get(kind, 0) + 1
        if self.journal is not None:
            try:
                self.journal.record(key, result)
            except JournalError as exc:
                self._degrade_journal(exc)
        if self.resume:
            self._restored[key] = result
        self._report(result)
        # duplicate grid points share their twin's result (and fire
        # progress, so reporters still see one callback per grid point)
        for alias_index in aliases.pop(key, ()):
            slots[alias_index] = result
            self._batch_done += 1
            self._report(result)

    def _degrade_journal(self, exc: JournalError) -> None:
        """The journal failed mid-sweep: quarantine it, keep running.

        Durability is gone but the campaign is not — results stay
        in-memory (and in :attr:`_restored` for later batches), the
        operator is told via the ``journal_degraded`` event and the
        CLI warning, and the quarantined family is preserved for
        post-mortem instead of being appended to by a journal that is
        known to be failing.
        """
        journal = self.journal
        assert journal is not None
        self.journal = None
        self.journal_degraded = True
        self.journal_error = f"{type(exc).__name__}: {exc}"
        quarantined = journal.quarantine()
        obs_metrics.count("scheduler.journal_degraded")
        obs_events.emit(
            "journal_degraded",
            path=str(journal.path),
            error=self.journal_error,
            quarantined=str(quarantined) if quarantined is not None else "",
        )

    def _report(self, result: RunResult) -> None:
        if self.progress is None:
            return
        try:
            self.progress(result)
        except Exception as exc:  # a broken reporter must not kill the sweep
            self.progress_errors += 1
            obs_metrics.count("scheduler.progress_errors")
            obs_events.emit(
                "progress_error", error=f"{type(exc).__name__}: {exc}"
            )

    def _crash_failure(self, task: Task, backend: str) -> RunResult:
        """The deterministic data point for a restart-budget-exhausted
        crash — identical on every backend (the backend name lands only
        in the fingerprint-excluded ``detail["scheduler"]``)."""
        attempts = task.restarts + 1
        return RunResult(
            target=self.engine.target,  # type: ignore[attr-defined]
            params=task.params,
            times=(),
            moved_bytes=task.params.moved_bytes,
            validated=False,
            error=(
                f"worker crashed {attempts} time(s) running this point; "
                f"restart budget ({self.max_worker_restarts}) exhausted"
            ),
            failure_kind="worker_crash",
            detail={
                "scheduler": {"backend": backend, "restarts": task.restarts}
            },
        )
