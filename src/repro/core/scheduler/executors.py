"""Campaign executors: the swappable "where do points actually run" layer.

:class:`~repro.core.scheduler.campaign.CampaignScheduler` owns *what*
runs (ordering, dedup, journal, requeue policy); an :class:`Executor`
owns *where* it runs. The contract is deliberately small — an executor
opens a session, the scheduler ``submit()``\\ s :class:`Task`\\ s into it
and pulls :class:`Outcome`\\ s back out in completion order — so new
backends (an MPI rank pool, a remote build farm) slot in without
touching campaign semantics. Three implementations ship:

:class:`SerialExecutor`
    Runs points inline on the scheduler's engine — the classic
    single-threaded sweep. No clones, no queues, no surprises.
:class:`ThreadExecutor`
    A pool of worker threads, each driving its own
    :meth:`~repro.core.engine.ExecutionEngine.worker_clone` (private
    context/queue, shared content-addressed build cache and stats
    sink). This is the historical ``explore(jobs=N)`` behavior.
:class:`ProcessExecutor`
    A pool of worker *processes*, each rebuilding a sibling engine from
    the parent's picklable :meth:`~repro.core.engine.ExecutionEngine.worker_spec`.
    Workers talk to the parent over duplex pipes (tasks down, results
    up); results cross the boundary in the journal's JSON record format,
    which is fingerprint-stable by construction. The pool *survives
    individual worker death*: a crashed worker's pipe hits EOF, the
    parent reaps it, respawns a replacement, and reports the in-flight
    point as a crash :class:`Outcome` for the scheduler to requeue.
    Worker engines cannot share the in-process build cache, so each
    process warms its own. Per-worker
    :class:`~repro.core.engine.EngineStats` deltas — and, when the
    parent has live obs sinks, buffered telemetry batches
    (:mod:`repro.obs.relay`) — ride home with *every point outcome*,
    so even a worker that later crashes has already banked everything
    but its in-flight point.

Worker crashes are *injectable*: the ``worker_crash`` fault site
(:mod:`repro.faults`) is consulted once per ``(point, restarts)``
before a point runs. In the process backend a firing fault hard-kills
the worker with ``os._exit`` — no cleanup, a real death, exactly what a
segfaulting toolchain does. The serial and thread backends cannot kill
their host process, so they *simulate* the same death: the fault check
uses the identical deterministic draw and surfaces the identical crash
:class:`Outcome`, which is what lets a campaign produce byte-identical
results on every backend even under injected crashes.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from ...errors import SweepError
from ...obs import events as obs_events
from ...obs import metrics as obs_metrics
from ...obs import relay as obs_relay
from ...obs import trace as obs_trace
from ..history import (
    params_from_record,
    params_to_record,
    point_fingerprint,
    result_from_record,
    result_to_record,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import ExecutionEngine, Watchdog, WorkerSpec
    from ..params import TuningParameters
    from ..results import RunResult

__all__ = [
    "BACKENDS",
    "Task",
    "Outcome",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
]

#: the execution backends ``make_executor`` knows how to build
BACKENDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class Task:
    """One grid point queued for execution.

    ``index`` is the point's slot in the campaign's grid-order result
    list; ``key`` its :func:`~repro.core.history.point_fingerprint`;
    ``restarts`` how many worker crashes this point has already
    survived (drives both the ``worker_crash`` fault draw and the
    scheduler's restart budget).
    """

    index: int
    key: str
    params: "TuningParameters"
    restarts: int = 0

    def requeued(self) -> "Task":
        return replace(self, restarts=self.restarts + 1)


@dataclass(frozen=True)
class Outcome:
    """What an executor reports back for one dequeued task.

    ``kind`` is one of ``"done"`` (``result`` holds the point's
    :class:`~repro.core.results.RunResult`), ``"crash"`` (the worker
    died mid-point — the scheduler decides requeue vs budget-exhausted
    failure) or ``"error"`` (the engine *raised*, which per-point
    failures never do — an engine bug that aborts the campaign).
    """

    kind: str
    task: Task
    result: "RunResult | None" = None
    error: str = ""
    exception: BaseException | None = None

    @classmethod
    def done(cls, task: Task, result: "RunResult") -> "Outcome":
        return cls(kind="done", task=task, result=result)

    @classmethod
    def crash(cls, task: Task) -> "Outcome":
        return cls(kind="crash", task=task)

    @classmethod
    def bug(
        cls, task: Task, error: str, exception: BaseException | None = None
    ) -> "Outcome":
        return cls(kind="error", task=task, error=error, exception=exception)


def _injected_crash(engine: object, task: Task) -> bool:
    """Does the ``worker_crash`` fault site fire for this attempt?

    The draw is a pure function of ``(seed, site, point, restarts)``
    (see :class:`~repro.faults.FaultPlan`), so every backend — and a
    killed-and-resumed campaign — sees the same crashes at the same
    points.
    """
    faults = getattr(engine, "faults", None)
    return faults is not None and faults.should_fire(
        "worker_crash", task.key, task.restarts
    )


class Executor:
    """Protocol for campaign execution backends.

    ``session(engine, watchdog=...)`` returns a context manager whose
    value exposes two methods:

    ``submit(task)``
        Queue a :class:`Task`; never blocks.
    ``next_outcome()``
        Block until any outstanding task resolves and return its
        :class:`Outcome` (completion order, not submission order).
    ``cancel_pending()``
        Withdraw every task that has not started executing and return
        the cancelled :class:`Task` list; in-flight points keep
        running. This is the graceful-shutdown drain: on SIGTERM the
        scheduler cancels the queue, collects what is already in
        flight, checkpoints the journal and exits.

    Closing the session cancels queued-but-unstarted tasks and releases
    workers. Executors are stateless factories — one instance can open
    any number of sequential sessions (the autotuner opens one per
    batch).
    """

    name: str = "?"
    jobs: int = 1

    def session(self, engine: object, *, watchdog: "Watchdog | None" = None):
        raise NotImplementedError


class _SessionBase:
    """Shared context-manager plumbing for executor sessions."""

    def __enter__(self):
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:  # pragma: no cover - overridden
        pass


# --------------------------------------------------------------------------
# serial
# --------------------------------------------------------------------------


class SerialExecutor(Executor):
    """Run points inline, one at a time, on the campaign's own engine.

    ``batch > 1`` enables slot-level batching: up to ``batch`` queued
    points are handed to :meth:`~repro.core.engine.ExecutionEngine.run_batch`
    together, so semantically identical grid neighbours (FPGA attribute
    variants) share one whole-NDRange array pass. Outcomes are still
    reported one task at a time, in slot order, with per-point results
    bit-identical to unbatched execution.
    """

    name = "serial"
    jobs = 1

    def __init__(self, batch: int = 1):
        if batch < 1:
            raise SweepError(f"batch must be >= 1, got {batch}")
        self.batch = batch

    def session(self, engine: object, *, watchdog: "Watchdog | None" = None):
        return _SerialSession(engine, watchdog, self.batch)


class _SerialSession(_SessionBase):
    def __init__(
        self, engine: object, watchdog: "Watchdog | None", batch: int = 1
    ):
        self._engine = engine
        self._watchdog = watchdog
        self._batch = batch
        self._tasks: deque[Task] = deque()
        #: outcomes computed by a batched slot, not yet handed out
        self._ready: deque[Outcome] = deque()

    def submit(self, task: Task) -> None:
        self._tasks.append(task)

    def next_outcome(self) -> Outcome:
        if self._ready:
            return self._ready.popleft()
        if not self._tasks:
            raise SweepError("executor has no outstanding tasks")
        run_batch = getattr(self._engine, "run_batch", None)
        if self._batch > 1 and run_batch is not None:
            slot: list[Task] = []
            while self._tasks and len(slot) < self._batch:
                task = self._tasks.popleft()
                if _injected_crash(self._engine, task):
                    self._ready.append(Outcome.crash(task))
                else:
                    slot.append(task)
            if slot:
                try:
                    results = run_batch(
                        [t.params for t in slot], watchdog=self._watchdog
                    )
                    for task, result in zip(slot, results):
                        self._ready.append(Outcome.done(task, result))
                except Exception as exc:
                    for task in slot:
                        self._ready.append(
                            Outcome.bug(task, f"{type(exc).__name__}: {exc}", exc)
                        )
            return self._ready.popleft()
        task = self._tasks.popleft()
        if _injected_crash(self._engine, task):
            return Outcome.crash(task)
        try:
            result = self._engine.run(task.params, watchdog=self._watchdog)  # type: ignore[attr-defined]
        except Exception as exc:
            return Outcome.bug(task, f"{type(exc).__name__}: {exc}", exc)
        return Outcome.done(task, result)

    def cancel_pending(self) -> list[Task]:
        cancelled = list(self._tasks)
        self._tasks.clear()
        return cancelled

    def worker_status(self) -> list[dict[str, object]]:
        return [
            {
                "worker": "serial",
                "pid": os.getpid(),
                "alive": True,
                "point": self._tasks[0].key if self._tasks else "",
            }
        ]

    def close(self) -> None:
        self._tasks.clear()
        self._ready.clear()


# --------------------------------------------------------------------------
# threads
# --------------------------------------------------------------------------


class ThreadExecutor(Executor):
    """A thread pool of engine worker clones (shared cache and stats)."""

    name = "thread"

    def __init__(self, jobs: int = 2):
        if jobs < 1:
            raise SweepError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def session(self, engine: object, *, watchdog: "Watchdog | None" = None):
        return _ThreadSession(engine, watchdog, self.jobs)


class _ThreadSession(_SessionBase):
    def __init__(self, engine: object, watchdog: "Watchdog | None", jobs: int):
        self._engine = engine
        self._watchdog = watchdog
        self._tasks: "queue.Queue[Task | None]" = queue.Queue()
        self._outcomes: "queue.Queue[Outcome]" = queue.Queue()
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"sweep-worker-{i}", daemon=True
            )
            for i in range(jobs)
        ]
        for thread in self._threads:
            thread.start()

    def _worker(self) -> None:
        clone: object | None = None
        while True:
            task = self._tasks.get()
            if task is None:
                return
            if clone is None:
                clone = self._engine.worker_clone()  # type: ignore[attr-defined]
            if _injected_crash(clone, task):
                self._outcomes.put(Outcome.crash(task))
                continue
            try:
                result = clone.run(task.params, watchdog=self._watchdog)  # type: ignore[attr-defined]
            except Exception as exc:
                self._outcomes.put(
                    Outcome.bug(task, f"{type(exc).__name__}: {exc}", exc)
                )
                continue
            self._outcomes.put(Outcome.done(task, result))

    def submit(self, task: Task) -> None:
        self._tasks.put(task)

    def next_outcome(self) -> Outcome:
        return self._outcomes.get()

    def cancel_pending(self) -> list[Task]:
        # tasks already claimed by a worker thread are in flight and
        # keep running; only the queue backlog is withdrawable
        cancelled: list[Task] = []
        try:
            while True:
                task = self._tasks.get_nowait()
                if task is not None:  # don't eat shutdown sentinels
                    cancelled.append(task)
        except queue.Empty:
            pass
        return cancelled

    def worker_status(self) -> list[dict[str, object]]:
        return [
            {
                "worker": thread.name,
                "pid": os.getpid(),
                "alive": thread.is_alive(),
                "point": "",
            }
            for thread in self._threads
        ]

    def close(self) -> None:
        # drop queued-but-unstarted work (the cancel_futures analogue),
        # then let each worker drain one sentinel and exit
        try:
            while True:
                self._tasks.get_nowait()
        except queue.Empty:
            pass
        for _ in self._threads:
            self._tasks.put(None)
        for thread in self._threads:
            thread.join(timeout=10.0)


# --------------------------------------------------------------------------
# processes
# --------------------------------------------------------------------------

#: the ``os._exit`` status an injected worker_crash dies with (visible
#: in ``Process.exitcode`` when debugging a crashed campaign)
CRASH_EXIT_CODE = 3


def _stats_delta(current: dict, last: dict) -> dict:
    """The increment between two :class:`EngineStats` snapshots.

    ``last`` is updated in place, so successive calls ship disjoint
    deltas — the parent folds every one and never double-counts.
    """
    delta = {
        "points": current["points"] - last["points"],
        "failures": current["failures"] - last["failures"],
        "retries": current["retries"] - last["retries"],
        "stage_s": {
            name: seconds - last["stage_s"].get(name, 0.0)
            for name, seconds in current["stage_s"].items()
        },
    }
    last["points"] = current["points"]
    last["failures"] = current["failures"]
    last["retries"] = current["retries"]
    last["stage_s"] = dict(current["stage_s"])
    return delta


def _process_worker_main(
    conn: "multiprocessing.connection.Connection",
    spec: "WorkerSpec",
    watchdog: "Watchdog | None",
    telemetry: bool,
) -> None:
    """One worker process: rebuild a sibling engine, serve tasks.

    Protocol (all over one duplex pipe): the parent sends
    ``(index, restarts, params_record)`` tuples and a ``None`` sentinel;
    the worker replies ``("done", index, restarts, result_record,
    stats_delta, telemetry_batch)`` /
    ``("error", index, restarts, message, stats_delta, telemetry_batch)``
    per task and ``("stats", stats_delta, telemetry_batch)`` on
    shutdown. Stats ride home as *incremental deltas with every point
    outcome* (not only at clean shutdown), so a worker that later gets
    kill -9'd has already banked everything but its in-flight point.

    With ``telemetry=True`` the worker carries buffering obs sinks
    (:class:`~repro.obs.relay.WorkerTelemetry`) and flushes them as the
    ``telemetry_batch`` field — spans, metric deltas and events the
    parent merges into its live sinks. The batch is a separate message
    field, never part of the result record, so result fingerprints are
    byte-identical with telemetry on or off.

    An injected ``worker_crash`` fault hard-kills the process with
    ``os._exit`` *before* the point runs — no flush, no goodbye, the
    parent only notices the pipe going dead. That is deliberate: the
    requeue path must not depend on a dying worker's cooperation.
    """
    # under a fork start method the child inherits the parent's live
    # obs sinks; writing to them from here would interleave with the
    # parent, so a worker first resets them — then installs its own
    # buffering variants when the parent asked for telemetry
    from ...obs import set_log, set_registry, set_tracer

    set_tracer(None)
    set_registry(None)
    set_log(None)
    sinks = obs_relay.WorkerTelemetry() if telemetry else None

    from ..engine import ExecutionEngine

    engine = ExecutionEngine.from_worker_spec(spec)
    last_stats = {"points": 0, "failures": 0, "retries": 0, "stage_s": {}}

    def flush() -> tuple[dict, dict | None]:
        delta = _stats_delta(engine.stats.snapshot(), last_stats)
        return delta, (sinks.drain() if sinks is not None else None)

    try:
        while True:
            message = conn.recv()
            if message is None:
                delta, batch = flush()
                conn.send(("stats", delta, batch))
                return
            index, restarts, params_record = message
            params = params_from_record(params_record)
            key = point_fingerprint(engine.target, params)
            if engine.faults is not None and engine.faults.should_fire(
                "worker_crash", key, restarts
            ):
                os._exit(CRASH_EXIT_CODE)
            try:
                result = engine.run(params, watchdog=watchdog)
            except Exception as exc:
                delta, batch = flush()
                conn.send(
                    (
                        "error",
                        index,
                        restarts,
                        f"{type(exc).__name__}: {exc}",
                        delta,
                        batch,
                    )
                )
                continue
            record = result_to_record(result, detail=True)
            delta, batch = flush()
            conn.send(("done", index, restarts, record, delta, batch))
    except (EOFError, KeyboardInterrupt):  # parent died / interrupted
        return
    finally:
        conn.close()


class ProcessExecutor(Executor):
    """A pool of worker processes that survives individual worker death.

    Requires a real :class:`~repro.core.engine.ExecutionEngine` (the
    workers rebuild siblings from its
    :meth:`~repro.core.engine.ExecutionEngine.worker_spec`). Results
    cross the process boundary as journal-format JSON records, so a
    process campaign is fingerprint-identical to a serial one.
    """

    name = "process"

    def __init__(self, jobs: int = 2, *, start_method: str | None = None):
        if jobs < 1:
            raise SweepError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self.start_method = start_method

    def session(self, engine: object, *, watchdog: "Watchdog | None" = None):
        spec_of = getattr(engine, "worker_spec", None)
        if spec_of is None:
            raise SweepError(
                "the process backend needs an ExecutionEngine that can "
                f"describe itself for worker processes; got {type(engine).__name__}"
            )
        return _ProcessSession(
            engine,
            spec_of(),
            watchdog,
            self.jobs,
            multiprocessing.get_context(self.start_method),
        )


class _ProcessWorker:
    __slots__ = ("proc", "conn", "current", "slot")

    def __init__(self, proc, conn, slot: int):
        self.proc = proc
        self.conn = conn
        self.current: Task | None = None
        #: the pool slot this worker occupies — stable across respawns
        #: (the parent's worker-id tag for relayed telemetry)
        self.slot = slot

    @property
    def name(self) -> str:
        return f"worker-{self.slot}"


class _ProcessSession(_SessionBase):
    def __init__(
        self,
        engine: "ExecutionEngine",
        spec: "WorkerSpec",
        watchdog: "Watchdog | None",
        jobs: int,
        ctx,
    ):
        self._engine = engine
        self._spec = spec
        self._watchdog = watchdog
        self._ctx = ctx
        self._pending: deque[Task] = deque()
        # decided once per session: workers buffer and relay telemetry
        # exactly when the parent has a live sink to merge it into
        self._telemetry = (
            obs_trace.active_tracer() is not None
            or obs_metrics.active_registry() is not None
            or obs_events.active_log() is not None
        )
        #: worker processes respawned after a death this session
        self.restarts = 0
        self._workers = [self._spawn(slot) for slot in range(jobs)]

    def _spawn(self, slot: int) -> _ProcessWorker:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_process_worker_main,
            args=(child_conn, self._spec, self._watchdog, self._telemetry),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return _ProcessWorker(proc, parent_conn, slot)

    def submit(self, task: Task) -> None:
        self._pending.append(task)
        self._dispatch()

    def _dispatch(self) -> None:
        for worker in self._workers:
            if not self._pending:
                return
            if worker.current is None:
                task = self._pending.popleft()
                worker.current = task
                try:
                    worker.conn.send(
                        (task.index, task.restarts, params_to_record(task.params))
                    )
                except (BrokenPipeError, OSError):
                    # the worker is already dead; next_outcome's wait()
                    # sees the closed pipe and reaps it as a crash
                    pass

    def next_outcome(self) -> Outcome:
        while True:
            self._dispatch()
            busy = [w for w in self._workers if w.current is not None]
            if not busy:
                raise SweepError("executor has no outstanding tasks")
            ready = multiprocessing.connection.wait(
                [w.conn for w in busy], timeout=1.0
            )
            for conn in ready:
                worker = next(w for w in self._workers if w.conn is conn)
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    outcome = self._reap(worker)
                    if outcome is not None:
                        return outcome
                    continue
                outcome = self._handle(worker, message)
                if outcome is not None:
                    return outcome

    def _handle(self, worker: _ProcessWorker, message: tuple) -> Outcome | None:
        kind = message[0]
        if kind == "stats":  # clean shutdown: the worker's final flush
            self._absorb(worker, message[1], message[2])
            return None
        task = worker.current
        worker.current = None
        assert task is not None
        if kind == "done":
            self._absorb(worker, message[4], message[5])
            return Outcome.done(task, result_from_record(message[3]))
        if kind == "error":
            self._absorb(worker, message[4], message[5])
            return Outcome.bug(task, message[3])
        raise SweepError(f"unknown worker message {kind!r}")  # pragma: no cover

    def _absorb(self, worker: _ProcessWorker, stats_delta: dict, batch) -> None:
        """Fold one message's stats delta and telemetry batch home."""
        stats = getattr(self._engine, "stats", None)
        if stats is not None and stats_delta:
            # the relayed batch already carries the worker's own metric
            # counts, so mirroring the delta into the registry as well
            # would double-count them
            stats.merge_snapshot(stats_delta, mirror_metrics=not self._telemetry)
        if self._telemetry:
            obs_relay.merge_batch(batch, worker=worker.name)

    def _reap(self, worker: _ProcessWorker) -> Outcome | None:
        """A worker's pipe died: bury it, respawn, report the casualty.

        The restart is annotated into the live trace and event log — in
        the merged trace the dead pid's track simply stops, and the
        ``worker_restart`` instant marks the gap with the slot, the
        dead pid and the in-flight point.
        """
        task = worker.current
        worker.current = None
        worker.conn.close()
        worker.proc.join(timeout=10.0)
        dead_pid = worker.proc.pid
        slot = self._workers.index(worker)
        self._workers[slot] = self._spawn(worker.slot)
        self.restarts += 1
        obs_metrics.count("scheduler.worker_restarts")
        obs_trace.instant(
            "worker_restart",
            "scheduler",
            worker=worker.name,
            pid=dead_pid,
            new_pid=self._workers[slot].proc.pid,
            point=task.key if task is not None else "",
        )
        obs_events.emit(
            "worker_restarted",
            worker=worker.name,
            pid=dead_pid,
            new_pid=self._workers[slot].proc.pid,
            point=task.key if task is not None else "",
        )
        if task is None:  # died idle: nothing was in flight
            return None
        return Outcome.crash(task)

    def cancel_pending(self) -> list[Task]:
        # undispatched backlog only: a task already sent down a worker
        # pipe is in flight and drains normally
        cancelled = list(self._pending)
        self._pending.clear()
        return cancelled

    def worker_status(self) -> list[dict[str, object]]:
        """Per-worker liveness for the campaign health aggregator."""
        return [
            {
                "worker": w.name,
                "pid": w.proc.pid,
                "alive": w.proc.is_alive(),
                "point": w.current.key if w.current is not None else "",
            }
            for w in self._workers
        ]

    def close(self) -> None:
        self._pending.clear()
        for worker in self._workers:
            if worker.proc.is_alive():
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + 10.0
        for worker in self._workers:
            # drain the pipe until the final stats message; a late
            # result from a cancelled point is dropped, but its stats
            # delta and telemetry batch still count
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    if not worker.conn.poll(min(remaining, 1.0)):
                        break
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    break
                if message[0] == "stats":
                    self._absorb(worker, message[1], message[2])
                    break
                if message[0] in ("done", "error"):
                    self._absorb(worker, message[4], message[5])
            worker.conn.close()
            worker.proc.join(timeout=5.0)
            if worker.proc.is_alive():  # pragma: no cover - stuck worker
                worker.proc.terminate()
                worker.proc.join(timeout=5.0)


def make_executor(backend: str, *, jobs: int = 1, batch: int = 1) -> Executor:
    """Build an executor by backend name (``serial|thread|process``).

    ``batch`` sets the serial backend's slot-batching width; the
    parallel backends ignore it — worker concurrency is already their
    way of amortizing per-point overhead.
    """
    if jobs < 1:
        raise SweepError(f"jobs must be >= 1, got {jobs}")
    if backend == "serial":
        return SerialExecutor(batch=batch)
    if backend == "thread":
        return ThreadExecutor(jobs)
    if backend == "process":
        return ProcessExecutor(jobs)
    raise SweepError(
        f"unknown execution backend {backend!r}; valid: {', '.join(BACKENDS)}"
    )
