"""Campaign executors: the swappable "where do points actually run" layer.

:class:`~repro.core.scheduler.campaign.CampaignScheduler` owns *what*
runs (ordering, dedup, journal, requeue policy); an :class:`Executor`
owns *where* it runs. The contract is deliberately small — an executor
opens a session, the scheduler ``submit()``\\ s :class:`Task`\\ s into it
and pulls :class:`Outcome`\\ s back out in completion order — so new
backends (an MPI rank pool, a remote build farm) slot in without
touching campaign semantics. Three implementations ship:

:class:`SerialExecutor`
    Runs points inline on the scheduler's engine — the classic
    single-threaded sweep. No clones, no queues, no surprises.
:class:`ThreadExecutor`
    A pool of worker threads, each driving its own
    :meth:`~repro.core.engine.ExecutionEngine.worker_clone` (private
    context/queue, shared content-addressed build cache and stats
    sink). This is the historical ``explore(jobs=N)`` behavior.
:class:`ProcessExecutor`
    A pool of worker *processes*, each rebuilding a sibling engine from
    the parent's picklable :meth:`~repro.core.engine.ExecutionEngine.worker_spec`.
    Workers talk to the parent over duplex pipes (tasks down, results
    up); results cross the boundary in the journal's JSON record format,
    which is fingerprint-stable by construction. The pool *survives
    individual worker death*: a crashed worker's pipe hits EOF, the
    parent reaps it, respawns a replacement, and reports the in-flight
    point as a crash :class:`Outcome` for the scheduler to requeue.
    Worker engines cannot share the in-process build cache, so each
    process warms its own; final per-worker
    :class:`~repro.core.engine.EngineStats` are merged back into the
    parent's sink at shutdown.

Worker crashes are *injectable*: the ``worker_crash`` fault site
(:mod:`repro.faults`) is consulted once per ``(point, restarts)``
before a point runs. In the process backend a firing fault hard-kills
the worker with ``os._exit`` — no cleanup, a real death, exactly what a
segfaulting toolchain does. The serial and thread backends cannot kill
their host process, so they *simulate* the same death: the fault check
uses the identical deterministic draw and surfaces the identical crash
:class:`Outcome`, which is what lets a campaign produce byte-identical
results on every backend even under injected crashes.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from ...errors import SweepError
from ...obs import metrics as obs_metrics
from ..history import (
    params_from_record,
    params_to_record,
    point_fingerprint,
    result_from_record,
    result_to_record,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import ExecutionEngine, Watchdog, WorkerSpec
    from ..params import TuningParameters
    from ..results import RunResult

__all__ = [
    "BACKENDS",
    "Task",
    "Outcome",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
]

#: the execution backends ``make_executor`` knows how to build
BACKENDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class Task:
    """One grid point queued for execution.

    ``index`` is the point's slot in the campaign's grid-order result
    list; ``key`` its :func:`~repro.core.history.point_fingerprint`;
    ``restarts`` how many worker crashes this point has already
    survived (drives both the ``worker_crash`` fault draw and the
    scheduler's restart budget).
    """

    index: int
    key: str
    params: "TuningParameters"
    restarts: int = 0

    def requeued(self) -> "Task":
        return replace(self, restarts=self.restarts + 1)


@dataclass(frozen=True)
class Outcome:
    """What an executor reports back for one dequeued task.

    ``kind`` is one of ``"done"`` (``result`` holds the point's
    :class:`~repro.core.results.RunResult`), ``"crash"`` (the worker
    died mid-point — the scheduler decides requeue vs budget-exhausted
    failure) or ``"error"`` (the engine *raised*, which per-point
    failures never do — an engine bug that aborts the campaign).
    """

    kind: str
    task: Task
    result: "RunResult | None" = None
    error: str = ""
    exception: BaseException | None = None

    @classmethod
    def done(cls, task: Task, result: "RunResult") -> "Outcome":
        return cls(kind="done", task=task, result=result)

    @classmethod
    def crash(cls, task: Task) -> "Outcome":
        return cls(kind="crash", task=task)

    @classmethod
    def bug(
        cls, task: Task, error: str, exception: BaseException | None = None
    ) -> "Outcome":
        return cls(kind="error", task=task, error=error, exception=exception)


def _injected_crash(engine: object, task: Task) -> bool:
    """Does the ``worker_crash`` fault site fire for this attempt?

    The draw is a pure function of ``(seed, site, point, restarts)``
    (see :class:`~repro.faults.FaultPlan`), so every backend — and a
    killed-and-resumed campaign — sees the same crashes at the same
    points.
    """
    faults = getattr(engine, "faults", None)
    return faults is not None and faults.should_fire(
        "worker_crash", task.key, task.restarts
    )


class Executor:
    """Protocol for campaign execution backends.

    ``session(engine, watchdog=...)`` returns a context manager whose
    value exposes two methods:

    ``submit(task)``
        Queue a :class:`Task`; never blocks.
    ``next_outcome()``
        Block until any outstanding task resolves and return its
        :class:`Outcome` (completion order, not submission order).
    ``cancel_pending()``
        Withdraw every task that has not started executing and return
        the cancelled :class:`Task` list; in-flight points keep
        running. This is the graceful-shutdown drain: on SIGTERM the
        scheduler cancels the queue, collects what is already in
        flight, checkpoints the journal and exits.

    Closing the session cancels queued-but-unstarted tasks and releases
    workers. Executors are stateless factories — one instance can open
    any number of sequential sessions (the autotuner opens one per
    batch).
    """

    name: str = "?"
    jobs: int = 1

    def session(self, engine: object, *, watchdog: "Watchdog | None" = None):
        raise NotImplementedError


class _SessionBase:
    """Shared context-manager plumbing for executor sessions."""

    def __enter__(self):
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:  # pragma: no cover - overridden
        pass


# --------------------------------------------------------------------------
# serial
# --------------------------------------------------------------------------


class SerialExecutor(Executor):
    """Run points inline, one at a time, on the campaign's own engine."""

    name = "serial"
    jobs = 1

    def session(self, engine: object, *, watchdog: "Watchdog | None" = None):
        return _SerialSession(engine, watchdog)


class _SerialSession(_SessionBase):
    def __init__(self, engine: object, watchdog: "Watchdog | None"):
        self._engine = engine
        self._watchdog = watchdog
        self._tasks: deque[Task] = deque()

    def submit(self, task: Task) -> None:
        self._tasks.append(task)

    def next_outcome(self) -> Outcome:
        if not self._tasks:
            raise SweepError("executor has no outstanding tasks")
        task = self._tasks.popleft()
        if _injected_crash(self._engine, task):
            return Outcome.crash(task)
        try:
            result = self._engine.run(task.params, watchdog=self._watchdog)  # type: ignore[attr-defined]
        except Exception as exc:
            return Outcome.bug(task, f"{type(exc).__name__}: {exc}", exc)
        return Outcome.done(task, result)

    def cancel_pending(self) -> list[Task]:
        cancelled = list(self._tasks)
        self._tasks.clear()
        return cancelled

    def close(self) -> None:
        self._tasks.clear()


# --------------------------------------------------------------------------
# threads
# --------------------------------------------------------------------------


class ThreadExecutor(Executor):
    """A thread pool of engine worker clones (shared cache and stats)."""

    name = "thread"

    def __init__(self, jobs: int = 2):
        if jobs < 1:
            raise SweepError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def session(self, engine: object, *, watchdog: "Watchdog | None" = None):
        return _ThreadSession(engine, watchdog, self.jobs)


class _ThreadSession(_SessionBase):
    def __init__(self, engine: object, watchdog: "Watchdog | None", jobs: int):
        self._engine = engine
        self._watchdog = watchdog
        self._tasks: "queue.Queue[Task | None]" = queue.Queue()
        self._outcomes: "queue.Queue[Outcome]" = queue.Queue()
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"sweep-worker-{i}", daemon=True
            )
            for i in range(jobs)
        ]
        for thread in self._threads:
            thread.start()

    def _worker(self) -> None:
        clone: object | None = None
        while True:
            task = self._tasks.get()
            if task is None:
                return
            if clone is None:
                clone = self._engine.worker_clone()  # type: ignore[attr-defined]
            if _injected_crash(clone, task):
                self._outcomes.put(Outcome.crash(task))
                continue
            try:
                result = clone.run(task.params, watchdog=self._watchdog)  # type: ignore[attr-defined]
            except Exception as exc:
                self._outcomes.put(
                    Outcome.bug(task, f"{type(exc).__name__}: {exc}", exc)
                )
                continue
            self._outcomes.put(Outcome.done(task, result))

    def submit(self, task: Task) -> None:
        self._tasks.put(task)

    def next_outcome(self) -> Outcome:
        return self._outcomes.get()

    def cancel_pending(self) -> list[Task]:
        # tasks already claimed by a worker thread are in flight and
        # keep running; only the queue backlog is withdrawable
        cancelled: list[Task] = []
        try:
            while True:
                task = self._tasks.get_nowait()
                if task is not None:  # don't eat shutdown sentinels
                    cancelled.append(task)
        except queue.Empty:
            pass
        return cancelled

    def close(self) -> None:
        # drop queued-but-unstarted work (the cancel_futures analogue),
        # then let each worker drain one sentinel and exit
        try:
            while True:
                self._tasks.get_nowait()
        except queue.Empty:
            pass
        for _ in self._threads:
            self._tasks.put(None)
        for thread in self._threads:
            thread.join(timeout=10.0)


# --------------------------------------------------------------------------
# processes
# --------------------------------------------------------------------------

#: the ``os._exit`` status an injected worker_crash dies with (visible
#: in ``Process.exitcode`` when debugging a crashed campaign)
CRASH_EXIT_CODE = 3


def _process_worker_main(
    conn: "multiprocessing.connection.Connection",
    spec: "WorkerSpec",
    watchdog: "Watchdog | None",
) -> None:
    """One worker process: rebuild a sibling engine, serve tasks.

    Protocol (all over one duplex pipe): the parent sends
    ``(index, restarts, params_record)`` tuples and a ``None`` sentinel;
    the worker replies ``("done", index, restarts, result_record)`` /
    ``("error", index, restarts, message)`` per task and
    ``("stats", snapshot)`` on shutdown so the parent can merge this
    worker's :class:`~repro.core.engine.EngineStats`.

    An injected ``worker_crash`` fault hard-kills the process with
    ``os._exit`` *before* the point runs — no flush, no goodbye, the
    parent only notices the pipe going dead. That is deliberate: the
    requeue path must not depend on a dying worker's cooperation.
    """
    # under a fork start method the child inherits the parent's live
    # obs sinks; writing to them from here would interleave with the
    # parent, so a worker always starts with observability off
    from ...obs import set_log, set_registry, set_tracer

    set_tracer(None)
    set_registry(None)
    set_log(None)

    from ..engine import ExecutionEngine

    engine = ExecutionEngine.from_worker_spec(spec)
    try:
        while True:
            message = conn.recv()
            if message is None:
                conn.send(("stats", engine.stats.snapshot()))
                return
            index, restarts, params_record = message
            params = params_from_record(params_record)
            key = point_fingerprint(engine.target, params)
            if engine.faults is not None and engine.faults.should_fire(
                "worker_crash", key, restarts
            ):
                os._exit(CRASH_EXIT_CODE)
            try:
                result = engine.run(params, watchdog=watchdog)
            except Exception as exc:
                conn.send(("error", index, restarts, f"{type(exc).__name__}: {exc}"))
                continue
            conn.send(("done", index, restarts, result_to_record(result, detail=True)))
    except (EOFError, KeyboardInterrupt):  # parent died / interrupted
        return
    finally:
        conn.close()


class ProcessExecutor(Executor):
    """A pool of worker processes that survives individual worker death.

    Requires a real :class:`~repro.core.engine.ExecutionEngine` (the
    workers rebuild siblings from its
    :meth:`~repro.core.engine.ExecutionEngine.worker_spec`). Results
    cross the process boundary as journal-format JSON records, so a
    process campaign is fingerprint-identical to a serial one.
    """

    name = "process"

    def __init__(self, jobs: int = 2, *, start_method: str | None = None):
        if jobs < 1:
            raise SweepError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self.start_method = start_method

    def session(self, engine: object, *, watchdog: "Watchdog | None" = None):
        spec_of = getattr(engine, "worker_spec", None)
        if spec_of is None:
            raise SweepError(
                "the process backend needs an ExecutionEngine that can "
                f"describe itself for worker processes; got {type(engine).__name__}"
            )
        return _ProcessSession(
            engine,
            spec_of(),
            watchdog,
            self.jobs,
            multiprocessing.get_context(self.start_method),
        )


class _ProcessWorker:
    __slots__ = ("proc", "conn", "current")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.current: Task | None = None


class _ProcessSession(_SessionBase):
    def __init__(
        self,
        engine: "ExecutionEngine",
        spec: "WorkerSpec",
        watchdog: "Watchdog | None",
        jobs: int,
        ctx,
    ):
        self._engine = engine
        self._spec = spec
        self._watchdog = watchdog
        self._ctx = ctx
        self._pending: deque[Task] = deque()
        #: worker processes respawned after a death this session
        self.restarts = 0
        self._workers = [self._spawn() for _ in range(jobs)]

    def _spawn(self) -> _ProcessWorker:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_process_worker_main,
            args=(child_conn, self._spec, self._watchdog),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return _ProcessWorker(proc, parent_conn)

    def submit(self, task: Task) -> None:
        self._pending.append(task)
        self._dispatch()

    def _dispatch(self) -> None:
        for worker in self._workers:
            if not self._pending:
                return
            if worker.current is None:
                task = self._pending.popleft()
                worker.current = task
                try:
                    worker.conn.send(
                        (task.index, task.restarts, params_to_record(task.params))
                    )
                except (BrokenPipeError, OSError):
                    # the worker is already dead; next_outcome's wait()
                    # sees the closed pipe and reaps it as a crash
                    pass

    def next_outcome(self) -> Outcome:
        while True:
            self._dispatch()
            busy = [w for w in self._workers if w.current is not None]
            if not busy:
                raise SweepError("executor has no outstanding tasks")
            ready = multiprocessing.connection.wait(
                [w.conn for w in busy], timeout=1.0
            )
            for conn in ready:
                worker = next(w for w in self._workers if w.conn is conn)
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    outcome = self._reap(worker)
                    if outcome is not None:
                        return outcome
                    continue
                outcome = self._handle(worker, message)
                if outcome is not None:
                    return outcome

    def _handle(self, worker: _ProcessWorker, message: tuple) -> Outcome | None:
        kind = message[0]
        if kind == "stats":  # pragma: no cover - shutdown-path only
            self._merge_stats(message[1])
            return None
        task = worker.current
        worker.current = None
        assert task is not None
        if kind == "done":
            return Outcome.done(task, result_from_record(message[3]))
        if kind == "error":
            return Outcome.bug(task, message[3])
        raise SweepError(f"unknown worker message {kind!r}")  # pragma: no cover

    def _reap(self, worker: _ProcessWorker) -> Outcome | None:
        """A worker's pipe died: bury it, respawn, report the casualty."""
        task = worker.current
        worker.current = None
        worker.conn.close()
        worker.proc.join(timeout=10.0)
        slot = self._workers.index(worker)
        self._workers[slot] = self._spawn()
        self.restarts += 1
        obs_metrics.count("scheduler.worker_restarts")
        if task is None:  # died idle: nothing was in flight
            return None
        return Outcome.crash(task)

    def cancel_pending(self) -> list[Task]:
        # undispatched backlog only: a task already sent down a worker
        # pipe is in flight and drains normally
        cancelled = list(self._pending)
        self._pending.clear()
        return cancelled

    def _merge_stats(self, snapshot: dict) -> None:
        stats = getattr(self._engine, "stats", None)
        if stats is not None:
            stats.merge_snapshot(snapshot)

    def close(self) -> None:
        self._pending.clear()
        for worker in self._workers:
            if worker.proc.is_alive():
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + 10.0
        for worker in self._workers:
            # drain the pipe until the final stats message (late results
            # from cancelled points are dropped on the floor)
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    if not worker.conn.poll(min(remaining, 1.0)):
                        break
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    break
                if message[0] == "stats":
                    self._merge_stats(message[1])
                    break
            worker.conn.close()
            worker.proc.join(timeout=5.0)
            if worker.proc.is_alive():  # pragma: no cover - stuck worker
                worker.proc.terminate()
                worker.proc.join(timeout=5.0)


def make_executor(backend: str, *, jobs: int = 1) -> Executor:
    """Build an executor by backend name (``serial|thread|process``)."""
    if jobs < 1:
        raise SweepError(f"jobs must be >= 1, got {jobs}")
    if backend == "serial":
        return SerialExecutor()
    if backend == "thread":
        return ThreadExecutor(jobs)
    if backend == "process":
        return ProcessExecutor(jobs)
    raise SweepError(
        f"unknown execution backend {backend!r}; valid: {', '.join(BACKENDS)}"
    )
