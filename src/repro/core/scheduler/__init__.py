"""Pluggable campaign scheduling: one scheduler, many execution backends.

This package separates *what a campaign runs* from *where it runs*:

* :class:`CampaignScheduler` (:mod:`~repro.core.scheduler.campaign`) —
  ordering, dedup, journal/resume, crash-requeue policy, progress and
  obs instrumentation;
* :class:`Executor` implementations
  (:mod:`~repro.core.scheduler.executors`) — serial, thread-pool and
  crash-surviving process-pool backends behind one submit/outcome
  protocol.

:func:`repro.core.sweep.explore` and
:func:`repro.core.autotune.autotune` are thin clients of this layer;
see ``docs/SCHEDULING.md`` for the backend matrix and semantics.
"""

from .campaign import CampaignScheduler
from .executors import (
    BACKENDS,
    Executor,
    Outcome,
    ProcessExecutor,
    SerialExecutor,
    Task,
    ThreadExecutor,
    make_executor,
)

__all__ = [
    "BACKENDS",
    "CampaignScheduler",
    "Executor",
    "Outcome",
    "ProcessExecutor",
    "SerialExecutor",
    "Task",
    "ThreadExecutor",
    "make_executor",
]
