"""Console reporting: STREAM-style tables and ASCII charts.

STREAM prints a fixed-format table (function, best rate, avg/min/max
time); MP-STREAM sweeps additionally want per-axis series. Everything
here renders to plain text so results read the same in a terminal, a
log file, or EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..units import format_bandwidth, format_size, format_time
from .results import ResultSet, RunResult

__all__ = [
    "stream_table",
    "results_table",
    "failure_table",
    "series_table",
    "metrics_table",
    "verify_table",
    "ascii_chart",
    "markdown_table",
]


def stream_table(results: Sequence[RunResult]) -> str:
    """The classic STREAM output block for one run of the four kernels."""
    lines = [
        f"{'Function':<10}{'Best Rate':>14}{'Avg time':>12}{'Min time':>12}{'Max time':>12}",
        "-" * 60,
    ]
    for r in results:
        if not r.ok:
            lines.append(f"{str(r.params.kernel):<10}{'FAILED':>14}    {r.error}")
            continue
        lines.append(
            f"{str(r.params.kernel):<10}"
            f"{format_bandwidth(r.bandwidth_gbs * 1e9):>14}"
            f"{format_time(r.avg_time):>12}"
            f"{format_time(r.min_time):>12}"
            f"{format_time(r.max_time):>12}"
        )
    return "\n".join(lines)


def results_table(results: ResultSet, columns: Sequence[str] | None = None) -> str:
    """Aligned table of flat result rows."""
    if len(results) == 0:
        return "(no results)"
    if columns is None:
        columns = [
            "target",
            "kernel",
            "array_bytes",
            "vector_width",
            "pattern",
            "loop",
            "bandwidth_gbs",
            "validated",
        ]
    rows = [[_fmt_cell(r.row().get(c)) for c in columns] for r in results]
    widths = [
        max(len(str(c)), *(len(row[i]) for row in rows)) for i, c in enumerate(columns)
    ]
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(v.ljust(w) for v, w in zip(row, widths)) for row in rows)
    return "\n".join([header, sep, body])


def failure_table(results: ResultSet, *, examples: int = 1) -> str:
    """Failure-taxonomy summary: per-kind counts plus example errors.

    An FPGA configuration that fails to build is a data point, not a
    crash — this is the campaign's view of those data points. Returns
    ``"(no failures)"`` when every point succeeded.
    """
    kinds = results.failure_kinds()
    if not kinds:
        return "(no failures)"
    failed = list(results.failed())
    lines = [f"{'failure kind':<14}{'points':>7}  example"]
    lines.append("-" * 60)
    for kind, count in kinds.items():
        sample = [
            r.error
            for r in failed
            if (r.failure_kind or "unclassified") == kind
        ][:examples]
        first = sample[0].splitlines()[0] if sample else ""
        if len(first) > 60:
            first = first[:57] + "..."
        lines.append(f"{kind:<14}{count:>7}  {first}")
    return "\n".join(lines)


def verify_table(
    sections: Mapping[str, Sequence[tuple[str, bool, str]]]
) -> str:
    """Checklist rendering of a ``mp-stream verify`` suite run.

    ``sections`` maps a pillar name (``conformance``, ``metamorphic``,
    ``engine``, ``golden``) to ``(label, ok, detail)`` rows. Kept as
    plain tuples so the report layer needs no import of
    :mod:`repro.verify` (which imports the engine, which reports here).
    """
    if not sections:
        return "(nothing verified)"
    lines: list[str] = []
    for section, rows in sections.items():
        ok = all(row_ok for _, row_ok, _ in rows)
        lines.append(f"{section}  [{'ok' if ok else 'FAIL'}]")
        for label, row_ok, detail in rows:
            mark = "ok" if row_ok else "FAIL"
            suffix = f"  ({detail})" if detail else ""
            lines.append(f"  [{mark:>4}] {label}{suffix}")
    return "\n".join(lines)


def metrics_table(snapshot: Mapping[str, object]) -> str:
    """Aligned name/value table of a metrics-registry snapshot.

    Accepts the mapping produced by
    :meth:`repro.obs.MetricsRegistry.snapshot` (or loaded back from a
    ``--metrics`` JSON file): counters and gauges render as one value,
    histograms as their count/mean/min/max summary. Names sort within
    each kind, so related metrics (``engine.*``, ``memsim.dram.*``)
    read as blocks.
    """
    rows: list[tuple[str, str]] = []

    def _value(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.6g}"
        return str(v)

    counters = snapshot.get("counters")
    if isinstance(counters, Mapping):
        for name in sorted(counters):
            rows.append((name, _value(counters[name])))
    gauges = snapshot.get("gauges")
    if isinstance(gauges, Mapping):
        for name in sorted(gauges):
            rows.append((name, _value(gauges[name])))
    histograms = snapshot.get("histograms")
    if isinstance(histograms, Mapping):
        for name in sorted(histograms):
            h = histograms[name]
            if isinstance(h, Mapping):
                rows.append(
                    (
                        name,
                        f"n={h.get('count', 0)} mean={_value(h.get('mean', 0.0))} "
                        f"min={_value(h.get('min', 0.0))} "
                        f"max={_value(h.get('max', 0.0))}",
                    )
                )
    if not rows:
        return "(no metrics)"
    width = max(len(name) for name, _ in rows)
    lines = [f"{'metric':<{width}}  value", "-" * (width + 2 + 5)]
    lines.extend(f"{name:<{width}}  {value}" for name, value in rows)
    return "\n".join(lines)


def _fmt_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, int) and value >= 1024:
        return format_size(value)
    return str(value)


def series_table(
    series: Mapping[str, Sequence[tuple[object, float]]],
    *,
    x_label: str = "x",
    y_label: str = "GB/s",
) -> str:
    """One row per x value, one column per named series (figure data)."""
    xs: list[object] = []
    for points in series.values():
        for x, _ in points:
            if x not in xs:
                xs.append(x)
    names = list(series)
    widths = [max(len(x_label), *(len(_fmt_cell(x)) for x in xs))] + [
        max(len(n), 8) for n in names
    ]
    header = "  ".join(
        s.ljust(w) for s, w in zip([x_label] + names, widths)
    )
    lines = [f"({y_label})", header, "  ".join("-" * w for w in widths)]
    lookup = {
        name: {x: y for x, y in points} for name, points in series.items()
    }
    for x in xs:
        row = [_fmt_cell(x).ljust(widths[0])]
        for i, name in enumerate(names):
            y = lookup[name].get(x)
            row.append(("-" if y is None else f"{y:.3f}").ljust(widths[i + 1]))
        lines.append("  ".join(row))
    return "\n".join(lines)


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 18,
    log_x: bool = True,
    log_y: bool = True,
    title: str = "",
) -> str:
    """A log-log scatter chart in plain text (one marker per series)."""
    markers = "ox+*#@%&"
    points: list[tuple[float, float, str]] = []
    for i, (name, pts) in enumerate(series.items()):
        m = markers[i % len(markers)]
        for x, y in pts:
            if x > 0 and y > 0:
                points.append((float(x), float(y), m))
    if not points:
        return "(no data)"

    def tx(v: float) -> float:
        return math.log10(v) if log_x else v

    def ty(v: float) -> float:
        return math.log10(v) if log_y else v

    xs = [tx(p[0]) for p in points]
    ys = [ty(p[1]) for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xr = (x1 - x0) or 1.0
    yr = (y1 - y0) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, m in points:
        col = int((tx(x) - x0) / xr * (width - 1))
        row = height - 1 - int((ty(y) - y0) / yr * (height - 1))
        grid[row][col] = m
    lines = []
    if title:
        lines.append(title)
    top = f"{10 ** y1 if log_y else y1:,.3g}"
    bottom = f"{10 ** y0 if log_y else y0:,.3g}"
    pad = max(len(top), len(bottom))
    for i, row in enumerate(grid):
        label = top if i == 0 else (bottom if i == height - 1 else "")
        lines.append(f"{label:>{pad}} |" + "".join(row))
    lines.append(" " * pad + " +" + "-" * width)
    left = f"{10 ** x0 if log_x else x0:,.3g}"
    right = f"{10 ** x1 if log_x else x1:,.3g}"
    lines.append(
        " " * pad + "  " + left + " " * max(1, width - len(left) - len(right)) + right
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def markdown_table(
    series: Mapping[str, Sequence[tuple[object, float]]],
    *,
    x_label: str = "x",
) -> str:
    """Same data as :func:`series_table`, as a Markdown table."""
    xs: list[object] = []
    for points in series.values():
        for x, _ in points:
            if x not in xs:
                xs.append(x)
    names = list(series)
    lookup = {name: {x: y for x, y in pts} for name, pts in series.items()}
    lines = [
        "| " + " | ".join([x_label] + names) + " |",
        "|" + "|".join(["---"] * (len(names) + 1)) + "|",
    ]
    for x in xs:
        cells = [_fmt_cell(x)]
        for name in names:
            y = lookup[name].get(x)
            cells.append("-" if y is None else f"{y:.3f}")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
