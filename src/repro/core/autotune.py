"""Budget-aware automated design-space exploration.

The paper argues "both a manual and automated design-space exploration
route will benefit" from MP-STREAM; grid sweeps (:mod:`repro.core.sweep`)
are the manual route, this module is the automated one: **greedy
coordinate descent** over the tuning axes. Starting from a seed point
it repeatedly scans one axis at a time (keeping the others fixed),
moves to the best neighbour, and stops when a full round improves
nothing or the evaluation budget runs out.

FPGA practitioners will recognize why this matters: every point costs a
"synthesis" (here: a modelled build that can fail to fit), so a budget
of tens of evaluations has to beat a cartesian grid of hundreds.

Like :func:`~repro.core.sweep.explore`, the tuner is a thin client of
the campaign scheduler (:mod:`repro.core.scheduler`): each axis scan is
scheduled as one batch, which buys the descent loop everything grid
sweeps already had — journaling and ``resume=`` (an interrupted tuning
run replays restored evaluations from the journal and continues with
an identical trajectory), parallel axis scans (``jobs=N`` evaluates a
scan's fresh candidates concurrently), pluggable backends, and
crash-requeue resilience — without reimplementing an evaluation loop.
The trajectory is backend- and parallelism-independent: candidates are
compared in axis order whatever order they finish in, and ties keep
the earlier candidate, exactly like the serial scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from ..errors import SweepError
from .engine import ExecutionEngine
from .history import SweepJournal
from .params import TuningParameters
from .results import ResultSet, RunResult
from .runner import BenchmarkRunner
from .scheduler import CampaignScheduler

__all__ = ["AutotuneResult", "autotune"]


@dataclass
class AutotuneResult:
    """Outcome of a coordinate-descent run."""

    best: RunResult
    evaluations: ResultSet
    rounds: int
    #: improvement path: (params description, bandwidth) per accepted move
    trajectory: list[tuple[str, float]] = field(default_factory=list)

    @property
    def evaluations_used(self) -> int:
        return len(self.evaluations)


def autotune(
    runner: BenchmarkRunner | ExecutionEngine,
    axes: Mapping[str, Sequence[object]],
    *,
    seed: TuningParameters | None = None,
    budget: int = 50,
    max_rounds: int = 8,
    jobs: int = 1,
    backend: str | None = None,
    journal: SweepJournal | str | Path | None = None,
    resume: bool = False,
    resume_or_start: bool = False,
    max_worker_restarts: int = 2,
) -> AutotuneResult:
    """Greedy coordinate descent over ``axes`` starting from ``seed``.

    ``axes`` maps :class:`TuningParameters` fields to candidate values
    (each axis should include the seed's value). Points that fail to
    validate or to build count against the budget but never win.

    Each axis scan runs as one scheduler batch: ``jobs``/``backend``
    parallelize the scan's fresh candidates (the trajectory is
    unchanged — see the module docstring), and ``journal``/``resume``
    checkpoint every evaluation so a killed tuning run picks up where
    it died. Restored evaluations still count against ``budget``,
    which is what keeps a resumed trajectory identical to an
    uninterrupted one.

    Evaluations go through the staged execution engine, so revisiting a
    neighbourhood (coordinate descent re-scans axes every round) reuses
    cached front-end and plan artifacts on top of the exact-point memo
    below.
    """
    if budget < 1:
        raise SweepError(f"budget must be >= 1, got {budget}")
    valid_fields = set(TuningParameters.__dataclass_fields__)
    unknown = set(axes) - valid_fields
    if unknown:
        raise SweepError(f"unknown axes {sorted(unknown)}")
    if not axes:
        raise SweepError("autotune needs at least one axis")
    for name, values in axes.items():
        if not values:
            raise SweepError(f"axis {name!r} has no values")

    scheduler = CampaignScheduler(
        runner,
        backend=backend,
        jobs=jobs,
        journal=journal,
        resume=resume,
        resume_or_start=resume_or_start,
        max_worker_restarts=max_worker_restarts,
    )

    current = seed if seed is not None else TuningParameters()
    evaluations = ResultSet()
    cache: dict[TuningParameters, RunResult] = {}
    spent = 0

    def evaluate_batch(batch: Sequence[TuningParameters]) -> None:
        """Schedule the batch's uncached points, up to the budget.

        Mirrors the serial scan's accounting exactly: cache hits are
        free, fresh points spend budget in axis order, and anything
        past the cut simply stays unevaluated (the scan below stops at
        the first missing candidate).
        """
        nonlocal spent
        fresh = [p for p in batch if p not in cache][: budget - spent]
        if not fresh:
            return
        for params, result in zip(fresh, scheduler.run(fresh)):
            cache[params] = result
            evaluations.add(result)
        spent += len(fresh)

    evaluate_batch([current])
    best = cache.get(current)
    if best is None:  # pragma: no cover - budget >= 1 guarantees one eval
        raise SweepError("budget exhausted before the seed was evaluated")
    trajectory: list[tuple[str, float]] = [
        (current.describe(), best.bandwidth_gbs if best.ok else 0.0)
    ]

    rounds = 0
    improved = True
    while improved and rounds < max_rounds and spent < budget:
        improved = False
        rounds += 1
        for axis, values in axes.items():
            candidates = []
            for value in values:
                if getattr(current, axis) == value:
                    continue
                try:
                    candidates.append(current.with_(**{axis: value}))
                except SweepError:
                    continue  # invalid combination: not a legal move
            evaluate_batch(candidates)
            best_here = best
            for candidate in candidates:
                result = cache.get(candidate)
                if result is None:
                    break  # budget exhausted mid-scan
                if result.ok and (
                    not best_here.ok
                    or result.bandwidth_gbs > best_here.bandwidth_gbs
                ):
                    best_here = result
            if best_here is not best and best_here.ok:
                best = best_here
                current = best_here.params
                trajectory.append((current.describe(), best.bandwidth_gbs))
                improved = True
            if spent >= budget:
                break

    return AutotuneResult(
        best=best, evaluations=evaluations, rounds=rounds, trajectory=trajectory
    )
