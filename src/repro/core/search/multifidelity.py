"""Model-guided multi-fidelity search over the tuning space.

The paper frames MP-STREAM as fuel for "both a manual and automated
design-space exploration route". Grid sweeps (:func:`~repro.core.sweep.
explore`) are the manual route and coordinate descent
(:func:`~repro.core.autotune.autotune`) a first automated one; this
module is the model-guided route: find the exhaustive sweep's optimum
while *measuring* under 10% of the grid.

Three fidelity tiers:

1. **Model tier (free).** The analytic device model scores every
   candidate in the pool (:class:`~repro.core.search.lowfi.
   LowFidelityScorer`) — generate → cached build → closed-form predicted
   GB/s, no execution. Build failures score ``None`` and are never
   admitted.
2. **Measured tier (successive halving).** The model ranking is
   admitted in geometric tranches: the top ``w0`` candidates are
   engine-measured, the best ``ceil(w0/eta)`` survivors carry into the
   next rung where the next ``w1 = w0 // eta`` ranked candidates join
   them, and so on down to a single survivor. Survivors are promoted by
   *measured* bandwidth; the model only decides admission order.
3. **Refinement tier.** Remaining budget walks ±1 axis steps around the
   incumbent, accepting strict improvements, until no neighbour wins or
   the budget is gone.

Determinism is load-bearing (the differential harness and golden
trajectories pin it): every ordering is by ``(-score, pool_index)`` —
ties keep the earlier candidate in pool (row-major grid) order — and is
computed from *values*, never from completion order. The searcher is a
thin :class:`~repro.core.scheduler.CampaignScheduler` client exactly
like ``explore()``: measured rungs are scheduler batches, so journaling
and ``resume=`` (restored evaluations still count against the budget —
that is what keeps a resumed trajectory identical), serial/thread/
process backends, slot batching, and crash-requeue all come for free.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Sequence

from ...errors import SweepError
from ...obs import events, metrics
from ..engine import ExecutionEngine
from ..history import SweepJournal
from ..params import TuningParameters
from ..results import ResultSet, RunResult
from ..runner import BenchmarkRunner
from ..scheduler import CampaignScheduler
from ..sweep import ParameterSweep
from .lowfi import LowFidelityScorer

__all__ = [
    "SearchRung",
    "SearchResult",
    "halving_widths",
    "promote",
    "multifidelity_search",
]


@dataclass(frozen=True)
class SearchRung:
    """One rung of the search, recorded for fingerprinting.

    ``candidates``/``scores`` are aligned: the points considered at this
    rung in pool order and the score each received (model GB/s for the
    model rung, measured GB/s for measured/refine rungs; ``None`` for a
    point that failed to build or run). ``survivors`` is the ordered
    subset promoted to the next rung.
    """

    index: int
    tier: str  # "model" | "measured" | "refine"
    candidates: tuple[str, ...]
    scores: tuple[Optional[float], ...]
    survivors: tuple[str, ...]
    spent: int  # cumulative measured evaluations after this rung

    def doc(self) -> dict[str, object]:
        return {
            "index": self.index,
            "tier": self.tier,
            "candidates": list(self.candidates),
            "scores": [
                None if s is None else round(s, 6) for s in self.scores
            ],
            "survivors": list(self.survivors),
            "spent": self.spent,
        }

    def fingerprint(self) -> str:
        blob = json.dumps(self.doc(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass
class SearchResult:
    """Outcome of a multi-fidelity search."""

    best: RunResult
    evaluations: ResultSet
    rungs: list[SearchRung]
    #: improvement path: (params description, bandwidth) per accepted move
    trajectory: list[tuple[str, float]] = field(default_factory=list)
    budget: int = 0
    spent: int = 0
    pool_size: int = 0
    grid_size: int = 0
    model_scored: int = 0

    @property
    def evaluations_used(self) -> int:
        return len(self.evaluations)

    @property
    def efficiency(self) -> float:
        """Pool points per measured evaluation (higher = cheaper search)."""
        return self.pool_size / max(1, self.spent)

    def rung_fingerprints(self) -> list[str]:
        return [r.fingerprint() for r in self.rungs]

    def trajectory_fingerprint(self) -> str:
        """One hash over the whole rung-by-rung trajectory."""
        blob = json.dumps(
            [r.doc() for r in self.rungs], sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _schedule(first: int, eta: int) -> list[int]:
    """Tranche widths for successive halving starting at ``first``."""
    widths = [first]
    while widths[-1] > 1:
        widths.append(max(1, widths[-1] // eta))
    return widths


def halving_widths(budget: int, eta: int, pool: int, refine: bool) -> list[int]:
    """Admission-tranche widths fitting the measured budget.

    When ``refine`` is on, a quarter of the budget (at least one
    evaluation) is held back for local refinement; halving gets the
    rest. The first tranche is the largest ``w <= min(pool, ceiling)``
    whose geometric schedule ``[w, w//eta, ..., 1]`` fits the ceiling,
    so small budgets degrade gracefully to a single one-wide rung.
    """
    ceiling = budget
    if refine:
        ceiling = max(1, budget - max(1, budget // 4))
    ceiling = min(ceiling, pool)
    for first in range(ceiling, 0, -1):
        widths = _schedule(first, eta)
        if sum(widths) <= max(ceiling, 1):
            return widths
    return [1]


def promote(
    candidates: Sequence[int],
    scores: Mapping[int, Optional[float]],
    keep: int,
) -> list[int]:
    """The ``keep`` best candidates by ``(-score, pool_index)``.

    Unscored / failed candidates (``None``) rank as 0.0 — below any
    successful measurement, but still deterministically ordered by pool
    index so an all-failed rung has a stable survivor.
    """
    def key(i: int) -> tuple[float, int]:
        s = scores.get(i)
        return (-(s if s is not None else 0.0), i)

    return sorted(candidates, key=key)[: max(0, keep)]


def multifidelity_search(
    runner: BenchmarkRunner | ExecutionEngine,
    axes: Mapping[str, Sequence[object]],
    *,
    seed: TuningParameters | None = None,
    budget: int = 32,
    eta: int = 2,
    refine: bool = True,
    jobs: int = 1,
    backend: str | None = None,
    journal: SweepJournal | str | Path | None = None,
    resume: bool = False,
    resume_or_start: bool = False,
    max_worker_restarts: int = 2,
    slot_batch: int = 1,
) -> SearchResult:
    """Model-guided successive halving over ``axes``.

    ``axes`` maps :class:`TuningParameters` fields to candidate values;
    the pool is the cartesian product grounded on ``seed`` (defaults to
    ``TuningParameters()``), in row-major grid order, invalid
    combinations skipped. ``budget`` caps *measured* evaluations only —
    model scores are free. ``eta`` is the halving rate (keep
    ``ceil(n/eta)`` survivors per rung); ``refine=False`` spends the
    whole budget on halving.

    Scheduling semantics are ``explore()``'s: ``jobs``/``backend``
    parallelize each rung, ``journal``/``resume`` checkpoint every
    measured evaluation (restored evaluations count against ``budget``,
    so a resumed search replays an identical trajectory), and
    ``slot_batch`` stacks same-shape points. The trajectory is backend-
    and parallelism-independent by construction.
    """
    if budget < 1:
        raise SweepError(f"budget must be >= 1, got {budget}")
    if eta < 2:
        raise SweepError(f"eta must be >= 2, got {eta}")
    if not axes:
        raise SweepError("search needs at least one axis")

    base = seed if seed is not None else TuningParameters()
    sweep = ParameterSweep(base=base, axes=dict(axes))  # validates axes
    pool: list[TuningParameters] = list(sweep.points())
    if not pool:
        raise SweepError(
            "search pool is empty: every axis combination is invalid"
        )

    scorer = LowFidelityScorer(runner)
    for point in pool:
        scorer.check_scorable(point)

    scheduler = CampaignScheduler(
        runner,
        backend=backend,
        jobs=jobs,
        journal=journal,
        resume=resume,
        resume_or_start=resume_or_start,
        max_worker_restarts=max_worker_restarts,
        slot_batch=slot_batch,
    )

    keys = [p.describe() for p in pool]
    events.emit(
        "search_started",
        pool=len(pool),
        grid=len(sweep),
        budget=budget,
        eta=eta,
        refine=refine,
    )

    # -- rung 0: the model tier scores the whole pool (free) ------------------
    model_scores: dict[int, Optional[float]] = {
        i: scorer.score(p) for i, p in enumerate(pool)
    }
    metrics.count("search.model_scores", len(pool))
    scoreable = [i for i in range(len(pool)) if model_scores[i] is not None]
    ranking = promote(scoreable, model_scores, len(scoreable))
    rungs: list[SearchRung] = []

    def record(tier: str, candidates: list[int], scores, survivors, spent):
        rung = SearchRung(
            index=len(rungs),
            tier=tier,
            candidates=tuple(keys[i] for i in candidates),
            scores=tuple(scores.get(i) for i in candidates),
            survivors=tuple(keys[i] for i in survivors),
            spent=spent,
        )
        rungs.append(rung)
        metrics.count("search.rungs")
        events.emit(
            "search_rung",
            index=rung.index,
            tier=tier,
            candidates=len(candidates),
            survivors=len(survivors),
            spent=spent,
            fingerprint=rung.fingerprint(),
        )
        return rung

    record("model", list(range(len(pool))), model_scores, ranking, 0)
    if not ranking:
        raise SweepError(
            "low-fidelity tier could not score any pool point: every "
            "candidate failed to build for "
            f"{scorer.device.short_name!r}"
        )

    # -- measured tier: successive halving over the model ranking -------------
    evaluations = ResultSet()
    measured: dict[int, RunResult] = {}
    spent = 0

    def measure(indices: Sequence[int]) -> None:
        """Engine-measure the given pool indices, up to the budget.

        Points go to the scheduler in pool order (sorted indices), so
        the journal sequence — and therefore resume — is deterministic.
        """
        nonlocal spent
        fresh = [i for i in sorted(indices) if i not in measured]
        fresh = fresh[: budget - spent]
        if not fresh:
            return
        for i, result in zip(fresh, scheduler.run([pool[i] for i in fresh])):
            measured[i] = result
            evaluations.add(result)
            events.emit(
                "search_candidate",
                point=result.fingerprint(),
                params=keys[i],
                ok=result.ok,
                bandwidth_gbs=result.bandwidth_gbs if result.ok else None,
            )
        metrics.count("search.evaluations", len(fresh))
        spent += len(fresh)

    def measured_score(i: int) -> Optional[float]:
        r = measured.get(i)
        if r is None or not r.ok:
            return None
        return r.bandwidth_gbs

    widths = halving_widths(budget, eta, len(ranking), refine)
    survivors: list[int] = []
    admitted = 0
    for width in widths:
        tranche = ranking[admitted : admitted + width]
        admitted += len(tranche)
        measure(tranche)
        contenders = sorted(set(survivors) | {i for i in tranche if i in measured})
        if not contenders:
            break  # budget exhausted before this rung admitted anything
        keep = max(1, -(-len(contenders) // eta))  # ceil
        scores = {i: measured_score(i) for i in contenders}
        survivors = promote(contenders, scores, keep)
        record("measured", contenders, scores, survivors, spent)
        if spent >= budget:
            break

    if not measured:  # pragma: no cover - budget >= 1 admits one point
        raise SweepError("budget exhausted before any point was measured")

    # Incumbent: best measured point overall (promotion order already
    # encodes the tie-break; an all-failed search keeps the first
    # survivor so the result is still deterministic).
    ok_indices = [i for i in measured if measured[i].ok]
    if ok_indices:
        incumbent = promote(ok_indices, {i: measured_score(i) for i in ok_indices}, 1)[0]
    else:
        incumbent = survivors[0] if survivors else sorted(measured)[0]
    best = measured[incumbent]
    trajectory: list[tuple[str, float]] = [
        (keys[incumbent], best.bandwidth_gbs if best.ok else 0.0)
    ]

    # -- refinement tier: ±1 axis steps around the incumbent ------------------
    index_of: dict[TuningParameters, int] = {}
    for i, p in enumerate(pool):
        index_of.setdefault(p, i)

    while refine and spent < budget and best.ok:
        current = pool[incumbent]
        neighbours: list[int] = []
        for axis, values in axes.items():
            values = list(values)
            try:
                at = values.index(getattr(current, axis))
            except ValueError:  # pragma: no cover - pool points come from axes
                continue
            for step in (at - 1, at + 1):
                if not 0 <= step < len(values):
                    continue
                try:
                    candidate = current.with_(**{axis: values[step]})
                except SweepError:
                    continue  # invalid combination: not a legal move
                j = index_of.get(candidate)
                if j is None or j in measured or model_scores.get(j) is None:
                    continue
                if j not in neighbours:
                    neighbours.append(j)
        neighbours.sort()
        fresh = [j for j in neighbours if j not in measured][: budget - spent]
        if not fresh:
            break
        measure(fresh)
        contenders = sorted({incumbent, *[j for j in fresh if j in measured]})
        scores = {i: measured_score(i) for i in contenders}
        winner = promote(contenders, scores, 1)[0]
        record("refine", contenders, scores, [winner], spent)
        winner_score = measured_score(winner)
        best_score = measured_score(incumbent)
        if (
            winner != incumbent
            and winner_score is not None
            and (best_score is None or winner_score > best_score)
        ):
            incumbent = winner
            best = measured[incumbent]
            trajectory.append((keys[incumbent], best.bandwidth_gbs))
            metrics.count("search.refine_moves")
        else:
            break

    result = SearchResult(
        best=best,
        evaluations=evaluations,
        rungs=rungs,
        trajectory=trajectory,
        budget=budget,
        spent=spent,
        pool_size=len(pool),
        grid_size=len(sweep),
        model_scored=len(scoreable),
    )
    events.emit(
        "search_finished",
        best=keys[incumbent],
        bandwidth_gbs=best.bandwidth_gbs if best.ok else None,
        spent=spent,
        pool=len(pool),
        rungs=len(rungs),
        trajectory=result.trajectory_fingerprint(),
    )
    return result
