"""The low-fidelity tier: analytic device-model scores, no execution.

The multi-fidelity searcher (:mod:`repro.core.search.multifidelity`)
needs a cheap estimate of every candidate in the pool before it spends
any *measured* evaluations. The analytic device models already predict
launch time from the kernel IR alone — :meth:`DeviceModel.score_launch`
— so a "low-fidelity evaluation" here is generate → front-end → device
build → modelled seconds, with **no arrays allocated and no kernel
executed**. On the staged engine's shared :class:`BuildCache` the
front-end and plan stages are content-addressed, so scoring a pool of
``N`` candidates costs ``N`` cache-keyed builds and ``N`` closed-form
timing evaluations — microseconds per point, not milliseconds.

Cache discipline matters: the scorer routes builds through the engine's
own :class:`BuildCache` with *exactly* the engine's error wrapping
(``ReproError`` → :class:`BuildError`), so a failure the scorer caches
is byte-identical to the failure a later ``explore()`` would cache. A
candidate that fails to build scores ``None`` and can never be promoted
— mirroring how a real FPGA flow discards configurations that fail
place-and-route before ever running them.
"""

from __future__ import annotations

from typing import Optional

from ...errors import BuildError, ReproError, SweepError
from ..engine import ExecutionEngine
from ..generator import generate
from ..kernels import KERNELS
from ..params import StreamLocus, TuningParameters
from ..runner import BenchmarkRunner

__all__ = ["LowFidelityScorer"]


class LowFidelityScorer:
    """Scores :class:`TuningParameters` points with the analytic model.

    ``score()`` returns predicted bandwidth in GB/s (STREAM-counted
    bytes over modelled seconds — the same currency measured results
    report) or ``None`` when the point fails to build. Scores are
    memoized per exact point.
    """

    def __init__(self, runner: "BenchmarkRunner | ExecutionEngine"):
        engine = runner.engine if isinstance(runner, BenchmarkRunner) else runner
        self.engine = engine
        self.device = engine.device
        model = self.device.model
        if not getattr(model, "supports_lowfi", True):
            raise SweepError(
                f"device model for {self.device.short_name!r} does not "
                "support low-fidelity scoring (supports_lowfi is False); "
                "use exhaustive explore() or coordinate-descent autotune()"
            )
        self._memo: dict[TuningParameters, Optional[float]] = {}

    def check_scorable(self, params: TuningParameters) -> None:
        """Raise :class:`SweepError` if the model tier cannot score ``params``."""
        if params.locus is StreamLocus.HOST:
            raise SweepError(
                "low-fidelity tier cannot score host-locus points (PCIe "
                "streaming has no kernel launch to model); drop "
                "locus=host from the search axes"
            )

    def score(self, params: TuningParameters) -> Optional[float]:
        """Predicted GB/s for ``params``, or ``None`` on build failure."""
        if params in self._memo:
            return self._memo[params]
        self._memo[params] = score = self._score(params)
        return score

    def _score(self, params: TuningParameters) -> Optional[float]:
        from ...devices.base import BuildOptions, Launch

        gen = generate(params)
        try:
            if self.engine.cache is not None:
                checked, _ = self.engine.cache.frontend(gen.source, gen.defines)
            else:
                from ...oclc import compile_source_cached

                checked = compile_source_cached(gen.source, defines=gen.defines)

            defines = {k: str(v) for k, v in gen.defines.items()}
            options = BuildOptions(defines=defines)

            def build():
                # Identical wrapping to ExecutionEngine._stage_plan: the
                # plan cache is shared process-wide, so a failure cached
                # here must be the failure an engine run would cache.
                try:
                    return self.device.model.build(checked, options)
                except BuildError:
                    raise
                except ReproError as exc:
                    raise BuildError(
                        f"build failed for {self.device.short_name}",
                        device=self.device.short_name,
                        log=str(exc),
                    ) from exc

            if self.engine.cache is not None:
                plan, _ = self.engine.cache.plan(
                    gen.source, defines, self.device, build
                )
            else:
                plan = build()
        except ReproError:
            return None

        spec = KERNELS[params.kernel]
        launch = Launch(
            global_size=gen.global_size,
            local_size=gen.local_size,
            buffer_bytes={
                name: params.array_bytes for name in (*spec.reads, spec.writes)
            },
        )
        seconds = self.device.model.score_launch(plan, launch)
        if seconds <= 0:  # pragma: no cover - models always return > 0
            return None
        return params.moved_bytes / seconds / 1e9
