"""Model-guided multi-fidelity search (the automated DSE route).

See :mod:`repro.core.search.multifidelity` for the algorithm and
:mod:`repro.core.search.lowfi` for the analytic-model scoring tier.
"""

from .lowfi import LowFidelityScorer
from .multifidelity import (
    SearchResult,
    SearchRung,
    halving_widths,
    multifidelity_search,
    promote,
)

__all__ = [
    "LowFidelityScorer",
    "SearchResult",
    "SearchRung",
    "halving_widths",
    "multifidelity_search",
    "promote",
]
