"""Result persistence, sweep journals and run-to-run comparison.

DSE campaigns accumulate over days (a real FPGA compile is hours); this
module stores :class:`~repro.core.results.ResultSet` runs as JSON-lines
files and diffs two runs — the "did the new toolchain/model change the
picture?" question the paper's planned results-sharing website was
meant to answer.

:class:`SweepJournal` is the crash-resilience side of the same format:
:func:`~repro.core.sweep.explore` streams every completed point to the
journal as it finishes, keyed by the point's parameter fingerprint, so
a campaign killed mid-sweep resumes exactly where it died.  Journal
records additionally carry the result ``detail`` and the measurement
fingerprint, which lets the loader verify that a restored point is
byte-identical to re-running it — a record that fails that check is
treated as absent and the point simply re-runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

import numpy as np

from ..errors import BenchmarkError
from .params import (
    AccessPattern,
    DataType,
    KernelName,
    LoopManagement,
    StreamLocus,
    TuningParameters,
)
from .results import ResultSet, RunResult

__all__ = [
    "save_results",
    "load_results",
    "point_fingerprint",
    "params_to_record",
    "params_from_record",
    "result_to_record",
    "result_from_record",
    "SweepJournal",
    "CompareEntry",
    "compare_results",
]

_SCHEMA = 1


def _params_to_json(p: TuningParameters) -> dict:
    return {
        "kernel": p.kernel.value,
        "array_bytes": p.array_bytes,
        "dtype": p.dtype.cname,
        "vector_width": p.vector_width,
        "pattern": p.pattern.value,
        "loop": p.loop.value,
        "unroll": p.unroll,
        "reqd_work_group_size": p.reqd_work_group_size,
        "num_simd_work_items": p.num_simd_work_items,
        "num_compute_units": p.num_compute_units,
        "xcl_pipeline_loop": p.xcl_pipeline_loop,
        "xcl_pipeline_workitems": p.xcl_pipeline_workitems,
        "xcl_max_memory_ports": p.xcl_max_memory_ports,
        "xcl_memory_port_width": p.xcl_memory_port_width,
        "locus": p.locus.value,
    }


def _params_from_json(data: dict) -> TuningParameters:
    return TuningParameters(
        kernel=KernelName(data["kernel"]),
        array_bytes=int(data["array_bytes"]),
        dtype=next(d for d in DataType if d.cname == data["dtype"]),
        vector_width=int(data["vector_width"]),
        pattern=AccessPattern(data["pattern"]),
        loop=LoopManagement(data["loop"]),
        unroll=int(data["unroll"]),
        reqd_work_group_size=data.get("reqd_work_group_size"),
        num_simd_work_items=int(data.get("num_simd_work_items", 1)),
        num_compute_units=int(data.get("num_compute_units", 1)),
        xcl_pipeline_loop=bool(data.get("xcl_pipeline_loop", False)),
        xcl_pipeline_workitems=bool(data.get("xcl_pipeline_workitems", False)),
        xcl_max_memory_ports=bool(data.get("xcl_max_memory_ports", False)),
        xcl_memory_port_width=data.get("xcl_memory_port_width"),
        locus=StreamLocus(data.get("locus", "device")),
    )


def _jsonify(value: object) -> object:
    """Reduce a detail payload to pure-JSON types, recursively.

    Numpy scalars become Python numbers, tuples become lists; anything
    exotic falls back to ``repr``. Applied before a record is written
    so a loaded result's ``detail`` compares equal (and fingerprints
    identically) to the in-memory original.
    """
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return repr(value)


def _result_to_record(r: RunResult, *, detail: bool = False) -> dict:
    record = {
        "schema": _SCHEMA,
        "target": r.target,
        "params": _params_to_json(r.params),
        "times_s": list(r.times),
        "moved_bytes": r.moved_bytes,
        "validated": r.validated,
        "error": r.error,
        "failure_kind": r.failure_kind,
    }
    if detail:
        record["detail"] = _jsonify(r.detail)
    return record


def _result_from_record(record: dict) -> RunResult:
    return RunResult(
        target=record["target"],
        params=_params_from_json(record["params"]),
        times=tuple(record["times_s"]),
        moved_bytes=int(record["moved_bytes"]),
        validated=bool(record["validated"]),
        error=record.get("error", ""),
        failure_kind=record.get("failure_kind", ""),
        detail=record.get("detail", {}) or {},
    )


# Public aliases of the record codec. The scheduler's process backend
# ships results and parameters across the worker pipe in exactly this
# format: the JSON roundtrip is proven fingerprint-stable (it is what
# journal resume relies on), which is what makes a process-backend
# campaign byte-identical to a serial one.


def params_to_record(p: TuningParameters) -> dict:
    """Canonical JSON form of a parameter point (wire/journal format)."""
    return _params_to_json(p)


def params_from_record(record: dict) -> TuningParameters:
    """Inverse of :func:`params_to_record`."""
    return _params_from_json(record)


def result_to_record(r: RunResult, *, detail: bool = True) -> dict:
    """Canonical JSON form of a result (wire/journal format).

    With ``detail=True`` (the default here, unlike the compact
    :func:`save_results` files) the record reconstructs a result whose
    :meth:`~repro.core.results.RunResult.fingerprint` equals the
    original's.
    """
    return _result_to_record(r, detail=detail)


def result_from_record(record: dict) -> RunResult:
    """Inverse of :func:`result_to_record`."""
    return _result_from_record(record)


def save_results(results: Iterable[RunResult], path: str | Path) -> int:
    """Append results to a JSON-lines file; returns the count written.

    Missing parent directories are created.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("a") as fh:
        for r in results:
            fh.write(json.dumps(_result_to_record(r)) + "\n")
            count += 1
    return count


def load_results(path: str | Path) -> ResultSet:
    """Load a JSON-lines result file back into a :class:`ResultSet`."""
    path = Path(path)
    out = ResultSet()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise BenchmarkError(f"{path}:{lineno}: bad JSON ({exc})") from exc
        if record.get("schema") != _SCHEMA:
            raise BenchmarkError(
                f"{path}:{lineno}: unsupported schema {record.get('schema')!r}"
            )
        out.add(_result_from_record(record))
    return out


# --------------------------------------------------------------------------
# Sweep journals (resumable campaigns)
# --------------------------------------------------------------------------


def point_fingerprint(target: str, params: TuningParameters) -> str:
    """Deterministic identity of one grid point on one target.

    A short hash of the canonical parameter serialization — the journal
    key :func:`~repro.core.sweep.explore` uses to skip already-completed
    points on resume, and the key fault injection derives its per-point
    decisions from.
    """
    payload = json.dumps(
        {"target": target, "params": _params_to_json(params)}, sort_keys=True
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class SweepJournal:
    """Append-only JSONL journal of completed sweep points.

    Each record is the :func:`save_results` schema plus the point key,
    the full (JSON-reduced) ``detail`` and the measurement fingerprint.
    Appends are flushed per point under a lock, so a journal written by
    a parallel sweep that is killed mid-campaign loses at most the
    in-flight points; a truncated trailing line is tolerated on load.

    ``durable=True`` additionally ``fsync``\\ s after every append: a
    flush only hands the line to the OS, which a power loss — or the
    hard ``os._exit`` a ``worker_crash`` fault injects — can still
    discard. The process-executor restart path trusts the journal after
    exactly such kills, so campaigns that lean on it should opt in
    (``--durable-journal`` on the CLI) and pay the per-point fsync.
    """

    def __init__(self, path: str | Path, *, durable: bool = False):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.durable = durable
        self._lock = threading.Lock()
        #: points restored from the journal instead of re-executed
        self.reused = 0
        #: points actually executed (and appended) this campaign
        self.executed = 0
        #: journal records dropped on load (corrupt line / stale fingerprint)
        self.discarded = 0

    def load(self) -> dict[str, RunResult]:
        """Completed points by key; silently drops unusable records.

        A record whose stored measurement fingerprint no longer matches
        the reconstructed result is *discarded* (counted in
        :attr:`discarded`) rather than trusted — the point re-runs, so
        a damaged journal degrades to extra work, never to wrong data.
        """
        done: dict[str, RunResult] = {}
        if not self.path.exists():
            return done
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if record.get("schema") != _SCHEMA:
                    raise ValueError(f"schema {record.get('schema')!r}")
                key = record["point"]
                result = _result_from_record(record)
            except (ValueError, KeyError, TypeError):
                self.discarded += 1
                continue
            if record.get("fingerprint") != result.fingerprint():
                self.discarded += 1
                continue
            done[key] = result
        return done

    def record(self, key: str, result: RunResult) -> None:
        """Append one completed point (thread-safe, flushed; fsynced
        when the journal is ``durable``)."""
        record = _result_to_record(result, detail=True)
        record["point"] = key
        record["fingerprint"] = result.fingerprint()
        line = json.dumps(record) + "\n"
        with self._lock:
            with self.path.open("a") as fh:
                fh.write(line)
                fh.flush()
                if self.durable:
                    os.fsync(fh.fileno())
            self.executed += 1

    def note_reused(self, count: int = 1) -> None:
        with self._lock:
            self.reused += count


@dataclass(frozen=True)
class CompareEntry:
    """One configuration's before/after."""

    target: str
    description: str
    before_gbs: float | None
    after_gbs: float | None

    @property
    def ratio(self) -> float | None:
        if not self.before_gbs or self.after_gbs is None:
            return None
        return self.after_gbs / self.before_gbs

    @property
    def status(self) -> str:
        if self.before_gbs is None:
            return "new"
        if self.after_gbs is None:
            return "removed"
        r = self.ratio or 0.0
        if r > 1.05:
            return "improved"
        if r < 0.95:
            return "regressed"
        return "unchanged"


def compare_results(
    before: ResultSet, after: ResultSet
) -> list[CompareEntry]:
    """Match configurations across two runs and classify the changes."""

    def key(r: RunResult) -> tuple:
        return (r.target, r.params)

    before_map = {key(r): r for r in before if r.ok}
    after_map = {key(r): r for r in after if r.ok}
    entries = []
    for k in sorted(set(before_map) | set(after_map), key=str):
        b = before_map.get(k)
        a = after_map.get(k)
        some = b or a
        assert some is not None
        entries.append(
            CompareEntry(
                target=some.target,
                description=some.params.describe(),
                before_gbs=b.bandwidth_gbs if b else None,
                after_gbs=a.bandwidth_gbs if a else None,
            )
        )
    return entries
